//! Ablations of the design choices DESIGN.md §6 calls out. Each benchmark
//! simulates the same work under the design-on and design-off variants;
//! the *simulated-cycle* comparison (the architectural result) is produced
//! by `cargo run --bin ablation_report`, while this harness tracks the
//! host-side simulation cost of each variant. Cases are registered as
//! [`TimedJob`]s on the deterministic sweep pool
//! (`snacknoc_bench::sweep`); set `SNACKNOC_BENCH_THREADS` to time them
//! concurrently.

use snacknoc_bench::sweep::TimedJob;
use snacknoc_bench::harness::Harness;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

/// MAC fusion on vs off: fused inner products keep partial sums in the
/// accumulator; unfused ones push every product through the ring.
fn mac_fusion_jobs(jobs: &mut Vec<TimedJob>) {
    for fusion in [true, false] {
        let built = build(Kernel::Sgemm, 12, 7);
        let sample = SnackPlatform::new(NocConfig::default()).unwrap();
        let cfg = MapperConfig::for_mesh(sample.mesh()).with_mac_fusion(fusion);
        let kernel = built.context.compile(built.root, &cfg).unwrap();
        jobs.push(TimedJob::batched(
            &format!("ablation_mac_fusion/sgemm12/{fusion}"),
            || SnackPlatform::new(NocConfig::default()).unwrap(),
            move |mut p| p.run_kernel(&kernel, 5_000_000).expect("finishes"),
        ));
    }
}

/// Priority arbitration on vs off under mixed CMP + kernel traffic.
fn priority_arbitration_jobs(jobs: &mut Vec<TimedJob>) {
    for arb in [true, false] {
        let workload = profile(Benchmark::Radix).scaled(0.0002);
        let built = build(Kernel::Sgemm, 12, 7);
        jobs.push(TimedJob::batched(
            &format!("ablation_priority_arb/radix+sgemm/{arb}"),
            move || {
                let cfg = NocConfig::dapper().with_priority_arbitration(arb);
                let mut p = SnackPlatform::new(cfg).unwrap();
                let kernel = built
                    .context
                    .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
                    .unwrap();
                p.attach_workload(&workload, 3);
                (p, kernel)
            },
            |(mut p, kernel)| p.run_multiprogram(Some(&kernel), u64::MAX / 2),
        ));
    }
}

fn main() {
    let mut h = Harness::from_env("ablations");
    let mut jobs = Vec::new();
    mac_fusion_jobs(&mut jobs);
    priority_arbitration_jobs(&mut jobs);
    h.bench_jobs(jobs);
    h.finish();
}
