//! JIT-compilation cost — graph construction, post-order mapping,
//! round-robin scheduling and dependent counting. The paper's runtime
//! compiles kernels just-in-time, so mapping speed matters. Runs on the
//! in-repo wall-clock harness (`snacknoc_bench::harness`).

use snacknoc_bench::harness::Harness;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_noc::Mesh;
use snacknoc_workloads::kernels::Kernel;

fn main() {
    let mesh = Mesh::new(4, 4);
    let cfg = MapperConfig::for_mesh(&mesh);
    let mut h = Harness::from_env("compiler_mapping");
    for (kernel, size) in
        [(Kernel::Sgemm, 32), (Kernel::Reduction, 16_384), (Kernel::Mac, 8_192), (Kernel::Spmv, 96)]
    {
        let built = build(kernel, size, 42);
        h.bench(&format!("jit/compile/{kernel}-{size}"), || {
            built.context.compile(built.root, &cfg).expect("compiles")
        });
        h.bench(&format!("jit/interpret/{kernel}-{size}"), || {
            built.context.interpret(built.root).expect("interprets")
        });
    }

    // Validation pass alone (the CPM runs it on submit).
    let built = build(Kernel::Sgemm, 32, 42);
    let compiled = built.context.compile(built.root, &cfg).unwrap();
    h.bench("jit/validate/SGEMM-32", || compiled.validate().expect("valid"));
    h.finish();
}
