//! JIT-compilation cost — graph construction, post-order mapping,
//! round-robin scheduling and dependent counting. The paper's runtime
//! compiles kernels just-in-time, so mapping speed matters. Cases are
//! registered as [`TimedJob`]s on the deterministic sweep pool
//! (`snacknoc_bench::sweep`); set `SNACKNOC_BENCH_THREADS` to time them
//! concurrently.

use snacknoc_bench::harness::Harness;
use snacknoc_bench::sweep::TimedJob;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_noc::Mesh;
use snacknoc_workloads::kernels::Kernel;

fn main() {
    let mesh = Mesh::new(4, 4);
    let mut h = Harness::from_env("compiler_mapping");
    let mut jobs = Vec::new();
    for (kernel, size) in
        [(Kernel::Sgemm, 32), (Kernel::Reduction, 16_384), (Kernel::Mac, 8_192), (Kernel::Spmv, 96)]
    {
        let built = build(kernel, size, 42);
        let cfg = MapperConfig::for_mesh(&mesh);
        jobs.push(TimedJob::simple(&format!("jit/compile/{kernel}-{size}"), move || {
            built.context.compile(built.root, &cfg).expect("compiles")
        }));
        let built = build(kernel, size, 42);
        jobs.push(TimedJob::simple(&format!("jit/interpret/{kernel}-{size}"), move || {
            built.context.interpret(built.root).expect("interprets")
        }));
    }

    // Validation pass alone (the CPM runs it on submit).
    let built = build(Kernel::Sgemm, 32, 42);
    let compiled = built.context.compile(built.root, &MapperConfig::for_mesh(&mesh)).unwrap();
    jobs.push(TimedJob::simple("jit/validate/SGEMM-32", move || {
        compiled.validate().expect("valid")
    }));
    h.bench_jobs(jobs);
    h.finish();
}
