//! Criterion: JIT-compilation cost — graph construction, post-order
//! mapping, round-robin scheduling and dependent counting. The paper's
//! runtime compiles kernels just-in-time, so mapping speed matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_noc::Mesh;
use snacknoc_workloads::kernels::Kernel;

fn bench_mapping(c: &mut Criterion) {
    let mesh = Mesh::new(4, 4);
    let cfg = MapperConfig::for_mesh(&mesh);
    let mut group = c.benchmark_group("jit");
    for (kernel, size) in
        [(Kernel::Sgemm, 32), (Kernel::Reduction, 16_384), (Kernel::Mac, 8_192), (Kernel::Spmv, 96)]
    {
        let built = build(kernel, size, 42);
        group.bench_with_input(
            BenchmarkId::new("compile", format!("{kernel}-{size}")),
            &built,
            |b, built| {
                b.iter(|| built.context.compile(built.root, &cfg).expect("compiles"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interpret", format!("{kernel}-{size}")),
            &built,
            |b, built| b.iter(|| built.context.interpret(built.root).expect("interprets")),
        );
    }
    group.finish();

    // Validation pass alone (the CPM runs it on submit).
    let built = build(Kernel::Sgemm, 32, 42);
    let compiled = built.context.compile(built.root, &cfg).unwrap();
    c.bench_function("jit/validate/SGEMM-32", |b| {
        b.iter(|| compiled.validate().expect("valid"));
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
