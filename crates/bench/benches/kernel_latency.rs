//! End-to-end simulation cost of small SnackNoC kernels — the whole
//! pipeline (compile once, then CPM fetch/issue, RCU execution, transient
//! tokens, result writeback) per iteration. Cases are registered as
//! [`TimedJob`]s on the deterministic sweep pool
//! (`snacknoc_bench::sweep`); set `SNACKNOC_BENCH_THREADS` to time them
//! concurrently.

use snacknoc_bench::harness::Harness;
use snacknoc_bench::sweep::TimedJob;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{Fixed, Instruction, Op, Operand, Rcu, ResultDest, SnackPlatform};
use snacknoc_noc::{NocConfig, NodeId};
use snacknoc_workloads::kernels::Kernel;

/// A MAC-fusion inner product as one long single-block MAC chain on a
/// bare RCU — every cycle asks "can the active block advance?", the
/// exact question the RCU's active-block cursor cache answers without
/// re-walking the `progress`/`pending` maps. `n` is the vector length.
fn mac_fusion_rcu(n: u32) -> Rcu {
    let mut rcu = Rcu::new();
    for seq in 0..n {
        rcu.accept_instruction(Instruction {
            op: Op::Mac,
            pe: NodeId::new(0),
            vl: Operand::Imm(Fixed::from_f64(f64::from(seq % 7) + 1.0)),
            vr: Operand::Imm(Fixed::from_f64(f64::from(seq % 5) + 1.0)),
            dest: if seq + 1 == n {
                ResultDest::Output { index: 0 }
            } else {
                ResultDest::Accumulate
            },
            sub_block: 0,
            seq,
            ends_block: seq + 1 == n,
        });
    }
    rcu
}

fn main() {
    let mut h = Harness::from_env("kernel_latency");
    let mut jobs = Vec::new();
    // The RCU-only inner product (no network): measures the instruction
    // scheduler itself, where the cursor cache removes the per-cycle
    // HashMap + double-BTreeMap walk of `next_fireable`.
    for n in [256u32, 4096] {
        jobs.push(TimedJob::batched(
            &format!("kernel_sim/mac_fusion_rcu/{n}"),
            move || mac_fusion_rcu(n),
            |mut rcu| {
                let mut out = Vec::new();
                let mut cycle = 0u64;
                while out.is_empty() {
                    cycle += 1;
                    rcu.tick_into(
                        cycle,
                        0,
                        &mut snacknoc_trace::TracerHandle::Nop,
                        &mut out,
                    );
                }
                assert!(rcu.is_idle(), "chain fully retired");
                (cycle, out.len())
            },
        ));
    }
    for kernel in Kernel::ALL {
        let size = match kernel {
            Kernel::Sgemm => 8,
            Kernel::Reduction => 1024,
            Kernel::Mac => 512,
            Kernel::Spmv => 24,
        };
        let built = build(kernel, size, 42);
        let sample = SnackPlatform::new(NocConfig::default()).unwrap();
        let compiled =
            built.context.compile(built.root, &MapperConfig::for_mesh(sample.mesh())).unwrap();
        jobs.push(TimedJob::batched(
            &format!("kernel_sim/run/{kernel}-{size}"),
            || SnackPlatform::new(NocConfig::default()).unwrap(),
            move |mut platform| {
                platform
                    .run_kernel(&compiled, 1_000_000)
                    .expect("kernel finishes")
            },
        ));
    }
    h.bench_jobs(jobs);
    h.finish();
}
