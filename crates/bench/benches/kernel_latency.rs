//! End-to-end simulation cost of small SnackNoC kernels — the whole
//! pipeline (compile once, then CPM fetch/issue, RCU execution, transient
//! tokens, result writeback) per iteration. Cases are registered as
//! [`TimedJob`]s on the deterministic sweep pool
//! (`snacknoc_bench::sweep`); set `SNACKNOC_BENCH_THREADS` to time them
//! concurrently.

use snacknoc_bench::harness::Harness;
use snacknoc_bench::sweep::TimedJob;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;

fn main() {
    let mut h = Harness::from_env("kernel_latency");
    let mut jobs = Vec::new();
    for kernel in Kernel::ALL {
        let size = match kernel {
            Kernel::Sgemm => 8,
            Kernel::Reduction => 1024,
            Kernel::Mac => 512,
            Kernel::Spmv => 24,
        };
        let built = build(kernel, size, 42);
        let sample = SnackPlatform::new(NocConfig::default()).unwrap();
        let compiled =
            built.context.compile(built.root, &MapperConfig::for_mesh(sample.mesh())).unwrap();
        jobs.push(TimedJob::batched(
            &format!("kernel_sim/run/{kernel}-{size}"),
            || SnackPlatform::new(NocConfig::default()).unwrap(),
            move |mut platform| {
                platform
                    .run_kernel(&compiled, 1_000_000)
                    .expect("kernel finishes")
            },
        ));
    }
    h.bench_jobs(jobs);
    h.finish();
}
