//! End-to-end simulation cost of small SnackNoC kernels — the whole
//! pipeline (compile once, then CPM fetch/issue, RCU execution, transient
//! tokens, result writeback) per iteration. Runs on the in-repo
//! wall-clock harness (`snacknoc_bench::harness`).

use snacknoc_bench::harness::Harness;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;

fn main() {
    let mut h = Harness::from_env("kernel_latency");
    for kernel in Kernel::ALL {
        let size = match kernel {
            Kernel::Sgemm => 8,
            Kernel::Reduction => 1024,
            Kernel::Mac => 512,
            Kernel::Spmv => 24,
        };
        let built = build(kernel, size, 42);
        let sample = SnackPlatform::new(NocConfig::default()).unwrap();
        let compiled =
            built.context.compile(built.root, &MapperConfig::for_mesh(sample.mesh())).unwrap();
        h.bench_with_setup(
            &format!("kernel_sim/run/{kernel}-{size}"),
            || SnackPlatform::new(NocConfig::default()).unwrap(),
            |mut platform| {
                platform
                    .run_kernel(&compiled, 1_000_000)
                    .expect("cpm idle")
                    .expect("kernel finishes")
            },
        );
    }
    h.finish();
}
