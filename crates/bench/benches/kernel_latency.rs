//! Criterion: end-to-end simulation cost of small SnackNoC kernels — the
//! whole pipeline (compile once, then CPM fetch/issue, RCU execution,
//! transient tokens, result writeback) per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_sim");
    for kernel in Kernel::ALL {
        let size = match kernel {
            Kernel::Sgemm => 8,
            Kernel::Reduction => 1024,
            Kernel::Mac => 512,
            Kernel::Spmv => 24,
        };
        let built = build(kernel, size, 42);
        let sample = SnackPlatform::new(NocConfig::default()).unwrap();
        let compiled =
            built.context.compile(built.root, &MapperConfig::for_mesh(sample.mesh())).unwrap();
        group.bench_with_input(
            BenchmarkId::new("run", format!("{kernel}-{size}")),
            &compiled,
            |b, compiled| {
                b.iter_batched(
                    || SnackPlatform::new(NocConfig::default()).unwrap(),
                    |mut platform| {
                        platform
                            .run_kernel(compiled, 1_000_000)
                            .expect("cpm idle")
                            .expect("kernel finishes")
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
