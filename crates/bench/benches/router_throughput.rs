//! Criterion: cycle-throughput of the NoC simulator under load, for the
//! three baseline router configurations, plus the idle fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snacknoc_noc::{Network, NocConfig, NocPreset, NodeId, PacketSpec, TrafficClass};

fn saturated_network(cfg: NocConfig) -> Network<u32> {
    let mut net: Network<u32> = Network::new(cfg).expect("valid config");
    let n = net.mesh().node_count();
    for i in 0..200u32 {
        let src = NodeId::new(i as usize % n);
        let dst = NodeId::new((i as usize * 7 + 3) % n);
        net.inject(PacketSpec::new(src, dst, (i % 3) as u8, TrafficClass::Communication, 64, i))
            .unwrap();
    }
    net
}

fn bench_router_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_step");
    for preset in NocPreset::ALL {
        group.bench_with_input(
            BenchmarkId::new("loaded_4x4", preset.to_string()),
            &preset,
            |b, &preset| {
                b.iter_batched(
                    || saturated_network(NocConfig::preset(preset)),
                    |mut net| {
                        net.run(200);
                        net
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();

    // Idle network: the common case the active-router optimisation targets.
    c.bench_function("network_step/idle_4x4", |b| {
        let mut net: Network<u32> = Network::new(NocConfig::binochs()).unwrap();
        b.iter(|| {
            net.run(1_000);
            net.cycle()
        });
    });
}

criterion_group!(benches, bench_router_cycles);
criterion_main!(benches);
