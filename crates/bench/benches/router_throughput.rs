//! Cycle-throughput of the NoC simulator under load, for the three
//! baseline router configurations, plus the idle fast path. Runs on the
//! in-repo wall-clock harness (`snacknoc_bench::harness`).

use snacknoc_bench::harness::Harness;
use snacknoc_noc::{Network, NocConfig, NocPreset, NodeId, PacketSpec, TrafficClass};

fn saturated_network(cfg: NocConfig) -> Network<u32> {
    let mut net: Network<u32> = Network::new(cfg).expect("valid config");
    let n = net.mesh().node_count();
    for i in 0..200u32 {
        let src = NodeId::new(i as usize % n);
        let dst = NodeId::new((i as usize * 7 + 3) % n);
        net.inject(PacketSpec::new(src, dst, (i % 3) as u8, TrafficClass::Communication, 64, i))
            .unwrap();
    }
    net
}

fn main() {
    let mut h = Harness::from_env("router_throughput");
    for preset in NocPreset::ALL {
        h.bench_with_setup(
            &format!("network_step/loaded_4x4/{preset}"),
            || saturated_network(NocConfig::preset(preset)),
            |mut net| {
                net.run(200);
                net
            },
        );
    }

    // Idle network: the common case the active-router optimisation targets.
    let mut net: Network<u32> = Network::new(NocConfig::binochs()).unwrap();
    h.bench("network_step/idle_4x4", || {
        net.run(1_000);
        net.cycle()
    });
    h.finish();
}
