//! Cycle-throughput of the NoC simulator under load, for the three
//! baseline router configurations, plus the idle fast path. Cases are
//! registered as [`TimedJob`]s on the deterministic sweep pool
//! (`snacknoc_bench::sweep`); set `SNACKNOC_BENCH_THREADS` to time them
//! concurrently.

use snacknoc_bench::harness::Harness;
use snacknoc_bench::sweep::TimedJob;
use snacknoc_noc::{Network, NocConfig, NocPreset, NodeId, PacketSpec, TrafficClass};

fn saturated_network(cfg: NocConfig) -> Network<u32> {
    let mut net: Network<u32> = Network::new(cfg).expect("valid config");
    let n = net.mesh().node_count();
    for i in 0..200u32 {
        let src = NodeId::new(i as usize % n);
        let dst = NodeId::new((i as usize * 7 + 3) % n);
        net.inject(PacketSpec::new(src, dst, (i % 3) as u8, TrafficClass::Communication, 64, i))
            .unwrap();
    }
    net
}

fn main() {
    let mut h = Harness::from_env("router_throughput");
    let mut jobs = Vec::new();
    for preset in NocPreset::ALL {
        jobs.push(TimedJob::batched(
            &format!("network_step/loaded_4x4/{preset}"),
            move || saturated_network(NocConfig::preset(preset)),
            |mut net| {
                net.run(200);
                net
            },
        ));
    }

    // Idle network: the common case the active-router optimisation targets.
    let mut net: Network<u32> = Network::new(NocConfig::binochs()).unwrap();
    jobs.push(TimedJob::simple("network_step/idle_4x4", move || {
        net.run(1_000);
        net.cycle()
    }));
    h.bench_jobs(jobs);
    h.finish();
}
