//! Minimal shared command-line parsing for the `snack-*` driver binaries.
//!
//! Every driver declares the set of **valued** options (`--name <value>`)
//! and boolean **switches** (`--name`) it understands; anything else on
//! the command line is an error: the binary prints the offending token
//! plus its usage string to stderr and exits with status 2. `--help`
//! (or `-h`) prints the usage string to stdout and exits 0.
//!
//! This replaces the older per-binary `arg_str`/`has_flag` helpers,
//! which silently ignored misspelled flags — a sweep run with
//! `--thread 8` would quietly fall back to the default thread count.

/// Parsed command line for one driver binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliArgs {
    usage: String,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

/// What went wrong while parsing, plus the usage text to print.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// An option not in the declared sets (includes misspellings).
    UnknownOption(String),
    /// A declared valued option appeared without a following value.
    MissingValue(String),
    /// `--help`/`-h` was given: print usage and exit 0.
    HelpRequested,
}

impl CliArgs {
    /// Parses `args` (exclusive of the program name) against the declared
    /// option sets.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on unknown options, valued options missing
    /// their value, or an explicit `--help`.
    pub fn parse_from<I, S>(
        args: I,
        usage: &str,
        valued: &[&str],
        switches: &[&str],
    ) -> Result<CliArgs, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = CliArgs {
            usage: usage.to_string(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.into_iter().map(Into::into).peekable();
        while let Some(tok) = it.next() {
            if tok == "--help" || tok == "-h" {
                return Err(CliError::HelpRequested);
            }
            let Some(name) = tok.strip_prefix("--") else {
                return Err(CliError::UnknownOption(tok));
            };
            if valued.contains(&name) {
                match it.next() {
                    Some(v) => out.values.push((name.to_string(), v)),
                    None => return Err(CliError::MissingValue(tok)),
                }
            } else if switches.contains(&name) {
                out.switches.push(name.to_string());
            } else {
                return Err(CliError::UnknownOption(tok));
            }
        }
        Ok(out)
    }

    /// Parses the process arguments; on any [`CliError`], prints the
    /// diagnostic (stderr) or usage (stdout for `--help`) and exits the
    /// process with the conventional status (2 for errors, 0 for help).
    pub fn parse(usage: &str, valued: &[&str], switches: &[&str]) -> CliArgs {
        match Self::parse_from(std::env::args().skip(1), usage, valued, switches) {
            Ok(a) => a,
            Err(CliError::HelpRequested) => {
                println!("{usage}");
                std::process::exit(0);
            }
            Err(e) => {
                match e {
                    CliError::UnknownOption(tok) => eprintln!("error: unknown option '{tok}'"),
                    CliError::MissingValue(tok) => eprintln!("error: option '{tok}' needs a value"),
                    CliError::HelpRequested => unreachable!("handled above"),
                }
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }

    /// The declared usage string.
    pub fn usage(&self) -> &str {
        &self.usage
    }

    /// Raw value of `--name`, if present (last occurrence wins).
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.values.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Value of `--name` or `default`.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.str_opt(name).unwrap_or(default).to_string()
    }

    /// Whether the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// `--name` parsed as `u64`, or `default`; a malformed value is a
    /// usage error (exit 2).
    pub fn u64_or(&self, name: &str, default: u64) -> u64 {
        self.parsed_or(name, default)
    }

    /// `--name` parsed as `f64`, or `default`; a malformed value is a
    /// usage error (exit 2).
    pub fn f64_or(&self, name: &str, default: f64) -> f64 {
        self.parsed_or(name, default)
    }

    fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.str_opt(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| self.fail(&format!("bad value for --{name}: '{v}'"))),
        }
    }

    /// Prints `msg` and the usage string to stderr, then exits 2.
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("error: {msg}");
        eprintln!("{}", self.usage);
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const USAGE: &str = "usage: demo [--size N] [--json PATH] [--smoke]";

    fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
        CliArgs::parse_from(args.iter().copied(), USAGE, &["size", "json"], &["smoke"])
    }

    #[test]
    fn accepts_declared_options_and_switches() {
        let a = parse(&["--size", "12", "--smoke"]).unwrap();
        assert_eq!(a.u64_or("size", 0), 12);
        assert!(a.switch("smoke"));
        assert!(!a.switch("other"));
        assert_eq!(a.str_opt("json"), None);
        assert_eq!(a.str_or("json", "out.json"), "out.json");
    }

    #[test]
    fn rejects_unknown_options() {
        assert_eq!(
            parse(&["--sizes", "12"]),
            Err(CliError::UnknownOption("--sizes".into()))
        );
        assert_eq!(parse(&["size"]), Err(CliError::UnknownOption("size".into())));
    }

    #[test]
    fn rejects_missing_values_and_handles_help() {
        assert_eq!(parse(&["--size"]), Err(CliError::MissingValue("--size".into())));
        assert_eq!(parse(&["--help"]), Err(CliError::HelpRequested));
        assert_eq!(parse(&["-h"]), Err(CliError::HelpRequested));
    }

    #[test]
    fn last_occurrence_wins_and_defaults_parse() {
        let a = parse(&["--size", "3", "--size", "9"]).unwrap();
        assert_eq!(a.u64_or("size", 0), 9);
        assert_eq!(a.f64_or("missing", 1.5), 1.5);
    }
}
