//! Ablation report — simulated-cycle comparisons for the design choices
//! DESIGN.md §6 calls out:
//!
//! 1. **MAC fusion** (paper §IV-B1): inner products in one accumulator vs
//!    distributed multiplies + a reduction through ring tokens.
//! 2. **Priority arbitration** (paper §III-D3 / §V-C1): communication
//!    flits beating snack flits at the allocators.
//! 3. **Instruction packing**: 2 instructions per flit (32 B channel) vs 1.
//! 4. **Congestion/overflow threshold** (paper §III-C2) sweep.

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{CpmConfig, DramModel, SnackPlatform};
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

fn main() {
    let seed = arg_u64("seed", 7);
    let scale = arg_f64("scale", 0.002);

    println!("Ablation 1: MAC fusion (SGEMM-16, zero-load, cycles lower = better)\n");
    let mut rows = Vec::new();
    for fusion in [true, false] {
        let built = build(Kernel::Sgemm, 16, seed);
        let mut p = SnackPlatform::new(NocConfig::default()).expect("valid");
        let cfg = MapperConfig::for_mesh(p.mesh()).with_mac_fusion(fusion);
        let kernel = built.context.compile(built.root, &cfg).expect("compiles");
        let run = p.run_kernel(&kernel, 10_000_000).expect("finishes");
        let reference = built.context.interpret(built.root).expect("ok");
        assert_eq!(run.outputs, reference, "both mappings bit-exact");
        rows.push(vec![
            if fusion { "fused (paper)" } else { "distributed mul+reduce" }.to_string(),
            format!("{}", kernel.len()),
            format!("{}", run.cycles),
        ]);
    }
    print_table(&["Mapping", "Instructions", "Cycles"], &rows);

    println!("\nAblation 2: priority arbitration under Radix + SGEMM (app slowdown)\n");
    let mut rows = Vec::new();
    for arb in [false, true] {
        let cfg = NocConfig::dapper().with_priority_arbitration(arb);
        let workload = profile(Benchmark::Radix).scaled(scale);
        let base = {
            let mut p = SnackPlatform::new(cfg.clone()).expect("valid");
            p.attach_workload(&workload, seed);
            p.run_multiprogram_capped(None)
        };
        let shared = {
            let built = build(Kernel::Sgemm, 20, seed);
            let mut p = SnackPlatform::new(cfg).expect("valid");
            let k = built
                .context
                .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
                .expect("compiles");
            p.attach_workload(&workload, seed);
            p.run_multiprogram_capped(Some(&k))
        };
        assert!(base.app_finished && shared.app_finished);
        rows.push(vec![
            if arb { "priority arbitration" } else { "round-robin only" }.to_string(),
            format!("{:.3}%", 100.0 * (shared.app_runtime as f64 / base.app_runtime as f64 - 1.0)),
            format!("{}", shared.kernels_completed),
            format!("{:.0}", shared.mean_kernel_cycles),
        ]);
    }
    print_table(&["Allocator", "App impact", "Kernels done", "Mean kernel cycles"], &rows);

    println!("\nAblation 3: instruction packing (Reduction-8192, zero-load)\n");
    let mut rows = Vec::new();
    for pack in [1usize, 2] {
        let built = build(Kernel::Reduction, 8_192, seed);
        let cpm = CpmConfig { instrs_per_packet: pack, ..CpmConfig::default() };
        let mut p =
            SnackPlatform::with_cpm_config(NocConfig::default(), cpm, DramModel::default())
                .expect("valid");
        let k = built
            .context
            .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
            .expect("compiles");
        let run = p.run_kernel(&k, 10_000_000).expect("finishes");
        rows.push(vec![format!("{pack} instr/flit"), format!("{}", run.cycles)]);
    }
    print_table(&["Packing", "Cycles"], &rows);

    println!("\nAblation 4: overflow threshold sweep (Radix + token-heavy kernel)\n");
    let mut rows = Vec::new();
    for enter in [0.0f64, 0.25, 0.5, 0.9] {
        let cpm = CpmConfig {
            overflow_enter_below: enter,
            overflow_exit_above: (enter * 1.1).clamp(0.1, 0.99),
            ..CpmConfig::default()
        };
        let workload = profile(Benchmark::Radix).scaled(scale);
        // A chained expression so intermediate tokens circulate the ring
        // (and pass through the CPM node, where overflow absorbs them).
        let kernel = {
            let mut cxt = snacknoc_compiler::Context::new("token-heavy");
            let a = cxt.input(&vec![0.5; 144], 12, 12).expect("input");
            let b = cxt.input(&vec![0.25; 144], 12, 12).expect("input");
            let ab = cxt.mul(a, b).expect("mul");
            let two = cxt.scalar(2.0);
            let scaled_ab = cxt.mul(two, ab).expect("scale");
            let root = cxt.reduce(scaled_ab).expect("reduce");
            (cxt.clone(), root)
        };
        let mut p =
            SnackPlatform::with_cpm_config(NocConfig::dapper(), cpm, DramModel::default())
                .expect("valid");
        let k = kernel
            .0
            .compile(kernel.1, &MapperConfig::for_mesh(p.mesh()))
            .expect("compiles");
        p.attach_workload(&workload, seed);
        let run = p.run_multiprogram_capped(Some(&k));
        rows.push(vec![
            format!("enter < {enter:.2}"),
            format!("{}", run.app_runtime),
            format!("{}", run.kernels_completed),
            format!("{}", p.cpm().stats.overflow_cycles),
            format!("{}", p.cpm().stats.tokens_absorbed),
        ]);
    }
    print_table(
        &["Threshold", "App runtime", "Kernels", "Overflow cycles", "Tokens absorbed"],
        &rows,
    );
}
