//! Extension experiment — NoC slack and SnackNoC interference under
//! *protocol-level* CMP traffic.
//!
//! The paper's utilization study (§II) and QoS experiments drive the NoC
//! with traces of real applications running a directory-based MESI
//! protocol (Table IV). This binary repeats the headline measurements
//! with the repository's MESI coherence substrate generating the traffic
//! organically — L1 misses, invalidations, forwards and writebacks —
//! instead of the calibrated phase model, checking that the paper's
//! conclusions don't depend on the traffic abstraction:
//!
//! 1. the NoC still shows large slack (median crossbar utilization in the
//!    single digits), and
//! 2. SnackNoC kernels still perturb the workload by well under 1 %.
//!
//! Arguments: `--accesses <n>` per core (default 3000), `--seed <n>`.

use snacknoc_bench::experiments::arg_u64;
use snacknoc_bench::table::{pct, print_table};
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::coherence::AccessPattern;
use snacknoc_workloads::kernels::Kernel;

fn patterns() -> Vec<(&'static str, AccessPattern)> {
    vec![
        ("default (20% shared)", AccessPattern::default()),
        ("shared-heavy", AccessPattern::shared_heavy()),
        ("private-streaming", AccessPattern::private_streaming()),
    ]
}

fn main() {
    let accesses = arg_u64("accesses", 3_000);
    let seed = arg_u64("seed", 19);
    let cfg = NocConfig::dapper()
        .with_vnets(4)
        .with_priority_arbitration(true)
        .with_sample_window(1_000);
    println!("Extension: slack and interference under directory-MESI traffic");
    println!("({accesses} accesses/core, DAPPER + 4 vnets, seed {seed})\n");
    let mut rows = Vec::new();
    for (name, base_pattern) in patterns() {
        let pattern = AccessPattern { accesses_per_core: accesses, ..base_pattern };
        // Workload alone.
        let mut alone = SnackPlatform::new(cfg.clone()).expect("valid platform");
        alone.attach_coherent_workload(pattern, seed);
        let base = alone.run_multiprogram_capped(None);
        assert!(base.app_finished, "{name} must finish");
        // Workload + continually-resubmitted SGEMM.
        let built = build(Kernel::Sgemm, 20, seed);
        let mut shared = SnackPlatform::new(cfg.clone()).expect("valid platform");
        let kernel = built
            .context
            .compile(built.root, &MapperConfig::for_mesh(shared.mesh()))
            .expect("compiles");
        shared.attach_coherent_workload(pattern, seed);
        let run = shared.run_multiprogram_capped(Some(&kernel));
        assert!(run.app_finished);
        let impact = 100.0 * (run.app_runtime as f64 / base.app_runtime as f64 - 1.0);
        rows.push(vec![
            name.to_string(),
            format!("{}", base.app_runtime),
            pct(base.stats.median_crossbar_utilization()),
            pct(base.stats.peak_crossbar_utilization()),
            pct(run.stats.median_crossbar_utilization()),
            format!("{impact:.2}%"),
            format!("{}", run.kernels_completed),
        ]);
    }
    print_table(
        &[
            "Pattern",
            "Runtime",
            "Median xbar",
            "Peak xbar",
            "Median + SGEMM",
            "App impact",
            "Kernels",
        ],
        &rows,
    );
    println!("\nThe slack-and-snack story holds under real protocol traffic:");
    println!("large idle majorities, kernels filling them, interference < 1%.");
}
