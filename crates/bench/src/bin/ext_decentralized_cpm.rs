//! Extension experiment — decentralized CPMs (paper §VII future work).
//!
//! The paper observes that "the latency and instruction issue time degrade
//! due to the bottleneck of a single CPM" and envisions "a CPM ... within
//! each memory controller module operating in parallel". This binary
//! measures that proposal: aggregate kernel throughput with 1, 2 and 4
//! CPMs at the mesh corners, each continually issuing its own kernel
//! stream, on a zero-load NoC and alongside a CMP workload.
//!
//! Arguments: `--scale <f>` (workload scale, default 0.004), `--seed <n>`,
//! `--kernel <n>` (SGEMM size, default 16), `--window <n>` cycles
//! (measurement window, default 200000).
//!
//! The same scenario is also available as a *served system* — four
//! QoS-classed tenants scheduled onto the CPM corners with admission
//! control and SLO accounting — via the
//! `snacknoc_service::decentralized_cpm` preset (see the `snack-service`
//! binary and DESIGN.md §15).

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{CompiledKernel, CpmState, SnackPlatform};
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

struct Measured {
    kernels: u64,
    mean_cycles: f64,
    app_impact_pct: Option<f64>,
}

/// Runs `cpms` kernel streams on `lanes`-wide RCUs for `window` cycles;
/// optionally with a CMP workload (measuring its slowdown against a
/// kernel-free baseline).
fn measure(
    cpms: usize,
    lanes: usize,
    kernel: &CompiledKernel,
    window: u64,
    workload: Option<(&snacknoc_workloads::BenchmarkProfile, u64)>,
) -> Measured {
    let cfg = NocConfig::dapper().with_priority_arbitration(true);
    let mut p = SnackPlatform::with_cpm_count(cfg.clone(), cpms).expect("valid platform");
    p.set_rcu_lanes(lanes);
    if let Some((w, seed)) = workload {
        p.attach_workload(w, seed);
    }
    let mut kernels = 0u64;
    let mut cycles_sum = 0u64;
    let deadline = window;
    while p.cycle() < deadline {
        for i in 0..cpms {
            if p.cpm_at(i).state() == CpmState::Idle {
                p.submit_kernel_to(i, kernel).expect("idle");
            }
        }
        p.step();
        for i in 0..cpms {
            if let Some(run) = p.take_kernel_results_from(i) {
                kernels += 1;
                cycles_sum += run.cycles;
            }
        }
    }
    let app_impact_pct = workload.map(|(w, seed)| {
        // Baseline: same workload, same window, no kernels.
        let mut base = SnackPlatform::with_cpm_count(cfg, cpms).expect("valid platform");
        base.attach_workload(w, seed);
        let b = base.run_multiprogram(None, window * 50);
        // Re-run the shared platform to workload completion for runtime.
        let mut shared = SnackPlatform::with_cpm_count(
            NocConfig::dapper().with_priority_arbitration(true),
            cpms,
        )
        .expect("valid platform");
        shared.attach_workload(w, seed);
        let mut done = false;
        let cap = window * 50;
        while !shared.workload_done() && shared.cycle() < cap {
            for i in 0..cpms {
                if shared.cpm_at(i).state() == CpmState::Idle {
                    shared.submit_kernel_to(i, kernel).expect("idle");
                }
            }
            shared.step();
            for i in 0..cpms {
                let _ = shared.take_kernel_results_from(i);
            }
            done = shared.workload_done();
        }
        assert!(done && b.app_finished, "workload must finish");
        100.0 * (shared.workload_runtime().unwrap() as f64 / b.app_runtime as f64 - 1.0)
    });
    Measured {
        kernels,
        mean_cycles: if kernels == 0 { 0.0 } else { cycles_sum as f64 / kernels as f64 },
        app_impact_pct,
    }
}

fn main() {
    let seed = arg_u64("seed", 9);
    let scale = arg_f64("scale", 0.004);
    let size = arg_u64("kernel", 16) as usize;
    let window = arg_u64("window", 200_000);
    println!("Extension: decentralized CPMs (paper §VII), SGEMM-{size} streams\n");
    let built = build(Kernel::Sgemm, size, seed);
    let sample = SnackPlatform::new(NocConfig::dapper()).expect("valid");
    let kernel =
        built.context.compile(built.root, &MapperConfig::for_mesh(sample.mesh())).expect("ok");

    println!("Zero-load NoC, {window}-cycle window (scalar RCUs):");
    let mut rows = Vec::new();
    let mut base_rate = 0.0;
    for cpms in [1usize, 2, 4] {
        let m = measure(cpms, 1, &kernel, window, None);
        let rate = m.kernels as f64 / (window as f64 / 1e6);
        if cpms == 1 {
            base_rate = rate;
        }
        rows.push(vec![
            format!("{cpms}"),
            format!("{}", m.kernels),
            format!("{rate:.1}"),
            format!("{:.2}x", rate / base_rate),
            format!("{:.0}", m.mean_cycles),
        ]);
    }
    print_table(
        &["CPMs", "Kernels done", "Kernels/Mcycle", "Speedup", "Mean latency (cyc)"],
        &rows,
    );

    // §VII's second axis: vectorized (multi-lane) RCUs expose the
    // injection bottleneck — widening the ALUs without widening issue
    // gains little; combining both compounds.
    println!("\nVectorized RCUs x decentralized issue (kernels/Mcycle):");
    let mut rows = Vec::new();
    for lanes in [1usize, 4] {
        let mut row = vec![format!("{lanes} lane(s)")];
        for cpms in [1usize, 2, 4] {
            let m = measure(cpms, lanes, &kernel, window, None);
            row.push(format!("{:.1}", m.kernels as f64 / (window as f64 / 1e6)));
        }
        rows.push(row);
    }
    print_table(&["RCU width", "1 CPM", "2 CPMs", "4 CPMs"], &rows);

    println!("\nSharing the NoC with LULESH (scale {scale}):");
    let workload = profile(Benchmark::Lulesh).scaled(scale);
    let mut rows = Vec::new();
    for cpms in [1usize, 2, 4] {
        let m = measure(cpms, 1, &kernel, window, Some((&workload, seed)));
        rows.push(vec![
            format!("{cpms}"),
            format!("{:.2}%", m.app_impact_pct.unwrap_or(0.0)),
        ]);
    }
    print_table(&["CPMs", "LULESH runtime impact"], &rows);
    println!("\nThe single-CPM issue bottleneck (1 flit/cycle) limits kernel");
    println!("throughput; per-memory-controller CPMs scale it while the QoS");
    println!("guarantee (impact < 1%) holds.");
}
