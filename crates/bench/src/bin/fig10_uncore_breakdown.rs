//! Fig. 10 — uncore power and area breakdown with SnackNoC (16-core CMP).

use snacknoc_bench::experiments::arg_u64;
use snacknoc_bench::table::print_table;
use snacknoc_cost::uncore_breakdown;

fn main() {
    let cores = arg_u64("cores", 16) as usize;
    println!("Fig. 10: Uncore power and area with SnackNoC ({cores}-core CMP)\n");
    let slices = uncore_breakdown(cores);
    let paper: &[(&str, f64, f64)] = &[
        ("L2 Cache", 73.7, 83.2),
        ("L1 Cache", 18.7, 13.3),
        ("Baseline NoC", 6.0, 2.4),
        ("SnackNoC Additions", 1.6, 1.1),
    ];
    let rows: Vec<Vec<String>> = slices
        .iter()
        .map(|s| {
            let p = paper.iter().find(|(n, _, _)| *n == s.name);
            let (pp, pa) = p.map(|&(_, a, b)| (a, b)).unwrap_or((f64::NAN, f64::NAN));
            vec![
                s.name.to_string(),
                format!("{:.3} W", s.cost.power_w),
                if cores == 16 {
                    format!("{:.1}% ({pp}%)", s.power_pct)
                } else {
                    format!("{:.1}%", s.power_pct)
                },
                format!("{:.2} mm2", s.cost.area_mm2),
                if cores == 16 {
                    format!("{:.1}% ({pa}%)", s.area_pct)
                } else {
                    format!("{:.1}%", s.area_pct)
                },
            ]
        })
        .collect();
    print_table(&["Component", "Power", "Power % (paper)", "Area", "Area % (paper)"], &rows);
    println!("\nSnackNoC stays ~1-2% of the uncore in both power and area.");
}
