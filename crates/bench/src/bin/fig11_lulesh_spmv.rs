//! Fig. 11 — NoC crossbar usage of LULESH while SPMV executes on SnackNoC.
//!
//! The paper: median crossbar utilization rises from 9.3% (LULESH alone,
//! Fig. 2(a)-3) to 29.6% with SPMV sharing the NoC — evidence that
//! SnackNoC genuinely repurposes the crossbar slack.
//!
//! Arguments: `--scale <f>` (default 0.01), `--seed <n>`, `--spmv <n>`
//! (SPMV size, default 96).

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::{pct, print_table};
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

fn main() {
    let scale = arg_f64("scale", 0.01);
    let seed = arg_u64("seed", 31);
    let spmv_size = arg_u64("spmv", 96) as usize;
    let cfg = NocConfig::dapper().with_sample_window(1_000);
    println!("Fig. 11: LULESH crossbar usage with a continually-resubmitted SPMV kernel\n");

    let p = profile(Benchmark::Lulesh).scaled(scale);
    // Alone.
    let mut alone = SnackPlatform::new(cfg.clone()).expect("valid platform");
    alone.attach_workload(&p, seed);
    let alone_run = alone.run_multiprogram_capped(None);
    assert!(alone_run.app_finished);
    // With SPMV.
    let built = build(Kernel::Spmv, spmv_size, seed);
    let mut shared = SnackPlatform::new(cfg).expect("valid platform");
    let kernel = built
        .context
        .compile(built.root, &MapperConfig::for_mesh(shared.mesh()))
        .expect("spmv compiles");
    shared.attach_workload(&p, seed);
    let shared_run = shared.run_multiprogram_capped(Some(&kernel));
    assert!(shared_run.app_finished);

    let rows = vec![
        vec![
            "LULESH alone".to_string(),
            format!("{}", alone_run.app_runtime),
            pct(alone_run.stats.median_crossbar_utilization()),
            pct(alone_run.stats.peak_crossbar_utilization()),
            "0".to_string(),
        ],
        vec![
            "LULESH + SPMV".to_string(),
            format!("{}", shared_run.app_runtime),
            pct(shared_run.stats.median_crossbar_utilization()),
            pct(shared_run.stats.peak_crossbar_utilization()),
            format!("{}", shared_run.kernels_completed),
        ],
    ];
    print_table(
        &["Run", "App runtime", "Median xbar", "Peak xbar", "Kernels done"],
        &rows,
    );
    let impact = 100.0
        * (shared_run.app_runtime as f64 / alone_run.app_runtime as f64 - 1.0);
    println!("\nLULESH runtime impact: {impact:.2}% (paper: < 1%)");
    println!("Paper: median crossbar utilization rises 9.3% -> 29.6% with SPMV.");
}
