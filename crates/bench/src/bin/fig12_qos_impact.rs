//! Fig. 12 — runtime impact of running SnackNoC kernels on CMP
//! multi-threaded application runtime.
//!
//! For each of the 16 benchmarks, runs the application alone on the
//! platform, then concurrently with each of the four kernels
//! (continually resubmitted), with and without communication-priority
//! arbitration. Reports the runtime impact percentage — the paper finds
//! it below ~1.1% everywhere, reduced to at most 0.83% by priority
//! arbitration.
//!
//! Arguments: `--scale <f>` (default 0.004), `--seed <n>`,
//! `--kernel-size <n>` (0 = per-kernel default).
//!
//! Priority arbitration is also exercised as a live *service policy* —
//! kernels served to QoS-classed tenants concurrently with the CMP
//! application — via the `snacknoc_service::fig12_qos` preset (see the
//! `snack-service` binary and DESIGN.md §15).

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{CompiledKernel, SnackPlatform};
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

fn kernel_for(mesh_cfg: &NocConfig, kernel: Kernel, size: usize, seed: u64) -> CompiledKernel {
    let built = build(kernel, size, seed);
    let platform = SnackPlatform::new(mesh_cfg.clone()).expect("valid platform");
    built
        .context
        .compile(built.root, &MapperConfig::for_mesh(platform.mesh()))
        .expect("kernel compiles")
}

fn app_runtime(
    cfg: &NocConfig,
    bench: Benchmark,
    scale: f64,
    seed: u64,
    kernel: Option<&CompiledKernel>,
) -> u64 {
    let p = profile(bench).scaled(scale);
    let mut platform = SnackPlatform::new(cfg.clone()).expect("valid platform");
    platform.attach_workload(&p, seed);
    let run = platform.run_multiprogram_capped(kernel);
    assert!(run.app_finished, "{bench} must finish");
    run.app_runtime
}

fn main() {
    let scale = arg_f64("scale", 0.004);
    let seed = arg_u64("seed", 5);
    let ksize = arg_u64("kernel-size", 0) as usize;
    println!("Fig. 12: Runtime impact (%) of SnackNoC kernels on CMP applications");
    println!("(DAPPER 4x4, workload scale {scale}, seed {seed}; 'P' = priority arbitration)\n");
    let base_cfg = NocConfig::dapper();
    let arb_cfg = NocConfig::dapper().with_priority_arbitration(true);
    let sizes: Vec<(Kernel, usize)> = Kernel::ALL
        .into_iter()
        .map(|k| (k, if ksize == 0 { snacknoc_compiler::sim_size(k).min(2048) } else { ksize }))
        .collect();
    let mut headers = vec!["Benchmark".to_string()];
    for (k, _) in &sizes {
        headers.push(k.name().to_string());
        headers.push(format!("{} P", k.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut worst_plain = 0.0f64;
    let mut worst_arb = 0.0f64;
    for bench in Benchmark::ALL {
        let mut row = vec![bench.name().to_string()];
        let base = app_runtime(&base_cfg, bench, scale, seed, None);
        let base_arb = app_runtime(&arb_cfg, bench, scale, seed, None);
        for (kernel, size) in &sizes {
            for (cfg, baseline, worst) in [
                (&base_cfg, base, &mut worst_plain),
                (&arb_cfg, base_arb, &mut worst_arb),
            ] {
                let k = kernel_for(cfg, *kernel, *size, seed);
                let rt = app_runtime(cfg, bench, scale, seed, Some(&k));
                let impact = 100.0 * (rt as f64 / baseline as f64 - 1.0);
                *worst = worst.max(impact);
                row.push(format!("{impact:.2}"));
            }
        }
        rows.push(row);
        eprintln!("  done: {bench}");
    }
    print_table(&header_refs, &rows);
    println!("\nPeak impact without arbitration: {worst_plain:.2}% (paper: up to ~1.1%)");
    println!("Peak impact with priority arbitration: {worst_arb:.2}% (paper: <= 0.83%)");
}
