//! Fig. 13 — performance impact of SGEMM as cores (and RCUs) scale.
//!
//! Runs every benchmark concurrently with a continually-resubmitted SGEMM
//! on 16-, 32-, 64- and 128-node meshes. The paper finds the impact stays
//! below ~0.5% (0.58% for LULESH at 128) — it does not grow with scale.
//!
//! Arguments: `--scale <f>` (default 0.001), `--seed <n>`,
//! `--sgemm <n>` (SGEMM size, default 20).

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

fn main() {
    let scale = arg_f64("scale", 0.001);
    let seed = arg_u64("seed", 3);
    let sgemm = arg_u64("sgemm", 20) as usize;
    println!("Fig. 13: Runtime impact (%) of SGEMM as cores and RCUs scale");
    println!("(DAPPER, workload scale {scale}, SGEMM-{sgemm}, seed {seed})\n");
    let meshes: [(u16, u16); 4] = [(4, 4), (8, 4), (8, 8), (16, 8)];
    let mut rows = Vec::new();
    let mut worst = vec![0.0f64; meshes.len()];
    for bench in Benchmark::ALL {
        let mut row = vec![bench.name().to_string()];
        for (mi, &(cols, rows_)) in meshes.iter().enumerate() {
            let cfg = NocConfig::dapper().with_mesh(cols, rows_).with_priority_arbitration(true);
            let p = profile(bench).scaled(scale);
            let built = build(Kernel::Sgemm, sgemm, seed);
            // Baseline.
            let mut alone = SnackPlatform::new(cfg.clone()).expect("valid platform");
            alone.attach_workload(&p, seed);
            let base = alone.run_multiprogram_capped(None);
            assert!(base.app_finished, "{bench} at {cols}x{rows_} must finish");
            // With SGEMM.
            let mut shared = SnackPlatform::new(cfg).expect("valid platform");
            let kernel = built
                .context
                .compile(built.root, &MapperConfig::for_mesh(shared.mesh()))
                .expect("sgemm compiles");
            shared.attach_workload(&p, seed);
            let run = shared.run_multiprogram_capped(Some(&kernel));
            assert!(run.app_finished);
            let impact = 100.0 * (run.app_runtime as f64 / base.app_runtime as f64 - 1.0);
            worst[mi] = worst[mi].max(impact);
            row.push(format!("{impact:.2}"));
        }
        rows.push(row);
        eprintln!("  done: {bench}");
    }
    print_table(&["Benchmark", "16 nodes", "32 nodes", "64 nodes", "128 nodes"], &rows);
    println!("\nPeak impact per size: {:?}", worst.iter().map(|w| format!("{w:.2}%")).collect::<Vec<_>>());
    println!("Paper: below 0.50% for all benchmarks and core counts (0.58% for LULESH at 128).");
}
