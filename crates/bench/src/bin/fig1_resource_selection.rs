//! Fig. 1 — performance of NoC resource selections.
//!
//! Runs the 16 benchmarks on the three baseline NoCs plus six
//! resource-starved AxNoC variants (buffers ÷2/÷4, VCs ÷2/÷4, channel
//! width ÷2/÷4) and reports each variant's execution slowdown relative to
//! BiNoCHS — the paper's evidence that the baselines are *not*
//! overprovisioned.
//!
//! Arguments: `--scale <f>` (workload scale, default 0.004),
//! `--seed <n>`.

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::print_table;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::runner::run_benchmark;
use snacknoc_workloads::suite::{profile, Benchmark};

fn variants() -> Vec<(&'static str, NocConfig)> {
    let ax = NocConfig::axnoc();
    vec![
        ("BiNoCHS", NocConfig::binochs()),
        ("DAPPER", NocConfig::dapper()),
        ("AxNoC", ax.clone()),
        ("AxNoC Buf/2", ax.clone().with_buffers_per_vc(2)),
        ("AxNoC Buf/4", ax.clone().with_buffers_per_vc(1)),
        ("AxNoC VC/2", ax.clone().with_vcs_per_vnet(2)),
        ("AxNoC VC/4", ax.clone().with_vcs_per_vnet(1)),
        ("AxNoC CW/2", ax.clone().with_channel_width(8)),
        ("AxNoC CW/4", ax.with_channel_width(4)),
    ]
}

fn main() {
    let scale = arg_f64("scale", 0.004);
    let seed = arg_u64("seed", 7);
    println!("Fig. 1: Normalised execution slowdown (%) w.r.t. BiNoCHS");
    println!("(workload scale {scale}, seed {seed})\n");
    let vs = variants();
    let mut headers: Vec<&str> = vec!["Benchmark"];
    headers.extend(vs.iter().skip(1).map(|(n, _)| *n));
    let mut rows = Vec::new();
    let mut worst: Vec<f64> = vec![0.0; vs.len() - 1];
    for bench in Benchmark::ALL {
        let p = profile(bench).scaled(scale);
        let base = run_benchmark(&p, vs[0].1.clone(), seed).expect("valid config");
        assert!(base.finished, "{bench}: baseline must finish");
        let mut row = vec![bench.name().to_string()];
        for (vi, (_, cfg)) in vs.iter().enumerate().skip(1) {
            let r = run_benchmark(&p, cfg.clone(), seed).expect("valid config");
            let slowdown = if r.finished {
                100.0 * (r.runtime_cycles as f64 / base.runtime_cycles as f64 - 1.0)
            } else {
                f64::INFINITY // saturated: never drained
            };
            worst[vi - 1] = worst[vi - 1].max(slowdown);
            row.push(if slowdown.is_finite() {
                format!("{slowdown:.1}%")
            } else {
                "sat".to_string()
            });
        }
        rows.push(row);
    }
    print_table(&headers, &rows);
    println!("\nPeak slowdown per variant:");
    for ((name, _), w) in vs.iter().skip(1).zip(&worst) {
        println!("  {name:<14} {w:.1}%");
    }
    println!("\nPaper reference peaks: DAPPER/AxNoC within ~4.4% of BiNoCHS;");
    println!("Buf/2 up to 11.4%, Buf/4 25.7%, VC/2 4.8%, VC/4 22.9%, CW/2 12.2%, CW/4 37.5%.");
}
