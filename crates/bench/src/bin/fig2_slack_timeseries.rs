//! Fig. 2 — NoC crossbar (a) and link (b) usage over time on DAPPER.
//!
//! Reproduces the slack characterisation of paper §II-A for the four
//! quartile-representative benchmarks: FMM (low), Cholesky (low),
//! LULESH (medium-high) and Graph500 (high). Prints per-window peak and
//! per-router median crossbar usage plus link usage, and an ASCII sketch
//! of the max-across-routers series.
//!
//! Arguments: `--scale <f>` (default 0.01), `--seed <n>`,
//! `--csv <prefix>` (also write `<prefix>-<bench>-xbar.csv` /
//! `-link.csv` series for external plotting).

use snacknoc_bench::csv::{write_crossbar_series, write_link_series};
use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::{pct, print_table};
use snacknoc_noc::NocConfig;
use snacknoc_workloads::runner::run_benchmark;
use snacknoc_workloads::suite::{profile, Benchmark};

fn sketch(series: &[f64], cols: usize, peak: f64) -> String {
    if series.is_empty() || peak <= 0.0 {
        return String::new();
    }
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let bucket = series.len().div_ceil(cols);
    series
        .chunks(bucket)
        .map(|c| {
            let m = c.iter().copied().fold(0.0, f64::max) / peak;
            glyphs[((m * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
        })
        .collect()
}

fn csv_prefix() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let scale = arg_f64("scale", 0.01);
    let seed = arg_u64("seed", 11);
    let window = arg_u64("window", 1_000);
    let csv = csv_prefix();
    println!("Fig. 2: NoC router crossbar and link usage over time (DAPPER)");
    println!("(workload scale {scale}, {window}-cycle windows, seed {seed})\n");
    let selected = [Benchmark::Fmm, Benchmark::Cholesky, Benchmark::Lulesh, Benchmark::Graph500];
    let paper_median = [0.008, 0.005, 0.093, 0.133];
    let mut rows = Vec::new();
    for (i, bench) in selected.into_iter().enumerate() {
        let p = profile(bench).scaled(scale);
        let cfg = NocConfig::dapper().with_sample_window(window);
        let r = run_benchmark(&p, cfg, seed).expect("valid config");
        assert!(r.finished, "{bench} must finish");
        // Max-across-routers crossbar series for the sketch.
        let windows = r.stats.crossbar_series(0).samples().len();
        let mut max_series = vec![0.0f64; windows];
        for router in 0..r.stats.router_count() {
            for (w, s) in r.stats.crossbar_series(router).samples().iter().enumerate() {
                max_series[w] = max_series[w].max(s.utilization);
            }
        }
        if let Some(prefix) = &csv {
            let stem = format!("{prefix}-{}", bench.name().to_lowercase());
            let xbar = std::fs::File::create(format!("{stem}-xbar.csv"))
                .and_then(|f| write_crossbar_series(&r.stats, f));
            let link = std::fs::File::create(format!("{stem}-link.csv"))
                .and_then(|f| write_link_series(&r.stats, f));
            if let Err(e) = xbar.and(link) {
                eprintln!("csv export failed for {stem}: {e}");
            }
        }
        rows.push(vec![
            bench.name().to_string(),
            format!("{}", r.runtime_cycles),
            format!("{} ({})", pct(r.median_crossbar()), pct(paper_median[i])),
            pct(r.peak_crossbar()),
            pct(r.median_link()),
            pct(r.stats.peak_link_utilization()),
        ]);
        println!(
            "{:<10} xbar peak {:<7} |{}|",
            bench.name(),
            pct(r.peak_crossbar()),
            sketch(&max_series, 64, r.peak_crossbar())
        );
    }
    println!();
    print_table(
        &[
            "Benchmark",
            "Runtime",
            "Median xbar (paper)",
            "Peak xbar",
            "Median link",
            "Peak link",
        ],
        &rows,
    );
    println!("\nPaper: no link exceeds 18% utilization; LULESH median link 3.3%.");
}
