//! Fig. 3 — NoC input-buffer utilization CDF for Raytrace.
//!
//! The paper: "during approximately 96% of all clock-cycles, input buffer
//! utilization is at 0% ... localized contention only occurs 4% of the
//! time ... during almost all phases of contention, the buffer utilization
//! is only at 10% of the total capacity."
//!
//! Arguments: `--scale <f>` (default 0.01), `--seed <n>`.

use snacknoc_bench::experiments::{arg_f64, arg_u64};
use snacknoc_bench::table::{pct, print_table};
use snacknoc_noc::NocConfig;
use snacknoc_workloads::runner::run_benchmark;
use snacknoc_workloads::suite::{profile, Benchmark};

fn main() {
    let scale = arg_f64("scale", 0.01);
    let seed = arg_u64("seed", 23);
    println!("Fig. 3: NoC buffer utilization CDF for Raytrace (DAPPER)\n");
    let p = profile(Benchmark::Raytrace).scaled(scale);
    let r = run_benchmark(&p, NocConfig::dapper(), seed).expect("valid config");
    assert!(r.finished, "raytrace must finish");
    let cdf = &r.stats.occupancy;
    let mut rows = Vec::new();
    for probe in [0usize, 1, 2, 5, 10, 20, 30, 55, 100] {
        rows.push(vec![format!("<= {probe}%"), format!("{:.4}", cdf.cumulative_at(probe))]);
    }
    print_table(&["Buffer utilization", "Cumulative probability"], &rows);
    println!(
        "\nZero-occupancy cycles: {} (paper: ~96%)",
        pct(cdf.zero_fraction())
    );
    println!(
        "Cycles with occupancy <= 10%: {} (paper: ~100% of contended cycles stay under 10%)",
        pct(cdf.cumulative_at(10))
    );
    println!("Total cycles observed: {}", cdf.total_cycles());
}
