//! Fig. 9 — SnackNoC kernel performance vs. CPU cores.
//!
//! Runs the four kernels on a zero-load 16-RCU SnackNoC (Table IV config)
//! and compares against the Haswell CPU model at 1/2/4/8 threads, all
//! normalised to single-core time — the paper's Fig. 9 bars.
//!
//! Kernels run at simulation-scale sizes (`sim_size`); speedups are ratios
//! of rates, so they are comparable with the paper's full-scale runs as
//! long as both platforms are in steady state.

use snacknoc_bench::table::{print_table, ratio};
use snacknoc_bench::{kernel_to_cpu, run_snack_kernel, FIG9_SEED};
use snacknoc_compiler::{op_count, sim_size};
use snacknoc_cpu::CpuModel;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;

fn main() {
    println!("Fig. 9: SnackNoC kernel performance vs. CPU cores");
    println!("(normalised to 1 Haswell core; paper values in parentheses)\n");
    let cpu = CpuModel::haswell();
    let paper_snack = [6.15, 2.76, 2.57, 2.09];
    let paper_eight = [7.9, 7.9, 7.6, 5.4];
    let mut rows = Vec::new();
    for (i, kernel) in Kernel::ALL.into_iter().enumerate() {
        let size = sim_size(kernel);
        let run = run_snack_kernel(kernel, size, NocConfig::default(), FIG9_SEED);
        assert!(run.verified, "{kernel}: outputs must match the reference");
        let ops = op_count(kernel, size);
        let ck = kernel_to_cpu(kernel);
        let t1 = cpu.kernel_seconds(ck, ops, 1);
        let bars: Vec<f64> = [1, 2, 4, 8]
            .iter()
            .map(|&threads| t1 / cpu.kernel_seconds(ck, ops, threads))
            .collect();
        let snack = t1 / run.seconds();
        rows.push(vec![
            kernel.name().to_string(),
            format!("{size}"),
            format!("{}", run.cycles),
            ratio(bars[0]),
            ratio(bars[1]),
            ratio(bars[2]),
            format!("{} ({})", ratio(bars[3]), ratio(paper_eight[i])),
            format!("{} ({})", ratio(snack), ratio(paper_snack[i])),
        ]);
    }
    print_table(
        &["Kernel", "Size", "SnackCycles", "1 Core", "2 Cores", "4 Cores", "8 Cores", "SnackNoC"],
        &rows,
    );
    println!("\nAll SnackNoC outputs verified bit-exact against the fixed-point interpreter.");
}
