//! `snack-chaos` — the deterministic chaos harness driver.
//!
//! Throws seeded randomized fault schedules (permanent RCU/link/CPM
//! deaths mixed with transient drop/corrupt windows) at every kernel,
//! runs each cell in **all five stepping modes**, and asserts the
//! robustness invariants on every run: termination with a typed verdict,
//! bit-exact outputs on completion, transient-loss recovery, consistent
//! degradation reports, and five-mode bit-identity. Prints the per-cell
//! table and writes `BENCH_chaos.json` (override with `--json <path>`);
//! the simulation output is bit-identical for any `--threads` value.
//!
//! ```text
//! snack-chaos [--kernels all|sgemm,spmv,...] [--size N]
//!             [--seeds N] [--threads N] [--json PATH] [--smoke]
//! ```
//!
//! Defaults: all four paper kernels, size 10, 4 seeds per kernel,
//! threads = available parallelism.
//!
//! `--smoke` runs a fixed micro-grid (two kernels, small size) and exits
//! non-zero unless every invariant holds and at least one cell completed
//! *through* graceful degradation (a remap or failover actually fired) —
//! CI uses this via `scripts/verify.sh`.

use snacknoc_bench::args::CliArgs;
use snacknoc_bench::chaos::{run_chaos, ChaosSpec};
use snacknoc_workloads::kernels::Kernel;

const USAGE: &str = "usage: snack-chaos [--kernels all|sgemm,spmv,...] [--size N]
                   [--seeds N] [--threads N] [--json PATH] [--smoke]";

fn parse_kernels(spec: &str) -> Vec<Kernel> {
    if spec.eq_ignore_ascii_case("all") {
        return Kernel::ALL.to_vec();
    }
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.to_string().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    eprintln!("error: unknown kernel '{name}'");
                    eprintln!("known kernels: {}", Kernel::ALL.map(|k| k.to_string()).join(", "));
                    std::process::exit(2);
                })
        })
        .collect()
}

fn main() {
    let args = CliArgs::parse(
        USAGE,
        &["kernels", "size", "seeds", "threads", "json"],
        &["smoke"],
    );
    let smoke = args.switch("smoke");
    let json_path = args.str_or("json", "BENCH_chaos.json");
    let threads = args.u64_or(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
    ) as usize;

    let spec = if smoke {
        ChaosSpec::grid(&[Kernel::Mac, Kernel::Spmv], 8, &[1, 2, 3, 4, 5, 6])
            .with_threads(threads)
    } else {
        let kernels = parse_kernels(&args.str_or("kernels", "all"));
        let size = args.u64_or("size", 10) as usize;
        let seeds: Vec<u64> = (1..=args.u64_or("seeds", 4).max(1)).collect();
        ChaosSpec::grid(&kernels, size, &seeds).with_threads(threads)
    };

    println!(
        "chaos grid: {} cells x 5 stepping modes on {} thread(s){}",
        spec.cells.len(),
        spec.threads,
        if smoke { " [smoke]" } else { "" },
    );
    let results = run_chaos(&spec);
    results.print_table();

    let file = std::fs::File::create(&json_path).expect("create JSON report");
    results.write_json(std::io::BufWriter::new(file)).expect("write JSON report");
    println!("json: {json_path}");

    let degraded = results.degraded_completions();
    println!("degraded completions (remap/failover taken): {degraded}");
    if !results.all_invariants_hold() {
        eprintln!("error: chaos invariant violations (see table / JSON)");
        std::process::exit(1);
    }
    if smoke && degraded == 0 {
        eprintln!("error: smoke grid never exercised graceful degradation");
        std::process::exit(1);
    }
}
