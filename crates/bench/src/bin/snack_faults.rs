//! `snack-faults` — the deterministic fault-injection sweep driver.
//!
//! Runs a `{kernel} × {fault scenario} × {seed}` grid over the worker pool
//! in `snacknoc_bench::faults`, with a seeded fault plan and the CPM
//! token-loss watchdog enabled on every cell. Prints the per-cell
//! fault/recovery table and writes `BENCH_faults.json` (override with
//! `--json <path>`); the simulation output is bit-identical for any
//! `--threads` value.
//!
//! ```text
//! snack-faults [--kernels all|sgemm,spmv,...] [--size N]
//!              [--rates R1,R2,...] [--mode drop|corrupt|both]
//!              [--seeds N] [--threads N] [--json PATH] [--smoke]
//! ```
//!
//! Defaults: all four paper kernels, size 12, rates `0.01,0.05`, both
//! modes (plus the always-included `clean` baseline scenario), 1 seed,
//! threads = available parallelism.
//!
//! `--smoke` runs a fixed 30-second-class micro-grid (one kernel, small
//! size) and exits non-zero unless every cell is consistent — CI uses
//! this via `scripts/verify.sh`.

use snacknoc_bench::experiments::arg_u64;
use snacknoc_bench::faults::{run_fault_sweep, FaultScenario, FaultSweepSpec};
use snacknoc_workloads::kernels::Kernel;

/// Parses `--<name> <value>` as a raw string.
fn arg_str(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| *a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

fn parse_kernels(spec: &str) -> Vec<Kernel> {
    if spec.eq_ignore_ascii_case("all") {
        return Kernel::ALL.to_vec();
    }
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.to_string().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    eprintln!("error: unknown kernel '{name}'");
                    eprintln!("known kernels: {}", Kernel::ALL.map(|k| k.to_string()).join(", "));
                    std::process::exit(2);
                })
        })
        .collect()
}

fn parse_rates(spec: &str) -> Vec<f64> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            let r: f64 = s.parse().unwrap_or_else(|_| {
                eprintln!("error: bad rate '{s}'");
                std::process::exit(2);
            });
            if !(0.0..=1.0).contains(&r) {
                eprintln!("error: rate {r} outside [0, 1]");
                std::process::exit(2);
            }
            r
        })
        .collect()
}

fn scenarios(rates: &[f64], mode: &str) -> Vec<FaultScenario> {
    let mut out = vec![FaultScenario::Clean];
    for &rate in rates {
        if rate == 0.0 {
            continue; // clean already covers it
        }
        match mode {
            "drop" => out.push(FaultScenario::Drop { rate }),
            "corrupt" => out.push(FaultScenario::Corrupt { rate }),
            "both" => {
                out.push(FaultScenario::Drop { rate });
                out.push(FaultScenario::Corrupt { rate });
            }
            other => {
                eprintln!("error: unknown mode '{other}' (drop|corrupt|both)");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let smoke = has_flag("smoke");
    let json_path = arg_str("json").unwrap_or_else(|| "BENCH_faults.json".into());
    let threads = arg_u64(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
    ) as usize;

    let spec = if smoke {
        FaultSweepSpec::grid(
            &[Kernel::Mac, Kernel::Spmv],
            8,
            &[
                FaultScenario::Clean,
                FaultScenario::Drop { rate: 0.05 },
                FaultScenario::Corrupt { rate: 0.05 },
            ],
            &[1],
        )
        .with_threads(threads)
    } else {
        let kernels = parse_kernels(&arg_str("kernels").unwrap_or_else(|| "all".into()));
        let size = arg_u64("size", 12) as usize;
        let rates = parse_rates(&arg_str("rates").unwrap_or_else(|| "0.01,0.05".into()));
        let mode = arg_str("mode").unwrap_or_else(|| "both".into());
        let seeds: Vec<u64> = (1..=arg_u64("seeds", 1).max(1)).collect();
        FaultSweepSpec::grid(&kernels, size, &scenarios(&rates, &mode), &seeds)
            .with_threads(threads)
    };

    println!(
        "fault sweep: {} cells on {} thread(s){}",
        spec.cells.len(),
        spec.threads,
        if smoke { " [smoke]" } else { "" },
    );
    let results = run_fault_sweep(&spec);
    results.print_table();

    let file = std::fs::File::create(&json_path).expect("create JSON report");
    results.write_json(std::io::BufWriter::new(file)).expect("write JSON report");
    println!("json: {json_path}");

    if !results.all_consistent() {
        eprintln!(
            "error: inconsistent fault cells (finished-but-unverified, or \
             recovered != detected)"
        );
        std::process::exit(1);
    }
    let recovered: u64 = results.cells.iter().map(|c| c.recovered).sum();
    let detected: u64 = results.cells.iter().map(|c| c.detected).sum();
    println!("recovery: {recovered}/{detected} detected losses recovered");
    if smoke && detected == 0 {
        eprintln!("error: smoke grid injected no recoverable faults");
        std::process::exit(1);
    }
}
