//! `snack-faults` — the deterministic fault-injection sweep driver.
//!
//! Runs a `{kernel} × {fault scenario} × {seed}` grid over the worker pool
//! in `snacknoc_bench::faults`, with a seeded fault plan and the CPM
//! token-loss watchdog enabled on every cell. Prints the per-cell
//! fault/recovery table and writes `BENCH_faults.json` (override with
//! `--json <path>`); the simulation output is bit-identical for any
//! `--threads` value.
//!
//! ```text
//! snack-faults [--kernels all|sgemm,spmv,...] [--size N]
//!              [--rates R1,R2,...] [--mode drop|corrupt|both]
//!              [--seeds N] [--threads N] [--json PATH] [--smoke]
//! ```
//!
//! Defaults: all four paper kernels, size 12, rates `0.01,0.05`, both
//! modes (plus the always-included `clean` baseline scenario), 1 seed,
//! threads = available parallelism.
//!
//! `--smoke` runs a fixed 30-second-class micro-grid (one kernel, small
//! size) and exits non-zero unless every cell is consistent — CI uses
//! this via `scripts/verify.sh`.

use snacknoc_bench::args::CliArgs;
use snacknoc_bench::faults::{run_fault_sweep, FaultScenario, FaultSweepSpec};
use snacknoc_workloads::kernels::Kernel;

const USAGE: &str = "usage: snack-faults [--kernels all|sgemm,spmv,...] [--size N]
                    [--rates R1,R2,...] [--mode drop|corrupt|both]
                    [--seeds N] [--threads N] [--json PATH] [--smoke]";

fn parse_kernels(spec: &str) -> Vec<Kernel> {
    if spec.eq_ignore_ascii_case("all") {
        return Kernel::ALL.to_vec();
    }
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.to_string().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    eprintln!("error: unknown kernel '{name}'");
                    eprintln!("known kernels: {}", Kernel::ALL.map(|k| k.to_string()).join(", "));
                    std::process::exit(2);
                })
        })
        .collect()
}

fn parse_rates(spec: &str) -> Vec<f64> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            let r: f64 = s.parse().unwrap_or_else(|_| {
                eprintln!("error: bad rate '{s}'");
                std::process::exit(2);
            });
            if !(0.0..=1.0).contains(&r) {
                eprintln!("error: rate {r} outside [0, 1]");
                std::process::exit(2);
            }
            r
        })
        .collect()
}

fn scenarios(rates: &[f64], mode: &str) -> Vec<FaultScenario> {
    let mut out = vec![FaultScenario::Clean];
    for &rate in rates {
        if rate == 0.0 {
            continue; // clean already covers it
        }
        match mode {
            "drop" => out.push(FaultScenario::Drop { rate }),
            "corrupt" => out.push(FaultScenario::Corrupt { rate }),
            "both" => {
                out.push(FaultScenario::Drop { rate });
                out.push(FaultScenario::Corrupt { rate });
            }
            other => {
                eprintln!("error: unknown mode '{other}' (drop|corrupt|both)");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = CliArgs::parse(
        USAGE,
        &["kernels", "size", "rates", "mode", "seeds", "threads", "json"],
        &["smoke"],
    );
    let smoke = args.switch("smoke");
    let json_path = args.str_or("json", "BENCH_faults.json");
    let threads = args.u64_or(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
    ) as usize;

    let spec = if smoke {
        FaultSweepSpec::grid(
            &[Kernel::Mac, Kernel::Spmv],
            8,
            &[
                FaultScenario::Clean,
                FaultScenario::Drop { rate: 0.05 },
                FaultScenario::Corrupt { rate: 0.05 },
            ],
            &[1],
        )
        .with_threads(threads)
    } else {
        let kernels = parse_kernels(&args.str_or("kernels", "all"));
        let size = args.u64_or("size", 12) as usize;
        let rates = parse_rates(&args.str_or("rates", "0.01,0.05"));
        let mode = args.str_or("mode", "both");
        let seeds: Vec<u64> = (1..=args.u64_or("seeds", 1).max(1)).collect();
        FaultSweepSpec::grid(&kernels, size, &scenarios(&rates, &mode), &seeds)
            .with_threads(threads)
    };

    println!(
        "fault sweep: {} cells on {} thread(s){}",
        spec.cells.len(),
        spec.threads,
        if smoke { " [smoke]" } else { "" },
    );
    let results = run_fault_sweep(&spec);
    results.print_table();

    let file = std::fs::File::create(&json_path).expect("create JSON report");
    results.write_json(std::io::BufWriter::new(file)).expect("write JSON report");
    println!("json: {json_path}");

    if !results.all_consistent() {
        eprintln!(
            "error: inconsistent fault cells (finished-but-unverified, or \
             recovered != detected)"
        );
        std::process::exit(1);
    }
    let recovered: u64 = results.cells.iter().map(|c| c.recovered).sum();
    let detected: u64 = results.cells.iter().map(|c| c.detected).sum();
    println!("recovery: {recovered}/{detected} detected losses recovered");
    if smoke && detected == 0 {
        eprintln!("error: smoke grid injected no recoverable faults");
        std::process::exit(1);
    }
}
