//! `snack-perf` — the canonical hot-loop performance benchmark.
//!
//! Times `Network::step` at idle / low / saturation injection, a
//! think-heavy closed-loop platform scenario, and full
//! `Platform::run_kernel` for three compiler kernels, each under the
//! dense reference loop, the activity-driven scheduler (default) and the
//! event-driven time-wheel, and writes `BENCH_perf.json`
//! (`snacknoc-perf-v2`) — the perf trajectory's committed baseline. The
//! dense numbers in the same file *are* the baseline future PRs compare
//! against.
//!
//! ```text
//! snack-perf [--samples N] [--kernel-size N] [--seed N] [--json PATH] [--smoke]
//! ```
//!
//! Wall-clock numbers are machine-dependent; the `stats_identical`
//! fields assert that all stepping modes produced byte-identical
//! simulation statistics, and the binary exits non-zero if any scenario
//! diverged. `--smoke` shrinks the grid to a CI-sized run (used by
//! `scripts/verify.sh`) — it checks bit-identity and the JSON schema,
//! not the speedup, so a loaded CI machine cannot flake the gate.

#![deny(clippy::unwrap_used)]

use snacknoc_bench::args::CliArgs;
use snacknoc_bench::perf::{
    default_shard_scenarios, default_step_scenarios, host_threads, smoke_shard_scenarios,
    smoke_step_scenarios, time_closed_loop, time_kernel, time_shard_scenario,
    time_step_scenario, PerfReport,
};
use snacknoc_workloads::kernels::Kernel;

const USAGE: &str =
    "usage: snack-perf [--samples N] [--kernel-size N] [--seed N] [--json PATH] [--smoke]";

fn main() {
    let args = CliArgs::parse(USAGE, &["samples", "kernel-size", "seed", "json"], &["smoke"]);
    let smoke = args.switch("smoke");
    let json_path = args.str_or("json", "BENCH_perf.json");
    let samples = args.u64_or("samples", if smoke { 3 } else { 9 }).max(1) as u32;
    let seed = args.u64_or("seed", 42);
    let kernel_size = args.u64_or("kernel-size", if smoke { 10 } else { 24 }) as usize;

    let scenarios = if smoke { smoke_step_scenarios() } else { default_step_scenarios() };
    let shard_scenarios = if smoke { smoke_shard_scenarios() } else { default_shard_scenarios() };
    let kernels = if smoke {
        vec![Kernel::Mac]
    } else {
        vec![Kernel::Mac, Kernel::Reduction, Kernel::Spmv]
    };

    println!(
        "perf: {} step + {} shard scenario(s) + {} kernel(s), {samples} sample(s) per mode{} \
         (host threads: {})",
        scenarios.len(),
        shard_scenarios.len(),
        kernels.len(),
        if smoke { " [smoke]" } else { "" },
        host_threads(),
    );
    let mut step: Vec<_> = scenarios.iter().map(|s| time_step_scenario(s, samples)).collect();
    step.push(time_closed_loop(if smoke { 20_000 } else { 200_000 }, samples));
    let shard: Vec<_> =
        shard_scenarios.iter().flat_map(|s| time_shard_scenario(s, samples)).collect();
    let kernel_results =
        kernels.iter().map(|&k| time_kernel(k, kernel_size, seed, samples)).collect();
    let report = PerfReport { step, shard, kernels: kernel_results };
    report.print_tables();

    let file = std::fs::File::create(&json_path).expect("create JSON report");
    report.write_json(std::io::BufWriter::new(file)).expect("write JSON report");
    println!("json: {json_path}");

    if let Some(speedup) = report.idle_speedup() {
        println!("idle-speedup: {speedup:.2}x (active-set over dense baseline)");
    }
    if let Some(speedup) = report.idle_event_speedup() {
        println!("idle-event-speedup: {speedup:.2}x (event-driven over dense baseline)");
    }
    if let Some((name, workers, speedup)) = report.best_shard_speedup() {
        println!(
            "shard-speedup: {speedup:.2}x ({name} at {workers} worker(s) over serial active, \
             {} host thread(s))",
            host_threads(),
        );
    }
    if !report.all_identical() {
        eprintln!(
            "error: a stepping mode disagreed with the dense oracle on \
             simulation statistics (or a kernel failed verification)"
        );
        std::process::exit(1);
    }
    println!("stats-identical: yes (all scenarios, all modes)");
}
