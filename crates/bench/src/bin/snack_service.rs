//! `snack-service` — the multi-tenant service SLO sweep driver.
//!
//! Drives the `snacknoc-service` SLO scenario (six open-loop tenants,
//! two per QoS class, on a two-CPM DAPPER mesh) across load levels, each
//! level in **all five stepping modes**, and reports per-class/per-tenant
//! p50/p90/p99 latency, throughput, Jain fairness and typed admission
//! rejections. Writes `BENCH_service.json` (override with
//! `--json <path>`); the simulation output is bit-identical for any
//! `--threads` value and any stepping mode.
//!
//! ```text
//! snack-service [--loads 40,100,180] [--seed N] [--threads N]
//!               [--json PATH] [--smoke]
//! ```
//!
//! Defaults: loads 40,70,100,140,180 (percent of the two-CPM saturation
//! knee), seed 5, threads = available parallelism.
//!
//! `--smoke` runs a reduced three-level sweep and exits non-zero unless
//! every level is violation-free and five-mode bit-identical, the
//! Guaranteed class's p99 stays below BestEffort's at peak load, and the
//! peak level rejects at least one submission — CI uses this via
//! `scripts/verify.sh`.

use snacknoc_bench::args::CliArgs;
use snacknoc_bench::service::{run_service_grid, ServiceGridSpec};

const USAGE: &str =
    "usage: snack-service [--loads 40,100,180] [--seed N] [--threads N] [--json PATH] [--smoke]";

fn parse_loads(spec: &str) -> Vec<u32> {
    let loads: Vec<u32> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: bad load level '{s}' (want a percentage like 120)");
                std::process::exit(2);
            })
        })
        .collect();
    if loads.is_empty() {
        eprintln!("error: --loads needs at least one level");
        std::process::exit(2);
    }
    loads
}

fn main() {
    let args = CliArgs::parse(USAGE, &["loads", "seed", "threads", "json"], &["smoke"]);
    let smoke = args.switch("smoke");
    let json_path = args.str_or("json", "BENCH_service.json");
    let seed = args.u64_or("seed", 5);
    let threads = args.u64_or(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
    ) as usize;

    let loads = if smoke {
        vec![60, 100, 180]
    } else {
        parse_loads(&args.str_or("loads", "40,70,100,140,180"))
    };
    let spec = ServiceGridSpec::new(&loads, seed).with_threads(threads);

    println!(
        "service sweep: {} load level(s) x 5 stepping modes x 3 QoS classes on {} thread(s){}",
        spec.loads.len(),
        spec.threads,
        if smoke { " [smoke]" } else { "" },
    );
    let results = run_service_grid(&spec);
    results.print_table();

    let file = std::fs::File::create(&json_path).expect("create JSON report");
    results.write_json(std::io::BufWriter::new(file)).expect("write JSON report");
    println!("json: {json_path}");
    println!(
        "qos-protected: {}  rejections-at-peak: {}",
        if results.qos_protected() { "yes" } else { "NO" },
        results.rejections_at_peak(),
    );

    if !results.all_invariants_hold() {
        eprintln!("error: service invariant violations or stepping-mode divergence (see table)");
        std::process::exit(1);
    }
    if smoke && !results.qos_protected() {
        eprintln!("error: Guaranteed p99 was not protected below BestEffort p99 at peak load");
        std::process::exit(1);
    }
    if smoke && results.rejections_at_peak() == 0 {
        eprintln!("error: peak load never tripped admission control");
        std::process::exit(1);
    }
}
