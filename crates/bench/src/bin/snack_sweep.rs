//! `snack-sweep` — the deterministic parallel sweep driver.
//!
//! Runs a declarative `{benchmark | kernel} × {NoC preset} × {seed}` grid
//! over the std-only worker pool in `snacknoc_bench::sweep`, prints the
//! per-cell table, and writes machine-readable reports:
//!
//! * `BENCH_sweep.json` (override with `--json <path>`): per-cell
//!   simulation metrics + wall-clock stats + pool accounting
//!   (cells/sec, worker utilization).
//! * optional CSV (`--csv <path>`) in the harness layout
//!   (`bench,samples,median_ns,p90_ns,min_ns,max_ns`).
//!
//! The merged simulation output is **bit-identical for any `--threads`
//! value** (see `tests/determinism.rs`), so parallelism is purely a
//! wall-clock optimization.
//!
//! ```text
//! snack-sweep [--benchmarks all|fmm,radix,...] [--kernels sgemm,spmv,...]
//!             [--configs all|dapper,axnoc,binochs] [--seeds N]
//!             [--scale F] [--kernel-size N] [--threads N] [--samples N]
//!             [--json PATH] [--csv PATH]
//! ```
//!
//! Defaults: all 16 benchmarks, no kernels, all three Table I presets,
//! 1 seed, scale 0.002 (CI scale; 1.0 is paper scale), kernel size 16,
//! threads = available parallelism, 1 sample, JSON to `BENCH_sweep.json`.

use snacknoc_bench::args::CliArgs;
use snacknoc_bench::sweep::{run_sweep, SweepSpec};
use snacknoc_noc::NocPreset;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::Benchmark;

const USAGE: &str = "usage: snack-sweep [--benchmarks all|fmm,radix,...] [--kernels sgemm,spmv,...]
                   [--configs all|dapper,axnoc,binochs] [--seeds N]
                   [--scale F] [--kernel-size N] [--threads N] [--samples N]
                   [--json PATH] [--csv PATH]";

/// Splits a comma-separated list, trimming blanks.
fn split_list(v: &str) -> Vec<&str> {
    v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect()
}

fn parse_benchmarks(spec: &str) -> Vec<Benchmark> {
    if spec.eq_ignore_ascii_case("all") {
        return Benchmark::ALL.to_vec();
    }
    split_list(spec)
        .into_iter()
        .map(|name| {
            name.parse().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                eprintln!(
                    "known benchmarks: {}",
                    Benchmark::ALL.map(|b| b.to_string()).join(", ")
                );
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_kernels(spec: &str) -> Vec<Kernel> {
    if spec.eq_ignore_ascii_case("all") {
        return Kernel::ALL.to_vec();
    }
    split_list(spec)
        .into_iter()
        .map(|name| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.to_string().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    eprintln!("error: unknown kernel '{name}'");
                    eprintln!("known kernels: {}", Kernel::ALL.map(|k| k.to_string()).join(", "));
                    std::process::exit(2);
                })
        })
        .collect()
}

fn parse_presets(spec: &str) -> Vec<NocPreset> {
    if spec.eq_ignore_ascii_case("all") {
        return NocPreset::ALL.to_vec();
    }
    split_list(spec)
        .into_iter()
        .map(|name| {
            let norm: String =
                name.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_lowercase();
            NocPreset::ALL
                .into_iter()
                .find(|p| p.to_string().to_lowercase() == norm)
                .unwrap_or_else(|| {
                    eprintln!("error: unknown NoC config '{name}'");
                    eprintln!("known configs: {}", NocPreset::ALL.map(|p| p.to_string()).join(", "));
                    std::process::exit(2);
                })
        })
        .collect()
}

fn main() {
    let args = CliArgs::parse(
        USAGE,
        &[
            "benchmarks",
            "kernels",
            "configs",
            "seeds",
            "scale",
            "kernel-size",
            "threads",
            "samples",
            "json",
            "csv",
        ],
        &[],
    );
    let benchmarks = parse_benchmarks(&args.str_or("benchmarks", "all"));
    let kernels = args.str_opt("kernels").map(parse_kernels).unwrap_or_default();
    let presets = parse_presets(&args.str_or("configs", "all"));
    let seeds: Vec<u64> = (1..=args.u64_or("seeds", 1).max(1)).collect();
    let scale = args.f64_or("scale", 0.002);
    let kernel_size = args.u64_or("kernel-size", 16) as usize;
    let threads = args.u64_or(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
    ) as usize;
    let samples = u32::try_from(args.u64_or("samples", 1).max(1)).unwrap_or(1);
    let json_path = args.str_or("json", "BENCH_sweep.json");
    let csv_path = args.str_opt("csv").map(str::to_string);

    let spec = SweepSpec::grid(&benchmarks, &presets, &seeds, scale)
        .with_kernels(&kernels, kernel_size, &presets, &seeds)
        .with_threads(threads)
        .with_samples(samples);
    if spec.cells.is_empty() {
        eprintln!("error: empty sweep (no benchmarks or kernels selected)");
        std::process::exit(2);
    }
    println!(
        "sweep: {} cells ({} benchmark(s), {} kernel(s), {} preset(s), {} seed(s)) on {} thread(s), {} sample(s)/cell",
        spec.cells.len(),
        benchmarks.len(),
        kernels.len(),
        presets.len(),
        seeds.len(),
        spec.threads,
        spec.samples,
    );
    let results = run_sweep(&spec);
    results.print_table();

    let file = std::fs::File::create(&json_path).expect("create JSON report");
    results.write_json(std::io::BufWriter::new(file)).expect("write JSON report");
    println!("json: {json_path}");
    if let Some(path) = csv_path {
        let file = std::fs::File::create(&path).expect("create CSV report");
        results.write_csv(std::io::BufWriter::new(file)).expect("write CSV report");
        println!("csv: {path}");
    }
    if results.cells.iter().any(|c| !c.finished) {
        eprintln!("warning: some cells did not finish (saturated network or failed verification)");
        std::process::exit(1);
    }
}
