//! `snack-trace` — run a paper kernel under the cycle-level tracer and
//! emit timeline artifacts.
//!
//! ```text
//! snack-trace [--kernel sgemm|reduction|mac|spmv] [--size N] [--seed N]
//!             [--config dapper|axnoc|binochs] [--capacity N]
//!             [--json PATH] [--smoke]
//! ```
//!
//! Writes Chrome trace-event JSON (load it in Perfetto or
//! `chrome://tracing`) to `trace.json` (override with `--json`) and
//! prints a text report: per-component event accounting, the
//! critical-path breakdown of the kernel's latency (compute vs ring-wait
//! vs VC-stall vs spill ...), token-lifetime histogram, and the busiest
//! links.
//!
//! `--smoke` runs a fixed micro-kernel and exits non-zero unless the
//! emitted JSON parses with at least one event on every component lane
//! and the critical-path attribution sums exactly to the kernel latency —
//! CI uses this via `scripts/verify.sh`.

use snacknoc_bench::args::CliArgs;
use snacknoc_bench::tracing::{run_traced_kernel, DEFAULT_TRACE_CAPACITY};
use snacknoc_noc::{NocConfig, NocPreset};
use snacknoc_workloads::kernels::Kernel;

const USAGE: &str = "usage: snack-trace [--kernel sgemm|reduction|mac|spmv] [--size N] [--seed N]
                   [--config dapper|axnoc|binochs] [--capacity N]
                   [--json PATH] [--smoke]";

fn parse_kernel(args: &CliArgs, name: &str) -> Kernel {
    Kernel::ALL
        .into_iter()
        .find(|k| k.to_string().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            args.fail(&format!(
                "unknown kernel '{name}' (known: {})",
                Kernel::ALL.map(|k| k.to_string()).join(", ")
            ))
        })
}

fn parse_config(args: &CliArgs, name: &str) -> NocConfig {
    let norm: String =
        name.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_lowercase();
    NocPreset::ALL
        .into_iter()
        .find(|p| p.to_string().to_lowercase() == norm)
        .map(NocConfig::preset)
        .unwrap_or_else(|| {
            args.fail(&format!(
                "unknown NoC config '{name}' (known: {})",
                NocPreset::ALL.map(|p| p.to_string()).join(", ")
            ))
        })
}

fn main() {
    let args = CliArgs::parse(
        USAGE,
        &["kernel", "size", "seed", "config", "capacity", "json"],
        &["smoke"],
    );
    let smoke = args.switch("smoke");
    let json_path = args.str_or("json", "trace.json");

    let (kernel, size, seed, cfg, capacity) = if smoke {
        // SPMV crosses mesh links (MAC at this size maps onto one router),
        // so the smoke exercises the flit-hop/link-heatmap path too.
        (Kernel::Spmv, 8, 7, NocConfig::default(), 1 << 16)
    } else {
        let kernel = parse_kernel(&args, &args.str_or("kernel", "mac"));
        let cfg = args
            .str_opt("config")
            .map(|c| parse_config(&args, c))
            .unwrap_or_default();
        (
            kernel,
            args.u64_or("size", 12) as usize,
            args.u64_or("seed", 7),
            cfg,
            args.u64_or("capacity", DEFAULT_TRACE_CAPACITY as u64) as usize,
        )
    };

    let run = run_traced_kernel(kernel, size, cfg, seed, capacity);
    print!("{}", run.report());
    if !run.verified {
        eprintln!("error: traced run diverged from the reference interpreter");
        std::process::exit(1);
    }

    let json = run.chrome_json();
    std::fs::write(&json_path, &json).expect("write trace JSON");
    println!("trace: {json_path} ({} bytes)", json.len());

    // Self-check the artifact; --smoke makes the checks fatal for CI.
    match snacknoc_trace::validate_chrome_trace(&json) {
        Ok(summary) => println!(
            "validated: {} events (router {}, rcu {}, cpm {})",
            summary.total_events, summary.router_events, summary.rcu_events, summary.cpm_events
        ),
        Err(e) => {
            eprintln!("error: emitted trace failed validation: {e}");
            std::process::exit(1);
        }
    }
    match &run.critical_path {
        Some(cp) if cp.attributed_total() == cp.total() && cp.total() == run.cycles => {}
        Some(cp) => {
            eprintln!(
                "error: critical path attribution {} != kernel latency {} (total {})",
                cp.attributed_total(),
                run.cycles,
                cp.total()
            );
            std::process::exit(1);
        }
        None if smoke => {
            eprintln!("error: smoke trace captured no kernel submit/finish bracket");
            std::process::exit(1);
        }
        None => eprintln!("warning: no critical path (trace buffers may have saturated)"),
    }
    if smoke {
        println!("smoke: ok");
    }
}
