//! Table I — baseline NoC configurations.
//!
//! Prints the three state-of-the-art NoC baselines used throughout the
//! evaluation, exactly as configured in `snacknoc_noc::NocConfig`.

use snacknoc_bench::table::print_table;
use snacknoc_noc::{NocConfig, NocPreset};

fn main() {
    println!("Table I: Baseline NoC Configurations\n");
    let rows: Vec<Vec<String>> = NocPreset::ALL
        .iter()
        .map(|&p| {
            let c = NocConfig::preset(p);
            vec![
                p.to_string(),
                format!("{}-stage pipeline", c.pipeline_stages),
                format!("{}B", c.channel_width_bytes),
                format!("{}", c.vcs_per_vnet),
                format!("{}", c.buffers_per_vc),
            ]
        })
        .collect();
    print_table(
        &["NoC", "Router Microarchitecture", "Channel Width", "VCs/vnet", "Buffers/VC"],
        &rows,
    );
    println!("\nAll experiments use 3 virtual networks (CMP requests, CMP responses,");
    println!("SnackNoC) on a 4x4 mesh with corner memory controllers (Table IV).");
}
