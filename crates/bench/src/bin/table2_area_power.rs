//! Table II — area and power per functional unit, platform scaling, and
//! the Table V CPU comparison.

use snacknoc_bench::table::print_table;
use snacknoc_cost::{
    cpm_cost, platform_cost, rcu_cost, CPM_ITEMS, RCU_ITEMS, TERAFLOPS_POWER_RANGE_W,
    XEON_E5_2660_V3,
};

fn main() {
    println!("Table II: Area and Power Overhead per Functional Unit (45nm, 1GHz)\n");
    let item_rows = |items: &[snacknoc_cost::CostItem]| {
        items
            .iter()
            .map(|i| {
                vec![
                    i.name.to_string(),
                    format!("{:.1}m", i.cost.power_w * 1e3),
                    format!("{:.4}", i.cost.area_mm2),
                ]
            })
            .collect::<Vec<_>>()
    };
    println!("Central Packet Manager (CPM):");
    print_table(&["Component", "Power (W)", "Area (mm2)"], &item_rows(&CPM_ITEMS));
    println!("\nRouter Compute Unit (RCU):");
    print_table(&["Component", "Power (W)", "Area (mm2)"], &item_rows(&RCU_ITEMS));
    println!(
        "\nOne CPM: {} | One RCU: {}",
        cpm_cost(),
        rcu_cost()
    );

    println!("\nPlatform totals (paper values in parentheses):");
    let paper = [(16, 0.13, 0.90), (32, 0.20, 1.16), (64, 0.34, 1.67), (128, 0.61, 2.71), (147, 0.70, 3.02)];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(n, pp, pa)| {
            let c = platform_cost(n);
            vec![
                format!("CPM + {n} RCU"),
                format!("{:.2} ({:.2})", c.power_w, pp),
                format!("{:.2} ({:.2})", c.area_mm2, pa),
            ]
        })
        .collect();
    print_table(&["Configuration", "Power (W)", "Area (mm2)"], &rows);

    println!("\nTable V: Area and Power of CPU vs SnackNoC");
    let snack = platform_cost(16);
    print_table(
        &["Platform", "Power (W)", "Area (mm2)"],
        &[
            vec![
                "Intel Xeon E5 2660 v3".into(),
                format!("{}", XEON_E5_2660_V3.power_w),
                format!("{}", XEON_E5_2660_V3.area_mm2),
            ],
            vec![
                "SnackNoC (CPM + 16 RCU)".into(),
                format!("{:.2}", snack.power_w),
                format!("{:.2}", snack.area_mm2),
            ],
        ],
    );
    let frac = platform_cost(147).power_w / TERAFLOPS_POWER_RANGE_W.0;
    println!(
        "\n147-RCU SnackNoC vs Intel Teraflops (65W): {:.1}% of its power (paper: ~1%).",
        100.0 * frac
    );
}
