//! Deterministic chaos harness: randomized permanent+transient fault
//! schedules × kernels × **all five stepping modes**, with invariants
//! asserted on every run.
//!
//! The graceful-degradation companion to [`crate::faults`]: where the
//! fault sweep measures recovery under *transient* loss, the chaos
//! harness throws randomized *schedules* — permanently dead RCUs, dead
//! links and dead home-CPM nodes mixed with transient drop/corrupt
//! windows — at the platform and checks that every run upholds the
//! robustness contract:
//!
//! 1. **terminates** — `run_kernel` returns `Ok` or a typed error,
//!    never a hang (bounded by the no-progress window × attempt budget);
//! 2. **bit-exact** — completed runs match the fixed-point reference
//!    interpreter checksum exactly, faults or not;
//! 3. **transients recover** — runs that finished without a kernel-level
//!    retry recovered every watchdog-detected loss;
//! 4. **reports are consistent** — degradation reports agree with the
//!    schedule and with the run's own cycle accounting;
//! 5. **mode-invariant** — all five stepping modes produce the identical
//!    outcome (common-random-number schedules make this a paired
//!    comparison).
//!
//! Schedules are derived purely from the cell seed (common random
//! numbers), so the whole grid is reproducible and thread-count
//! invariant. The `snack-chaos` binary drives this module and writes
//! `BENCH_chaos.json`.

use crate::sweep::parallel_map;
use crate::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{
    DegradationReport, Fixed, PlatformConfig, PlatformError, RecoveryConfig, SnackPlatform,
};
use snacknoc_noc::{Dir, FaultPlan, LinkFaultKind, Mesh, NocConfig, NocPreset, NodeId};
use snacknoc_prng::Rng;
use snacknoc_workloads::kernels::Kernel;
use std::io::{self, Write};

/// The no-progress window chaos cells run under: small enough that a
/// stalled attempt escalates to remap/failover quickly, comfortably
/// above [`SnackPlatform::MIN_NO_PROGRESS_WINDOW`].
pub const CHAOS_WINDOW: u64 = 8_192;

/// One randomized fault schedule, derived deterministically from a seed.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    /// The generated fault plan.
    pub plan: FaultPlan,
    /// Corner CPMs on the platform (1 or 4; a dead home corner needs a
    /// standby to fail over to, and single-CPM cells exercise the typed
    /// unrecoverable path instead).
    pub cpm_count: usize,
    /// Permanent RCU/node deaths scheduled.
    pub dead_rcus: usize,
    /// Permanent link deaths scheduled.
    pub dead_links: usize,
    /// Whether any transient fault source (global rates or outage
    /// windows) is active.
    pub transient: bool,
}

fn random_link(rng: &mut Rng, mesh: &Mesh) -> (NodeId, Dir) {
    loop {
        let node = mesh
            .nodes()
            .nth(rng.range_usize(0..mesh.node_count()))
            .expect("index in range");
        let dir = Dir::ROUTER_DIRS[rng.range_usize(0..Dir::ROUTER_DIRS.len())];
        if mesh.neighbor(node, dir).is_some() {
            return (node, dir);
        }
    }
}

/// Generates the schedule for `seed`: an independent mix of global
/// transient rates, per-link outage windows, permanent RCU deaths and a
/// permanent link death, on a 1- or 4-CPM platform. Identical for every
/// stepping mode and worker count (pure function of the seed).
pub fn chaos_schedule(mesh: &Mesh, seed: u64) -> ChaosSchedule {
    let mut rng = Rng::new(seed ^ 0xC4A0_5EED_0000_0000);
    let mut plan = FaultPlan::seeded(seed);
    let mut transient = false;
    if rng.flip() {
        plan = plan.with_drop_rate(rng.range_f64(0.005..0.04));
        transient = true;
    }
    if rng.flip() {
        plan = plan.with_corrupt_rate(rng.range_f64(0.005..0.04));
        transient = true;
    }
    for _ in 0..rng.range(0..3) {
        let (node, dir) = random_link(&mut rng, mesh);
        let start = rng.range(0..400);
        let end = start + rng.range(200..1_500);
        let kind = if rng.flip() {
            LinkFaultKind::Drop { rate: 1.0 }
        } else {
            LinkFaultKind::Corrupt { rate: 1.0 }
        };
        plan = plan.with_link_fault(node, dir, start, end, kind);
        transient = true;
    }
    // Death times are biased toward cycle 0 (dead at submission → a
    // proactive remap) with a mid-run tail (dies under the kernel → a
    // stall-quarantine-retry); both sit inside typical kernel latencies
    // so the degradation paths actually fire.
    let death_cycle = |rng: &mut Rng| if rng.flip() { 0 } else { rng.range(1..800) };
    let dead_rcus = rng.range_usize(0..3);
    for _ in 0..dead_rcus {
        let node = mesh
            .nodes()
            .nth(rng.range_usize(0..mesh.node_count()))
            .expect("index in range");
        let from = death_cycle(&mut rng);
        plan = plan.with_dead_rcu(node, from);
    }
    let dead_links = usize::from(rng.flip());
    if dead_links > 0 {
        let (node, dir) = random_link(&mut rng, mesh);
        let from = death_cycle(&mut rng);
        plan = plan.with_dead_link(node, dir, from);
    }
    let cpm_count = if rng.flip() { 4 } else { 1 };
    // Deaths can collide on one node; count distinct scheduled deaths.
    ChaosSchedule { plan, cpm_count, dead_rcus, dead_links, transient }
}

impl ChaosSchedule {
    /// No fault source at all: the run must be bit-identical to a
    /// fault-free platform.
    pub fn is_clean(&self) -> bool {
        !self.transient && self.dead_rcus == 0 && self.dead_links == 0
    }

    /// Whether the schedule contains permanent faults (the only legal
    /// source of an `Unrecoverable` verdict).
    pub fn has_permanent(&self) -> bool {
        self.dead_rcus > 0 || self.dead_links > 0
    }
}

/// One cell of the chaos grid: a kernel run under `chaos_schedule(seed)`
/// in **every** stepping mode.
#[derive(Clone, Copy, Debug)]
pub struct ChaosCell {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Kernel input size.
    pub size: usize,
    /// Seed for kernel inputs, fault decisions and the schedule shape.
    pub seed: u64,
}

impl ChaosCell {
    /// Display name, `kernel-size/s<seed>`.
    pub fn name(&self) -> String {
        format!("{}-{}/s{}", self.kernel, self.size, self.seed)
    }
}

/// Everything one stepping mode's run could legally vary in — compared
/// for exact equality across the five modes.
#[derive(Clone, Debug, PartialEq)]
struct ModeOutcome {
    outcome: String,
    cycles: u64,
    outputs: Vec<Fixed>,
    degradation: Option<DegradationReport>,
    detected: u64,
    recovered: u64,
    retries: u64,
    corrupt_detected: u64,
    injected: u64,
    dropped_packets: u64,
}

/// Applies stepping mode 0 (dense), 1 (active), 2 (event), 3 (sharded
/// ×2) or 4 (event + sharded ×2).
fn apply_mode(p: &mut SnackPlatform, mode: u8) {
    match mode {
        0 => p.set_dense_stepping(true),
        1 => {}
        2 => p.set_event_stepping(true),
        3 => p.set_sharding(2).expect("two shards fit the preset mesh"),
        _ => {
            p.set_event_stepping(true);
            p.set_sharding(2).expect("two shards fit the preset mesh");
        }
    }
}

fn run_mode(cell: &ChaosCell, mode: u8) -> (ModeOutcome, ChaosSchedule, Vec<Fixed>) {
    let built = build(cell.kernel, cell.size, cell.seed);
    let cfg = NocConfig::preset(NocPreset::BiNoChs);
    let sched = {
        // The schedule depends only on the mesh shape, identical across
        // modes; generate it before the platform borrows the config.
        let probe = SnackPlatform::new(cfg.clone()).expect("valid platform config");
        chaos_schedule(probe.mesh(), cell.seed)
    };
    let mut platform = SnackPlatform::with_cpm_count(cfg, sched.cpm_count)
        .expect("valid platform config");
    apply_mode(&mut platform, mode);
    // MAC fusion off: intermediate values ride the transient-token ring —
    // exactly the traffic the schedule attacks.
    let mapper = MapperConfig::for_mesh(platform.mesh()).with_mac_fusion(false);
    let compiled = built.context.compile(built.root, &mapper).expect("kernel compiles");
    compiled.validate().expect("compiled kernel is well-formed");
    platform.set_fault_plan(sched.plan.clone()).expect("schedule plans are valid");
    platform.enable_recovery(RecoveryConfig::aggressive());
    let pcfg = PlatformConfig::default();
    platform
        .set_platform_config(PlatformConfig { no_progress_window: CHAOS_WINDOW, ..pcfg })
        .expect("chaos window is valid");
    let reference = built.context.interpret(built.root).expect("interpretable");
    // Bounded even in the worst case: the attempt budget × stall window
    // dominates; the 2M slack covers recovery backoff multiplication.
    let cap = 800 * compiled.len() as u64
        + u64::from(pcfg.max_kernel_attempts) * CHAOS_WINDOW
        + 2_000_000;
    let (outcome, cycles, outputs, degradation) = match platform.run_kernel(&compiled, cap) {
        Ok(run) => ("ok".to_string(), run.cycles, run.outputs.clone(), run.degradation),
        Err(PlatformError::KernelTimeout { cycles, .. }) => {
            ("timeout".to_string(), cycles, Vec::new(), None)
        }
        Err(PlatformError::Unrecoverable { resource, attempts, cycles, .. }) => {
            (format!("unrecoverable:{resource}/a{attempts}"), cycles, Vec::new(), None)
        }
        Err(e) => panic!("chaos cell {} failed to submit: {e}", cell.name()),
    };
    let rec = platform.recovery_stats();
    let counters = platform.fault_counters();
    (
        ModeOutcome {
            outcome,
            cycles,
            outputs,
            degradation,
            detected: rec.detected,
            recovered: rec.recovered,
            retries: rec.retries,
            corrupt_detected: rec.corrupt_detected,
            injected: counters.injected,
            dropped_packets: counters.dropped_packets,
        },
        sched,
        reference,
    )
}

/// The merged outcome of one chaos cell across all five stepping modes.
#[derive(Clone, Debug)]
pub struct ChaosCellResult {
    /// Cell display name (`kernel-size/s<seed>`).
    pub name: String,
    /// `"ok"`, `"timeout"`, or `"unrecoverable:<resource>/a<attempts>"`.
    pub outcome: String,
    /// Whether completed outputs matched the reference interpreter
    /// bit-for-bit (`false` whenever the kernel did not complete).
    pub verified: bool,
    /// Final-attempt latency (time-to-verdict for errors), cycles.
    pub cycles: u64,
    /// Scheduled permanent RCU deaths.
    pub dead_rcus: usize,
    /// Scheduled permanent link deaths.
    pub dead_links: usize,
    /// Corner CPMs on the cell's platform.
    pub cpms: usize,
    /// Kernel-level remapped resubmissions taken.
    pub remaps: u32,
    /// Home-CPM failovers taken.
    pub failovers: u32,
    /// Cycles burned by abandoned attempts.
    pub penalty_cycles: u64,
    /// Watchdog re-issue attempts across the whole run.
    pub watchdog_retries: u64,
    /// Tokens the CPM watchdog declared lost.
    pub detected: u64,
    /// Detected tokens that subsequently retired normally.
    pub recovered: u64,
    /// Whether all five stepping modes produced the identical outcome.
    pub modes_agree: bool,
    /// Invariant violations found (empty on a healthy run).
    pub violations: Vec<String>,
}

/// Runs one chaos cell in all five stepping modes and checks every
/// invariant. Violations are *recorded*, not panicked — the harness
/// reports them so CI can fail with the full picture.
pub fn run_chaos_cell(cell: &ChaosCell) -> ChaosCellResult {
    let (base, sched, reference) = run_mode(cell, 0);
    let mut violations = Vec::new();
    let mut modes_agree = true;
    for mode in 1u8..=4 {
        let (other, _, _) = run_mode(cell, mode);
        if other != base {
            modes_agree = false;
            violations.push(format!(
                "mode {mode} diverged from dense: {} @{} vs {} @{}",
                other.outcome, other.cycles, base.outcome, base.cycles
            ));
        }
    }
    let finished = base.outcome == "ok";
    let verified = finished && base.outputs == reference;
    if finished && !verified {
        violations.push("completed outputs do not match the reference checksum".into());
    }
    if sched.is_clean() {
        if !finished {
            violations.push(format!("clean schedule did not complete: {}", base.outcome));
        }
        if base.degradation.is_some() {
            violations.push("clean schedule produced a degradation report".into());
        }
    }
    let d = base.degradation.unwrap_or_default();
    if finished {
        if base.degradation.is_some_and(|d| !d.is_degraded()) {
            violations.push("degradation report present but reports nothing".into());
        }
        if let Some(d) = base.degradation {
            if d.final_attempt_cycles != base.cycles {
                violations.push(format!(
                    "report final_attempt_cycles {} != run cycles {}",
                    d.final_attempt_cycles, base.cycles
                ));
            }
            if d.total_cycles() != d.final_attempt_cycles + d.penalty_cycles {
                violations.push("report total_cycles is inconsistent".into());
            }
        }
        if d.penalty_cycles == 0 && base.recovered != base.detected {
            // No attempt was abandoned, so no detection was orphaned by a
            // quarantine: the transient watchdog must have healed all.
            violations.push(format!(
                "transients unrecovered without a kernel retry: {}/{}",
                base.recovered, base.detected
            ));
        }
        if sched.dead_links > 0 && base.degradation.is_none() {
            violations.push("permanently dead link but no degradation report".into());
        }
    }
    if base.outcome.starts_with("unrecoverable") && !sched.has_permanent() {
        violations.push("unrecoverable verdict without a permanent fault".into());
    }
    ChaosCellResult {
        name: cell.name(),
        outcome: base.outcome,
        verified,
        cycles: base.cycles,
        dead_rcus: sched.dead_rcus,
        dead_links: sched.dead_links,
        cpms: sched.cpm_count,
        remaps: d.remaps,
        failovers: d.failovers,
        penalty_cycles: d.penalty_cycles,
        watchdog_retries: d.watchdog_retries,
        detected: base.detected,
        recovered: base.recovered,
        modes_agree,
        violations,
    }
}

/// The declarative chaos grid the `snack-chaos` binary exposes.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Cells in merge (output) order.
    pub cells: Vec<ChaosCell>,
    /// Worker threads (1 = serial; output is identical either way).
    pub threads: usize,
}

impl ChaosSpec {
    /// Builds the `kernels × seeds` grid (kernel outermost) at input
    /// `size`.
    pub fn grid(kernels: &[Kernel], size: usize, seeds: &[u64]) -> Self {
        let mut cells = Vec::with_capacity(kernels.len() * seeds.len());
        for &kernel in kernels {
            for &seed in seeds {
                cells.push(ChaosCell { kernel, size, seed });
            }
        }
        ChaosSpec { cells, threads: 1 }
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// The outcome of [`run_chaos`], in cell-index order.
#[derive(Clone, Debug)]
pub struct ChaosResults {
    /// Per-cell results, merged deterministically.
    pub cells: Vec<ChaosCellResult>,
}

/// Executes the grid over the deterministic worker pool.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosResults {
    let cells = parallel_map(spec.cells.len(), spec.threads, |i| {
        run_chaos_cell(&spec.cells[i])
    });
    ChaosResults { cells }
}

impl ChaosResults {
    /// Zero invariant violations across the grid (every run terminated,
    /// verified, recovered its transients, reported consistently, and was
    /// bit-identical in all five stepping modes).
    pub fn all_invariants_hold(&self) -> bool {
        self.cells.iter().all(|c| c.violations.is_empty())
    }

    /// Completed runs that actually exercised graceful degradation
    /// (remaps or failovers taken).
    pub fn degraded_completions(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.outcome == "ok" && (c.remaps > 0 || c.failovers > 0))
            .count()
    }

    /// The deterministic JSON report (`BENCH_chaos.json`): pure
    /// simulation outputs, byte-identical for any worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_json(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"cells\": [")?;
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            let violations = c
                .violations
                .iter()
                .map(|v| format!("\"{}\"", crate::sweep::json_escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"outcome\": \"{}\", \"verified\": {}, \
                 \"cycles\": {}, \"dead_rcus\": {}, \"dead_links\": {}, \"cpms\": {}, \
                 \"remaps\": {}, \"failovers\": {}, \"penalty_cycles\": {}, \
                 \"watchdog_retries\": {}, \"detected\": {}, \"recovered\": {}, \
                 \"modes_agree\": {}, \"violations\": [{violations}]}}{comma}",
                crate::sweep::json_escape(&c.name),
                crate::sweep::json_escape(&c.outcome),
                c.verified,
                c.cycles,
                c.dead_rcus,
                c.dead_links,
                c.cpms,
                c.remaps,
                c.failovers,
                c.penalty_cycles,
                c.watchdog_retries,
                c.detected,
                c.recovered,
                c.modes_agree,
            )?;
        }
        writeln!(w, "  ],")?;
        writeln!(
            w,
            "  \"invariants_hold\": {}, \"degraded_completions\": {}",
            self.all_invariants_hold(),
            self.degraded_completions(),
        )?;
        writeln!(w, "}}")
    }

    /// The report as a string (what the determinism tests compare).
    ///
    /// # Panics
    ///
    /// Never — writing to a `Vec` is infallible.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf).expect("vec write");
        String::from_utf8(buf).expect("json is utf-8")
    }

    /// Prints the per-cell summary table.
    pub fn print_table(&self) {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    c.outcome.clone(),
                    c.cycles.to_string(),
                    if c.outcome != "ok" {
                        "-".into()
                    } else if c.verified {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                    format!("{}r/{}l", c.dead_rcus, c.dead_links),
                    format!("{}/{}", c.remaps, c.failovers),
                    format!("{}/{}", c.recovered, c.detected),
                    if c.modes_agree { "yes".into() } else { "NO".into() },
                    c.violations.len().to_string(),
                ]
            })
            .collect();
        print_table(
            &[
                "cell", "outcome", "cycles", "verified", "dead", "remap/fo", "recovered",
                "5-mode", "viol",
            ],
            &rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_schedules_are_seed_deterministic() {
        let p = SnackPlatform::new(NocConfig::preset(NocPreset::BiNoChs)).unwrap();
        let a = chaos_schedule(p.mesh(), 42);
        let b = chaos_schedule(p.mesh(), 42);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.cpm_count, b.cpm_count);
        let c = chaos_schedule(p.mesh(), 43);
        assert!(a.plan != c.plan || a.cpm_count != c.cpm_count, "seeds vary the schedule");
    }

    #[test]
    fn chaos_cell_holds_invariants_and_is_thread_invariant() {
        let spec = ChaosSpec::grid(&[Kernel::Mac], 8, &[1, 2, 3]);
        let serial = run_chaos(&spec);
        let parallel = run_chaos(&spec.clone().with_threads(4));
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert!(
            serial.all_invariants_hold(),
            "violations:\n{}",
            serial.deterministic_json()
        );
        assert!(serial.cells.iter().all(|c| c.modes_agree));
    }
}
