//! CSV emission for experiment series, so figure data can be re-plotted
//! outside the terminal.

use snacknoc_noc::NetStats;
use std::io::{self, Write};

/// Writes per-router crossbar-utilization time series as CSV:
/// `end_cycle,r0,r1,...` — the layout of the paper's Fig. 2(a)/Fig. 11.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_crossbar_series(stats: &NetStats, mut w: impl Write) -> io::Result<()> {
    let routers = stats.router_count();
    write!(w, "end_cycle")?;
    for r in 0..routers {
        write!(w, ",r{r}")?;
    }
    writeln!(w)?;
    let windows = stats.crossbar_series(0).samples().len();
    for i in 0..windows {
        write!(w, "{}", stats.crossbar_series(0).samples()[i].end_cycle)?;
        for r in 0..routers {
            write!(w, ",{:.4}", stats.crossbar_series(r).samples()[i].utilization)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes per-link utilization time series as CSV (`end_cycle,l0,l1,...`)
/// — the layout of Fig. 2(b).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_link_series(stats: &NetStats, mut w: impl Write) -> io::Result<()> {
    let links = stats.link_count();
    write!(w, "end_cycle")?;
    for l in 0..links {
        write!(w, ",l{l}")?;
    }
    writeln!(w)?;
    let windows = stats.link_series(0).samples().len();
    for i in 0..windows {
        write!(w, "{}", stats.link_series(0).samples()[i].end_cycle)?;
        for l in 0..links {
            write!(w, ",{:.4}", stats.link_series(l).samples()[i].utilization)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes the buffer-occupancy CDF as CSV (`percent,cumulative`) — the
/// layout of Fig. 3.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_occupancy_cdf(stats: &NetStats, mut w: impl Write) -> io::Result<()> {
    writeln!(w, "percent,cumulative")?;
    for (pct, cum) in stats.occupancy.points() {
        writeln!(w, "{pct},{cum:.6}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_noc::{Network, NocConfig, NodeId, PacketSpec, TrafficClass};

    fn stats_with_traffic() -> NetStats {
        let mut net: Network<u32> =
            Network::new(NocConfig::binochs().with_sample_window(50)).unwrap();
        for i in 0..40 {
            net.inject(PacketSpec::new(
                NodeId::new(i % 16),
                NodeId::new((i * 5 + 1) % 16),
                0,
                TrafficClass::Communication,
                64,
                i as u32,
            ))
            .unwrap();
        }
        net.run(400);
        net.stats().clone()
    }

    #[test]
    fn crossbar_csv_has_header_and_windows() {
        let stats = stats_with_traffic();
        let mut buf = Vec::new();
        write_crossbar_series(&stats, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("end_cycle,r0,"));
        assert_eq!(header.split(',').count(), 17);
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), 8, "400 cycles / 50-cycle windows");
        for row in body {
            assert_eq!(row.split(',').count(), 17);
        }
    }

    #[test]
    fn link_and_cdf_csv_are_wellformed() {
        let stats = stats_with_traffic();
        let mut buf = Vec::new();
        write_link_series(&stats, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("end_cycle,l0,"));
        assert_eq!(text.lines().count(), 9);

        let mut buf = Vec::new();
        write_occupancy_cdf(&stats, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 102, "header + 101 buckets");
        assert!(text.trim_end().ends_with("100,1.000000"));
    }
}
