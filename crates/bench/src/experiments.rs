//! Shared experiment drivers used by the per-figure binaries.

use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{Fixed, SnackPlatform};
use snacknoc_cpu::CpuKernel;
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;

/// The RCU/NoC clock of Table IV, GHz.
pub const SNACK_FREQ_GHZ: f64 = 1.0;

/// Parses `--<name> <value>` from the process arguments, falling back to
/// `default`. Used by the experiment binaries for workload scale/seeds.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--<name> <value>` as an integer, falling back to `default`.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    arg_f64(name, default as f64) as u64
}

/// The seed used for Fig. 9 kernel inputs.
pub const FIG9_SEED: u64 = 42;

/// Bridges the workloads-crate kernel enum to the CPU model's.
pub fn kernel_to_cpu(kernel: Kernel) -> CpuKernel {
    match kernel {
        Kernel::Sgemm => CpuKernel::Sgemm,
        Kernel::Reduction => CpuKernel::Reduction,
        Kernel::Mac => CpuKernel::Mac,
        Kernel::Spmv => CpuKernel::Spmv,
    }
}

/// Outcome of running one kernel on a zero-load SnackNoC.
#[derive(Clone, Debug)]
pub struct SnackKernelRun {
    /// The kernel.
    pub kernel: Kernel,
    /// The size it ran at.
    pub size: usize,
    /// Completion latency in SnackNoC (1 GHz) cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: usize,
    /// Whether the simulated outputs matched the fixed-point reference
    /// interpreter bit-for-bit.
    pub verified: bool,
    /// The outputs.
    pub outputs: Vec<Fixed>,
}

impl SnackKernelRun {
    /// Wall-clock seconds at the SnackNoC frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (SNACK_FREQ_GHZ * 1e9)
    }
}

/// Compiles `kernel` at `size` and runs it to completion on a zero-load
/// SnackNoC platform (the paper's Fig. 9 measurement condition),
/// verifying the result against the reference interpreter.
///
/// # Panics
///
/// Panics if the kernel fails to compile, validate or finish — all of
/// which indicate a platform bug rather than an experimental condition.
pub fn run_snack_kernel(kernel: Kernel, size: usize, cfg: NocConfig, seed: u64) -> SnackKernelRun {
    let built = build(kernel, size, seed);
    let mut platform = SnackPlatform::new(cfg).expect("valid platform config");
    let mapper = MapperConfig::for_mesh(platform.mesh());
    let compiled = built.context.compile(built.root, &mapper).expect("kernel compiles");
    compiled.validate().expect("compiled kernel is well-formed");
    let instructions = compiled.len();
    let cap = 200 * instructions as u64 + 1_000_000;
    let run = platform
        .run_kernel(&compiled, cap)
        .unwrap_or_else(|e| panic!("{kernel} did not finish within {cap} cycles: {e}"));
    let reference = built.context.interpret(built.root).expect("interpretable");
    SnackKernelRun {
        kernel,
        size,
        cycles: run.cycles,
        instructions,
        verified: run.outputs == reference,
        outputs: run.outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snack_kernel_runs_verify_against_interpreter() {
        for kernel in Kernel::ALL {
            let run = run_snack_kernel(kernel, 10, NocConfig::default(), 7);
            assert!(run.verified, "{kernel} simulation must match the interpreter");
            assert!(run.cycles > 0);
        }
    }
}
