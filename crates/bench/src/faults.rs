//! Deterministic fault-injection sweep: `kernel × fault scenario × seed`.
//!
//! The robustness companion to [`crate::sweep`]: every cell compiles one
//! paper kernel, installs a seeded [`FaultPlan`] on the platform, enables
//! the CPM token-loss watchdog, and runs the kernel to completion (or a
//! structured [`PlatformError::KernelTimeout`]). Per-cell results carry the
//! full fault/recovery accounting — injected/dropped/corrupted packets,
//! detected/recovered tokens, retry counts and recovery-latency
//! percentiles — next to the usual cycle counts and bit-exactness check
//! against the fixed-point reference interpreter.
//!
//! Cells run over [`crate::sweep::parallel_map`], so the merged simulation
//! output is bit-identical for any `--threads` value (proved by
//! `tests/determinism.rs`). The `snack-faults` binary drives this module
//! and writes `BENCH_faults.json`.

use crate::sweep::parallel_map;
use crate::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{PlatformError, RecoveryConfig, SnackPlatform};
use snacknoc_noc::{FaultPlan, NocConfig, NocPreset};
use snacknoc_workloads::kernels::Kernel;
use std::fmt;
use std::io::{self, Write};

/// The fault condition one sweep cell applies to its network.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultScenario {
    /// No faults at all (the bit-identity baseline: must reproduce the
    /// fault-free run exactly).
    Clean,
    /// Global per-packet drop probability on SnackNoC data tokens.
    Drop {
        /// Per-packet drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Global per-packet payload-corruption probability on data tokens.
    Corrupt {
        /// Per-packet corruption probability in `[0, 1]`.
        rate: f64,
    },
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultScenario::Clean => write!(f, "clean"),
            FaultScenario::Drop { rate } => write!(f, "drop{rate}"),
            FaultScenario::Corrupt { rate } => write!(f, "corrupt{rate}"),
        }
    }
}

impl FaultScenario {
    /// The [`FaultPlan`] this scenario compiles to for `seed`.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        match *self {
            FaultScenario::Clean => FaultPlan::none(),
            FaultScenario::Drop { rate } => FaultPlan::seeded(seed).with_drop_rate(rate),
            FaultScenario::Corrupt { rate } => FaultPlan::seeded(seed).with_corrupt_rate(rate),
        }
    }
}

/// One cell of the fault sweep grid.
#[derive(Clone, Copy, Debug)]
pub struct FaultCell {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Kernel input size.
    pub size: usize,
    /// The fault condition.
    pub scenario: FaultScenario,
    /// Seed for both the kernel inputs and the fault decisions.
    pub seed: u64,
}

impl FaultCell {
    /// Display name, `kernel-size/scenario/s<seed>`.
    pub fn name(&self) -> String {
        format!("{}-{}/{}/s{}", self.kernel, self.size, self.scenario, self.seed)
    }
}

/// The declarative fault sweep the `snack-faults` binary exposes.
#[derive(Clone, Debug)]
pub struct FaultSweepSpec {
    /// Cells in merge (output) order.
    pub cells: Vec<FaultCell>,
    /// Worker threads (1 = serial; output is identical either way).
    pub threads: usize,
    /// Recovery policy installed on every cell's CPMs.
    pub recovery: RecoveryConfig,
}

impl FaultSweepSpec {
    /// Builds the `kernels × scenarios × seeds` grid (kernel outermost,
    /// seed innermost) at kernel input `size`, recovery enabled with the
    /// aggressive defaults.
    pub fn grid(
        kernels: &[Kernel],
        size: usize,
        scenarios: &[FaultScenario],
        seeds: &[u64],
    ) -> Self {
        let mut cells = Vec::with_capacity(kernels.len() * scenarios.len() * seeds.len());
        for &kernel in kernels {
            for &scenario in scenarios {
                for &seed in seeds {
                    cells.push(FaultCell { kernel, size, scenario, seed });
                }
            }
        }
        FaultSweepSpec { cells, threads: 1, recovery: RecoveryConfig::aggressive() }
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// The merged outcome of one fault cell.
#[derive(Clone, Debug)]
pub struct FaultCellResult {
    /// Cell display name (`kernel-size/scenario/s<seed>`).
    pub name: String,
    /// Whether the kernel completed (vs. aborting with a
    /// [`PlatformError::KernelTimeout`]).
    pub finished: bool,
    /// Whether the outputs matched the reference interpreter bit-for-bit
    /// (always `false` when the kernel did not finish).
    pub verified: bool,
    /// Kernel completion latency in cycles (time-to-abort if unfinished).
    pub cycles: u64,
    /// Fault events injected by the network fault layer.
    pub injected: u64,
    /// Whole packets dropped from the wire.
    pub dropped_packets: u64,
    /// Packets delivered with corrupted payloads.
    pub corrupted_packets: u64,
    /// Tokens the CPM watchdog declared lost.
    pub detected: u64,
    /// Detected tokens that subsequently retired normally.
    pub recovered: u64,
    /// Re-issue attempts (overflow replays + producer retransmissions).
    pub retries: u64,
    /// Watchdog sweeps that found at least one overdue token.
    pub watchdog_fires: u64,
    /// Tokens discarded on arrival for failing their checksum.
    pub corrupt_detected: u64,
    /// Median detection-to-retirement recovery latency, cycles (0 when
    /// nothing was recovered).
    pub recovery_p50: u64,
}

/// Runs one fault cell to completion (never panics on a timeout: an
/// unrecoverable fault condition is a *result*, not a harness bug).
pub fn run_fault_cell(cell: &FaultCell, recovery: RecoveryConfig) -> FaultCellResult {
    let built = build(cell.kernel, cell.size, cell.seed);
    let cfg = NocConfig::preset(NocPreset::BiNoChs);
    let mut platform = SnackPlatform::new(cfg).expect("valid platform config");
    // MAC fusion off: the distributed mapping routes intermediate values
    // over the transient-token ring — exactly the traffic the fault plan
    // targets. (Fused mappings keep values RCU-local and would give the
    // fault layer nothing to hit.)
    let mapper = MapperConfig::for_mesh(platform.mesh()).with_mac_fusion(false);
    let compiled = built.context.compile(built.root, &mapper).expect("kernel compiles");
    compiled.validate().expect("compiled kernel is well-formed");
    platform
        .set_fault_plan(cell.scenario.plan(cell.seed))
        .expect("scenario plans are valid");
    platform.enable_recovery(recovery);
    // Generous cap: recovery backoff can multiply transit time. The
    // platform's no-progress watchdog bounds truly-stuck runs well below
    // this.
    let cap = 800 * compiled.len() as u64 + 2_000_000;
    let (finished, verified, cycles) = match platform.run_kernel(&compiled, cap) {
        Ok(run) => {
            let reference = built.context.interpret(built.root).expect("interpretable");
            (true, run.outputs == reference, run.cycles)
        }
        Err(PlatformError::KernelTimeout { cycles, .. }) => (false, false, cycles),
        Err(e) => panic!("fault cell {} failed to submit: {e}", cell.name()),
    };
    let counters = platform.fault_counters();
    let rec = platform.recovery_stats();
    FaultCellResult {
        name: cell.name(),
        finished,
        verified,
        cycles,
        injected: counters.injected,
        dropped_packets: counters.dropped_packets,
        corrupted_packets: counters.corrupted_packets,
        detected: rec.detected,
        recovered: rec.recovered,
        retries: rec.retries,
        watchdog_fires: rec.watchdog_fires,
        corrupt_detected: rec.corrupt_detected,
        recovery_p50: if rec.recovery_latency.samples() > 0 {
            rec.recovery_latency.percentile(0.5)
        } else {
            0
        },
    }
}

/// The outcome of [`run_fault_sweep`], in cell-index order.
#[derive(Clone, Debug)]
pub struct FaultSweepResults {
    /// Per-cell results, merged deterministically.
    pub cells: Vec<FaultCellResult>,
}

/// Executes the sweep over the deterministic worker pool.
pub fn run_fault_sweep(spec: &FaultSweepSpec) -> FaultSweepResults {
    let recovery = spec.recovery;
    let cells = parallel_map(spec.cells.len(), spec.threads, |i| {
        run_fault_cell(&spec.cells[i], recovery)
    });
    FaultSweepResults { cells }
}

impl FaultSweepResults {
    /// The deterministic JSON report (`BENCH_faults.json`): pure
    /// simulation outputs, byte-identical for any worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_json(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"cells\": [")?;
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"finished\": {}, \"verified\": {}, \
                 \"cycles\": {}, \"injected\": {}, \"dropped_packets\": {}, \
                 \"corrupted_packets\": {}, \"detected\": {}, \"recovered\": {}, \
                 \"retries\": {}, \"watchdog_fires\": {}, \"corrupt_detected\": {}, \
                 \"recovery_p50\": {}}}{comma}",
                crate::sweep::json_escape(&c.name),
                c.finished,
                c.verified,
                c.cycles,
                c.injected,
                c.dropped_packets,
                c.corrupted_packets,
                c.detected,
                c.recovered,
                c.retries,
                c.watchdog_fires,
                c.corrupt_detected,
                c.recovery_p50,
            )?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    }

    /// The report as a string (what the determinism tests compare).
    ///
    /// # Panics
    ///
    /// Never — writing to a `Vec` is infallible.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf).expect("vec write");
        String::from_utf8(buf).expect("json is utf-8")
    }

    /// Prints the per-cell summary table.
    pub fn print_table(&self) {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    c.cycles.to_string(),
                    if !c.finished {
                        "TIMEOUT".into()
                    } else if c.verified {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                    c.injected.to_string(),
                    format!("{}/{}", c.recovered, c.detected),
                    c.retries.to_string(),
                    c.recovery_p50.to_string(),
                ]
            })
            .collect();
        print_table(
            &["cell", "cycles", "verified", "injected", "recovered", "retries", "rec p50"],
            &rows,
        );
    }

    /// Every cell either completed bit-exactly or (when the fault load is
    /// unrecoverable) terminated with a structured timeout — and every
    /// *finished* cell recovered exactly what it detected.
    pub fn all_consistent(&self) -> bool {
        self.cells.iter().all(|c| {
            if c.finished {
                c.verified && c.recovered == c.detected
            } else {
                // Timeouts must come from genuinely unrecovered losses.
                c.detected > c.recovered
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> FaultSweepSpec {
        FaultSweepSpec::grid(
            &[Kernel::Mac],
            8,
            &[
                FaultScenario::Clean,
                FaultScenario::Drop { rate: 0.05 },
                FaultScenario::Corrupt { rate: 0.05 },
            ],
            &[1],
        )
    }

    #[test]
    fn fault_sweep_is_thread_count_invariant_and_consistent() {
        let serial = run_fault_sweep(&smoke_spec());
        let parallel = run_fault_sweep(&smoke_spec().with_threads(4));
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert!(serial.all_consistent(), "{}", serial.deterministic_json());
        let clean = &serial.cells[0];
        assert!(clean.finished && clean.verified && clean.injected == 0);
    }

    #[test]
    fn clean_scenario_matches_the_fault_free_baseline_bit_for_bit() {
        // Zero-cost when disabled: a Clean cell (FaultPlan::none() +
        // recovery off) must report the same cycle count as a platform
        // that never heard of fault plans, at the identical mapping.
        let cell = FaultCell {
            kernel: Kernel::Spmv,
            size: 8,
            scenario: FaultScenario::Clean,
            seed: 3,
        };
        let with_plan = run_fault_cell(&cell, RecoveryConfig::default());

        let built = build(Kernel::Spmv, 8, 3);
        let mut platform = SnackPlatform::new(NocConfig::preset(NocPreset::BiNoChs)).unwrap();
        let mapper = MapperConfig::for_mesh(platform.mesh()).with_mac_fusion(false);
        let compiled = built.context.compile(built.root, &mapper).unwrap();
        let baseline = platform.run_kernel(&compiled, 10_000_000).expect("finishes");
        assert_eq!(with_plan.cycles, baseline.cycles);
        assert!(with_plan.verified);
    }
}
