//! Minimal wall-clock benchmark harness (the offline `criterion`
//! replacement).
//!
//! Each benchmark runs a short warmup followed by `N` timed iterations and
//! reports **median** and **p90** nanoseconds — robust statistics that
//! tolerate scheduler noise without criterion's sampling machinery. Results
//! print as a fixed-width table and, when `SNACKNOC_BENCH_CSV` names a
//! directory, are also emitted as `<group>.csv` in the same
//! header-plus-rows CSV layout the figure binaries emit (`src/csv.rs`), so
//! bench numbers can be re-plotted alongside figure data.
//!
//! Knobs (environment):
//! * `SNACKNOC_BENCH_SAMPLES` — timed iterations per benchmark
//!   (default 11).
//! * `SNACKNOC_BENCH_CSV` — directory to write `<group>.csv` into.
//!
//! A positional CLI argument acts as a substring filter on benchmark
//! names, mirroring `cargo bench <filter>`; `-`-prefixed flags that cargo
//! forwards (e.g. `--bench`) are ignored.

use crate::table::print_table;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Default timed iterations per benchmark (odd, for a clean median).
pub const DEFAULT_SAMPLES: u32 = 11;

/// Warmup iterations before timing starts.
pub const WARMUP: u32 = 2;

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchStats {
    /// Benchmark name (`group/case` style, as criterion printed them).
    pub name: String,
    /// Number of timed iterations.
    pub samples: u32,
    /// Median iteration time.
    pub median_ns: u64,
    /// 90th-percentile iteration time.
    pub p90_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

/// Computes [`BenchStats`] from raw per-iteration timings.
///
/// # Panics
///
/// Panics if `timings_ns` is empty.
#[must_use]
pub fn summarize(name: &str, timings_ns: &[u64]) -> BenchStats {
    assert!(!timings_ns.is_empty(), "need at least one timing");
    let mut sorted = timings_ns.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let pick = |q_num: usize, q_den: usize| {
        // index of the ceil(n * q)-th order statistic (1-based), clamped.
        let rank = (n * q_num).div_ceil(q_den);
        sorted[rank.max(1) - 1]
    };
    BenchStats {
        name: name.to_string(),
        samples: u32::try_from(n).expect("sample count fits u32"),
        median_ns: pick(1, 2),
        p90_ns: pick(9, 10),
        min_ns: sorted[0],
        max_ns: sorted[n - 1],
    }
}

/// Formats nanoseconds with an adaptive unit, e.g. `12.3 µs`.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A benchmark group: registers cases, times them, and reports at the end.
pub struct Harness {
    group: String,
    filter: Option<String>,
    samples: u32,
    results: Vec<BenchStats>,
}

impl Harness {
    /// Creates a harness for `group`, reading the CLI filter and
    /// `SNACKNOC_BENCH_SAMPLES` from the environment (see module docs).
    #[must_use]
    pub fn from_env(group: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let samples = std::env::var("SNACKNOC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SAMPLES);
        Self::with_config(group, filter, samples)
    }

    /// Creates a harness with explicit configuration (used by tests).
    #[must_use]
    pub fn with_config(group: &str, filter: Option<String>, samples: u32) -> Self {
        assert!(samples > 0, "need at least one sample");
        Harness { group: group.to_string(), filter, samples, results: Vec::new() }
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Times `routine` (one iteration per sample) under `name`.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        self.bench_with_setup(name, || (), |()| routine());
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration
    /// (the criterion `iter_batched` pattern — used when the routine
    /// consumes its input, e.g. stepping a network to completion).
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        if self.skipped(name) {
            return;
        }
        for _ in 0..WARMUP {
            black_box(routine(setup()));
        }
        let mut timings = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            timings.push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        self.results.push(summarize(name, &timings));
    }

    /// Times a batch of [`crate::sweep::TimedJob`]s over the deterministic
    /// worker pool ([`crate::sweep::time_jobs`]) and appends their stats.
    ///
    /// Thread count comes from `SNACKNOC_BENCH_THREADS` (default 1:
    /// serial timing is the most comparable). Jobs not matching the CLI
    /// filter are skipped before the pool starts. Results land in
    /// registration order regardless of the thread count.
    pub fn bench_jobs(&mut self, jobs: Vec<crate::sweep::TimedJob>) {
        let threads = std::env::var("SNACKNOC_BENCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        let kept: Vec<_> = jobs.into_iter().filter(|j| !self.skipped(j.name())).collect();
        self.results
            .extend(crate::sweep::time_jobs(kept, threads, WARMUP, self.samples));
    }

    /// Results accumulated so far.
    #[must_use]
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Writes results as CSV (`bench,samples,median_ns,p90_ns,min_ns,max_ns`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv(&self, mut w: impl Write) -> std::io::Result<()> {
        writeln!(w, "bench,samples,median_ns,p90_ns,min_ns,max_ns")?;
        for r in &self.results {
            writeln!(
                w,
                "{},{},{},{},{},{}",
                r.name, r.samples, r.median_ns, r.p90_ns, r.min_ns, r.max_ns
            )?;
        }
        Ok(())
    }

    /// Prints the report table and, if `SNACKNOC_BENCH_CSV` is set,
    /// writes `<dir>/<group>.csv`. Call once, at the end of `main`.
    ///
    /// # Panics
    ///
    /// Panics if the CSV directory is not writable.
    pub fn finish(self) {
        println!("\n== {} ({} samples/bench) ==", self.group, self.samples);
        if self.results.is_empty() {
            println!("(no benchmarks matched the filter)");
            return;
        }
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    fmt_ns(r.median_ns),
                    fmt_ns(r.p90_ns),
                    fmt_ns(r.min_ns),
                    fmt_ns(r.max_ns),
                ]
            })
            .collect();
        print_table(&["benchmark", "median", "p90", "min", "max"], &rows);
        if let Ok(dir) = std::env::var("SNACKNOC_BENCH_CSV") {
            let path = std::path::Path::new(&dir).join(format!("{}.csv", self.group));
            std::fs::create_dir_all(&dir).expect("create CSV dir");
            let file = std::fs::File::create(&path).expect("create CSV file");
            self.write_csv(file).expect("write CSV");
            println!("csv: {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_orders_and_picks_quantiles() {
        let s = summarize("x", &[50, 10, 30, 20, 40]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.median_ns, 30, "ceil(5*0.5)=3rd order stat");
        assert_eq!(s.p90_ns, 50, "ceil(5*0.9)=5th order stat");
        let one = summarize("y", &[7]);
        assert_eq!((one.median_ns, one.p90_ns), (7, 7));
    }

    #[test]
    fn bench_runs_and_records() {
        let mut h = Harness::with_config("test", None, 3);
        let mut calls = 0u32;
        h.bench("counting", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, WARMUP + 3, "warmup + samples");
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "counting");
        assert!(h.results()[0].median_ns <= h.results()[0].p90_ns);
        assert!(h.results()[0].p90_ns <= h.results()[0].max_ns);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness::with_config("test", Some("keep".into()), 2);
        let mut ran = false;
        h.bench("skip/this", || 0);
        h.bench("keep/this", || {
            ran = true;
            0
        });
        assert!(ran);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "keep/this");
    }

    #[test]
    fn setup_is_untimed_input_per_iteration() {
        let mut h = Harness::with_config("test", None, 4);
        let mut setups = 0u32;
        h.bench_with_setup(
            "batched",
            || {
                setups += 1;
                vec![1u64; 8]
            },
            |v| v.iter().sum::<u64>(),
        );
        assert_eq!(setups, WARMUP + 4);
    }

    #[test]
    fn csv_layout_matches_figure_emitters() {
        let mut h = Harness::with_config("grp", None, 2);
        h.bench("a", || 1);
        h.bench("b", || 2);
        let mut buf = Vec::new();
        h.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "bench,samples,median_ns,p90_ns,min_ns,max_ns");
        for line in lines {
            assert_eq!(line.split(',').count(), 6);
        }
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn fmt_ns_adapts_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(12_300), "12.30 µs");
        assert_eq!(fmt_ns(4_560_000), "4.56 ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.000 s");
    }
}
