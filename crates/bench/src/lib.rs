//! # snacknoc-bench
//!
//! The experiment harness of the SnackNoC reproduction: one binary per
//! table/figure of the paper (see `src/bin/`), plus in-repo wall-clock
//! microbenchmarks (see `benches/`, built on [`harness`]) and the shared
//! drivers in this library.
//!
//! Every binary prints the rows/series the corresponding paper artifact
//! reports, next to the paper's published values where applicable, and is
//! indexed in `DESIGN.md` §4. `EXPERIMENTS.md` records a captured run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod chaos;
pub mod csv;
pub mod experiments;
pub mod faults;
pub mod harness;
pub mod perf;
pub mod service;
pub mod sweep;
pub mod table;
pub mod tracing;

pub use experiments::{
    kernel_to_cpu, run_snack_kernel, FIG9_SEED, SNACK_FREQ_GHZ, SnackKernelRun,
};
