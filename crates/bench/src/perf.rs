//! Hot-loop performance measurements: dense vs activity-driven vs
//! event-driven stepping (`BENCH_perf.json`, the repo's perf trajectory).
//!
//! Three families of measurements:
//!
//! * **`Network::step` scenarios** — a bare network driven by a
//!   pre-generated uniform-random injection schedule at idle / low /
//!   saturation rates, timed under the dense reference loop
//!   ([`Network::set_dense_stepping`]), the activity-driven scheduler
//!   (the default) and the event-driven time-wheel
//!   ([`Network::set_event_stepping`], DESIGN.md §12). The schedule is
//!   generated once per scenario, so all modes replay byte-identical
//!   injections and must report byte-identical simulation statistics
//!   ([`StepTiming::stats_identical`]).
//! * **Closed-loop platform scenario** — a think-heavy closed-loop CMP
//!   workload on the full `SnackPlatform` run loop, the regime where
//!   event-driven jumps compress real dead time between request bursts.
//! * **`Platform::run_kernel` timings** — full compiler kernels run to
//!   completion under every mode, with outputs and statistics compared.
//!
//! Wall-clock numbers (median/p90 ns) are machine-dependent and are *not*
//! covered by any determinism guarantee; the simulation fingerprints are.

#![deny(clippy::unwrap_used)]

use crate::harness::{summarize, BenchStats};
use crate::table::print_table;
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::{Network, NetStats, NocConfig, NodeId, PacketSpec, TrafficClass};
use snacknoc_prng::Rng;
use std::io::{self, Write};
use std::time::Instant;

/// One `Network::step` timing scenario.
#[derive(Clone, Debug)]
pub struct StepScenario {
    /// Scenario label (e.g. `idle`).
    pub name: &'static str,
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Injection rate in packets per node per cycle (0.0 = idle mesh).
    pub injection: f64,
    /// Simulated cycles per timed iteration.
    pub cycles: u64,
    /// Schedule seed.
    pub seed: u64,
}

impl StepScenario {
    /// `name/COLSxROWS` display label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}x{}", self.name, self.cols, self.rows)
    }
}

/// The canonical scenario set behind the committed `BENCH_perf.json`:
/// the idle mesh (the paper's common case — SnackNoC computes in *spare*
/// NoC bandwidth), a paper-sweep low injection rate, and saturation.
#[must_use]
pub fn default_step_scenarios() -> Vec<StepScenario> {
    vec![
        StepScenario { name: "idle", cols: 16, rows: 16, injection: 0.0, cycles: 20_000, seed: 11 },
        StepScenario { name: "low", cols: 16, rows: 16, injection: 0.002, cycles: 20_000, seed: 12 },
        StepScenario {
            name: "saturation",
            cols: 16,
            rows: 16,
            injection: 0.15,
            cycles: 5_000,
            seed: 13,
        },
        // The loaded-path scaling row (PR 10): same saturation regime on a
        // 4x-larger mesh, where payload pooling and the bitmask allocator
        // dominate the wall clock.
        StepScenario {
            name: "saturation",
            cols: 32,
            rows: 32,
            injection: 0.15,
            cycles: 2_000,
            seed: 14,
        },
    ]
}

/// A reduced grid for the CI `--smoke` gate: small meshes, short runs —
/// enough to exercise every code path and the bit-identity check without
/// meaningful wall-clock cost.
#[must_use]
pub fn smoke_step_scenarios() -> Vec<StepScenario> {
    vec![
        StepScenario { name: "idle", cols: 8, rows: 8, injection: 0.0, cycles: 2_000, seed: 11 },
        StepScenario { name: "low", cols: 8, rows: 8, injection: 0.01, cycles: 2_000, seed: 12 },
        StepScenario {
            name: "saturation",
            cols: 8,
            rows: 8,
            injection: 0.2,
            cycles: 1_000,
            seed: 13,
        },
    ]
}

/// One scheduled injection: (cycle, src, dst, vnet).
type Injection = (u64, usize, usize, u8);

/// Pre-generates the uniform-random injection schedule for `s`, sorted by
/// cycle. Generated once per scenario so the active and dense runs replay
/// identical traffic.
#[must_use]
pub fn build_schedule(s: &StepScenario, cfg: &NocConfig) -> Vec<Injection> {
    let n = s.cols * s.rows;
    let mut rng = Rng::new(s.seed ^ 0x5EED_9E37_79B9_7F4A);
    let mut schedule = Vec::new();
    if s.injection <= 0.0 {
        return schedule;
    }
    for cycle in 0..s.cycles {
        for src in 0..n {
            if rng.unit_f64() < s.injection {
                let dst = {
                    let d = rng.range_usize(0..n - 1);
                    if d >= src {
                        d + 1
                    } else {
                        d
                    }
                };
                let vnet = rng.range(0..u64::from(cfg.vnets)) as u8;
                schedule.push((cycle, src, dst, vnet));
            }
        }
    }
    schedule
}

/// Canonical fingerprint of a network run: every deterministic simulation
/// counter the statistics layer exposes, formatted into one string. Two
/// runs are "identical" for `BENCH_perf.json` purposes iff these bytes
/// match.
#[must_use]
pub fn stats_fingerprint(injected: u64, delivered: u64, pending: u64, stats: &NetStats) -> String {
    let mut out = format!(
        "injected={injected} delivered={delivered} pending={pending} \
         inj_flits={} xbar={} occ_total={} occ_zero={:.12e} occ_dropped={} \
         occ_c50={:.12e} occ_c90={:.12e} \
         xbar_med={:.12e} xbar_peak={:.12e} link_med={:.12e} link_peak={:.12e} \
         perr={}/{}/{}",
        stats.injected_flits,
        stats.crossbar_transfers,
        stats.occupancy.total_cycles(),
        stats.occupancy.zero_fraction(),
        stats.occupancy.dropped_samples(),
        stats.occupancy.cumulative_at(50),
        stats.occupancy.cumulative_at(90),
        stats.median_crossbar_utilization(),
        stats.peak_crossbar_utilization(),
        stats.median_link_utilization(),
        stats.peak_link_utilization(),
        stats.protocol_errors.tail_without_head,
        stats.protocol_errors.missing_payload,
        stats.protocol_errors.duplicate_head,
    );
    for class in [TrafficClass::Communication, TrafficClass::SnackInstruction, TrafficClass::SnackData]
    {
        let c = stats.class(class);
        out.push_str(&format!(
            " [{class:?}: d={} f={} ls={} lm={} p50={} p99={}]",
            c.delivered,
            c.flits,
            c.latency_sum,
            c.latency_max,
            c.latency_hist.percentile(0.5),
            c.latency_hist.percentile(0.99),
        ));
    }
    out
}

/// Stepping mode selector: `0` = dense reference loop, `1` = activity-
/// driven (the default), `2` = event-driven time-wheel.
fn apply_net_mode(net: &mut Network<u64>, mode: u8) {
    match mode {
        0 => net.set_dense_stepping(true),
        1 => {}
        2 => net.set_event_stepping(true),
        _ => unreachable!("modes are 0..=2"),
    }
}

/// Runs `s` once in the given mode, replaying `schedule`. Returns the
/// wall time of the stepping loop (ns), the injected flit count, and the
/// simulation fingerprint.
///
/// Dense and active modes drive the canonical per-cycle loop (inject,
/// step, drain — the PR-5 baseline driver). Event mode drives the same
/// schedule through [`Network::step_until`] segments between injection
/// cycles, which is where the time-wheel earns its jumps; the drain
/// cadence differs but draining is stats-neutral, so the fingerprints
/// must still match byte-for-byte.
fn run_step_once(
    s: &StepScenario,
    cfg: &NocConfig,
    schedule: &[Injection],
    mode: u8,
) -> (u64, u64, String) {
    let mut net: Network<u64> = Network::new(cfg.clone()).expect("valid perf config");
    apply_net_mode(&mut net, mode);
    let mut cursor = 0usize;
    let mut drained: Vec<_> = Vec::new();
    let nodes: Vec<NodeId> = net.mesh().nodes().collect();
    let t0 = Instant::now();
    if mode == 2 {
        while cursor < schedule.len() {
            let at = schedule[cursor].0;
            net.step_until(at);
            for &node in &nodes {
                net.drain_ejected_into(node, &mut drained);
            }
            drained.clear();
            while cursor < schedule.len() && schedule[cursor].0 == at {
                let (_, src, dst, vnet) = schedule[cursor];
                let spec = PacketSpec::new(
                    NodeId::new(src),
                    NodeId::new(dst),
                    vnet,
                    TrafficClass::Communication,
                    16,
                    at,
                );
                net.inject(spec).expect("schedule produces valid packets");
                cursor += 1;
            }
        }
        net.step_until(s.cycles);
        for &node in &nodes {
            net.drain_ejected_into(node, &mut drained);
        }
        drained.clear();
    } else {
        for cycle in 0..s.cycles {
            while cursor < schedule.len() && schedule[cursor].0 == cycle {
                let (_, src, dst, vnet) = schedule[cursor];
                let spec = PacketSpec::new(
                    NodeId::new(src),
                    NodeId::new(dst),
                    vnet,
                    TrafficClass::Communication,
                    16,
                    cycle,
                );
                net.inject(spec).expect("schedule produces valid packets");
                cursor += 1;
            }
            net.step();
            // Closed-loop delivery drain, as a platform would do.
            for &node in &nodes {
                net.drain_ejected_into(node, &mut drained);
            }
            drained.clear();
        }
    }
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let injected = net.injected_packets();
    let delivered = net.delivered_packets();
    let pending = net.pending_packets();
    let stats = net.finalize_stats();
    let flits = stats.injected_flits;
    let fp = stats_fingerprint(injected, delivered, pending, stats);
    (ns, flits, fp)
}

/// Timing + bit-identity result for one `Network::step` scenario.
#[derive(Clone, Debug)]
pub struct StepTiming {
    /// Scenario label.
    pub name: String,
    /// Simulated cycles per iteration.
    pub sim_cycles: u64,
    /// Packets injected per iteration (same for both modes).
    pub injected_packets: u64,
    /// Flits injected per iteration (same for both modes).
    pub injected_flits: u64,
    /// Activity-driven timings.
    pub active: BenchStats,
    /// Dense reference-loop timings (the baseline).
    pub dense: BenchStats,
    /// Event-driven time-wheel timings.
    pub event: BenchStats,
    /// Whether all modes reported byte-identical simulation statistics.
    pub stats_identical: bool,
}

impl StepTiming {
    /// Simulated cycles per wall-clock second, activity-driven.
    #[must_use]
    pub fn active_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 * 1e9 / self.active.median_ns.max(1) as f64
    }

    /// Simulated cycles per wall-clock second, dense baseline.
    #[must_use]
    pub fn dense_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 * 1e9 / self.dense.median_ns.max(1) as f64
    }

    /// Simulated cycles per wall-clock second, event-driven.
    #[must_use]
    pub fn event_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 * 1e9 / self.event.median_ns.max(1) as f64
    }

    /// Injected flits simulated per wall-clock second under the default
    /// (activity-driven) stepper — the loaded-path throughput figure the
    /// PR-10 data-layout work targets. Zero on idle scenarios.
    #[must_use]
    pub fn flits_per_sec(&self) -> f64 {
        self.injected_flits as f64 * 1e9 / self.active.median_ns.max(1) as f64
    }

    /// Active-set speedup over the dense baseline (median-based).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.dense.median_ns as f64 / self.active.median_ns.max(1) as f64
    }

    /// Event-driven speedup over the dense baseline (median-based).
    #[must_use]
    pub fn event_speedup(&self) -> f64 {
        self.dense.median_ns as f64 / self.event.median_ns.max(1) as f64
    }
}

/// Times `s` under both modes (`samples` iterations each, interleaved
/// mode order to decorrelate from machine noise) and checks that every
/// iteration of either mode produced the same simulation fingerprint.
///
/// # Panics
///
/// Panics if the scenario's mesh config is invalid.
#[must_use]
pub fn time_step_scenario(s: &StepScenario, samples: u32) -> StepTiming {
    let cfg = NocConfig::default().with_mesh(s.cols as u16, s.rows as u16);
    let schedule = build_schedule(s, &cfg);
    // One untimed warmup per mode; dense is the reference fingerprint.
    let (_, flits, fp_dense) = run_step_once(s, &cfg, &schedule, 0);
    let (_, _, fp_active) = run_step_once(s, &cfg, &schedule, 1);
    let (_, _, fp_event) = run_step_once(s, &cfg, &schedule, 2);
    let mut identical = fp_active == fp_dense && fp_event == fp_dense;
    let mut dense_ns = Vec::with_capacity(samples as usize);
    let mut active_ns = Vec::with_capacity(samples as usize);
    let mut event_ns = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let (d, _, fd) = run_step_once(s, &cfg, &schedule, 0);
        let (a, _, fa) = run_step_once(s, &cfg, &schedule, 1);
        let (e, _, fe) = run_step_once(s, &cfg, &schedule, 2);
        identical &= fd == fp_dense && fa == fp_dense && fe == fp_dense;
        dense_ns.push(d);
        active_ns.push(a);
        event_ns.push(e);
    }
    let label = s.label();
    StepTiming {
        sim_cycles: s.cycles,
        injected_packets: schedule.len() as u64,
        injected_flits: flits,
        active: summarize(&format!("step/{label}/active"), &active_ns),
        dense: summarize(&format!("step/{label}/dense"), &dense_ns),
        event: summarize(&format!("step/{label}/event"), &event_ns),
        stats_identical: identical,
        name: label,
    }
}

/// One shard-scaling scenario: a mesh pre-loaded with a saturated burst
/// of NI backlog, then drained in a single batched
/// [`Network::step_until`] call — the regime the sharded stepper
/// (DESIGN.md §13) is built for, where per-cycle router work dominates
/// and boundary traffic is a surface term.
#[derive(Clone, Debug)]
pub struct ShardScenario {
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Packets pre-loaded into the NI backlogs before timing starts.
    pub packets: usize,
    /// Cycles stepped in one batch.
    pub cycles: u64,
    /// Burst seed.
    pub seed: u64,
    /// Worker counts to scale across (each becomes one report row).
    pub workers: Vec<usize>,
}

impl ShardScenario {
    /// `shard/COLSxROWS` display label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("shard/{}x{}", self.cols, self.rows)
    }
}

/// The canonical shard-scaling grid behind `BENCH_perf.json`: saturated
/// 32×32 and 64×64 meshes at 1/2/4/8 workers.
#[must_use]
pub fn default_shard_scenarios() -> Vec<ShardScenario> {
    vec![
        ShardScenario {
            cols: 32,
            rows: 32,
            packets: 8_000,
            cycles: 1_000,
            seed: 21,
            workers: vec![1, 2, 4, 8],
        },
        ShardScenario {
            cols: 64,
            rows: 64,
            packets: 24_000,
            cycles: 1_000,
            seed: 22,
            workers: vec![1, 2, 4, 8],
        },
    ]
}

/// CI-sized shard grid: one small saturated mesh at 1/2/4 workers,
/// enough to gate bit-identity and the JSON schema without meaningful
/// wall-clock cost.
#[must_use]
pub fn smoke_shard_scenarios() -> Vec<ShardScenario> {
    vec![ShardScenario {
        cols: 8,
        rows: 8,
        packets: 400,
        cycles: 400,
        seed: 21,
        workers: vec![1, 2, 4],
    }]
}

/// The host's hardware thread count, as recorded into `BENCH_perf.json`
/// so a committed capture carries the context its shard speedups were
/// measured under (a single-core CI box cannot show parallel speedup;
/// the bit-identity columns are machine-independent, the wall-clock
/// columns are not).
#[must_use]
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Pre-generates the uniform-random saturation burst for `s`.
#[must_use]
pub fn build_burst(s: &ShardScenario, cfg: &NocConfig) -> Vec<(usize, usize, u8)> {
    let n = s.cols * s.rows;
    let mut rng = Rng::new(s.seed ^ 0x5AAD_9E37_79B9_7F4A);
    (0..s.packets)
        .map(|_| {
            let src = rng.range_usize(0..n);
            let dst = {
                let d = rng.range_usize(0..n - 1);
                if d >= src {
                    d + 1
                } else {
                    d
                }
            };
            (src, dst, rng.range(0..u64::from(cfg.vnets)) as u8)
        })
        .collect()
}

/// Runs `s` once with `shards` worker shards (`0` = the serial
/// activity-driven baseline), returning the wall time of the batched
/// stepping call (ns) and the simulation fingerprint.
fn run_shard_once(
    s: &ShardScenario,
    cfg: &NocConfig,
    burst: &[(usize, usize, u8)],
    shards: usize,
) -> (u64, String) {
    let mut net: Network<u64> = Network::new(cfg.clone()).expect("valid shard config");
    if shards > 0 {
        net.set_sharding(shards).expect("worker count fits the mesh rows");
    }
    for (i, &(src, dst, vnet)) in burst.iter().enumerate() {
        let spec = PacketSpec::new(
            NodeId::new(src),
            NodeId::new(dst),
            vnet,
            TrafficClass::Communication,
            16,
            i as u64,
        );
        net.inject(spec).expect("burst produces valid packets");
    }
    let t0 = Instant::now();
    net.step_until(s.cycles);
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let injected = net.injected_packets();
    let delivered = net.delivered_packets();
    let pending = net.pending_packets();
    let fp = stats_fingerprint(injected, delivered, pending, net.finalize_stats());
    (ns, fp)
}

/// Timing + bit-identity result for one shard-scaling row (one worker
/// count of one scenario).
#[derive(Clone, Debug)]
pub struct ShardTiming {
    /// Scenario label (`shard/COLSxROWS`).
    pub name: String,
    /// Worker-shard count for this row.
    pub workers: usize,
    /// Simulated cycles per iteration.
    pub sim_cycles: u64,
    /// Packets in the pre-loaded burst.
    pub injected_packets: u64,
    /// Serial activity-driven baseline timings (shared across the
    /// scenario's rows).
    pub serial: BenchStats,
    /// Sharded timings at this worker count.
    pub sharded: BenchStats,
    /// Whether every iteration at this worker count reproduced the
    /// serial fingerprint byte-for-byte.
    pub stats_identical: bool,
}

impl ShardTiming {
    /// Sharded speedup over the serial activity-driven baseline
    /// (median-based). Below 1.0 on hosts without spare hardware
    /// threads — the determinism contract is machine-independent, the
    /// speedup is not.
    #[must_use]
    pub fn shard_speedup(&self) -> f64 {
        self.serial.median_ns as f64 / self.sharded.median_ns.max(1) as f64
    }
}

/// Times `s` at every configured worker count (`samples` iterations
/// each, interleaved with the serial baseline to decorrelate from
/// machine noise) and checks that every sharded iteration produced the
/// serial fingerprint.
///
/// Worker counts exceeding the mesh's row count are skipped (a band
/// must span at least one full row).
///
/// # Panics
///
/// Panics if the scenario's mesh config is invalid.
#[must_use]
pub fn time_shard_scenario(s: &ShardScenario, samples: u32) -> Vec<ShardTiming> {
    let cfg = NocConfig::default().with_mesh(s.cols as u16, s.rows as u16);
    let burst = build_burst(s, &cfg);
    let workers: Vec<usize> = s.workers.iter().copied().filter(|&w| w <= s.rows).collect();
    // One untimed warmup per configuration; serial is the reference.
    let (_, fp_serial) = run_shard_once(s, &cfg, &burst, 0);
    let mut identical: Vec<bool> =
        workers.iter().map(|&w| run_shard_once(s, &cfg, &burst, w).1 == fp_serial).collect();
    let mut serial_ns = Vec::with_capacity(samples as usize);
    let mut sharded_ns: Vec<Vec<u64>> = vec![Vec::with_capacity(samples as usize); workers.len()];
    for _ in 0..samples {
        let (ns, fp) = run_shard_once(s, &cfg, &burst, 0);
        serial_ns.push(ns);
        let serial_ok = fp == fp_serial;
        for (i, &w) in workers.iter().enumerate() {
            let (ns, fp) = run_shard_once(s, &cfg, &burst, w);
            sharded_ns[i].push(ns);
            identical[i] &= serial_ok && fp == fp_serial;
        }
    }
    let label = s.label();
    let serial = summarize(&format!("{label}/serial"), &serial_ns);
    workers
        .iter()
        .zip(sharded_ns)
        .zip(identical)
        .map(|((&w, ns), ok)| ShardTiming {
            name: label.clone(),
            workers: w,
            sim_cycles: s.cycles,
            injected_packets: burst.len() as u64,
            serial: serial.clone(),
            sharded: summarize(&format!("{label}/x{w}"), &ns),
            stats_identical: ok,
        })
        .collect()
}

/// Timing + bit-identity result for one full-kernel run.
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// `kernel/size` label.
    pub name: String,
    /// Kernel completion latency in simulated cycles (same for both
    /// modes when `stats_identical`).
    pub sim_cycles: u64,
    /// Whether outputs matched the reference interpreter.
    pub verified: bool,
    /// Activity-driven timings.
    pub active: BenchStats,
    /// Dense reference-loop timings (the baseline).
    pub dense: BenchStats,
    /// Event-driven time-wheel timings.
    pub event: BenchStats,
    /// Whether all modes agreed on cycles, outputs and statistics.
    pub stats_identical: bool,
}

impl KernelTiming {
    /// Active-set speedup over the dense baseline (median-based).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.dense.median_ns as f64 / self.active.median_ns.max(1) as f64
    }

    /// Event-driven speedup over the dense baseline (median-based).
    #[must_use]
    pub fn event_speedup(&self) -> f64 {
        self.dense.median_ns as f64 / self.event.median_ns.max(1) as f64
    }
}

/// Compiles `kernel` at `size` once, then times `Platform::run_kernel`
/// to completion under all three stepping modes.
///
/// # Panics
///
/// Panics if the kernel fails to compile, validate or finish — platform
/// bugs, not experimental conditions.
#[must_use]
pub fn time_kernel(
    kernel: snacknoc_workloads::kernels::Kernel,
    size: usize,
    seed: u64,
    samples: u32,
) -> KernelTiming {
    let cfg = NocConfig::default();
    let built = build(kernel, size, seed);
    let mesh = *SnackPlatform::new(cfg.clone()).expect("valid platform config").mesh();
    let mapper = MapperConfig::for_mesh(&mesh);
    let compiled = built.context.compile(built.root, &mapper).expect("kernel compiles");
    compiled.validate().expect("compiled kernel is well-formed");
    let cap = 200 * compiled.len() as u64 + 1_000_000;
    let reference = built.context.interpret(built.root).expect("interpretable");
    let run_once = |mode: u8| -> (u64, u64, bool, String) {
        let mut platform = SnackPlatform::new(cfg.clone()).expect("valid platform config");
        match mode {
            0 => platform.set_dense_stepping(true),
            1 => {}
            2 => platform.set_event_stepping(true),
            _ => unreachable!("modes are 0..=2"),
        }
        let t0 = Instant::now();
        let run = platform
            .run_kernel(&compiled, cap)
            .unwrap_or_else(|e| panic!("{kernel} did not finish within {cap} cycles: {e}"));
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let injected = platform.net_injected_packets();
        let delivered = platform.net_delivered_packets();
        let rcu = platform.rcu_stats();
        let fp = format!(
            "cycles={} outputs={:?} rcu={}/{}/{} {}",
            run.cycles,
            run.outputs,
            rcu.executed,
            rcu.captures,
            rcu.stalled_cycles,
            stats_fingerprint(injected, delivered, 0, platform.finalize_stats()),
        );
        (ns, run.cycles, run.outputs == reference, fp)
    };
    // Warmup + reference fingerprints (dense is the oracle).
    let (_, cycles, verified, fp_dense) = run_once(0);
    let (_, _, _, fp_active) = run_once(1);
    let (_, _, _, fp_event) = run_once(2);
    let mut identical = fp_active == fp_dense && fp_event == fp_dense;
    let mut dense_ns = Vec::with_capacity(samples as usize);
    let mut active_ns = Vec::with_capacity(samples as usize);
    let mut event_ns = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let (d, _, _, fd) = run_once(0);
        let (a, _, _, fa) = run_once(1);
        let (e, _, _, fe) = run_once(2);
        identical &= fd == fp_dense && fa == fp_dense && fe == fp_dense;
        dense_ns.push(d);
        active_ns.push(a);
        event_ns.push(e);
    }
    let name = format!("{kernel}/{size}");
    KernelTiming {
        sim_cycles: cycles,
        verified,
        active: summarize(&format!("kernel/{name}/active"), &active_ns),
        dense: summarize(&format!("kernel/{name}/dense"), &dense_ns),
        event: summarize(&format!("kernel/{name}/event"), &event_ns),
        stats_identical: identical,
        name,
    }
}

/// Times a think-heavy closed-loop CMP workload on the full
/// [`SnackPlatform`] run loop under all three stepping modes.
///
/// Each core issues a handful of requests separated by long exponential
/// think gaps (mean `think_time` cycles), so most of the simulated window
/// is genuinely dead time between bursts — the regime the event-driven
/// time-wheel (DESIGN.md §12) is built for. Reported as an extra
/// [`StepTiming`] row named `closed-loop/COLSxROWS`.
///
/// # Panics
///
/// Panics if the platform config is invalid — a bench bug, not an
/// experimental condition.
#[must_use]
pub fn time_closed_loop(cycles: u64, samples: u32) -> StepTiming {
    use snacknoc_workloads::{BenchmarkProfile, Phase};
    let cfg = NocConfig::default().with_mesh(8, 8);
    let profile = BenchmarkProfile {
        name: "closed-loop",
        phases: vec![Phase::smooth(4, 6_000.0)],
        outstanding: 1,
    };
    let run_once = |mode: u8| -> (u64, u64, u64, String) {
        let mut p = SnackPlatform::new(cfg.clone()).expect("valid platform config");
        match mode {
            0 => p.set_dense_stepping(true),
            1 => {}
            2 => p.set_event_stepping(true),
            _ => unreachable!("modes are 0..=2"),
        }
        p.attach_workload(&profile, 29);
        let t0 = Instant::now();
        p.run(cycles);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let injected = p.net_injected_packets();
        let delivered = p.net_delivered_packets();
        let done = p.workload_done();
        let runtime = p.workload_runtime();
        let stats = p.finalize_stats();
        let flits = stats.injected_flits;
        let fp = format!(
            "done={done} runtime={runtime:?} {}",
            stats_fingerprint(injected, delivered, 0, stats),
        );
        (ns, injected, flits, fp)
    };
    let (_, injected, flits, fp_dense) = run_once(0);
    let (_, _, _, fp_active) = run_once(1);
    let (_, _, _, fp_event) = run_once(2);
    let mut identical = fp_active == fp_dense && fp_event == fp_dense;
    let mut dense_ns = Vec::with_capacity(samples as usize);
    let mut active_ns = Vec::with_capacity(samples as usize);
    let mut event_ns = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let (d, _, _, fd) = run_once(0);
        let (a, _, _, fa) = run_once(1);
        let (e, _, _, fe) = run_once(2);
        identical &= fd == fp_dense && fa == fp_dense && fe == fp_dense;
        dense_ns.push(d);
        active_ns.push(a);
        event_ns.push(e);
    }
    StepTiming {
        name: "closed-loop/8x8".to_string(),
        sim_cycles: cycles,
        injected_packets: injected,
        injected_flits: flits,
        active: summarize("step/closed-loop/8x8/active", &active_ns),
        dense: summarize("step/closed-loop/8x8/dense", &dense_ns),
        event: summarize("step/closed-loop/8x8/event", &event_ns),
        stats_identical: identical,
    }
}

/// The full `BENCH_perf.json` payload.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// `Network::step` scenario results.
    pub step: Vec<StepTiming>,
    /// Shard-scaling rows (one per worker count per scenario).
    pub shard: Vec<ShardTiming>,
    /// Full-kernel results.
    pub kernels: Vec<KernelTiming>,
}

impl PerfReport {
    /// Every scenario and kernel reported byte-identical simulation
    /// statistics under all stepping modes and worker counts.
    #[must_use]
    pub fn all_identical(&self) -> bool {
        self.step.iter().all(|s| s.stats_identical)
            && self.shard.iter().all(|s| s.stats_identical)
            && self.kernels.iter().all(|k| k.stats_identical && k.verified)
    }

    /// The best sharded speedup among rows of the largest shard mesh,
    /// if any shard scaling ran.
    #[must_use]
    pub fn best_shard_speedup(&self) -> Option<(String, usize, f64)> {
        let largest = self.shard.iter().map(|s| s.name.clone()).max()?;
        self.shard
            .iter()
            .filter(|s| s.name == largest)
            .max_by(|a, b| a.shard_speedup().total_cmp(&b.shard_speedup()))
            .map(|s| (s.name.clone(), s.workers, s.shard_speedup()))
    }

    /// The idle-mesh speedup (active vs dense), if an `idle` scenario ran.
    #[must_use]
    pub fn idle_speedup(&self) -> Option<f64> {
        self.step.iter().find(|s| s.name.starts_with("idle")).map(StepTiming::speedup)
    }

    /// The idle-mesh speedup (event vs dense), if an `idle` scenario ran.
    #[must_use]
    pub fn idle_event_speedup(&self) -> Option<f64> {
        self.step.iter().find(|s| s.name.starts_with("idle")).map(StepTiming::event_speedup)
    }

    /// Writes the `snacknoc-perf-v2` JSON document (v2 added per-row
    /// `flits_per_sec` and the `saturation/32x32` scaling row; see
    /// DESIGN.md §16). Wall-clock fields are machine-dependent; the
    /// `stats_identical` fields are the determinism contract.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_json(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"snacknoc-perf-v2\",")?;
        writeln!(w, "  \"host_threads\": {},", host_threads())?;
        writeln!(w, "  \"step\": [")?;
        for (i, s) in self.step.iter().enumerate() {
            let comma = if i + 1 == self.step.len() { "" } else { "," };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"sim_cycles\": {}, \"injected_packets\": {}, \
                 \"injected_flits\": {}, \
                 \"active_median_ns\": {}, \"active_p90_ns\": {}, \
                 \"dense_median_ns\": {}, \"dense_p90_ns\": {}, \
                 \"event_median_ns\": {}, \"event_p90_ns\": {}, \
                 \"active_cycles_per_sec\": {:.1}, \"dense_cycles_per_sec\": {:.1}, \
                 \"event_cycles_per_sec\": {:.1}, \"flits_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \"event_speedup\": {:.3}, \
                 \"stats_identical\": {}}}{comma}",
                crate::sweep::json_escape(&s.name),
                s.sim_cycles,
                s.injected_packets,
                s.injected_flits,
                s.active.median_ns,
                s.active.p90_ns,
                s.dense.median_ns,
                s.dense.p90_ns,
                s.event.median_ns,
                s.event.p90_ns,
                s.active_cycles_per_sec(),
                s.dense_cycles_per_sec(),
                s.event_cycles_per_sec(),
                s.flits_per_sec(),
                s.speedup(),
                s.event_speedup(),
                s.stats_identical,
            )?;
        }
        writeln!(w, "  ],")?;
        writeln!(w, "  \"shard\": [")?;
        for (i, s) in self.shard.iter().enumerate() {
            let comma = if i + 1 == self.shard.len() { "" } else { "," };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"workers\": {}, \"sim_cycles\": {}, \
                 \"injected_packets\": {}, \
                 \"serial_median_ns\": {}, \"serial_p90_ns\": {}, \
                 \"median_ns\": {}, \"p90_ns\": {}, \
                 \"shard_speedup\": {:.3}, \"stats_identical\": {}}}{comma}",
                crate::sweep::json_escape(&s.name),
                s.workers,
                s.sim_cycles,
                s.injected_packets,
                s.serial.median_ns,
                s.serial.p90_ns,
                s.sharded.median_ns,
                s.sharded.p90_ns,
                s.shard_speedup(),
                s.stats_identical,
            )?;
        }
        writeln!(w, "  ],")?;
        writeln!(w, "  \"kernels\": [")?;
        for (i, k) in self.kernels.iter().enumerate() {
            let comma = if i + 1 == self.kernels.len() { "" } else { "," };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"sim_cycles\": {}, \"verified\": {}, \
                 \"active_median_ns\": {}, \"active_p90_ns\": {}, \
                 \"dense_median_ns\": {}, \"dense_p90_ns\": {}, \
                 \"event_median_ns\": {}, \"event_p90_ns\": {}, \
                 \"speedup\": {:.3}, \"event_speedup\": {:.3}, \
                 \"stats_identical\": {}}}{comma}",
                crate::sweep::json_escape(&k.name),
                k.sim_cycles,
                k.verified,
                k.active.median_ns,
                k.active.p90_ns,
                k.dense.median_ns,
                k.dense.p90_ns,
                k.event.median_ns,
                k.event.p90_ns,
                k.speedup(),
                k.event_speedup(),
                k.stats_identical,
            )?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    }

    /// Prints the human-readable report tables.
    pub fn print_tables(&self) {
        let step_rows: Vec<Vec<String>> = self
            .step
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    s.sim_cycles.to_string(),
                    format!("{:.2e}", s.dense_cycles_per_sec()),
                    format!("{:.2e}", s.active_cycles_per_sec()),
                    format!("{:.2e}", s.event_cycles_per_sec()),
                    format!("{:.2e}", s.flits_per_sec()),
                    format!("{:.2}x", s.speedup()),
                    format!("{:.2}x", s.event_speedup()),
                    if s.stats_identical { "yes".into() } else { "NO".into() },
                ]
            })
            .collect();
        print_table(
            &[
                "step scenario",
                "cycles",
                "dense cyc/s",
                "active cyc/s",
                "event cyc/s",
                "flits/s",
                "active speedup",
                "event speedup",
                "bit-identical",
            ],
            &step_rows,
        );
        if !self.shard.is_empty() {
            let shard_rows: Vec<Vec<String>> = self
                .shard
                .iter()
                .map(|s| {
                    vec![
                        s.name.clone(),
                        s.workers.to_string(),
                        s.sim_cycles.to_string(),
                        crate::harness::fmt_ns(s.serial.median_ns),
                        crate::harness::fmt_ns(s.sharded.median_ns),
                        format!("{:.2}x", s.shard_speedup()),
                        if s.stats_identical { "yes".into() } else { "NO".into() },
                    ]
                })
                .collect();
            print_table(
                &[
                    "shard scenario",
                    "workers",
                    "cycles",
                    "serial median",
                    "sharded median",
                    "shard speedup",
                    "bit-identical",
                ],
                &shard_rows,
            );
        }
        let kernel_rows: Vec<Vec<String>> = self
            .kernels
            .iter()
            .map(|k| {
                vec![
                    k.name.clone(),
                    k.sim_cycles.to_string(),
                    crate::harness::fmt_ns(k.dense.median_ns),
                    crate::harness::fmt_ns(k.active.median_ns),
                    crate::harness::fmt_ns(k.event.median_ns),
                    format!("{:.2}x", k.speedup()),
                    format!("{:.2}x", k.event_speedup()),
                    if k.stats_identical && k.verified { "yes".into() } else { "NO".into() },
                ]
            })
            .collect();
        print_table(
            &[
                "kernel",
                "sim cycles",
                "dense median",
                "active median",
                "event median",
                "active speedup",
                "event speedup",
                "bit-identical",
            ],
            &kernel_rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_workloads::kernels::Kernel;

    #[test]
    fn schedule_is_deterministic_and_respects_rate() {
        let s = StepScenario { name: "low", cols: 4, rows: 4, injection: 0.05, cycles: 500, seed: 3 };
        let cfg = NocConfig::default().with_mesh(s.cols as u16, s.rows as u16);
        let a = build_schedule(&s, &cfg);
        let b = build_schedule(&s, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        // ~0.05 * 16 nodes * 500 cycles = ~400 expected; be generous.
        assert!(a.len() > 100 && a.len() < 1200, "rate plausible: {}", a.len());
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by cycle");
        assert!(a.iter().all(|&(_, src, dst, _)| src != dst && src < 16 && dst < 16));
        let idle =
            StepScenario { name: "idle", cols: 4, rows: 4, injection: 0.0, cycles: 500, seed: 3 };
        assert!(build_schedule(&idle, &cfg).is_empty());
    }

    #[test]
    fn step_scenarios_are_bit_identical_across_modes() {
        for s in smoke_step_scenarios() {
            let small = StepScenario { cols: 4, rows: 4, cycles: 300, ..s };
            let t = time_step_scenario(&small, 1);
            assert!(t.stats_identical, "{}: a stepping mode diverged from dense", t.name);
            if small.injection > 0.0 {
                assert!(t.injected_packets > 0, "{}: schedule injected nothing", t.name);
            }
        }
    }

    #[test]
    fn closed_loop_scenario_is_bit_identical_across_modes() {
        let t = time_closed_loop(30_000, 1);
        assert!(t.stats_identical, "closed-loop: a stepping mode diverged from dense");
        assert!(t.injected_packets > 0, "closed-loop workload injected nothing");
    }

    #[test]
    fn kernel_timing_is_bit_identical_and_verified() {
        let k = time_kernel(Kernel::Mac, 12, 7, 1);
        assert!(k.verified, "outputs match the interpreter");
        assert!(k.stats_identical, "active vs dense kernel run diverged");
        assert!(k.sim_cycles > 0);
    }

    #[test]
    fn json_schema_has_required_fields() {
        let s = StepScenario { name: "idle", cols: 4, rows: 4, injection: 0.0, cycles: 200, seed: 1 };
        let sh = ShardScenario {
            cols: 4,
            rows: 4,
            packets: 40,
            cycles: 150,
            seed: 21,
            workers: vec![1, 2],
        };
        let report = PerfReport {
            step: vec![time_step_scenario(&s, 1)],
            shard: time_shard_scenario(&sh, 1),
            kernels: Vec::new(),
        };
        let mut buf = Vec::new();
        report.write_json(&mut buf).expect("vec write");
        let json = String::from_utf8(buf).expect("utf-8");
        for field in [
            "\"schema\": \"snacknoc-perf-v2\"",
            "\"host_threads\"",
            "\"injected_flits\"",
            "\"flits_per_sec\"",
            "\"active_cycles_per_sec\"",
            "\"dense_cycles_per_sec\"",
            "\"event_cycles_per_sec\"",
            "\"dense_median_ns\"",
            "\"event_median_ns\"",
            "\"event_p90_ns\"",
            "\"speedup\"",
            "\"event_speedup\"",
            "\"shard\": [",
            "\"workers\": 1",
            "\"workers\": 2",
            "\"serial_median_ns\"",
            "\"shard_speedup\"",
            "\"stats_identical\": true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(report.all_identical());
        assert!(report.idle_speedup().is_some());
        assert!(report.idle_event_speedup().is_some());
        let (name, workers, speedup) = report.best_shard_speedup().expect("shard rows present");
        assert_eq!(name, "shard/4x4");
        assert!(workers == 1 || workers == 2);
        assert!(speedup.is_finite() && speedup > 0.0);
    }

    #[test]
    fn shard_scaling_rows_are_bit_identical_to_serial() {
        let s = ShardScenario {
            cols: 8,
            rows: 8,
            packets: 200,
            cycles: 300,
            seed: 5,
            workers: vec![1, 2, 4, 64], // 64 > rows: skipped, not an error
        };
        let rows = time_shard_scenario(&s, 1);
        assert_eq!(rows.len(), 3, "impossible worker counts are dropped");
        for row in &rows {
            assert!(row.stats_identical, "{} x{} diverged from serial", row.name, row.workers);
            assert_eq!(row.injected_packets, 200);
        }
    }

    #[test]
    fn shard_burst_is_deterministic_and_saturating() {
        let s = smoke_shard_scenarios().remove(0);
        let cfg = NocConfig::default().with_mesh(s.cols as u16, s.rows as u16);
        let a = build_burst(&s, &cfg);
        assert_eq!(a, build_burst(&s, &cfg), "same seed, same burst");
        assert_eq!(a.len(), s.packets);
        let n = s.cols * s.rows;
        assert!(a.iter().all(|&(src, dst, _)| src != dst && src < n && dst < n));
    }
}
