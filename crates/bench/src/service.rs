//! The multi-tenant service SLO sweep: the `snacknoc-service` SLO
//! scenario run across load levels, every level in **all five stepping
//! modes**, with the per-class latency percentiles, throughput, fairness
//! and rejection rates the `snack-service` binary reports as
//! `BENCH_service.json`.
//!
//! Every cell (load level × mode) is an independent deterministic
//! simulation, so the grid runs on the seeded sweep pool
//! ([`crate::sweep::parallel_map`]) and the report is byte-identical for
//! any worker-thread count — the determinism suite asserts exactly that.

use crate::sweep::{json_escape, parallel_map};
use crate::table::print_table;
use snacknoc_service::{run_service, slo_sweep, QosClass, ServiceReport, Stepping};
use std::io::{self, Write};

/// The service sweep: which load levels to drive and how.
#[derive(Clone, Debug)]
pub struct ServiceGridSpec {
    /// Load levels in percent of the calibrated saturation knee
    /// (see [`snacknoc_service::slo_sweep`]).
    pub loads: Vec<u32>,
    /// Master seed.
    pub seed: u64,
    /// Sweep-pool worker threads (simulation output is identical for any
    /// value).
    pub threads: usize,
}

impl ServiceGridSpec {
    /// A spec over the given load levels.
    pub fn new(loads: &[u32], seed: u64) -> Self {
        ServiceGridSpec { loads: loads.to_vec(), seed, threads: 1 }
    }

    /// Sets the sweep-pool width.
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        ServiceGridSpec { threads: threads.max(1), ..self }
    }
}

/// Per-class row of one load level.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassRow {
    /// Class name.
    pub class: &'static str,
    /// Arrivals presented to admission control.
    pub submitted: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals rejected (all typed kinds).
    pub rejected: u64,
    /// Kernels completed.
    pub completed: u64,
    /// Kernels aborted at the cycle cap.
    pub aborted: u64,
    /// SLO latency percentiles over completions (cycles).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Completions per million service cycles.
    pub throughput_per_mcycle: f64,
}

/// Per-tenant row of one load level.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// Its class name.
    pub class: &'static str,
    /// Arrivals presented / admitted / rejected.
    pub submitted: u64,
    /// Admitted.
    pub admitted: u64,
    /// Rejected.
    pub rejected: u64,
    /// Completed.
    pub completed: u64,
    /// p99 SLO latency (cycles).
    pub p99: u64,
}

/// One load level's outcome (stats from the dense reference mode; the
/// other four modes are fingerprint-compared against it).
#[derive(Clone, Debug)]
pub struct LoadLevel {
    /// The level, in percent of the saturation knee.
    pub load: u32,
    /// Service-loop cycles.
    pub cycles: u64,
    /// Whether all five stepping modes produced bit-identical reports.
    pub modes_identical: bool,
    /// Jain's fairness index over per-tenant service cycles.
    pub fairness: f64,
    /// Total completions.
    pub completed: u64,
    /// Total rejections.
    pub rejected: u64,
    /// Per-class rows (Guaranteed, Burstable, BestEffort).
    pub classes: Vec<ClassRow>,
    /// Per-tenant rows, spec order.
    pub tenants: Vec<TenantRow>,
    /// Conservation violations (must be empty).
    pub violations: Vec<String>,
}

/// The full sweep outcome.
#[derive(Clone, Debug)]
pub struct ServiceGridResults {
    /// One row per load level, ascending.
    pub levels: Vec<LoadLevel>,
}

fn level_from(load: u32, report: &ServiceReport, modes_identical: bool) -> LoadLevel {
    let classes = report
        .classes()
        .iter()
        .map(|c| ClassRow {
            class: c.class.name(),
            submitted: c.submitted,
            admitted: c.admitted,
            rejected: c.rejected,
            completed: c.completed,
            aborted: c.aborted,
            p50: c.hist.percentile(50.0),
            p90: c.hist.percentile(90.0),
            p99: c.hist.percentile(99.0),
            throughput_per_mcycle: if report.cycles == 0 {
                0.0
            } else {
                c.completed as f64 * 1.0e6 / report.cycles as f64
            },
        })
        .collect();
    let tenants = report
        .tenants
        .iter()
        .map(|t| TenantRow {
            name: t.name.clone(),
            class: t.class.name(),
            submitted: t.submitted,
            admitted: t.admitted,
            rejected: t.rejected(),
            completed: t.completed,
            p99: t.hist.percentile(99.0),
        })
        .collect();
    LoadLevel {
        load,
        cycles: report.cycles,
        modes_identical,
        fairness: report.fairness(),
        completed: report.completed(),
        rejected: report.rejected(),
        classes,
        tenants,
        violations: report.violations.clone(),
    }
}

/// Runs the sweep: every load level in all five stepping modes on the
/// seeded worker pool, fingerprint-comparing the modes and reporting the
/// dense reference's stats.
pub fn run_service_grid(spec: &ServiceGridSpec) -> ServiceGridResults {
    let modes = Stepping::ALL;
    let jobs = spec.loads.len() * modes.len();
    let runs: Vec<(u64, Option<ServiceReport>)> = parallel_map(jobs, spec.threads, |j| {
        let load = spec.loads[j / modes.len()];
        let mode = modes[j % modes.len()];
        let mut s = slo_sweep(load, spec.seed);
        s.stepping = mode;
        let report = run_service(&s).expect("preset sweep specs are valid");
        let fp = report.fingerprint();
        // Keep the full report only for the dense reference; the other
        // modes contribute their fingerprint.
        (fp, (j % modes.len() == 0).then_some(report))
    });
    let levels = spec
        .loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let cell = &runs[i * modes.len()..(i + 1) * modes.len()];
            let reference = cell[0].1.as_ref().expect("dense run keeps its report");
            let modes_identical = cell.iter().all(|(fp, _)| *fp == cell[0].0);
            level_from(load, reference, modes_identical)
        })
        .collect();
    ServiceGridResults { levels }
}

impl ServiceGridResults {
    /// Whether every level is violation-free and five-mode
    /// bit-identical.
    pub fn all_invariants_hold(&self) -> bool {
        self.levels.iter().all(|l| l.violations.is_empty() && l.modes_identical)
    }

    /// The highest load level (the saturation point of the sweep).
    ///
    /// # Panics
    ///
    /// Panics if the sweep ran zero levels.
    pub fn peak(&self) -> &LoadLevel {
        self.levels.iter().max_by_key(|l| l.load).expect("sweep has at least one level")
    }

    /// Whether the Guaranteed class's p99 stayed below BestEffort's at
    /// the highest load — the SLO-protection headline.
    pub fn qos_protected(&self) -> bool {
        let peak = self.peak();
        let p99 = |class: QosClass| {
            peak.classes.iter().find(|c| c.class == class.name()).map(|c| (c.completed, c.p99))
        };
        match (p99(QosClass::Guaranteed), p99(QosClass::BestEffort)) {
            (Some((gc, gp)), Some((bc, bp))) => gc > 0 && bc > 0 && gp < bp,
            _ => false,
        }
    }

    /// Admission rejections at the highest load.
    pub fn rejections_at_peak(&self) -> u64 {
        self.peak().rejected
    }

    /// The deterministic JSON report (`BENCH_service.json`): pure
    /// simulation outputs, byte-identical for any worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_json(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"snacknoc-service-v1\",")?;
        writeln!(w, "  \"levels\": [")?;
        for (i, l) in self.levels.iter().enumerate() {
            let comma = if i + 1 == self.levels.len() { "" } else { "," };
            writeln!(w, "    {{\"load\": {}, \"cycles\": {},", l.load, l.cycles)?;
            writeln!(
                w,
                "     \"modes_identical\": {}, \"fairness\": {:.6}, \
                 \"completed\": {}, \"rejected\": {},",
                l.modes_identical, l.fairness, l.completed, l.rejected
            )?;
            writeln!(w, "     \"classes\": [")?;
            for (j, c) in l.classes.iter().enumerate() {
                let ccomma = if j + 1 == l.classes.len() { "" } else { "," };
                writeln!(
                    w,
                    "       {{\"class\": \"{}\", \"submitted\": {}, \"admitted\": {}, \
                     \"rejected\": {}, \"completed\": {}, \"aborted\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                     \"throughput_per_mcycle\": {:.4}}}{ccomma}",
                    c.class,
                    c.submitted,
                    c.admitted,
                    c.rejected,
                    c.completed,
                    c.aborted,
                    c.p50,
                    c.p90,
                    c.p99,
                    c.throughput_per_mcycle
                )?;
            }
            writeln!(w, "     ],")?;
            writeln!(w, "     \"tenants\": [")?;
            for (j, t) in l.tenants.iter().enumerate() {
                let tcomma = if j + 1 == l.tenants.len() { "" } else { "," };
                writeln!(
                    w,
                    "       {{\"name\": \"{}\", \"class\": \"{}\", \"submitted\": {}, \
                     \"admitted\": {}, \"rejected\": {}, \"completed\": {}, \
                     \"p99\": {}}}{tcomma}",
                    json_escape(&t.name),
                    t.class,
                    t.submitted,
                    t.admitted,
                    t.rejected,
                    t.completed,
                    t.p99
                )?;
            }
            writeln!(w, "     ],")?;
            let violations = l
                .violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(w, "     \"violations\": [{violations}]}}{comma}")?;
        }
        writeln!(w, "  ],")?;
        writeln!(
            w,
            "  \"invariants_hold\": {}, \"qos_protected\": {}, \"rejections_at_peak\": {}",
            self.all_invariants_hold(),
            self.qos_protected(),
            self.rejections_at_peak(),
        )?;
        writeln!(w, "}}")
    }

    /// The report as a string (what the determinism tests compare).
    ///
    /// # Panics
    ///
    /// Never — writing to a `Vec` is infallible.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf).expect("vec write");
        String::from_utf8(buf).expect("json is utf-8")
    }

    /// Prints the per-level, per-class summary table.
    pub fn print_table(&self) {
        let headers = [
            "load%", "class", "sub", "adm", "rej", "done", "p50", "p90", "p99", "thr/Mcyc",
            "fair", "modes",
        ];
        let rows: Vec<Vec<String>> = self
            .levels
            .iter()
            .flat_map(|l| {
                l.classes.iter().map(move |c| {
                    vec![
                        l.load.to_string(),
                        c.class.to_string(),
                        c.submitted.to_string(),
                        c.admitted.to_string(),
                        c.rejected.to_string(),
                        c.completed.to_string(),
                        c.p50.to_string(),
                        c.p90.to_string(),
                        c.p99.to_string(),
                        format!("{:.1}", c.throughput_per_mcycle),
                        format!("{:.3}", l.fairness),
                        if l.modes_identical { "=".into() } else { "DIVERGED".into() },
                    ]
                })
            })
            .collect();
        print_table(&headers, &rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_worker_count_invariant() {
        let serial = run_service_grid(&ServiceGridSpec::new(&[60, 140], 5).with_threads(1));
        let parallel = run_service_grid(&ServiceGridSpec::new(&[60, 140], 5).with_threads(4));
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert!(serial.all_invariants_hold(), "\n{}", serial.deterministic_json());
    }
}
