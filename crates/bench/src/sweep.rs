//! Deterministic parallel sweep subsystem.
//!
//! The paper's evaluation (Figs. 2–3, 11–13, Table III) is a large
//! cross-product of `{benchmark | kernel} × {NoC config} × {seed}`. This
//! module runs such grids over a `std`-only worker pool
//! ([`std::thread::scope`] workers claiming cells off an atomic queue) and
//! merges results **in cell-index order**, so every simulation output is
//! bit-identical to a serial run regardless of the thread count
//! (`tests/determinism.rs` and `tests/properties.rs` prove
//! `threads = 1 == threads = N`).
//!
//! Three layers, lowest first:
//!
//! 1. [`parallel_map`] — deterministic order-preserving parallel map over
//!    job indices (also used by `examples/multiprogram.rs`).
//! 2. [`time_jobs`] / [`TimedJob`] — wall-clock timing of named jobs
//!    across the pool; the `benches/` targets register their cases here
//!    via [`crate::harness::Harness::bench_jobs`].
//! 3. [`SweepSpec`] / [`run_sweep`] — the declarative grid the
//!    `snack-sweep` binary exposes: benchmark and kernel cells over the
//!    Table I presets, with JSON (`BENCH_sweep.json`) and CSV emission.
//!
//! Host wall-clock timings are inherently nondeterministic, so
//! [`SweepResults`] splits its report: the per-cell *simulation* metrics
//! (cycles, deliveries, utilization) are byte-stable across thread counts
//! ([`SweepResults::deterministic_json`]), while timing and worker
//! utilization live in a separate `timing` section that only the full
//! report ([`SweepResults::write_json`]) includes.

use crate::experiments::run_snack_kernel;
use crate::harness::{summarize, BenchStats};
use crate::table::print_table;
use snacknoc_noc::{NocConfig, NocPreset, TrafficClass};
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::runner::run_benchmark;
use snacknoc_workloads::suite::{profile, Benchmark};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Layer 1: the deterministic worker pool.
// ---------------------------------------------------------------------------

/// Runs `f(0..jobs)` across up to `threads` scoped worker threads and
/// returns the results **in job-index order**, regardless of which worker
/// finished which job when.
///
/// Workers claim indices off a shared atomic counter (dynamic load
/// balancing: a slow cell never stalls the queue behind it) and publish
/// into a per-index slot, so the merged output is bit-identical to the
/// `threads == 1` serial run whenever `f` itself is deterministic.
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.clamp(1, jobs.max(1));
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                let prev = slots[i].lock().expect("slot poisoned").replace(result);
                assert!(prev.is_none(), "job {i} claimed twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("slot poisoned")
                .expect("scope joined all workers")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Layer 2: wall-clock timing of named jobs across the pool.
// ---------------------------------------------------------------------------

/// A named benchmark job: one call of `iter` performs one iteration and
/// returns its self-measured duration in nanoseconds (setup excluded).
pub struct TimedJob {
    name: String,
    iter: Box<dyn FnMut() -> u64 + Send>,
}

impl TimedJob {
    /// A job with per-iteration untimed setup (the `iter_batched`
    /// pattern): `setup` runs off the clock, `routine` on it.
    pub fn batched<S, R>(
        name: &str,
        mut setup: impl FnMut() -> S + Send + 'static,
        mut routine: impl FnMut(S) -> R + Send + 'static,
    ) -> Self {
        TimedJob {
            name: name.to_string(),
            iter: Box::new(move || {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }),
        }
    }

    /// A job timing `routine` directly (no setup).
    pub fn simple<R>(name: &str, mut routine: impl FnMut() -> R + Send + 'static) -> Self {
        Self::batched(name, || (), move |()| routine())
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Times each job (`warmup` untimed + `samples` timed iterations, all on
/// one worker so per-job timings stay comparable) across up to `threads`
/// workers, returning [`BenchStats`] in job order.
///
/// With `threads == 1` this reproduces the serial harness behaviour
/// exactly. With more threads, jobs share cores — wall-clock per job gets
/// noisier while total harness runtime shrinks, which is the right trade
/// for CI-style "did anything regress massively" sweeps.
pub fn time_jobs(jobs: Vec<TimedJob>, threads: usize, warmup: u32, samples: u32) -> Vec<BenchStats> {
    assert!(samples > 0, "need at least one timed sample");
    let n = jobs.len();
    let slots: Vec<Mutex<Option<TimedJob>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    parallel_map(n, threads, |i| {
        let mut job = slots[i].lock().expect("job slot poisoned").take().expect("job claimed once");
        for _ in 0..warmup {
            std::hint::black_box((job.iter)());
        }
        let timings: Vec<u64> = (0..samples).map(|_| (job.iter)()).collect();
        summarize(&job.name, &timings)
    })
}

// ---------------------------------------------------------------------------
// Layer 3: the declarative sweep grid.
// ---------------------------------------------------------------------------

/// What a sweep cell simulates.
#[derive(Clone, Copy, Debug)]
pub enum CellWorkload {
    /// One Table III benchmark profile, scaled by `scale` (CI runs use
    /// small factors; `1.0` is paper scale).
    Benchmark {
        /// The benchmark application.
        benchmark: Benchmark,
        /// Request-quota scale factor (see `BenchmarkProfile::scaled`).
        scale: f64,
    },
    /// One SnackNoC kernel at `size`, run to completion on a zero-load
    /// platform and verified against the reference interpreter.
    Kernel {
        /// The kernel.
        kernel: Kernel,
        /// The kernel input size.
        size: usize,
    },
}

/// One cell of the sweep grid.
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// The workload to simulate.
    pub workload: CellWorkload,
    /// The NoC baseline configuration (paper Table I).
    pub preset: NocPreset,
    /// The simulation seed.
    pub seed: u64,
}

impl SweepCell {
    /// The cell's display name, `workload/preset/s<seed>`.
    pub fn name(&self) -> String {
        match self.workload {
            CellWorkload::Benchmark { benchmark, .. } => {
                format!("{benchmark}/{}/s{}", self.preset, self.seed)
            }
            CellWorkload::Kernel { kernel, size } => {
                format!("{kernel}-{size}/{}/s{}", self.preset, self.seed)
            }
        }
    }
}

/// A declarative sweep: a list of cells plus execution knobs.
#[derive(Debug)]
pub struct SweepSpec {
    /// The grid cells, in merge (output) order.
    pub cells: Vec<SweepCell>,
    /// Worker threads (1 = serial; output is identical either way).
    pub threads: usize,
    /// Timed repetitions per cell for wall-clock statistics. Simulation
    /// outputs are taken from the first repetition (repetitions are
    /// bit-identical by construction).
    pub samples: u32,
}

impl SweepSpec {
    /// Builds the full `benchmarks × presets × seeds` grid in row-major
    /// order (benchmark outermost, seed innermost), every benchmark scaled
    /// by `scale`.
    pub fn grid(benchmarks: &[Benchmark], presets: &[NocPreset], seeds: &[u64], scale: f64) -> Self {
        let mut cells = Vec::with_capacity(benchmarks.len() * presets.len() * seeds.len());
        for &benchmark in benchmarks {
            for &preset in presets {
                for &seed in seeds {
                    cells.push(SweepCell {
                        workload: CellWorkload::Benchmark { benchmark, scale },
                        preset,
                        seed,
                    });
                }
            }
        }
        SweepSpec { cells, threads: 1, samples: 1 }
    }

    /// Appends a `kernels × presets × seeds` sub-grid at kernel input
    /// `size`.
    #[must_use]
    pub fn with_kernels(
        mut self,
        kernels: &[Kernel],
        size: usize,
        presets: &[NocPreset],
        seeds: &[u64],
    ) -> Self {
        for &kernel in kernels {
            for &preset in presets {
                for &seed in seeds {
                    self.cells.push(SweepCell {
                        workload: CellWorkload::Kernel { kernel, size },
                        preset,
                        seed,
                    });
                }
            }
        }
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets timed repetitions per cell.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    #[must_use]
    pub fn with_samples(mut self, samples: u32) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }
}

/// The merged outcome of one sweep cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Cell display name (`workload/preset/s<seed>`).
    pub name: String,
    /// Simulated cycles: application runtime for benchmark cells, kernel
    /// completion latency for kernel cells.
    pub runtime_cycles: u64,
    /// Benchmark cells: the run finished under the safety cap. Kernel
    /// cells: the outputs matched the reference interpreter bit-for-bit.
    pub finished: bool,
    /// Requests completed (benchmark cells) or instructions executed
    /// (kernel cells).
    pub completed: u64,
    /// Median router crossbar utilization (benchmark cells; 0 for kernel
    /// cells, which run on a zero-load network).
    pub median_crossbar: f64,
    /// Peak router crossbar utilization (benchmark cells; 0 for kernels).
    pub peak_crossbar: f64,
    /// Mean end-to-end communication-class packet latency in cycles
    /// (benchmark cells; 0 for kernels).
    pub mean_comm_latency: f64,
    /// Host wall-clock statistics over the cell's timed repetitions.
    pub wall: BenchStats,
}

/// Worker-pool accounting for one sweep execution.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Workers the pool actually ran.
    pub workers: usize,
    /// Cells each worker claimed.
    pub cells_per_worker: Vec<u64>,
    /// Nanoseconds each worker spent running cells.
    pub busy_ns_per_worker: Vec<u64>,
    /// Wall-clock nanoseconds for the whole sweep.
    pub elapsed_ns: u64,
}

impl PoolStats {
    /// Mean worker utilization in `[0, 1]`: busy time over
    /// `workers × elapsed`.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_ns == 0 || self.workers == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_ns_per_worker.iter().sum();
        busy as f64 / (self.workers as f64 * self.elapsed_ns as f64)
    }

    /// Completed cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        let cells: u64 = self.cells_per_worker.iter().sum();
        cells as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// The outcome of [`run_sweep`]: per-cell results in cell-index order plus
/// pool accounting.
#[derive(Clone, Debug)]
pub struct SweepResults {
    /// Per-cell results, merged in cell-index order.
    pub cells: Vec<CellResult>,
    /// Worker-pool accounting (nondeterministic; excluded from
    /// [`SweepResults::deterministic_json`]).
    pub pool: PoolStats,
}

/// Runs one cell once, returning its simulation outcome.
fn execute_cell(cell: &SweepCell) -> (u64, bool, u64, f64, f64, f64) {
    let cfg = NocConfig::preset(cell.preset);
    match cell.workload {
        CellWorkload::Benchmark { benchmark, scale } => {
            let p = profile(benchmark).scaled(scale);
            let r = run_benchmark(&p, cfg, cell.seed).expect("preset configs are valid");
            let comm = r.stats.class(TrafficClass::Communication);
            (
                r.runtime_cycles,
                r.finished,
                r.completed_requests,
                r.median_crossbar(),
                r.peak_crossbar(),
                comm.mean_latency(),
            )
        }
        CellWorkload::Kernel { kernel, size } => {
            let r = run_snack_kernel(kernel, size, cfg, cell.seed);
            (r.cycles, r.verified, r.instructions as u64, 0.0, 0.0, 0.0)
        }
    }
}

/// Runs one cell `samples` times, keeping the (identical) simulation
/// outputs of the first repetition and the wall-clock of each.
fn run_cell(cell: &SweepCell, samples: u32) -> CellResult {
    let name = cell.name();
    let mut timings = Vec::with_capacity(samples as usize);
    let mut sim = None;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let outcome = execute_cell(cell);
        timings.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        sim.get_or_insert(outcome);
    }
    let (runtime_cycles, finished, completed, median_crossbar, peak_crossbar, mean_comm_latency) =
        sim.expect("at least one repetition ran");
    CellResult {
        wall: summarize(&name, &timings),
        name,
        runtime_cycles,
        finished,
        completed,
        median_crossbar,
        peak_crossbar,
        mean_comm_latency,
    }
}

/// Executes the sweep: workers claim cells off an atomic queue, results
/// merge in cell-index order (bit-identical for any thread count).
pub fn run_sweep(spec: &SweepSpec) -> SweepResults {
    let jobs = spec.cells.len();
    let workers = spec.threads.clamp(1, jobs.max(1));
    let slots: Vec<OnceLock<CellResult>> = (0..jobs).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let cells_per_worker: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let busy_ns_per_worker: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let slots = &slots;
            let next = &next;
            let cells_per_worker = &cells_per_worker;
            let busy_ns_per_worker = &busy_ns_per_worker;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let c0 = Instant::now();
                let result = run_cell(&spec.cells[i], spec.samples);
                let busy = u64::try_from(c0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                cells_per_worker[w].fetch_add(1, Ordering::Relaxed);
                busy_ns_per_worker[w].fetch_add(busy, Ordering::Relaxed);
                if slots[i].set(result).is_err() {
                    unreachable!("cell {i} claimed twice");
                }
            });
        }
    });
    SweepResults {
        cells: slots.into_iter().map(|c| c.into_inner().expect("pool joined")).collect(),
        pool: PoolStats {
            workers,
            cells_per_worker: cells_per_worker.into_iter().map(AtomicU64::into_inner).collect(),
            busy_ns_per_worker: busy_ns_per_worker.into_iter().map(AtomicU64::into_inner).collect(),
            elapsed_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        },
    }
}

/// Minimal JSON string escaping (cell names are plain ASCII, but stay
/// correct for anything).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for JSON: Rust's shortest round-trip representation,
/// which is deterministic for identical bit patterns.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        // JSON has no NaN/inf; encode as null (documented lossy corner).
        "null".to_string()
    }
}

impl SweepResults {
    fn write_cells(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "  \"cells\": [")?;
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"runtime_cycles\": {}, \"finished\": {}, \
                 \"completed\": {}, \"median_crossbar\": {}, \"peak_crossbar\": {}, \
                 \"mean_comm_latency\": {}}}{comma}",
                json_escape(&c.name),
                c.runtime_cycles,
                c.finished,
                c.completed,
                json_f64(c.median_crossbar),
                json_f64(c.peak_crossbar),
                json_f64(c.mean_comm_latency),
            )?;
        }
        writeln!(w, "  ]")
    }

    /// The deterministic (simulation-only) JSON report: byte-identical
    /// for any worker-thread count. This is what the determinism and
    /// property tests compare.
    ///
    /// # Panics
    ///
    /// Never — writing to a `Vec` is infallible.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut buf = Vec::new();
        writeln!(&mut buf, "{{").expect("vec write");
        self.write_cells(&mut buf).expect("vec write");
        writeln!(&mut buf, "}}").expect("vec write");
        String::from_utf8(buf).expect("json is utf-8")
    }

    /// Writes the full `BENCH_sweep.json` report: the deterministic cell
    /// section plus per-cell wall statistics and pool accounting.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_json(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        write!(w, "  \"cells\": [")?;
        writeln!(w)?;
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"runtime_cycles\": {}, \"finished\": {}, \
                 \"completed\": {}, \"median_crossbar\": {}, \"peak_crossbar\": {}, \
                 \"mean_comm_latency\": {}, \"wall\": {{\"samples\": {}, \"median_ns\": {}, \
                 \"p90_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}}}{comma}",
                json_escape(&c.name),
                c.runtime_cycles,
                c.finished,
                c.completed,
                json_f64(c.median_crossbar),
                json_f64(c.peak_crossbar),
                json_f64(c.mean_comm_latency),
                c.wall.samples,
                c.wall.median_ns,
                c.wall.p90_ns,
                c.wall.min_ns,
                c.wall.max_ns,
            )?;
        }
        writeln!(w, "  ],")?;
        writeln!(w, "  \"timing\": {{")?;
        writeln!(w, "    \"workers\": {},", self.pool.workers)?;
        writeln!(w, "    \"elapsed_ns\": {},", self.pool.elapsed_ns)?;
        writeln!(w, "    \"cells_per_sec\": {},", json_f64(self.pool.cells_per_sec()))?;
        writeln!(w, "    \"worker_utilization\": {},", json_f64(self.pool.utilization()))?;
        writeln!(
            w,
            "    \"cells_per_worker\": [{}],",
            self.pool
                .cells_per_worker
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        writeln!(
            w,
            "    \"busy_ns_per_worker\": [{}]",
            self.pool
                .busy_ns_per_worker
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        writeln!(w, "  }}")?;
        writeln!(w, "}}")
    }

    /// Writes per-cell wall statistics in the harness CSV layout
    /// (`bench,samples,median_ns,p90_ns,min_ns,max_ns`), so sweep numbers
    /// re-plot alongside `benches/` data.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "bench,samples,median_ns,p90_ns,min_ns,max_ns")?;
        for c in &self.cells {
            writeln!(
                w,
                "{},{},{},{},{},{}",
                c.name, c.wall.samples, c.wall.median_ns, c.wall.p90_ns, c.wall.min_ns, c.wall.max_ns
            )?;
        }
        Ok(())
    }

    /// Prints the per-cell summary table and the pool throughput line.
    pub fn print_table(&self) {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    c.runtime_cycles.to_string(),
                    if c.finished { "yes".into() } else { "NO".into() },
                    format!("{:.2}%", 100.0 * c.median_crossbar),
                    format!("{:.2}%", 100.0 * c.peak_crossbar),
                    crate::harness::fmt_ns(c.wall.median_ns),
                ]
            })
            .collect();
        print_table(
            &["cell", "sim cycles", "finished", "median xbar", "peak xbar", "wall median"],
            &rows,
        );
        println!(
            "{} cells on {} worker(s): {:.2} cells/sec, {:.0}% worker utilization, {} total",
            self.cells.len(),
            self.pool.workers,
            self.pool.cells_per_sec(),
            100.0 * self.pool.utilization(),
            crate::harness::fmt_ns(self.pool.elapsed_ns),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_and_runs_every_job() {
        for threads in [1, 2, 4, 9] {
            let out = parallel_map(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn time_jobs_runs_warmup_plus_samples_per_job() {
        use std::sync::atomic::AtomicU32;
        let calls = std::sync::Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let jobs = vec![
            TimedJob::simple("a", move || c.fetch_add(1, Ordering::Relaxed)),
            TimedJob::batched("b", || 21u64, |x| x * 2),
        ];
        let stats = time_jobs(jobs, 2, 2, 3);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "a");
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[0].samples, 3);
        assert_eq!(calls.load(Ordering::Relaxed), 2 + 3, "warmup + samples");
    }

    #[test]
    fn grid_orders_cells_row_major() {
        let spec = SweepSpec::grid(
            &[Benchmark::Fmm, Benchmark::Radix],
            &[NocPreset::Dapper, NocPreset::BiNoChs],
            &[1, 2],
            0.01,
        );
        assert_eq!(spec.cells.len(), 8);
        assert_eq!(spec.cells[0].name(), "FMM/DAPPER/s1");
        assert_eq!(spec.cells[1].name(), "FMM/DAPPER/s2");
        assert_eq!(spec.cells[2].name(), "FMM/BiNoCHS/s1");
        assert_eq!(spec.cells[7].name(), "Radix/BiNoCHS/s2");
        let with_k = spec.with_kernels(&[Kernel::Spmv], 12, &[NocPreset::Dapper], &[7]);
        assert_eq!(with_k.cells.len(), 9);
        assert_eq!(with_k.cells[8].name(), "SPMV-12/DAPPER/s7");
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let spec = SweepSpec::grid(
            &[Benchmark::Fmm, Benchmark::Cholesky],
            &[NocPreset::BiNoChs],
            &[3],
            0.004,
        )
        .with_kernels(&[Kernel::Mac], 16, &[NocPreset::BiNoChs], &[3]);
        let serial = run_sweep(&SweepSpec { cells: spec.cells.clone(), threads: 1, samples: 1 });
        let parallel = run_sweep(&SweepSpec { cells: spec.cells.clone(), threads: 4, samples: 1 });
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert!(serial.cells.iter().all(|c| c.finished), "all cells complete");
        assert_eq!(parallel.pool.cells_per_worker.iter().sum::<u64>(), 3);
    }

    #[test]
    fn json_reports_are_wellformed() {
        let spec = SweepSpec::grid(&[Benchmark::Fmm], &[NocPreset::BiNoChs], &[1], 0.004);
        let results = run_sweep(&spec);
        let det = results.deterministic_json();
        assert!(det.contains("\"cells\""));
        assert!(det.contains("FMM/BiNoCHS/s1"));
        assert!(!det.contains("wall"), "deterministic report excludes host timing");
        let mut buf = Vec::new();
        results.write_json(&mut buf).unwrap();
        let full = String::from_utf8(buf).unwrap();
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"worker_utilization\""));
        assert!(full.contains("\"median_ns\""));
        let mut csv = Vec::new();
        results.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert_eq!(csv.lines().next().unwrap(), "bench,samples,median_ns,p90_ns,min_ns,max_ns");
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn json_escaping_and_floats() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\t"), "tab\\u0009");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
