//! Minimal fixed-width table printing for experiment reports.

/// Prints a header row followed by data rows, with columns padded to the
/// widest cell.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Formats a ratio like `6.15x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage like `0.83%`.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(6.149), "6.15x");
        assert_eq!(pct(0.0083), "0.83%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
