//! The `snack-trace` driver: run a paper kernel under the cycle-level
//! tracer and turn the event stream into artifacts — Chrome trace-event
//! JSON (Perfetto-loadable), a critical-path breakdown, per-link
//! utilization, and token-lifetime histograms.

use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::SnackPlatform;
use snacknoc_noc::NocConfig;
use snacknoc_trace::{
    critical_path, to_chrome_trace, token_lifetimes, ComponentClass, CriticalPath,
    CycleHistogram, RingTracer, TracerHandle,
};
use snacknoc_workloads::kernels::Kernel;

/// Default per-component-class ring-buffer capacity for traced runs.
/// Generous for any CI-scale kernel; saturated classes degrade gracefully
/// into drop counters rather than failing.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// Everything a traced kernel run produced.
#[derive(Debug)]
pub struct TracedKernelRun {
    /// The kernel that ran.
    pub kernel: Kernel,
    /// Problem size.
    pub size: usize,
    /// Input seed.
    pub seed: u64,
    /// Kernel completion latency in cycles.
    pub cycles: u64,
    /// Instructions in the compiled kernel.
    pub instructions: usize,
    /// Whether the outputs matched the reference interpreter bit-for-bit.
    pub verified: bool,
    /// The recorded event stream (buffers + drop counters + link counts).
    pub tracer: RingTracer,
    /// The critical-path tiling of the kernel's latency, if the trace
    /// captured the submit/finish bracket.
    pub critical_path: Option<CriticalPath>,
}

/// Compiles `kernel` at `size`, runs it on a zero-load platform with a
/// [`RingTracer`] of `capacity` events per component class, and analyzes
/// the recorded stream.
///
/// # Panics
///
/// Panics if the kernel fails to compile, validate or finish — platform
/// bugs, not experimental conditions (mirrors
/// [`crate::experiments::run_snack_kernel`]).
pub fn run_traced_kernel(
    kernel: Kernel,
    size: usize,
    cfg: NocConfig,
    seed: u64,
    capacity: usize,
) -> TracedKernelRun {
    let built = build(kernel, size, seed);
    let pipeline_stages = cfg.pipeline_stages as u64;
    let mut platform = SnackPlatform::new(cfg).expect("valid platform config");
    platform.set_tracer(TracerHandle::ring(capacity));
    let mapper = MapperConfig::for_mesh(platform.mesh());
    let compiled = built.context.compile(built.root, &mapper).expect("kernel compiles");
    compiled.validate().expect("compiled kernel is well-formed");
    let instructions = compiled.len();
    let cap = 200 * instructions as u64 + 1_000_000;
    let run = platform
        .run_kernel(&compiled, cap)
        .unwrap_or_else(|e| panic!("{kernel} did not finish within {cap} cycles: {e}"));
    let reference = built.context.interpret(built.root).expect("interpretable");
    let tracer = *platform.take_tracer().take_ring().expect("ring tracer installed");
    let merged = tracer.merged_events();
    let critical = critical_path(&merged, pipeline_stages);
    TracedKernelRun {
        kernel,
        size,
        seed,
        cycles: run.cycles,
        instructions,
        verified: run.outputs == reference,
        tracer,
        critical_path: critical,
    }
}

impl TracedKernelRun {
    /// The Chrome trace-event JSON for this run.
    pub fn chrome_json(&self) -> String {
        to_chrome_trace(&self.tracer)
    }

    /// Human-readable text report: event accounting, critical path,
    /// token lifetimes, and the busiest links.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "kernel {} size {} seed {}: {} cycles, {} instructions, verified={}\n",
            self.kernel, self.size, self.seed, self.cycles, self.instructions, self.verified
        ));
        out.push_str("events:");
        for class in ComponentClass::ALL {
            out.push_str(&format!(
                " {}={} (dropped {})",
                class.lane_name(),
                self.tracer.events(class).len(),
                self.tracer.dropped(class)
            ));
        }
        out.push('\n');
        match &self.critical_path {
            Some(cp) => {
                out.push_str(&cp.render());
                out.push('\n');
            }
            None => out.push_str("critical path: unavailable (no submit/finish bracket)\n"),
        }
        let lifetimes = token_lifetimes(&self.tracer.merged_events());
        if !lifetimes.is_empty() {
            let mut hist = CycleHistogram::new();
            for &(_, launched, retired) in &lifetimes {
                hist.record(retired.saturating_sub(launched));
            }
            out.push_str(&hist.render("token lifetime (cycles)"));
            out.push('\n');
        }
        let mut heat = self.tracer.link_heatmap();
        heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total: u64 = heat.iter().map(|(_, n)| n).sum();
        out.push_str(&format!("link flit-hops: {total} total, busiest:\n"));
        for ((router, port), n) in heat.iter().take(8) {
            out.push_str(&format!("  router {router:>3} port {port}: {n}\n"));
        }
        out
    }

    /// Sum of per-category critical-path attribution; equals
    /// [`CriticalPath::total`] by construction when a path exists.
    pub fn attributed_cycles(&self) -> Option<u64> {
        self.critical_path.as_ref().map(CriticalPath::attributed_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_trace::validate_chrome_trace;

    #[test]
    fn traced_mac_kernel_produces_valid_artifacts() {
        let run = run_traced_kernel(Kernel::Mac, 8, NocConfig::default(), 7, 1 << 16);
        assert!(run.verified, "tracing must not perturb results");
        let json = run.chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(summary.router_events > 0);
        assert!(summary.rcu_events > 0);
        assert!(summary.cpm_events > 0);
        let cp = run.critical_path.as_ref().expect("bracket captured");
        assert_eq!(cp.total(), run.cycles, "bracket spans the measured latency");
        assert_eq!(cp.attributed_total(), cp.total(), "tiling is exact");
        let report = run.report();
        assert!(report.contains("critical path"));
        assert!(report.contains("link flit-hops"));
    }

    #[test]
    fn traced_run_latency_matches_untraced() {
        let traced = run_traced_kernel(Kernel::Reduction, 8, NocConfig::default(), 3, 1 << 16);
        let plain =
            crate::experiments::run_snack_kernel(Kernel::Reduction, 8, NocConfig::default(), 3);
        assert_eq!(traced.cycles, plain.cycles, "observation must not change timing");
        assert_eq!(traced.verified, plain.verified);
    }

    #[test]
    fn tiny_capacity_degrades_into_drop_counters() {
        let run = run_traced_kernel(Kernel::Mac, 8, NocConfig::default(), 7, 8);
        let dropped: u64 =
            ComponentClass::ALL.iter().map(|&c| run.tracer.dropped(c)).sum();
        assert!(dropped > 0, "an 8-slot ring must saturate");
        assert!(run.verified, "saturation still must not perturb the run");
    }
}
