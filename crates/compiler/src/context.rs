//! The SnackNoC context API (paper Fig. 8b): declaratively build linear
//! algebra computations, then compile them to instruction streams or
//! evaluate them with the reference interpreter.

use crate::graph::{ElemOp, Node, NodeKind, Res, Shape};
use crate::interp;
use crate::mapping::{self, MapperConfig};
use snacknoc_core::fixed::Fixed;
use snacknoc_core::token::CompiledKernel;
use snacknoc_workloads::kernels::CsrMatrix;
use std::fmt;

/// A shape/usage error raised while building or compiling a context.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ContextError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Operation name.
        op: &'static str,
        /// Left shape.
        lhs: Shape,
        /// Right shape.
        rhs: Shape,
    },
    /// Data length does not match `rows * cols`.
    BadDataLength {
        /// Elements provided.
        got: usize,
        /// Elements expected.
        want: usize,
    },
    /// A sparse input was used somewhere other than as the matrix operand
    /// of [`Context::spmv`].
    SparseMisuse,
    /// An empty (zero-element) array was supplied.
    EmptyArray,
    /// A handle from a different context was used.
    ForeignHandle,
    /// The mapper rejected the RCU configuration (empty or all-dead set).
    Map(crate::mapping::MapError),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            ContextError::BadDataLength { got, want } => {
                write!(f, "data length {got} does not match shape ({want} elements)")
            }
            ContextError::SparseMisuse => {
                write!(f, "sparse inputs may only be the matrix operand of spmv")
            }
            ContextError::EmptyArray => write!(f, "arrays must be non-empty"),
            ContextError::ForeignHandle => write!(f, "handle belongs to a different context"),
            ContextError::Map(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for ContextError {}

impl From<crate::mapping::MapError> for ContextError {
    fn from(e: crate::mapping::MapError) -> Self {
        ContextError::Map(e)
    }
}

/// An execution context: one or more dataflow graphs under construction
/// (paper §IV-A2). Compile a root handle to get a [`CompiledKernel`] for
/// the CPM, or interpret it for a bit-exact reference result.
///
/// ```
/// use snacknoc_compiler::Context;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // D = alpha * (A x B) + C   (paper Fig. 8)
/// let mut cxt = Context::new("axb_plus_c");
/// let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2)?;
/// let b = cxt.input(&[5.0, 6.0, 7.0, 8.0], 2, 2)?;
/// let c = cxt.input(&[1.0, 1.0, 1.0, 1.0], 2, 2)?;
/// let alpha = cxt.scalar(2.0);
/// let ab = cxt.mul(a, b)?;
/// let alpha_ab = cxt.mul(alpha, ab)?;
/// let d = cxt.add(alpha_ab, c)?;
/// let reference = cxt.interpret(d)?;
/// assert_eq!(reference[0].to_f64(), 2.0 * 19.0 + 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Context {
    pub(crate) nodes: Vec<Node>,
    name: String,
}

impl Context {
    /// Creates an empty context (the paper's `create_new_cxt`).
    pub fn new(name: impl Into<String>) -> Self {
        Context { nodes: Vec::new(), name: name.into() }
    }

    /// The context name, used for compiled-kernel reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shape of a handle.
    ///
    /// # Errors
    ///
    /// [`ContextError::ForeignHandle`] if `r` is not from this context.
    pub fn shape(&self, r: Res) -> Result<Shape, ContextError> {
        self.nodes.get(r.0).map(|n| n.shape).ok_or(ContextError::ForeignHandle)
    }

    fn push(&mut self, node: Node) -> Res {
        self.nodes.push(node);
        Res(self.nodes.len() - 1)
    }

    fn check(&self, r: Res) -> Result<&Node, ContextError> {
        self.nodes.get(r.0).ok_or(ContextError::ForeignHandle)
    }

    fn check_dense(&self, r: Res, op: &'static str) -> Result<Shape, ContextError> {
        let node = self.check(r)?;
        if matches!(node.kind, NodeKind::Sparse { .. }) {
            let _ = op;
            return Err(ContextError::SparseMisuse);
        }
        Ok(node.shape)
    }

    /// Creates a dense input array (the paper's `create_input`).
    ///
    /// # Errors
    ///
    /// Rejects empty arrays and length/shape mismatches.
    pub fn input(&mut self, data: &[f64], rows: usize, cols: usize) -> Result<Res, ContextError> {
        if rows * cols == 0 {
            return Err(ContextError::EmptyArray);
        }
        if data.len() != rows * cols {
            return Err(ContextError::BadDataLength { got: data.len(), want: rows * cols });
        }
        let values = data.iter().map(|&v| Fixed::from_f64(v)).collect();
        Ok(self.push(Node::new(NodeKind::Dense(values), rows, cols)))
    }

    /// Creates a 1×1 scalar input.
    pub fn scalar(&mut self, v: f64) -> Res {
        self.push(Node::new(NodeKind::Dense(vec![Fixed::from_f64(v)]), 1, 1))
    }

    /// Creates a sparse CSR input, usable as the matrix operand of
    /// [`Context::spmv`].
    ///
    /// # Errors
    ///
    /// Rejects empty matrices.
    pub fn sparse(&mut self, m: &CsrMatrix) -> Result<Res, ContextError> {
        if m.rows * m.cols == 0 {
            return Err(ContextError::EmptyArray);
        }
        Ok(self.push(Node::new(crate::graph::csr_to_fixed(m), m.rows, m.cols)))
    }

    /// Multiplication (the paper's `create_mult`): dense matrix product,
    /// or element-wise scaling when either operand is a 1×1 scalar.
    ///
    /// # Errors
    ///
    /// Shape mismatch or sparse misuse.
    pub fn mul(&mut self, a: Res, b: Res) -> Result<Res, ContextError> {
        let sa = self.check_dense(a, "mul")?;
        let sb = self.check_dense(b, "mul")?;
        if sa.is_scalar() || sb.is_scalar() {
            let shape = if sa.is_scalar() { sb } else { sa };
            return Ok(self.push(Node::new(NodeKind::Elem(ElemOp::Mul, a, b), shape.rows, shape.cols)));
        }
        if sa.cols != sb.rows {
            return Err(ContextError::ShapeMismatch { op: "mul", lhs: sa, rhs: sb });
        }
        Ok(self.push(Node::new(NodeKind::MatMul(a, b), sa.rows, sb.cols)))
    }

    /// Element-wise addition (the paper's `create_add`); scalars broadcast.
    ///
    /// # Errors
    ///
    /// Shape mismatch or sparse misuse.
    pub fn add(&mut self, a: Res, b: Res) -> Result<Res, ContextError> {
        self.elementwise(ElemOp::Add, "add", a, b)
    }

    /// Element-wise subtraction; scalars broadcast.
    ///
    /// # Errors
    ///
    /// Shape mismatch or sparse misuse.
    pub fn sub(&mut self, a: Res, b: Res) -> Result<Res, ContextError> {
        self.elementwise(ElemOp::Sub, "sub", a, b)
    }

    /// Element-wise (Hadamard) multiplication; scalars broadcast.
    ///
    /// # Errors
    ///
    /// Shape mismatch or sparse misuse.
    pub fn elem_mul(&mut self, a: Res, b: Res) -> Result<Res, ContextError> {
        self.elementwise(ElemOp::Mul, "elem_mul", a, b)
    }

    fn elementwise(
        &mut self,
        op: ElemOp,
        name: &'static str,
        a: Res,
        b: Res,
    ) -> Result<Res, ContextError> {
        let sa = self.check_dense(a, name)?;
        let sb = self.check_dense(b, name)?;
        let shape = if sa.is_scalar() {
            sb
        } else if sb.is_scalar() || sa == sb {
            sa
        } else {
            return Err(ContextError::ShapeMismatch { op: name, lhs: sa, rhs: sb });
        };
        Ok(self.push(Node::new(NodeKind::Elem(op, a, b), shape.rows, shape.cols)))
    }

    /// Sum-reduction of all elements to a 1×1 scalar.
    ///
    /// # Errors
    ///
    /// Sparse misuse.
    pub fn reduce(&mut self, a: Res) -> Result<Res, ContextError> {
        self.check_dense(a, "reduce")?;
        Ok(self.push(Node::new(NodeKind::Reduce(a), 1, 1)))
    }

    /// Sparse matrix × dense vector.
    ///
    /// # Errors
    ///
    /// The matrix operand must be a [`Context::sparse`] input; the vector
    /// must be dense with `rows == matrix.cols` and one column.
    pub fn spmv(&mut self, m: Res, x: Res) -> Result<Res, ContextError> {
        let mnode = self.check(m)?;
        let NodeKind::Sparse { .. } = mnode.kind else {
            return Err(ContextError::SparseMisuse);
        };
        let ms = mnode.shape;
        let xs = self.check_dense(x, "spmv")?;
        if xs.rows != ms.cols || xs.cols != 1 {
            return Err(ContextError::ShapeMismatch { op: "spmv", lhs: ms, rhs: xs });
        }
        Ok(self.push(Node::new(NodeKind::Spmv(m, x), ms.rows, 1)))
    }

    /// Evaluates `root` with the bit-exact fixed-point reference
    /// interpreter (row-major element order).
    ///
    /// # Errors
    ///
    /// [`ContextError::ForeignHandle`] for unknown handles.
    pub fn interpret(&self, root: Res) -> Result<Vec<Fixed>, ContextError> {
        self.check(root)?;
        Ok(interp::evaluate(self, root))
    }

    /// JIT-compiles the graph rooted at `root` into a CPM command buffer
    /// (paper §IV-B): post-order mapping, round-robin scheduling across
    /// RCUs, MAC fusion per the mapper configuration.
    ///
    /// # Errors
    ///
    /// [`ContextError::ForeignHandle`] for unknown handles.
    pub fn compile(&self, root: Res, cfg: &MapperConfig) -> Result<CompiledKernel, ContextError> {
        self.check(root)?;
        Ok(mapping::compile(self, root, cfg)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checking_rejects_mismatches() {
        let mut cxt = Context::new("t");
        let a = cxt.input(&[1.0; 6], 2, 3).unwrap();
        let b = cxt.input(&[1.0; 6], 2, 3).unwrap();
        assert!(matches!(cxt.mul(a, b), Err(ContextError::ShapeMismatch { op: "mul", .. })));
        let c = cxt.input(&[1.0; 4], 2, 2).unwrap();
        assert!(matches!(cxt.add(a, c), Err(ContextError::ShapeMismatch { .. })));
        assert!(matches!(
            cxt.input(&[1.0; 5], 2, 3),
            Err(ContextError::BadDataLength { got: 5, want: 6 })
        ));
        assert_eq!(cxt.input(&[], 0, 3), Err(ContextError::EmptyArray));
    }

    #[test]
    fn scalar_broadcasting() {
        let mut cxt = Context::new("t");
        let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let s = cxt.scalar(10.0);
        let scaled = cxt.mul(s, a).unwrap();
        assert_eq!(cxt.shape(scaled).unwrap(), Shape { rows: 2, cols: 2 });
        let shifted = cxt.add(a, s).unwrap();
        assert_eq!(cxt.shape(shifted).unwrap(), Shape { rows: 2, cols: 2 });
        let out = cxt.interpret(scaled).unwrap();
        assert_eq!(out.iter().map(|f| f.to_f64()).collect::<Vec<_>>(), vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn sparse_only_valid_in_spmv() {
        use snacknoc_workloads::kernels::sparse_matrix;
        let mut cxt = Context::new("t");
        let m = sparse_matrix(8, 0.5, 1);
        let sp = cxt.sparse(&m).unwrap();
        let x = cxt.input(&[1.0; 8], 8, 1).unwrap();
        let y = cxt.spmv(sp, x).unwrap();
        assert_eq!(cxt.shape(y).unwrap(), Shape { rows: 8, cols: 1 });
        assert_eq!(cxt.add(sp, x), Err(ContextError::SparseMisuse));
        assert_eq!(cxt.spmv(x, x), Err(ContextError::SparseMisuse));
        let bad_x = cxt.input(&[1.0; 4], 4, 1).unwrap();
        assert!(matches!(cxt.spmv(sp, bad_x), Err(ContextError::ShapeMismatch { .. })));
    }

    #[test]
    fn foreign_handles_rejected() {
        let mut a = Context::new("a");
        let cxt_b = Context::new("b");
        let r = a.input(&[1.0], 1, 1).unwrap();
        assert!(matches!(cxt_b.shape(r), Err(ContextError::ForeignHandle)));
        assert!(matches!(cxt_b.interpret(r), Err(ContextError::ForeignHandle)));
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ContextError> = vec![
            ContextError::ShapeMismatch {
                op: "mul",
                lhs: Shape { rows: 1, cols: 2 },
                rhs: Shape { rows: 3, cols: 4 },
            },
            ContextError::BadDataLength { got: 1, want: 2 },
            ContextError::SparseMisuse,
            ContextError::EmptyArray,
            ContextError::ForeignHandle,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
