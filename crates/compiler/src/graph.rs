//! The deterministic dataflow-graph representation behind the context API
//! (paper §IV-A1): nodes are array operations, edges are immediate or
//! intermediate array values, and each compiled graph has a single root.

use snacknoc_core::fixed::Fixed;
use snacknoc_workloads::kernels::CsrMatrix;
use std::fmt;

/// An opaque handle to a graph node, returned by the context API
/// (the paper's `RESH`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Res(pub(crate) usize);

/// The shape of an array value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shape {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl Shape {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the shape has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a 1×1 scalar.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Element-wise binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElemOp {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise (Hadamard) multiplication.
    Mul,
}

/// A dataflow-graph node.
#[derive(Clone, Debug)]
pub(crate) enum NodeKind {
    /// A dense immediate input (values already fixed-point converted).
    Dense(Vec<Fixed>),
    /// A sparse immediate input in CSR form (fixed-point values).
    Sparse {
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<Fixed>,
    },
    /// Element-wise binary op; scalar operands broadcast.
    Elem(ElemOp, Res, Res),
    /// Dense matrix multiplication.
    MatMul(Res, Res),
    /// Sum-reduction of all elements to a 1×1 scalar.
    Reduce(Res),
    /// Sparse matrix × dense vector.
    Spmv(Res, Res),
}

/// A node with its output shape.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub kind: NodeKind,
    pub shape: Shape,
}

impl Node {
    pub(crate) fn new(kind: NodeKind, rows: usize, cols: usize) -> Self {
        Node { kind, shape: Shape { rows, cols } }
    }
}

/// Converts a CSR matrix from the workloads crate into fixed-point parts.
pub(crate) fn csr_to_fixed(m: &CsrMatrix) -> NodeKind {
    NodeKind::Sparse {
        row_ptr: m.row_ptr.clone(),
        col_idx: m.col_idx.clone(),
        values: m.values.iter().map(|&v| Fixed::from_f64(v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_helpers() {
        let s = Shape { rows: 3, cols: 4 };
        assert_eq!(s.len(), 12);
        assert!(!s.is_scalar());
        assert!(!s.is_empty());
        assert!(Shape { rows: 1, cols: 1 }.is_scalar());
        assert!(Shape { rows: 0, cols: 5 }.is_empty());
        assert_eq!(s.to_string(), "3x4");
    }
}
