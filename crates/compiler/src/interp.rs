//! The reference interpreter: evaluates a context graph in Q16.16 fixed
//! point using exactly the RCU datapath operations, so simulated SnackNoC
//! executions can be checked bit-for-bit.
//!
//! Wrapping 32-bit addition is associative and commutative, and every
//! product is truncated to Q16.16 before accumulation (as in the MAC unit),
//! so the interpreter's result is independent of the order the mapper
//! schedules operations in — any divergence indicates a platform bug, not
//! floating-point noise.

use crate::context::Context;
use crate::graph::{ElemOp, NodeKind, Res};
use snacknoc_core::fixed::Fixed;

/// Evaluates the graph rooted at `root`, returning row-major elements.
pub(crate) fn evaluate(ctx: &Context, root: Res) -> Vec<Fixed> {
    let mut memo: Vec<Option<Vec<Fixed>>> = vec![None; ctx.nodes.len()];
    eval(ctx, root, &mut memo)
}

fn eval(ctx: &Context, r: Res, memo: &mut Vec<Option<Vec<Fixed>>>) -> Vec<Fixed> {
    if let Some(v) = &memo[r.0] {
        return v.clone();
    }
    let node = &ctx.nodes[r.0];
    let out = match &node.kind {
        NodeKind::Dense(values) => values.clone(),
        NodeKind::Sparse { row_ptr, col_idx, values } => {
            // Dense expansion (only reachable if a sparse node is evaluated
            // directly, e.g. as a graph root).
            let (rows, cols) = (node.shape.rows, node.shape.cols);
            let mut dense = vec![Fixed::ZERO; rows * cols];
            for row in 0..rows {
                for i in row_ptr[row]..row_ptr[row + 1] {
                    dense[row * cols + col_idx[i]] = values[i];
                }
            }
            dense
        }
        NodeKind::Elem(op, a, b) => {
            let (a, b) = (*a, *b);
            let va = eval(ctx, a, memo);
            let vb = eval(ctx, b, memo);
            let len = node.shape.len();
            let pick = |v: &Vec<Fixed>, i: usize| if v.len() == 1 { v[0] } else { v[i] };
            (0..len)
                .map(|i| {
                    let (x, y) = (pick(&va, i), pick(&vb, i));
                    match op {
                        ElemOp::Add => x + y,
                        ElemOp::Sub => x - y,
                        ElemOp::Mul => x * y,
                    }
                })
                .collect()
        }
        NodeKind::MatMul(a, b) => {
            let (a, b) = (*a, *b);
            let k = ctx.nodes[a.0].shape.cols;
            let n = ctx.nodes[b.0].shape.cols;
            let m = node.shape.rows;
            let va = eval(ctx, a, memo);
            let vb = eval(ctx, b, memo);
            let mut out = Vec::with_capacity(m * n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = Fixed::ZERO;
                    for l in 0..k {
                        acc = acc.mac(va[i * k + l], vb[l * n + j]);
                    }
                    out.push(acc);
                }
            }
            out
        }
        NodeKind::Reduce(a) => {
            let va = eval(ctx, *a, memo);
            let mut acc = Fixed::ZERO;
            for v in va {
                acc += v;
            }
            vec![acc]
        }
        NodeKind::Spmv(m, x) => {
            let (m, x) = (*m, *x);
            let vx = eval(ctx, x, memo);
            let NodeKind::Sparse { row_ptr, col_idx, values } = &ctx.nodes[m.0].kind else {
                unreachable!("spmv matrix operand is sparse by construction");
            };
            (0..node.shape.rows)
                .map(|row| {
                    let mut acc = Fixed::ZERO;
                    for i in row_ptr[row]..row_ptr[row + 1] {
                        acc = acc.mac(values[i], vx[col_idx[i]]);
                    }
                    acc
                })
                .collect()
        }
    };
    memo[r.0] = Some(out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_workloads::kernels::{sparse_matrix, vector};

    #[test]
    fn matmul_matches_hand_computation() {
        let mut cxt = Context::new("t");
        let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = cxt.input(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let ab = cxt.mul(a, b).unwrap();
        let out: Vec<f64> = cxt.interpret(ab).unwrap().iter().map(|f| f.to_f64()).collect();
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn reduce_and_elem_ops() {
        let mut cxt = Context::new("t");
        let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 4, 1).unwrap();
        let b = cxt.input(&[0.5, 0.5, 0.5, 0.5], 4, 1).unwrap();
        let prod = cxt.elem_mul(a, b).unwrap();
        let dot = cxt.reduce(prod).unwrap();
        assert_eq!(cxt.interpret(dot).unwrap()[0].to_f64(), 5.0);
        let diff = cxt.sub(a, b).unwrap();
        let out = cxt.interpret(diff).unwrap();
        assert_eq!(out[0].to_f64(), 0.5);
        assert_eq!(out[3].to_f64(), 3.5);
    }

    #[test]
    fn spmv_matches_float_reference_closely() {
        let m = sparse_matrix(24, 0.7, 2);
        let x = vector(24, 3);
        let mut cxt = Context::new("t");
        let sp = cxt.sparse(&m).unwrap();
        let xr = cxt.input(&x, 24, 1).unwrap();
        let y = cxt.spmv(sp, xr).unwrap();
        let got = cxt.interpret(y).unwrap();
        let want = m.multiply(&x);
        for (g, w) in got.iter().zip(&want) {
            // Inputs are 1/256-quantised: products are exact in Q16.16, so
            // fixed point matches the float reference exactly here.
            assert!((g.to_f64() - w).abs() < 1e-9, "{} vs {}", g.to_f64(), w);
        }
    }

    #[test]
    fn shared_subexpressions_evaluate_once_and_consistently() {
        let mut cxt = Context::new("t");
        let a = cxt.input(&[2.0], 1, 1).unwrap();
        let sq = cxt.elem_mul(a, a).unwrap();
        let sum = cxt.add(sq, sq).unwrap();
        assert_eq!(cxt.interpret(sum).unwrap()[0].to_f64(), 8.0);
    }

    #[test]
    fn sparse_root_expands_dense() {
        let m = sparse_matrix(4, 0.5, 7);
        let mut cxt = Context::new("t");
        let sp = cxt.sparse(&m).unwrap();
        let dense = cxt.interpret(sp).unwrap();
        assert_eq!(dense.len(), 16);
        let nonzero = dense.iter().filter(|v| **v != Fixed::ZERO).count();
        assert!(nonzero >= m.nnz() / 2, "stored values appear in the expansion");
    }
}
