//! Builders for the four paper kernels (Table III) on the context API,
//! plus their operation counts for the CPU baseline model.

use crate::context::{Context, ContextError};
use crate::graph::Res;
use snacknoc_workloads::kernels::{dense_matrix, sparse_matrix, vector, Kernel};

/// A built kernel: the context and its root handle, ready to compile or
/// interpret.
#[derive(Clone, Debug)]
pub struct BuiltKernel {
    /// The context holding the dataflow graph.
    pub context: Context,
    /// The root (result) handle.
    pub root: Res,
    /// Which paper kernel this is.
    pub kernel: Kernel,
    /// The size parameter it was built at.
    pub size: usize,
}

/// Builds one of the paper's kernels at the given size with seeded inputs.
///
/// Size semantics match Table III:
/// * `Sgemm` — `size × size` dense matrices (paper: 4096).
/// * `Reduction` — a `size`-element vector (paper: 640 M).
/// * `Mac` — two `size`-element vectors, dot product (paper: 640 K).
/// * `Spmv` — a `size × size` matrix at 70 % sparsity (paper: 4096).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn build(kernel: Kernel, size: usize, seed: u64) -> BuiltKernel {
    assert!(size > 0, "kernel size must be positive");
    let result: Result<(Context, Res), ContextError> = (|| match kernel {
        Kernel::Sgemm => {
            let a = dense_matrix(size, size, seed);
            let b = dense_matrix(size, size, seed.wrapping_add(1));
            let mut cxt = Context::new(format!("sgemm-{size}"));
            let ra = cxt.input(&a.data, size, size)?;
            let rb = cxt.input(&b.data, size, size)?;
            let root = cxt.mul(ra, rb)?;
            Ok((cxt, root))
        }
        Kernel::Reduction => {
            let v = vector(size, seed);
            let mut cxt = Context::new(format!("reduction-{size}"));
            let rv = cxt.input(&v, size, 1)?;
            let root = cxt.reduce(rv)?;
            Ok((cxt, root))
        }
        Kernel::Mac => {
            let a = vector(size, seed);
            let b = vector(size, seed.wrapping_add(1));
            let mut cxt = Context::new(format!("mac-{size}"));
            let ra = cxt.input(&a, 1, size)?;
            let rb = cxt.input(&b, size, 1)?;
            let root = cxt.mul(ra, rb)?;
            Ok((cxt, root))
        }
        Kernel::Spmv => {
            let m = sparse_matrix(size, 0.70, seed);
            let x = vector(size, seed.wrapping_add(1));
            let mut cxt = Context::new(format!("spmv-{size}"));
            let rm = cxt.sparse(&m)?;
            let rx = cxt.input(&x, size, 1)?;
            let root = cxt.spmv(rm, rx)?;
            Ok((cxt, root))
        }
    })();
    let (context, root) = result.expect("kernel builders construct valid graphs");
    BuiltKernel { context, root, kernel, size }
}

/// Arithmetic operations (multiplies + adds) the kernel performs at `size`,
/// used by the CPU baseline model. SPMV counts expected non-zeros at the
/// paper's 70 % sparsity.
pub fn op_count(kernel: Kernel, size: usize) -> u64 {
    let n = size as u64;
    match kernel {
        Kernel::Sgemm => 2 * n * n * n,
        Kernel::Reduction => n,
        Kernel::Mac => 2 * n,
        Kernel::Spmv => 2 * (n * n) * 3 / 10,
    }
}

/// The paper's full-scale input size for each kernel (Table III).
pub fn paper_size(kernel: Kernel) -> usize {
    match kernel {
        Kernel::Sgemm => 4_096,
        Kernel::Reduction => 640_000_000,
        Kernel::Mac => 640_000,
        Kernel::Spmv => 4_096,
    }
}

/// A scaled-down size whose cycle-level simulation completes in seconds,
/// preserving each kernel's parallelism structure.
pub fn sim_size(kernel: Kernel) -> usize {
    match kernel {
        Kernel::Sgemm => 24,
        Kernel::Reduction => 16_384,
        Kernel::Mac => 8_192,
        Kernel::Spmv => 96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MapperConfig;
    use snacknoc_noc::Mesh;

    #[test]
    fn all_kernels_build_compile_and_validate() {
        let mesh = Mesh::new(4, 4);
        let cfg = MapperConfig::for_mesh(&mesh);
        for kernel in Kernel::ALL {
            let built = build(kernel, 12, 42);
            let compiled = built.context.compile(built.root, &cfg).unwrap();
            compiled.validate().unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert!(!compiled.is_empty());
            let reference = built.context.interpret(built.root).unwrap();
            assert_eq!(reference.len(), compiled.num_outputs);
        }
    }

    #[test]
    fn op_counts_match_formulae() {
        assert_eq!(op_count(Kernel::Sgemm, 10), 2_000);
        assert_eq!(op_count(Kernel::Reduction, 100), 100);
        assert_eq!(op_count(Kernel::Mac, 100), 200);
        assert_eq!(op_count(Kernel::Spmv, 10), 60);
    }

    #[test]
    fn builds_are_seed_deterministic() {
        let a = build(Kernel::Spmv, 16, 7);
        let b = build(Kernel::Spmv, 16, 7);
        assert_eq!(
            a.context.interpret(a.root).unwrap(),
            b.context.interpret(b.root).unwrap()
        );
    }

    #[test]
    fn paper_sizes_match_table_three() {
        assert_eq!(paper_size(Kernel::Sgemm), 4096);
        assert_eq!(paper_size(Kernel::Reduction), 640_000_000);
        assert_eq!(paper_size(Kernel::Mac), 640_000);
        assert_eq!(paper_size(Kernel::Spmv), 4096);
        for k in Kernel::ALL {
            assert!(sim_size(k) > 0 && sim_size(k) <= paper_size(k));
        }
    }
}
