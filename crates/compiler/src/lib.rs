//! # snacknoc-compiler
//!
//! The SnackNoC programming model and JIT compiler (paper §IV).
//!
//! Programs are built *declaratively* through a [`Context`] (the paper's
//! library interface, Fig. 8b): `input` / `scalar` / `sparse` create
//! immediate arrays, `mul` / `add` / `sub` / `elem_mul` / `reduce` / `spmv`
//! build a deterministic dataflow graph. A root handle can then be:
//!
//! * **interpreted** ([`Context::interpret`]) — a bit-exact Q16.16
//!   fixed-point reference evaluation, or
//! * **compiled** ([`Context::compile`]) — lowered by the JIT mapper to a
//!   linear instruction stream for the CPM: post-order per-expression
//!   mapping, round-robin RCU scheduling, MAC-fused inner products, and
//!   exact dependent counting for transient data tokens.
//!
//! [`kernels`] builds the paper's four evaluation kernels (SGEMM,
//! Reduction, MAC, SPMV) at arbitrary scales.
//!
//! ## Example
//!
//! ```
//! use snacknoc_compiler::{Context, MapperConfig};
//! use snacknoc_core::SnackPlatform;
//! use snacknoc_noc::NocConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform = SnackPlatform::new(NocConfig::default())?;
//! let mut cxt = Context::new("demo");
//! let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2)?;
//! let b = cxt.input(&[1.0, 1.0, 1.0, 1.0], 2, 2)?;
//! let ab = cxt.mul(a, b)?;
//! let kernel = cxt.compile(ab, &MapperConfig::for_mesh(platform.mesh()))?;
//! let run = platform.run_kernel(&kernel, 100_000)?;
//! assert_eq!(run.outputs, cxt.interpret(ab)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod context;
pub mod graph;
mod interp;
pub mod kernels;
pub mod mapping;

pub use context::{Context, ContextError};
pub use graph::{Res, Shape};
pub use kernels::{build, op_count, paper_size, sim_size, BuiltKernel};
pub use mapping::{MapError, MapperConfig};
