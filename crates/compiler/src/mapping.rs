//! The JIT mapper (paper §IV-B): lowers a context graph to a linear
//! instruction stream for the CPM.
//!
//! Mapping follows the paper's choices:
//!
//! * **Post-order traversal** — each array expression is fully mapped
//!   before the next (§IV-B1).
//! * **Round-robin scheduling** — consecutive element-wise operations of
//!   one expression land on consecutive RCUs.
//! * **MAC fusion** — inner products compile to a MAC sub-block on one
//!   RCU, keeping partial sums in the local accumulator instead of pushing
//!   them onto the NoC (the paper's chosen point in the mapping space).
//!   Disable with [`MapperConfig::with_mac_fusion`] for the distributed
//!   multiply-plus-reduce alternative (option 2 of §IV-B1) — the ablation
//!   benchmark compares the two.
//! * **Dependent counting** — the only lookahead performed is liveness:
//!   each intermediate element's data token carries the exact number of
//!   consuming operand references, so it persists on the ring precisely
//!   until its last consumer captures it.

use crate::context::Context;
use crate::graph::{ElemOp, NodeKind, Res};
use snacknoc_core::fixed::Fixed;
use snacknoc_core::token::{
    CompiledKernel, DepId, Instruction, Op, Operand, ResultDest, SubBlockId,
};
use snacknoc_noc::{Mesh, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Error returned when a kernel cannot be mapped onto the configured RCU
/// set. Mapping onto a degraded (restricted) set must *never* panic — a
/// platform remapping a kernel off dead RCUs turns this into
/// `Unrecoverable` instead of crashing the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum MapError {
    /// The RCU set is empty: there is nowhere to schedule instructions.
    NoRcus,
    /// Every RCU in the candidate set is excluded (dead).
    AllRcusDead {
        /// Size of the candidate set before exclusion.
        total: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoRcus => write!(f, "mapper has no RCUs to schedule onto"),
            MapError::AllRcusDead { total } => {
                write!(f, "all {total} candidate RCUs are dead")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Configuration of the mapper: which RCUs exist and which mapping
/// strategies are enabled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapperConfig {
    /// RCUs available for scheduling, in round-robin order.
    pub rcus: Vec<NodeId>,
    /// Keep inner products in local accumulators (paper default: `true`).
    pub mac_fusion: bool,
    /// Issue-order interleave granularity for chunked accumulations:
    /// consecutive runs of this many same-PE instructions alternate across
    /// chunks, so all RCUs compute concurrently while instruction packets
    /// still pack fully. Matches the CPM's instructions-per-flit.
    pub interleave: usize,
}

impl MapperConfig {
    /// One RCU per router of `mesh`, MAC fusion on.
    pub fn for_mesh(mesh: &Mesh) -> Self {
        MapperConfig { rcus: mesh.nodes().collect(), mac_fusion: true, interleave: 2 }
    }

    /// One RCU per router of `mesh` *excluding* the nodes in `dead`, MAC
    /// fusion on — the degraded-platform entry point: map a kernel onto
    /// whatever compute survives.
    ///
    /// # Errors
    ///
    /// [`MapError::AllRcusDead`] when the exclusion empties the set.
    pub fn for_live_rcus(mesh: &Mesh, dead: &[NodeId]) -> Result<Self, MapError> {
        Self::for_mesh(mesh).without_rcus(dead)
    }

    /// Enables/disables MAC fusion.
    pub fn with_mac_fusion(mut self, on: bool) -> Self {
        self.mac_fusion = on;
        self
    }

    /// Restricts scheduling to the given RCUs.
    ///
    /// # Errors
    ///
    /// [`MapError::NoRcus`] when `rcus` is empty.
    pub fn with_rcus(mut self, rcus: Vec<NodeId>) -> Result<Self, MapError> {
        if rcus.is_empty() {
            return Err(MapError::NoRcus);
        }
        self.rcus = rcus;
        Ok(self)
    }

    /// Removes the nodes in `dead` from the schedulable set, preserving
    /// round-robin order of the survivors.
    ///
    /// # Errors
    ///
    /// [`MapError::AllRcusDead`] when nothing survives.
    pub fn without_rcus(mut self, dead: &[NodeId]) -> Result<Self, MapError> {
        let total = self.rcus.len();
        self.rcus.retain(|r| !dead.contains(r));
        if self.rcus.is_empty() {
            return Err(MapError::AllRcusDead { total });
        }
        Ok(self)
    }
}

/// Where one element of a mapped node comes from.
#[derive(Clone, Copy, Debug)]
enum ElemSrc {
    /// An immediate streamed inside instruction tokens.
    Imm(Fixed),
    /// A transient data token.
    Dep(DepId),
}

struct Mapper<'c> {
    ctx: &'c Context,
    cfg: &'c MapperConfig,
    memo: Vec<Option<Vec<ElemSrc>>>,
    instructions: Vec<Instruction>,
    /// Instruction index producing each dependency (for the output fix-up).
    producer: HashMap<DepId, usize>,
    /// Operand references per dependency (for dependent counting).
    refcount: HashMap<DepId, u32>,
    next_dep: DepId,
    next_block: SubBlockId,
    rr: usize,
}

/// Compiles the graph rooted at `root`.
///
/// # Errors
///
/// [`MapError::NoRcus`] when the config has nowhere to schedule — the
/// only input-driven failure; everything past the guard is total.
pub(crate) fn compile(
    ctx: &Context,
    root: Res,
    cfg: &MapperConfig,
) -> Result<CompiledKernel, MapError> {
    if cfg.rcus.is_empty() {
        return Err(MapError::NoRcus);
    }
    let mut m = Mapper {
        ctx,
        cfg,
        memo: vec![None; ctx.nodes.len()],
        instructions: Vec::new(),
        producer: HashMap::new(),
        refcount: HashMap::new(),
        next_dep: 0,
        next_block: 0,
        rr: 0,
    };
    let srcs = m.map_node(root);
    // Turn the root's elements into kernel outputs.
    for (index, src) in srcs.iter().enumerate() {
        match *src {
            ElemSrc::Dep(d) => {
                let at = m.producer[&d];
                m.instructions[at].dest = ResultDest::Output { index: index as u32 };
            }
            ElemSrc::Imm(v) => {
                // The root is (or contains) an immediate: materialise it.
                let ins = Instruction {
                    op: Op::Add,
                    pe: m.next_rcu(),
                    vl: Operand::Imm(v),
                    vr: Operand::Imm(Fixed::ZERO),
                    dest: ResultDest::Output { index: index as u32 },
                    sub_block: m.next_block,
                    seq: 0,
                    ends_block: true,
                };
                m.next_block += 1;
                m.instructions.push(ins);
            }
        }
    }
    // Dependent-count fix-up: every token knows exactly how many operand
    // references will capture it.
    for ins in &mut m.instructions {
        if let ResultDest::Token { dep, dependents } = &mut ins.dest {
            *dependents = m.refcount.get(dep).copied().unwrap_or(0);
            debug_assert!(*dependents > 0, "dead intermediate {dep} mapped");
        }
    }
    // SPMV assembles operands through an indexed gather: mark the kernel
    // so the CPM models the throttled DRAM stream (paper §V-B).
    let irregular_fetch = ctx
        .nodes
        .iter()
        .any(|n| matches!(n.kind, NodeKind::Spmv(..)));
    Ok(CompiledKernel {
        name: ctx.name().to_owned(),
        num_outputs: srcs.len(),
        instructions: m.instructions,
        irregular_fetch,
    })
}

impl Mapper<'_> {
    fn next_rcu(&mut self) -> NodeId {
        let pe = self.cfg.rcus[self.rr % self.cfg.rcus.len()];
        self.rr += 1;
        pe
    }

    fn operand(&mut self, src: ElemSrc) -> Operand {
        match src {
            ElemSrc::Imm(v) => Operand::Imm(v),
            ElemSrc::Dep(d) => {
                *self.refcount.entry(d).or_insert(0) += 1;
                Operand::Dep(d)
            }
        }
    }

    /// Emits a fresh-token destination and returns its dependency id.
    fn fresh_token(&mut self) -> (DepId, ResultDest) {
        let dep = self.next_dep;
        self.next_dep += 1;
        (dep, ResultDest::Token { dep, dependents: 0 })
    }

    fn emit(&mut self, ins: Instruction) -> usize {
        self.instructions.push(ins);
        self.instructions.len() - 1
    }

    fn map_node(&mut self, r: Res) -> Vec<ElemSrc> {
        if let Some(srcs) = &self.memo[r.0] {
            return srcs.clone();
        }
        let node = &self.ctx.nodes[r.0];
        let shape = node.shape;
        let srcs = match node.kind.clone() {
            NodeKind::Dense(values) => values.into_iter().map(ElemSrc::Imm).collect(),
            NodeKind::Sparse { row_ptr, col_idx, values } => {
                // Dense expansion (sparse nodes normally flow through spmv).
                let mut dense = vec![ElemSrc::Imm(Fixed::ZERO); shape.len()];
                for row in 0..shape.rows {
                    for i in row_ptr[row]..row_ptr[row + 1] {
                        dense[row * shape.cols + col_idx[i]] = ElemSrc::Imm(values[i]);
                    }
                }
                dense
            }
            NodeKind::Elem(op, a, b) => self.map_elementwise(op, a, b, shape.len()),
            NodeKind::MatMul(a, b) => self.map_matmul(a, b),
            NodeKind::Reduce(a) => {
                let elems = self.map_node(a);
                vec![self.map_chunked(Op::Acc, &pair_up(elems))]
            }
            NodeKind::Spmv(m, x) => self.map_spmv(m, x),
        };
        self.memo[r.0] = Some(srcs.clone());
        srcs
    }

    fn map_elementwise(&mut self, op: ElemOp, a: Res, b: Res, len: usize) -> Vec<ElemSrc> {
        let sa = self.map_node(a);
        let sb = self.map_node(b);
        let pick = |v: &Vec<ElemSrc>, i: usize| if v.len() == 1 { v[0] } else { v[i] };
        let alu = match op {
            ElemOp::Add => Op::Add,
            ElemOp::Sub => Op::Sub,
            ElemOp::Mul => Op::Mul,
        };
        (0..len)
            .map(|i| {
                let vl = self.operand(pick(&sa, i));
                let vr = self.operand(pick(&sb, i));
                let (dep, dest) = self.fresh_token();
                let block = self.next_block;
                self.next_block += 1;
                let pe = self.next_rcu();
                let at = self.emit(Instruction {
                    op: alu,
                    pe,
                    vl,
                    vr,
                    dest,
                    sub_block: block,
                    seq: 0,
                    ends_block: true,
                });
                self.producer.insert(dep, at);
                ElemSrc::Dep(dep)
            })
            .collect()
    }

    fn map_matmul(&mut self, a: Res, b: Res) -> Vec<ElemSrc> {
        let (m, k) = {
            let s = self.ctx.nodes[a.0].shape;
            (s.rows, s.cols)
        };
        let n = self.ctx.nodes[b.0].shape.cols;
        let sa = self.map_node(a);
        let sb = self.map_node(b);
        let mut out = Vec::with_capacity(m * n);
        for i in 0..m {
            for j in 0..n {
                let pairs: Vec<(ElemSrc, ElemSrc)> =
                    (0..k).map(|l| (sa[i * k + l], sb[l * n + j])).collect();
                let src = if self.cfg.mac_fusion {
                    // A dot product that is the *whole* expression (1×1
                    // result) would serialise on one RCU; chunk it across
                    // the RCUs like a reduction (paper §IV-B1 option 3).
                    if m * n == 1 && pairs.len() > 2 * self.cfg.rcus.len() {
                        self.map_chunked(Op::Mac, &pairs)
                    } else {
                        self.map_accumulation(Op::Mac, &pairs)
                    }
                } else {
                    // Ablation: distribute multiplies, reduce elsewhere.
                    let products: Vec<ElemSrc> = pairs
                        .iter()
                        .map(|&(x, y)| {
                            let vl = self.operand(x);
                            let vr = self.operand(y);
                            let (dep, dest) = self.fresh_token();
                            let block = self.next_block;
                            self.next_block += 1;
                            let pe = self.next_rcu();
                            let at = self.emit(Instruction {
                                op: Op::Mul,
                                pe,
                                vl,
                                vr,
                                dest,
                                sub_block: block,
                                seq: 0,
                                ends_block: true,
                            });
                            self.producer.insert(dep, at);
                            ElemSrc::Dep(dep)
                        })
                        .collect();
                    self.map_accumulation(Op::Acc, &pair_up(products))
                };
                out.push(src);
            }
        }
        out
    }

    /// Builds (without emitting) one accumulator sub-block on `pe`
    /// computing `Σ f(vl, vr)` over `pairs` (`f` = `vl*vr` for [`Op::Mac`],
    /// `vl+vr` for [`Op::Acc`]). Returns the instructions, the result's
    /// source, and the result's dependency id.
    fn build_accumulation(
        &mut self,
        op: Op,
        pe: NodeId,
        pairs: &[(ElemSrc, ElemSrc)],
    ) -> (Vec<Instruction>, ElemSrc, DepId) {
        debug_assert!(op.uses_accumulator());
        debug_assert!(!pairs.is_empty());
        let block = self.next_block;
        self.next_block += 1;
        let last = pairs.len() - 1;
        let mut built = Vec::with_capacity(pairs.len());
        let mut result_dep = 0;
        let mut result = ElemSrc::Imm(Fixed::ZERO);
        for (seq, &(x, y)) in pairs.iter().enumerate() {
            let vl = self.operand(x);
            let vr = self.operand(y);
            let dest = if seq == last {
                let (dep, dest) = self.fresh_token();
                result = ElemSrc::Dep(dep);
                result_dep = dep;
                dest
            } else {
                ResultDest::Accumulate
            };
            built.push(Instruction {
                op,
                pe,
                vl,
                vr,
                dest,
                sub_block: block,
                seq: seq as u32,
                ends_block: seq == last,
            });
        }
        (built, result, result_dep)
    }

    /// Emits one accumulator sub-block on the next RCU. Returns the
    /// result's source.
    fn map_accumulation(&mut self, op: Op, pairs: &[(ElemSrc, ElemSrc)]) -> ElemSrc {
        let pe = self.next_rcu();
        let (built, result, dep) = self.build_accumulation(op, pe, pairs);
        let base = self.instructions.len();
        self.producer.insert(dep, base + built.len() - 1);
        self.instructions.extend(built);
        result
    }

    /// Splits a long accumulation (sum reduction or whole-expression dot
    /// product) into per-RCU chains plus a combining accumulation. The
    /// chains' instructions are *interleaved* in issue order (in runs of
    /// [`MapperConfig::interleave`]) so every RCU computes concurrently
    /// while instruction packets still pack fully.
    fn map_chunked(&mut self, op: Op, pairs: &[(ElemSrc, ElemSrc)]) -> ElemSrc {
        let rcus = self.cfg.rcus.len();
        if pairs.len() <= 2 * rcus {
            return self.map_accumulation(op, pairs);
        }
        let chunk = pairs.len().div_ceil(rcus).max(2);
        let mut chains: Vec<Vec<Instruction>> = Vec::new();
        let mut partials: Vec<ElemSrc> = Vec::new();
        let mut deps: Vec<DepId> = Vec::new();
        for c in pairs.chunks(chunk) {
            let pe = self.next_rcu();
            let (built, result, dep) = self.build_accumulation(op, pe, c);
            chains.push(built);
            partials.push(result);
            deps.push(dep);
        }
        // Interleave the chains in issue order, `interleave` at a time,
        // recording each chain tail's final position as it lands (the
        // tail instruction produces the partial's token, so its producer
        // entry must point at the interleaved — not per-chain — index).
        let group = self.cfg.interleave.max(1);
        let mut cursors = vec![0usize; chains.len()];
        let mut remaining: usize = chains.iter().map(|c| c.len()).sum();
        while remaining > 0 {
            for (ci, (chain, cursor)) in
                chains.iter_mut().zip(cursors.iter_mut()).enumerate()
            {
                let take = group.min(chain.len() - *cursor);
                for _ in 0..take {
                    self.instructions.push(chain[*cursor]);
                    *cursor += 1;
                    remaining -= 1;
                    if *cursor == chain.len() {
                        self.producer.insert(deps[ci], self.instructions.len() - 1);
                    }
                }
            }
        }
        if partials.len() == 1 {
            partials[0]
        } else {
            self.map_accumulation(Op::Acc, &pair_up(partials))
        }
    }

    fn map_spmv(&mut self, m: Res, x: Res) -> Vec<ElemSrc> {
        let sx = self.map_node(x);
        let NodeKind::Sparse { row_ptr, col_idx, values } = self.ctx.nodes[m.0].kind.clone()
        else {
            unreachable!("spmv matrix operand is sparse by construction");
        };
        let rows = self.ctx.nodes[m.0].shape.rows;
        (0..rows)
            .map(|row| {
                let pairs: Vec<(ElemSrc, ElemSrc)> = (row_ptr[row]..row_ptr[row + 1])
                    .map(|i| (ElemSrc::Imm(values[i]), sx[col_idx[i]]))
                    .collect();
                if pairs.is_empty() {
                    // Empty row: y[row] = 0.
                    self.map_accumulation(
                        Op::Acc,
                        &[(ElemSrc::Imm(Fixed::ZERO), ElemSrc::Imm(Fixed::ZERO))],
                    )
                } else {
                    self.map_accumulation(Op::Mac, &pairs)
                }
            })
            .collect()
    }
}

/// Packs a flat element list into operand pairs for accumulating adds
/// (each [`Op::Acc`] consumes two elements); odd tails pad with zero.
fn pair_up(elems: Vec<ElemSrc>) -> Vec<(ElemSrc, ElemSrc)> {
    let mut pairs = Vec::with_capacity(elems.len().div_ceil(2));
    let mut it = elems.into_iter();
    while let Some(a) = it.next() {
        let b = it.next().unwrap_or(ElemSrc::Imm(Fixed::ZERO));
        pairs.push((a, b));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_core::token::ResultDest;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    #[test]
    fn compiled_matmul_validates_and_uses_mac_blocks() {
        let mut cxt = Context::new("mm");
        let a = cxt.input(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let b = cxt.input(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 3, 2).unwrap();
        let ab = cxt.mul(a, b).unwrap();
        let k = cxt.compile(ab, &MapperConfig::for_mesh(&mesh())).unwrap();
        k.validate().unwrap();
        // 4 output elements × 3 MACs each.
        assert_eq!(k.len(), 12);
        assert_eq!(k.num_outputs, 4);
        assert!(k.instructions.iter().all(|i| i.op == Op::Mac));
        // Inputs are immediates: no tokens at all for a single expression.
        assert!(k
            .instructions
            .iter()
            .all(|i| !matches!(i.dest, ResultDest::Token { .. })));
    }

    #[test]
    fn round_robin_spreads_elements_across_rcus() {
        let mut cxt = Context::new("rr");
        let a = cxt.input(&vec![1.0; 32], 4, 8).unwrap();
        let b = cxt.input(&vec![2.0; 32], 4, 8).unwrap();
        let s = cxt.add(a, b).unwrap();
        let k = cxt.compile(s, &MapperConfig::for_mesh(&mesh())).unwrap();
        k.validate().unwrap();
        let mut pes: Vec<usize> = k.instructions.iter().map(|i| i.pe.index()).collect();
        // First 16 elements cover all 16 RCUs exactly once.
        let first: Vec<usize> = pes.drain(..16).collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn chained_expressions_produce_tokens_with_exact_dependents() {
        // alpha * (A×B) + C: the A×B elements are consumed once each by the
        // scaling, whose results are consumed once each by the add.
        let mut cxt = Context::new("chain");
        let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = cxt.input(&[1.0, 1.0, 1.0, 1.0], 2, 2).unwrap();
        let c = cxt.input(&[0.5, 0.5, 0.5, 0.5], 2, 2).unwrap();
        let alpha = cxt.scalar(3.0);
        let ab = cxt.mul(a, b).unwrap();
        let sab = cxt.mul(alpha, ab).unwrap();
        let d = cxt.add(sab, c).unwrap();
        let k = cxt.compile(d, &MapperConfig::for_mesh(&mesh())).unwrap();
        k.validate().unwrap();
        for ins in &k.instructions {
            if let ResultDest::Token { dependents, .. } = ins.dest {
                assert_eq!(dependents, 1, "each intermediate consumed exactly once here");
            }
        }
        // Exactly 8 tokens: 4 from A×B, 4 from the scaling.
        let tokens =
            k.instructions.iter().filter(|i| matches!(i.dest, ResultDest::Token { .. })).count();
        assert_eq!(tokens, 8);
    }

    #[test]
    fn shared_intermediate_counts_every_consumer() {
        // sq = x*x (1 element), y = sq + sq: dependents of sq must be 2.
        let mut cxt = Context::new("shared");
        let x = cxt.scalar(2.0);
        let sq = cxt.elem_mul(x, x).unwrap();
        let y = cxt.add(sq, sq).unwrap();
        let k = cxt.compile(y, &MapperConfig::for_mesh(&mesh())).unwrap();
        k.validate().unwrap();
        let deps: Vec<u32> = k
            .instructions
            .iter()
            .filter_map(|i| match i.dest {
                ResultDest::Token { dependents, .. } => Some(dependents),
                _ => None,
            })
            .collect();
        assert_eq!(deps, vec![2]);
    }

    #[test]
    fn long_dot_product_is_chunked_across_rcus() {
        let mut cxt = Context::new("dot");
        let n = 256;
        let a = cxt.input(&vec![1.0; n], 1, n).unwrap();
        let b = cxt.input(&vec![1.0; n], n, 1).unwrap();
        let d = cxt.mul(a, b).unwrap();
        let k = cxt.compile(d, &MapperConfig::for_mesh(&mesh())).unwrap();
        k.validate().unwrap();
        let pes: std::collections::HashSet<usize> =
            k.instructions.iter().map(|i| i.pe.index()).collect();
        assert!(pes.len() >= 8, "dot product must spread over RCUs, used {}", pes.len());
    }

    #[test]
    fn mac_fusion_off_distributes_multiplies() {
        let mut cxt = Context::new("nofuse");
        let a = cxt.input(&[1.0; 16], 4, 4).unwrap();
        let b = cxt.input(&[1.0; 16], 4, 4).unwrap();
        let ab = cxt.mul(a, b).unwrap();
        let cfg = MapperConfig::for_mesh(&mesh()).with_mac_fusion(false);
        let k = cxt.compile(ab, &cfg).unwrap();
        k.validate().unwrap();
        let muls = k.instructions.iter().filter(|i| i.op == Op::Mul).count();
        let accs = k.instructions.iter().filter(|i| i.op == Op::Acc).count();
        assert_eq!(muls, 64, "4x4x4 multiplies");
        assert!(accs >= 16, "plus reduction chains");
        // More network traffic than the fused version: tokens exist.
        assert!(k.instructions.iter().any(|i| matches!(i.dest, ResultDest::Token { .. })));
    }

    #[test]
    fn compilation_is_deterministic() {
        let build = || {
            let mut cxt = Context::new("det");
            let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
            let b = cxt.input(&[4.0, 3.0, 2.0, 1.0], 2, 2).unwrap();
            let ab = cxt.mul(a, b).unwrap();
            let r = cxt.reduce(ab).unwrap();
            cxt.compile(r, &MapperConfig::for_mesh(&mesh())).unwrap()
        };
        let k1 = build();
        let k2 = build();
        assert_eq!(k1.instructions, k2.instructions);
    }

    #[test]
    fn restricted_rcu_sets_are_typed_not_panicking() {
        let m = mesh();
        // Empty set and all-dead set are typed errors.
        assert_eq!(
            MapperConfig::for_mesh(&m).with_rcus(Vec::new()).unwrap_err(),
            MapError::NoRcus
        );
        let everyone: Vec<NodeId> = m.nodes().collect();
        assert_eq!(
            MapperConfig::for_live_rcus(&m, &everyone).unwrap_err(),
            MapError::AllRcusDead { total: 16 }
        );
        // Excluding some nodes keeps round-robin order of survivors.
        let dead = [NodeId::new(0), NodeId::new(5)];
        let cfg = MapperConfig::for_live_rcus(&m, &dead).unwrap();
        assert_eq!(cfg.rcus.len(), 14);
        assert!(!cfg.rcus.contains(&NodeId::new(0)));
        assert!(!cfg.rcus.contains(&NodeId::new(5)));
        // A kernel mapped onto the restricted set never schedules on the
        // dead nodes, still validates and is deterministic.
        let build = |cfg: &MapperConfig| {
            let mut cxt = Context::new("restricted");
            let a = cxt.input(&vec![1.0; 64], 8, 8).unwrap();
            let b = cxt.input(&vec![2.0; 64], 8, 8).unwrap();
            let ab = cxt.mul(a, b).unwrap();
            cxt.compile(ab, cfg).unwrap()
        };
        let k = build(&cfg);
        k.validate().unwrap();
        assert!(k.instructions.iter().all(|i| !dead.contains(&i.pe)));
        assert_eq!(k.instructions, build(&cfg).instructions);
    }

    #[test]
    fn chunked_interleave_records_exact_producer_positions() {
        // The long-dot-product path exercises the inline producer
        // recording that replaced the rposition search: validate()'s
        // dependent/producer cross-check fails if any position is wrong.
        let mut cxt = Context::new("chunk-pos");
        let n = 300;
        let a = cxt.input(&vec![1.5; n], 1, n).unwrap();
        let b = cxt.input(&vec![0.5; n], n, 1).unwrap();
        let d = cxt.mul(a, b).unwrap();
        for interleave in [1, 2, 3, 7] {
            let mut cfg = MapperConfig::for_mesh(&mesh());
            cfg.interleave = interleave;
            let k = cxt.compile(d, &cfg).unwrap();
            k.validate().unwrap();
        }
    }

    #[test]
    fn input_as_root_materialises_outputs() {
        let mut cxt = Context::new("id");
        let a = cxt.input(&[7.0, 8.0], 1, 2).unwrap();
        let k = cxt.compile(a, &MapperConfig::for_mesh(&mesh())).unwrap();
        k.validate().unwrap();
        assert_eq!(k.num_outputs, 2);
        assert_eq!(k.len(), 2);
    }
}
