//! The Central Packet Manager: the controller of the SnackNoC platform
//! (paper §III-C).
//!
//! The CPM sits at a memory-controller node. It:
//!
//! 1. fetches the kernel's command buffer from main memory in DRAM batches,
//! 2. assembles instruction flits and issues them at 1 packet per cycle,
//! 3. tracks kernel execution state and collects results in an output FIFO,
//! 4. monitors NoC congestion with an ALO-style free-VC heuristic and, when
//!    the network is saturated, absorbs passing transient data tokens into
//!    an overflow buffer in main memory, replaying them when the pressure
//!    clears (paper §III-C2),
//! 5. answers runtime submissions — with a *busy* rejection while a kernel
//!    is resident or the network is in overflow.

use crate::dram::DramModel;
use crate::fixed::Fixed;
use crate::token::{CompiledKernel, DataToken, DepId, Instruction, ProgramError};
use snacknoc_noc::{LatencyHistogram, NodeId};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Tunable CPM parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CpmConfig {
    /// Capacity of the internal instruction buffer, in instructions.
    /// Paper §III-C1 sizes it from the peak DDR3 stream rate.
    pub instr_buffer_capacity: usize,
    /// Instructions fetched per DRAM batch.
    pub fetch_batch: usize,
    /// Instructions packed into one instruction packet (flit). With 16 B
    /// instructions on a 32 B channel this is 2 (paper Table IV flit size).
    pub instrs_per_packet: usize,
    /// Enter the overflow state when the fraction of useful free output
    /// VCs at the CPM's router drops below this.
    pub overflow_enter_below: f64,
    /// Leave the overflow state when the fraction rises above this
    /// (hysteresis).
    pub overflow_exit_above: f64,
    /// Capacity of the Offload Data Memory Buffer in tokens; paper
    /// §III-C2 sizes it to 4 instruction flits (one 64 B DDR3 transaction).
    pub offload_buffer_tokens: usize,
}

impl Default for CpmConfig {
    fn default() -> Self {
        CpmConfig {
            instr_buffer_capacity: 128,
            fetch_batch: 64,
            instrs_per_packet: 2,
            overflow_enter_below: 0.25,
            overflow_exit_above: 0.50,
            offload_buffer_tokens: 4,
        }
    }
}

/// An invalid [`CpmConfig`], rejected before a platform is built on it.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum CpmConfigError {
    /// The overflow hysteresis band is empty or inverted: the enter
    /// threshold must be strictly below the exit threshold, otherwise the
    /// CPM oscillates in and out of the overflow state every cycle.
    HysteresisInverted {
        /// `overflow_enter_below`.
        enter: f64,
        /// `overflow_exit_above`.
        exit: f64,
    },
    /// A threshold fraction is not a finite value in `[0, 1]`.
    FractionOutOfRange {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A buffer/batch capacity is zero.
    ZeroCapacity {
        /// Which field.
        field: &'static str,
    },
}

impl fmt::Display for CpmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpmConfigError::HysteresisInverted { enter, exit } => write!(
                f,
                "overflow hysteresis inverted: enter_below {enter} must be < exit_above {exit}"
            ),
            CpmConfigError::FractionOutOfRange { field, value } => {
                write!(f, "{field} = {value} is outside [0, 1]")
            }
            CpmConfigError::ZeroCapacity { field } => write!(f, "{field} must be nonzero"),
        }
    }
}

impl std::error::Error for CpmConfigError {}

impl CpmConfig {
    /// Checks the invariants the CPM relies on: both overflow thresholds
    /// finite fractions in `[0, 1]` with `enter_below` strictly less than
    /// `exit_above` (a real hysteresis band), and nonzero buffer, batch
    /// and packing capacities.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), CpmConfigError> {
        for (field, value) in [
            ("overflow_enter_below", self.overflow_enter_below),
            ("overflow_exit_above", self.overflow_exit_above),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(CpmConfigError::FractionOutOfRange { field, value });
            }
        }
        if self.overflow_enter_below >= self.overflow_exit_above {
            return Err(CpmConfigError::HysteresisInverted {
                enter: self.overflow_enter_below,
                exit: self.overflow_exit_above,
            });
        }
        for (field, value) in [
            ("instr_buffer_capacity", self.instr_buffer_capacity),
            ("fetch_batch", self.fetch_batch),
            ("instrs_per_packet", self.instrs_per_packet),
            ("offload_buffer_tokens", self.offload_buffer_tokens),
        ] {
            if value == 0 {
                return Err(CpmConfigError::ZeroCapacity { field });
            }
        }
        Ok(())
    }
}

/// Parameters of the CPM's token-loss watchdog (the recovery half of the
/// fault-injection subsystem).
///
/// The watchdog keeps a registry of every live ring token (registered at
/// launch, refreshed on every hop/capture the platform reports). A token
/// whose registry entry goes quiet for longer than `deadline` cycles is
/// presumed lost; the CPM then re-issues it — from its overflow buffer if
/// a copy is parked there, otherwise by asking the producing RCU to
/// retransmit from retained kernel state — with bounded retries and a
/// linearly growing backoff between attempts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RecoveryConfig {
    /// Master switch. Disabled (the default) costs nothing per cycle.
    pub enabled: bool,
    /// Cycles of registry silence after which a token is presumed lost.
    ///
    /// Must exceed the worst-case hop-to-hop token latency under
    /// congestion, or the watchdog declares merely-delayed tokens lost
    /// (harmless — duplicates retire once the registry settles — but the
    /// spurious retransmissions cost cycles). 512 is calibrated so a
    /// fault-free congested SGEMM run stays at zero detections.
    pub deadline: u64,
    /// Cycles between watchdog sweeps of the registry.
    pub watchdog_period: u64,
    /// Re-issue attempts per token before the CPM gives up (the kernel
    /// then surfaces as a `KernelTimeout` at the platform layer).
    pub max_retries: u32,
    /// Base backoff between attempts; attempt `n` waits `n * backoff`.
    pub backoff: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: false,
            deadline: 512,
            watchdog_period: 32,
            max_retries: 16,
            backoff: 64,
        }
    }
}

impl RecoveryConfig {
    /// The enabled profile used by the fault experiments: default timing
    /// with the watchdog switched on.
    pub fn aggressive() -> Self {
        RecoveryConfig { enabled: true, ..RecoveryConfig::default() }
    }
}

/// Watchdog/recovery counters (the `FaultStats` of the paper-facing
/// reports, CPM side; the NoC's injection counters live in
/// `snacknoc_noc::FaultCounters`).
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Tokens the watchdog declared lost (unique loss events).
    pub detected: u64,
    /// Detected tokens that subsequently retired normally.
    pub recovered: u64,
    /// Re-issue attempts (overflow replays + producer retransmissions).
    pub retries: u64,
    /// Watchdog sweeps that found at least one overdue token.
    pub watchdog_fires: u64,
    /// Tokens discarded on arrival because their checksum failed.
    pub corrupt_detected: u64,
    /// Detection-to-retirement latency of recovered tokens, in cycles.
    pub recovery_latency: LatencyHistogram,
}

impl RecoveryStats {
    /// Accumulates `other` into `self` (multi-CPM aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.retries += other.retries;
        self.watchdog_fires += other.watchdog_fires;
        self.corrupt_detected += other.corrupt_detected;
        self.recovery_latency.merge(&other.recovery_latency);
    }
}

/// Watchdog registry entry for one live ring token.
#[derive(Clone, Debug)]
struct TokenRecord {
    /// The RCU that produced the token (retransmission source).
    producer: NodeId,
    /// Operand references not yet captured.
    outstanding: u32,
    /// Last cycle the platform reported any sign of life for this token.
    last_activity: u64,
    /// Cycle the watchdog first declared it lost.
    first_lost_at: u64,
    /// Re-issue attempts so far.
    retries: u32,
    /// Earliest cycle the next re-issue may happen (backoff).
    next_retry_at: u64,
    /// Whether this token has been declared lost at least once.
    detected: bool,
    /// Whether the token currently sits in this CPM's overflow buffer
    /// (parked tokens are safe; the sweep skips them).
    parked: bool,
}

/// Kernel execution state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpmState {
    /// No kernel resident.
    Idle,
    /// Fetching/issuing/awaiting results of the resident kernel.
    Running,
}

/// The CPM rejected a submission because a kernel is already resident
/// (paper: the CPM "delivers a busy response to the runtime").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpmBusy;

impl fmt::Display for CpmBusy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpm busy: a kernel is already resident")
    }
}

impl std::error::Error for CpmBusy {}

/// Why a kernel submission failed.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum SubmitError {
    /// A kernel is already resident.
    Busy,
    /// The program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "cpm busy: a kernel is already resident"),
            SubmitError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Something the CPM wants to inject this cycle.
#[derive(Clone, PartialEq, Debug)]
pub enum CpmEmission {
    /// An instruction packet (one flit) carrying instructions for one RCU.
    Instructions(Vec<Instruction>),
    /// A replayed overflow token, re-launched onto the ring.
    ReplayToken(DataToken),
    /// A watchdog request: `producer` should re-issue the retained token
    /// for `dep` with `remaining` dependents (the captures already served
    /// must not be counted again).
    RequestRetransmit {
        /// The lost dependency.
        dep: DepId,
        /// The RCU that produced it.
        producer: NodeId,
        /// Dependents still outstanding.
        remaining: u32,
    },
}

/// Counters for the cost/QoS analyses.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpmStats {
    /// Instruction packets issued.
    pub packets_issued: u64,
    /// Instructions issued.
    pub instructions_issued: u64,
    /// Tokens absorbed into the overflow buffer.
    pub tokens_absorbed: u64,
    /// Tokens replayed from the overflow buffer.
    pub tokens_replayed: u64,
    /// Cycles spent in the overflow state.
    pub overflow_cycles: u64,
    /// Submissions rejected busy.
    pub busy_rejections: u64,
    /// Kernels run to completion and collected (per-CPM accounting for
    /// the multi-tenant service layer; incremented by
    /// [`Cpm::take_results`], so it counts identically in every stepping
    /// mode).
    pub kernels_completed: u64,
}

/// Bit position of the CPM namespace within dependency ids and output
/// indices. A decentralized platform (paper §VII) runs one CPM per memory
/// controller; each tags the tokens it issues with its namespace so
/// concurrently-resident kernels never collide on the ring.
pub const NAMESPACE_SHIFT: u32 = 24;

/// Mask selecting the intra-kernel part of a dependency id/output index.
pub const NAMESPACE_MASK: u32 = (1 << NAMESPACE_SHIFT) - 1;

/// The Central Packet Manager.
#[derive(Clone, Debug)]
pub struct Cpm {
    node: NodeId,
    /// Namespace tag stamped into issued dependency ids and output indices.
    namespace: u32,
    cfg: CpmConfig,
    dram: DramModel,
    state: CpmState,
    /// Resident program (command buffer in main memory).
    program: Vec<Instruction>,
    /// Next program index to fetch from memory.
    fetch_ptr: usize,
    /// In-flight DRAM batch: (ready_at, count).
    fetch_inflight: Option<(u64, usize)>,
    /// Assembled instructions awaiting issue.
    instr_buffer: VecDeque<Instruction>,
    /// Output results FIFO (slot-indexed).
    results: Vec<Option<Fixed>>,
    results_remaining: usize,
    kernel_name: String,
    started_at: u64,
    finished_at: Option<u64>,
    /// Offload Data Memory Buffer: staging for overflow tokens. Tokens
    /// beyond its capacity spill (conceptually) straight to the in-memory
    /// overflow region, modelled by the same queue.
    overflow: VecDeque<DataToken>,
    in_overflow: bool,
    /// Alternation flag between overflow replay and instruction issue.
    replay_turn: bool,
    /// Whether the resident kernel's operand assembly is an irregular
    /// gather (throttles the DRAM stream rate — SPMV, paper §V-B).
    irregular_fetch: bool,
    /// Whether the command-buffer stream has already paid its first row
    /// activation: subsequent batches pipeline behind the open row.
    row_open: bool,
    /// Token-loss watchdog parameters (disabled by default).
    recovery: RecoveryConfig,
    /// Watchdog registry: one record per live ring token, keyed by
    /// dependency id (BTreeMap so sweeps are deterministic).
    watch: BTreeMap<DepId, TokenRecord>,
    /// Next watchdog sweep cycle.
    next_sweep: u64,
    /// Recovery counters.
    rec_stats: RecoveryStats,
    /// Counters.
    pub stats: CpmStats,
}

impl Cpm {
    /// Creates a CPM attached to the router at `node` (a memory-controller
    /// node in the paper's floorplan).
    pub fn new(node: NodeId, cfg: CpmConfig, dram: DramModel) -> Self {
        Self::with_namespace(node, 0, cfg, dram)
    }

    /// Creates a CPM with an explicit namespace tag (used by the
    /// decentralized multi-CPM platform; see [`NAMESPACE_SHIFT`]).
    ///
    /// # Panics
    ///
    /// Panics if `namespace` does not fit above [`NAMESPACE_SHIFT`].
    pub fn with_namespace(node: NodeId, namespace: u32, cfg: CpmConfig, dram: DramModel) -> Self {
        assert!(namespace < (1 << (32 - NAMESPACE_SHIFT)), "namespace too large");
        Cpm {
            node,
            namespace,
            cfg,
            dram,
            state: CpmState::Idle,
            program: Vec::new(),
            fetch_ptr: 0,
            fetch_inflight: None,
            instr_buffer: VecDeque::new(),
            results: Vec::new(),
            results_remaining: 0,
            kernel_name: String::new(),
            started_at: 0,
            finished_at: None,
            overflow: VecDeque::new(),
            in_overflow: false,
            replay_turn: false,
            irregular_fetch: false,
            row_open: false,
            recovery: RecoveryConfig::default(),
            watch: BTreeMap::new(),
            next_sweep: 0,
            rec_stats: RecoveryStats::default(),
            stats: CpmStats::default(),
        }
    }

    /// The node this CPM is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current kernel state.
    pub fn state(&self) -> CpmState {
        self.state
    }

    /// Whether the CPM is in the NoC-overflow state.
    pub fn in_overflow(&self) -> bool {
        self.in_overflow
    }

    /// Cycle the resident kernel finished, if it has.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Output slots still awaiting a result from the network (a progress
    /// signal for the platform's no-progress detector).
    pub fn pending_results(&self) -> usize {
        self.results_remaining
    }

    /// Submits a kernel for execution.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] while a kernel is resident;
    /// [`SubmitError::Invalid`] if the program fails validation.
    pub fn submit(&mut self, kernel: &CompiledKernel, now: u64) -> Result<(), SubmitError> {
        if self.state != CpmState::Idle {
            self.stats.busy_rejections += 1;
            return Err(SubmitError::Busy);
        }
        kernel.validate().map_err(SubmitError::Invalid)?;
        let fits = |v: u32| v <= NAMESPACE_MASK;
        if !fits(kernel.num_outputs as u32)
            || kernel.instructions.iter().any(|i| {
                !fits(i.sub_block)
                    || matches!(i.dest, crate::token::ResultDest::Token { dep, .. } if !fits(dep))
            })
        {
            return Err(SubmitError::Invalid(ProgramError::NamespaceOverflow));
        }
        self.program = kernel.instructions.clone();
        self.kernel_name = kernel.name.clone();
        self.irregular_fetch = kernel.irregular_fetch;
        self.row_open = false;
        self.fetch_ptr = 0;
        self.instr_buffer.clear();
        self.results = vec![None; kernel.num_outputs];
        self.results_remaining = kernel.num_outputs;
        self.started_at = now;
        self.finished_at = None;
        self.state = CpmState::Running;
        // Stale watchdog records from a previous kernel (e.g. tokens
        // given up on) must not leak into this one.
        self.watch.clear();
        self.next_sweep = now;
        // Kick off the first command-buffer fetch.
        self.start_fetch(now);
        Ok(())
    }

    /// Takes the completed kernel's results, returning the CPM to idle.
    /// Returns `None` if no kernel has finished.
    pub fn take_results(&mut self) -> Option<(String, Vec<Fixed>)> {
        self.finished_at?;
        let values =
            self.results.iter().map(|r| r.expect("all results arrived")).collect();
        self.state = CpmState::Idle;
        self.finished_at = None;
        self.stats.kernels_completed += 1;
        let name = std::mem::take(&mut self.kernel_name);
        self.results.clear();
        Some((name, values))
    }

    /// Receives a kernel result routed back from an RCU. The index may
    /// carry this CPM's namespace tag in its high bits.
    pub fn accept_result(&mut self, index: u32, value: Fixed, now: u64) {
        let slot = &mut self.results[(index & NAMESPACE_MASK) as usize];
        debug_assert!(slot.is_none(), "output {index} written twice");
        *slot = Some(value);
        self.results_remaining -= 1;
        if self.results_remaining == 0 {
            // Remaining FIFO entries are written back to memory; the final
            // writeback transaction closes the kernel (paper §III-C).
            self.finished_at = Some(now + self.dram.access_latency);
        }
    }

    /// Offers a transient token passing through the CPM node at cycle
    /// `now`. In the overflow state the CPM absorbs it into the offload
    /// buffer and returns `None`; otherwise the token continues on the
    /// ring. Either way the watchdog registry records the sighting.
    pub fn maybe_absorb(&mut self, token: DataToken, now: u64) -> Option<DataToken> {
        if self.in_overflow {
            if self.recovery.enabled {
                if let Some(rec) = self.watch.get_mut(&token.dep) {
                    rec.parked = true;
                    rec.last_activity = now;
                }
            }
            self.overflow.push_back(token);
            self.stats.tokens_absorbed += 1;
            None
        } else {
            if self.recovery.enabled {
                if let Some(rec) = self.watch.get_mut(&token.dep) {
                    rec.last_activity = now;
                }
            }
            Some(token)
        }
    }

    // -- Token-loss watchdog (the recovery half of the fault subsystem) --

    /// Switches the token-loss watchdog on/off and sets its timing.
    pub fn enable_recovery(&mut self, cfg: RecoveryConfig) {
        self.recovery = cfg;
        if !cfg.enabled {
            self.watch.clear();
        }
    }

    /// The active recovery configuration.
    pub fn recovery_config(&self) -> RecoveryConfig {
        self.recovery
    }

    /// Watchdog/recovery counters.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.rec_stats
    }

    /// Registers/refreshes a ring token the platform just launched from
    /// `producer` (first launch registers; every subsequent hop refreshes
    /// the record's liveness and un-parks it).
    pub fn note_token(&mut self, token: &DataToken, producer: NodeId, now: u64) {
        if !self.recovery.enabled {
            return;
        }
        self.watch
            .entry(token.dep)
            .and_modify(|rec| {
                rec.last_activity = now;
                rec.parked = false;
            })
            .or_insert(TokenRecord {
                producer,
                outstanding: token.dependents,
                last_activity: now,
                first_lost_at: 0,
                retries: 0,
                next_retry_at: 0,
                detected: false,
                parked: false,
            });
    }

    /// Records `captured` operand references served from the token for
    /// `dep` at cycle `now`.
    pub fn note_captures(&mut self, dep: DepId, captured: u32, now: u64) {
        if !self.recovery.enabled {
            return;
        }
        if let Some(rec) = self.watch.get_mut(&dep) {
            rec.outstanding = rec.outstanding.saturating_sub(captured);
            rec.last_activity = now;
        }
    }

    /// Whether the watchdog already considers `dep` fully served.
    ///
    /// True only with recovery enabled and a record whose `outstanding`
    /// count reached zero — or no record at all, which means the dep was
    /// already retired. The platform uses this to retire *duplicate*
    /// copies: after a false-positive loss declaration the original and
    /// the replay each serve a subset of the dependents, so neither
    /// copy's own `dependents` field reaches zero even though every
    /// operand reference has been satisfied. Without this check both
    /// copies would circulate the ring forever.
    pub fn token_settled(&self, dep: DepId) -> bool {
        self.recovery.enabled && self.watch.get(&dep).is_none_or(|rec| rec.outstanding == 0)
    }

    /// Records that the token for `dep` retired normally (all dependents
    /// served). Closes the watchdog record; if the token had been declared
    /// lost, this completes its recovery.
    pub fn note_retired(&mut self, dep: DepId, now: u64) {
        if !self.recovery.enabled {
            return;
        }
        if let Some(rec) = self.watch.remove(&dep) {
            if rec.detected {
                self.rec_stats.recovered += 1;
                self.rec_stats
                    .recovery_latency
                    .record(now.saturating_sub(rec.first_lost_at).max(1));
            }
        }
    }

    /// Records that an arriving copy of `dep` failed its checksum and was
    /// discarded. Marks the token lost immediately (no need to wait out
    /// the deadline: the corruption is positive evidence).
    pub fn note_corrupt(&mut self, dep: DepId, now: u64) {
        if !self.recovery.enabled {
            return;
        }
        self.rec_stats.corrupt_detected += 1;
        if let Some(rec) = self.watch.get_mut(&dep) {
            let first = !rec.detected;
            if first {
                rec.detected = true;
                rec.first_lost_at = now;
                self.rec_stats.detected += 1;
                // Fast-track the first retry: no need to wait out the
                // silence deadline, the corruption is positive evidence.
                rec.next_retry_at = now;
            }
            // Later corruptions keep the standing backoff schedule so a
            // sustained corruption burst can't burn the whole retry budget
            // in a tight loop.
            rec.parked = false;
            rec.last_activity = now.saturating_sub(self.recovery.deadline + 1);
        }
    }

    /// One watchdog sweep: declares overdue tokens lost and emits at most
    /// one re-issue — an overflow-buffer replay if a copy is parked here,
    /// otherwise a retransmission request to the producing RCU.
    fn recovery_sweep(&mut self, cycle: u64) -> Option<CpmEmission> {
        if !self.recovery.enabled || self.watch.is_empty() || cycle < self.next_sweep {
            return None;
        }
        self.next_sweep = cycle + self.recovery.watchdog_period;
        let mut emission = None;
        let mut fired = false;
        for (&dep, rec) in self.watch.iter_mut() {
            if rec.parked || rec.outstanding == 0 {
                continue;
            }
            if cycle.saturating_sub(rec.last_activity) <= self.recovery.deadline
                || cycle < rec.next_retry_at
            {
                continue;
            }
            fired = true;
            if !rec.detected {
                rec.detected = true;
                rec.first_lost_at = cycle;
                self.rec_stats.detected += 1;
            }
            if rec.retries >= self.recovery.max_retries || emission.is_some() {
                // Budget exhausted (give up; the platform's no-progress
                // window surfaces this as a KernelTimeout) or another
                // token already claimed this cycle's flit slot.
                continue;
            }
            rec.retries += 1;
            self.rec_stats.retries += 1;
            rec.next_retry_at = cycle + self.recovery.backoff * u64::from(rec.retries);
            rec.last_activity = cycle;
            emission = Some(match self.overflow.iter().position(|t| t.dep == dep) {
                Some(pos) => {
                    // The lost copy (or a twin) is parked in the offload
                    // buffer: replay it directly from memory.
                    let parked = self.overflow.remove(pos).expect("position exists");
                    self.stats.tokens_replayed += 1;
                    CpmEmission::ReplayToken(
                        DataToken::new(dep, rec.outstanding, parked.value).with_seq(parked.seq + 1),
                    )
                }
                None => CpmEmission::RequestRetransmit {
                    dep,
                    producer: rec.producer,
                    remaining: rec.outstanding,
                },
            });
        }
        if fired {
            self.rec_stats.watchdog_fires += 1;
        }
        emission
    }

    /// Number of tokens parked in the overflow path.
    pub fn overflow_backlog(&self) -> usize {
        self.overflow.len()
    }

    /// Watchdog records whose retry budget is exhausted while dependents
    /// are still outstanding — the signal that transient-loss recovery
    /// alone can no longer finish the resident kernel (a permanently dead
    /// producer or link). The platform's no-progress window surfaces this
    /// as a kernel-level remap-and-retry escalation.
    pub fn exhausted_retries(&self) -> u64 {
        self.watch
            .values()
            .filter(|r| r.detected && r.outstanding > 0 && r.retries >= self.recovery.max_retries)
            .count() as u64
    }

    /// Abandons the resident kernel and returns to `Idle` — the
    /// platform's escalation path when an attempt stalls against a
    /// permanent fault. Clears the program, instruction buffer, result
    /// FIFO, watchdog registry, and any overflow tokens belonging to this
    /// CPM's own namespace; parked tokens from *other* namespaces
    /// (concurrent kernels passing through this corner) are kept.
    /// Cumulative statistics are retained across the abort.
    pub fn abort(&mut self) {
        self.state = CpmState::Idle;
        self.program.clear();
        self.fetch_ptr = 0;
        self.fetch_inflight = None;
        self.instr_buffer.clear();
        self.results.clear();
        self.results_remaining = 0;
        self.kernel_name.clear();
        self.finished_at = None;
        self.replay_turn = false;
        self.irregular_fetch = false;
        self.row_open = false;
        self.watch.clear();
        let ns = self.namespace;
        self.overflow.retain(|t| t.dep >> NAMESPACE_SHIFT != ns);
    }

    /// Drops parked overflow tokens belonging to `namespace` — the
    /// platform sweeps every CPM with this when it quarantines an aborted
    /// attempt's epoch, since a token can be absorbed at any corner it
    /// passes, not just its home.
    pub fn purge_overflow_namespace(&mut self, namespace: u32) {
        self.overflow.retain(|t| t.dep >> NAMESPACE_SHIFT != namespace);
    }

    /// Re-tags this CPM's namespace (graceful degradation bumps the
    /// namespace *epoch* on every resubmission so stragglers from an
    /// aborted attempt can never be confused with the retry's tokens, and
    /// failover re-homes a kernel onto a standby corner CPM).
    ///
    /// # Panics
    ///
    /// Panics if `namespace` does not fit above [`NAMESPACE_SHIFT`], or if
    /// a kernel is resident (re-tagging a running kernel would orphan
    /// every token it has in flight).
    pub fn set_namespace(&mut self, namespace: u32) {
        assert!(namespace < (1 << (32 - NAMESPACE_SHIFT)), "namespace too large");
        assert!(self.state == CpmState::Idle, "cannot re-tag a running cpm");
        self.namespace = namespace;
    }

    /// Advances the CPM one cycle.
    ///
    /// `congestion` is the ALO signal from the local router:
    /// `(useful_free_vcs, total_vcs)`. Returns at most one emission (the
    /// CPM issues one flit per cycle, the NoC transaction speed).
    pub fn tick(&mut self, cycle: u64, congestion: (usize, usize)) -> Option<CpmEmission> {
        // Congestion state with hysteresis.
        let (free, total) = congestion;
        if total > 0 {
            let frac = free as f64 / total as f64;
            if !self.in_overflow && frac < self.cfg.overflow_enter_below {
                self.in_overflow = true;
            } else if self.in_overflow && frac > self.cfg.overflow_exit_above {
                self.in_overflow = false;
            }
        }
        if self.in_overflow {
            self.stats.overflow_cycles += 1;
        }
        // Complete an in-flight command-buffer fetch.
        if let Some((ready, count)) = self.fetch_inflight {
            if cycle >= ready {
                let from = self.fetch_ptr;
                self.instr_buffer.extend(self.program[from..from + count].iter().copied());
                self.fetch_ptr += count;
                self.fetch_inflight = None;
            }
        }
        // Refill when the buffer runs low.
        if self.fetch_inflight.is_none()
            && self.fetch_ptr < self.program.len()
            && self.instr_buffer.len() < self.cfg.instr_buffer_capacity / 2
        {
            self.start_fetch(cycle);
        }
        if self.state != CpmState::Running {
            return None;
        }
        // In overflow: pause issue entirely — CMP workloads take priority.
        if self.in_overflow {
            return None;
        }
        // Token-loss watchdog: recovery re-issues pre-empt ordinary issue
        // (a lost token is blocking downstream instructions anyway).
        if let Some(emission) = self.recovery_sweep(cycle) {
            return Some(emission);
        }
        // Alternate overflow replay with instruction issue once pressure
        // has cleared (paper §III-C2).
        if !self.overflow.is_empty() && (self.replay_turn || self.instr_buffer.is_empty()) {
            self.replay_turn = false;
            let token = self.overflow.pop_front().expect("non-empty");
            self.stats.tokens_replayed += 1;
            return Some(CpmEmission::ReplayToken(token));
        }
        self.replay_turn = !self.overflow.is_empty();
        // Issue one instruction packet: up to `instrs_per_packet`
        // consecutive instructions sharing a destination RCU. Dependency
        // ids and output indices are stamped with this CPM's namespace so
        // kernels resident on different CPMs never collide on the wire.
        let first = self.instr_buffer.pop_front()?;
        let mut packet = vec![self.stamp(first)];
        while packet.len() < self.cfg.instrs_per_packet {
            match self.instr_buffer.front() {
                Some(next) if next.pe == packet[0].pe => {
                    let ins = self.instr_buffer.pop_front().expect("peeked");
                    packet.push(self.stamp(ins));
                }
                _ => break,
            }
        }
        self.stats.packets_issued += 1;
        self.stats.instructions_issued += packet.len() as u64;
        Some(CpmEmission::Instructions(packet))
    }

    /// The next cycle at which [`Cpm::tick`] is *not* a provable no-op,
    /// assuming `congestion` stays fixed until then — `None` if ticking can
    /// be skipped indefinitely (event-driven stepping; any submission or
    /// token delivery re-wakes the CPM).
    ///
    /// Mirrors `tick` branch by branch: a pending hysteresis flip, overflow
    /// residency (it accrues `overflow_cycles`), a completable or startable
    /// command-buffer fetch, queued replay/issue work, a stale `replay_turn`
    /// flag (tick resets it — a real state change), and the recovery
    /// watchdog's next sweep all demand a wake.
    pub fn next_wake(&self, now: u64, congestion: (usize, usize)) -> Option<u64> {
        let (free, total) = congestion;
        if total > 0 {
            let frac = free as f64 / total as f64;
            let flips = (!self.in_overflow && frac < self.cfg.overflow_enter_below)
                || (self.in_overflow && frac > self.cfg.overflow_exit_above);
            if flips {
                return Some(now);
            }
        }
        if self.in_overflow {
            return Some(now);
        }
        let mut wake: Option<u64> = None;
        let mut merge = |cycle: u64| {
            let at = cycle.max(now);
            wake = Some(wake.map_or(at, |w| w.min(at)));
        };
        match self.fetch_inflight {
            Some((ready, _)) => merge(ready),
            None => {
                if self.fetch_ptr < self.program.len()
                    && self.instr_buffer.len() < self.cfg.instr_buffer_capacity / 2
                {
                    merge(now);
                }
            }
        }
        if self.state == CpmState::Running {
            if !self.overflow.is_empty() || !self.instr_buffer.is_empty() || self.replay_turn {
                merge(now);
            }
            if self.recovery.enabled && !self.watch.is_empty() {
                merge(self.next_sweep);
            }
            // The final-writeback deadline: the platform's completion poll
            // (`take_kernel_results`) unblocks at `finished_at`, so the
            // clock must not jump past it.
            if let Some(f) = self.finished_at {
                merge(f);
            }
        }
        wake
    }

    /// The namespace tag of this CPM.
    pub fn namespace(&self) -> u32 {
        self.namespace
    }

    /// Applies this CPM's namespace to an instruction's wire-visible ids.
    fn stamp(&self, mut ins: Instruction) -> Instruction {
        use crate::token::{Operand, ResultDest};
        let tag = self.namespace << NAMESPACE_SHIFT;
        if self.namespace == 0 {
            return ins;
        }
        for op in [&mut ins.vl, &mut ins.vr] {
            if let Operand::Dep(d) = op {
                *d |= tag;
            }
        }
        match &mut ins.dest {
            ResultDest::Token { dep, .. } => *dep |= tag,
            ResultDest::Output { index } => *index |= tag,
            ResultDest::Accumulate => {}
        }
        // Sub-blocks are namespaced too: concurrent kernels may map
        // sub-blocks to the same RCU, and its ordered instruction buffer
        // keys on the block id.
        ins.sub_block |= tag;
        ins
    }

    fn start_fetch(&mut self, now: u64) {
        let remaining = self.program.len() - self.fetch_ptr;
        let count = remaining.min(self.cfg.fetch_batch);
        if count == 0 {
            return;
        }
        // The command buffer is a sequential stream: after the first row
        // activation, batches pipeline at the DRAM stream rate (the paper's
        // "peak rate of 45 SnackNoC instructions/cycle buffered", §III-C1).
        let mut latency = self.dram.stream_cycles(count, self.irregular_fetch);
        if !self.row_open {
            latency += self.dram.access_latency;
            self.row_open = true;
        }
        self.fetch_inflight = Some((now + latency, count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Op, Operand, ResultDest};

    fn imm(v: f64) -> Operand {
        Operand::Imm(Fixed::from_f64(v))
    }

    /// n independent single-instruction blocks, alternating between 2 PEs.
    fn program(n: usize) -> CompiledKernel {
        CompiledKernel {
            irregular_fetch: false,
            name: "p".into(),
            num_outputs: n,
            instructions: (0..n)
                .map(|i| Instruction {
                    op: Op::Add,
                    pe: NodeId::new(i % 2),
                    vl: imm(i as f64),
                    vr: imm(1.0),
                    dest: ResultDest::Output { index: i as u32 },
                    sub_block: i as u32,
                    seq: 0,
                    ends_block: true,
                })
                .collect(),
        }
    }

    fn uncongested() -> (usize, usize) {
        (16, 16)
    }

    #[test]
    fn fetch_then_issue_one_packet_per_cycle() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(8), 0).unwrap();
        assert_eq!(cpm.state(), CpmState::Running);
        // Nothing can issue before the DRAM batch lands.
        let mut first_issue = None;
        let mut packets = 0;
        for c in 1..200 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, uncongested()) {
                first_issue.get_or_insert(c);
                assert!(!p.is_empty() && p.len() <= 2);
                assert!(p.iter().all(|i| i.pe == p[0].pe), "packet targets one RCU");
                packets += 1;
            }
        }
        let first = first_issue.expect("issues eventually");
        assert!(first > DramModel::default().access_latency, "waits for DRAM");
        // Alternating PEs defeat packing, so 8 packets of 1.
        assert_eq!(packets, 8);
        assert_eq!(cpm.stats.instructions_issued, 8);
    }

    #[test]
    fn packs_consecutive_same_pe_instructions() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let mut k = program(8);
        for ins in &mut k.instructions {
            ins.pe = NodeId::new(5);
        }
        cpm.submit(&k, 0).unwrap();
        let mut packets = 0;
        for c in 1..200 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, uncongested()) {
                assert_eq!(p.len(), 2);
                packets += 1;
            }
        }
        assert_eq!(packets, 4);
    }

    #[test]
    fn busy_until_results_collected() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(2), 0).unwrap();
        assert_eq!(cpm.submit(&program(2), 1), Err(SubmitError::Busy));
        assert_eq!(cpm.stats.busy_rejections, 1);
        cpm.accept_result(0, Fixed::ONE, 100);
        assert!(cpm.finished_at().is_none());
        cpm.accept_result(1, Fixed::ONE, 120);
        let done = cpm.finished_at().expect("all results in");
        assert!(done > 120, "writeback latency applies");
        let (name, values) = cpm.take_results().expect("results ready");
        assert_eq!(name, "p");
        assert_eq!(values.len(), 2);
        assert_eq!(cpm.state(), CpmState::Idle);
        cpm.submit(&program(2), 200).expect("idle again");
    }

    #[test]
    fn rejects_invalid_programs() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let bad = CompiledKernel::default();
        assert!(matches!(cpm.submit(&bad, 0), Err(SubmitError::Invalid(_))));
    }

    #[test]
    fn overflow_state_absorbs_and_replays_tokens() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(4), 0).unwrap();
        // Congested: below the 25% enter threshold.
        assert_eq!(cpm.tick(1, (2, 16)), None, "no issue while congested");
        assert!(cpm.in_overflow());
        let tok = DataToken::new(1, 3, Fixed::ONE);
        assert_eq!(cpm.maybe_absorb(tok, 1), None, "token absorbed");
        assert_eq!(cpm.overflow_backlog(), 1);
        assert_eq!(cpm.stats.tokens_absorbed, 1);
        // Still congested at 40% (hysteresis: needs > 50% to exit).
        cpm.tick(2, (6, 16));
        assert!(cpm.in_overflow());
        // Pressure clears: replay comes back out before/interleaved with
        // instruction issue.
        let mut replayed = false;
        for c in 3..300 {
            if let Some(CpmEmission::ReplayToken(t)) = cpm.tick(c, (14, 16)) {
                assert_eq!(t.dep, 1);
                replayed = true;
            }
        }
        assert!(!cpm.in_overflow());
        assert!(replayed);
        assert_eq!(cpm.stats.tokens_replayed, 1);
        // Tokens pass through untouched when not in overflow.
        let tok2 = DataToken::new(2, 1, Fixed::ONE);
        assert_eq!(cpm.maybe_absorb(tok2, 300), Some(tok2));
    }

    #[test]
    fn namespace_stamps_wire_visible_ids() {
        use crate::token::{Operand, ResultDest};
        let mut cpm =
            Cpm::with_namespace(NodeId::new(0), 3, CpmConfig::default(), DramModel::default());
        assert_eq!(cpm.namespace(), 3);
        let kernel = CompiledKernel {
            name: "ns".into(),
            num_outputs: 1,
            irregular_fetch: false,
            instructions: vec![
                Instruction {
                    op: Op::Add,
                    pe: NodeId::new(1),
                    vl: imm(1.0),
                    vr: imm(2.0),
                    dest: ResultDest::Token { dep: 5, dependents: 1 },
                    sub_block: 0,
                    seq: 0,
                    ends_block: true,
                },
                Instruction {
                    op: Op::Add,
                    pe: NodeId::new(2),
                    vl: Operand::Dep(5),
                    vr: imm(0.0),
                    dest: ResultDest::Output { index: 0 },
                    sub_block: 1,
                    seq: 0,
                    ends_block: true,
                },
            ],
        };
        cpm.submit(&kernel, 0).unwrap();
        let tag = 3u32 << NAMESPACE_SHIFT;
        let mut seen = Vec::new();
        for c in 1..500 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, (16, 16)) {
                seen.extend(p);
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].dest, ResultDest::Token { dep: 5 | tag, dependents: 1 });
        assert_eq!(seen[0].sub_block, tag);
        assert_eq!(seen[1].vl, Operand::Dep(5 | tag));
        assert_eq!(seen[1].dest, ResultDest::Output { index: tag });
        // Results arrive with the tag; the slot is the masked index.
        cpm.accept_result(tag, Fixed::ONE, 600);
        assert!(cpm.finished_at().is_some());
    }

    #[test]
    fn oversized_ids_are_rejected_for_namespacing() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let mut k = program(2);
        k.instructions[0].sub_block = NAMESPACE_MASK + 1;
        k.instructions[0].ends_block = true;
        assert!(matches!(
            cpm.submit(&k, 0),
            Err(SubmitError::Invalid(ProgramError::BadSubBlock(_) | ProgramError::NamespaceOverflow))
        ));
    }

    #[test]
    fn config_validation_rejects_bad_hysteresis_and_ranges() {
        assert_eq!(CpmConfig::default().validate(), Ok(()));
        let inverted = CpmConfig {
            overflow_enter_below: 0.5,
            overflow_exit_above: 0.25,
            ..CpmConfig::default()
        };
        assert_eq!(
            inverted.validate(),
            Err(CpmConfigError::HysteresisInverted { enter: 0.5, exit: 0.25 })
        );
        let empty_band = CpmConfig {
            overflow_enter_below: 0.4,
            overflow_exit_above: 0.4,
            ..CpmConfig::default()
        };
        assert!(
            matches!(empty_band.validate(), Err(CpmConfigError::HysteresisInverted { .. })),
            "equal thresholds leave no hysteresis band"
        );
        let oor = CpmConfig { overflow_enter_below: -0.1, ..CpmConfig::default() };
        assert!(matches!(
            oor.validate(),
            Err(CpmConfigError::FractionOutOfRange { field: "overflow_enter_below", .. })
        ));
        let nan = CpmConfig { overflow_exit_above: f64::NAN, ..CpmConfig::default() };
        assert!(matches!(nan.validate(), Err(CpmConfigError::FractionOutOfRange { .. })));
        let zero = CpmConfig { fetch_batch: 0, ..CpmConfig::default() };
        assert_eq!(zero.validate(), Err(CpmConfigError::ZeroCapacity { field: "fetch_batch" }));
        // Errors render usefully.
        let msg = format!("{}", inverted.validate().unwrap_err());
        assert!(msg.contains("hysteresis"), "{msg}");
    }

    #[test]
    fn watchdog_detects_silence_and_requests_retransmission() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let rc = RecoveryConfig {
            enabled: true,
            deadline: 100,
            watchdog_period: 10,
            max_retries: 2,
            backoff: 50,
        };
        cpm.enable_recovery(rc);
        cpm.submit(&program(2), 0).unwrap();
        let tok = DataToken::new(7, 2, Fixed::ONE);
        cpm.note_token(&tok, NodeId::new(5), 10);
        // Alive and refreshed: no emission.
        cpm.note_captures(7, 1, 50);
        for c in 11..110 {
            assert!(
                !matches!(
                    cpm.tick(c, uncongested()),
                    Some(CpmEmission::RequestRetransmit { .. })
                ),
                "cycle {c}: token not yet overdue"
            );
        }
        // Silence past the deadline (last activity 50, deadline 100).
        let mut request = None;
        for c in 110..200 {
            if let Some(CpmEmission::RequestRetransmit { dep, producer, remaining }) =
                cpm.tick(c, uncongested())
            {
                request.get_or_insert((c, dep, producer, remaining));
            }
        }
        let (at, dep, producer, remaining) = request.expect("watchdog fires");
        assert!(at > 150, "fires only after the deadline lapses");
        assert_eq!((dep, producer, remaining), (7, NodeId::new(5), 1));
        assert_eq!(cpm.recovery_stats().detected, 1);
        assert_eq!(cpm.recovery_stats().retries, 1);
        assert!(cpm.recovery_stats().watchdog_fires >= 1);
        // Continued silence: bounded retries, then the CPM gives up.
        let mut more = 0;
        for c in 200..2_000 {
            if let Some(CpmEmission::RequestRetransmit { .. }) = cpm.tick(c, uncongested()) {
                more += 1;
            }
        }
        assert_eq!(more, 1, "max_retries = 2 bounds the re-issues");
        assert_eq!(cpm.recovery_stats().retries, 2);
        // The token finally retires: recovery completes.
        cpm.note_retired(7, 2_000);
        assert_eq!(cpm.recovery_stats().recovered, 1);
        assert_eq!(cpm.recovery_stats().recovery_latency.samples(), 1);
    }

    #[test]
    fn watchdog_replays_parked_overflow_copies_first() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.enable_recovery(RecoveryConfig {
            enabled: true,
            deadline: 50,
            watchdog_period: 5,
            max_retries: 4,
            backoff: 10,
        });
        cpm.submit(&program(2), 0).unwrap();
        let tok = DataToken::new(9, 3, Fixed::from_f64(2.0));
        cpm.note_token(&tok, NodeId::new(3), 1);
        // Congestion absorbs the token; parked copies are safe from the
        // watchdog no matter how long the pressure lasts.
        cpm.tick(2, (1, 16));
        assert!(cpm.in_overflow());
        assert_eq!(cpm.maybe_absorb(tok, 2), None);
        for c in 3..300 {
            assert_eq!(cpm.tick(c, (1, 16)), None, "parked token never triggers recovery");
        }
        // A corruption report un-parks it: the watchdog re-issues from the
        // overflow buffer (not the producer) with a bumped seq.
        cpm.note_corrupt(9, 300);
        let mut replay = None;
        for c in 301..400 {
            if let Some(CpmEmission::ReplayToken(t)) = cpm.tick(c, (14, 16)) {
                replay.get_or_insert(t);
                break;
            }
        }
        let t = replay.expect("replayed from overflow");
        assert_eq!((t.dep, t.dependents, t.seq), (9, 3, 1));
        assert!(t.checksum_ok(), "replay is re-sealed");
        assert_eq!(cpm.overflow_backlog(), 0);
        assert_eq!(cpm.recovery_stats().corrupt_detected, 1);
        assert_eq!(cpm.recovery_stats().detected, 1);
    }

    #[test]
    fn disabled_recovery_keeps_the_watchdog_registry_empty() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(2), 0).unwrap();
        let tok = DataToken::new(1, 1, Fixed::ONE);
        cpm.note_token(&tok, NodeId::new(1), 5);
        cpm.note_captures(1, 1, 6);
        cpm.note_retired(1, 7);
        cpm.note_corrupt(1, 8);
        assert_eq!(cpm.recovery_stats().detected, 0);
        assert_eq!(cpm.recovery_stats().corrupt_detected, 0);
        assert!(cpm.watch.is_empty());
    }

    #[test]
    fn instruction_buffer_refills_in_batches() {
        let cfg = CpmConfig { fetch_batch: 16, instr_buffer_capacity: 32, ..CpmConfig::default() };
        let mut cpm = Cpm::new(NodeId::new(0), cfg, DramModel::default());
        cpm.submit(&program(64), 0).unwrap();
        let mut issued = 0;
        for c in 1..2_000 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, uncongested()) {
                issued += p.len();
            }
        }
        assert_eq!(issued, 64, "all instructions eventually issued across refills");
    }
}
