//! The Central Packet Manager: the controller of the SnackNoC platform
//! (paper §III-C).
//!
//! The CPM sits at a memory-controller node. It:
//!
//! 1. fetches the kernel's command buffer from main memory in DRAM batches,
//! 2. assembles instruction flits and issues them at 1 packet per cycle,
//! 3. tracks kernel execution state and collects results in an output FIFO,
//! 4. monitors NoC congestion with an ALO-style free-VC heuristic and, when
//!    the network is saturated, absorbs passing transient data tokens into
//!    an overflow buffer in main memory, replaying them when the pressure
//!    clears (paper §III-C2),
//! 5. answers runtime submissions — with a *busy* rejection while a kernel
//!    is resident or the network is in overflow.

use crate::dram::DramModel;
use crate::fixed::Fixed;
use crate::token::{CompiledKernel, DataToken, Instruction, ProgramError};
use snacknoc_noc::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// Tunable CPM parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CpmConfig {
    /// Capacity of the internal instruction buffer, in instructions.
    /// Paper §III-C1 sizes it from the peak DDR3 stream rate.
    pub instr_buffer_capacity: usize,
    /// Instructions fetched per DRAM batch.
    pub fetch_batch: usize,
    /// Instructions packed into one instruction packet (flit). With 16 B
    /// instructions on a 32 B channel this is 2 (paper Table IV flit size).
    pub instrs_per_packet: usize,
    /// Enter the overflow state when the fraction of useful free output
    /// VCs at the CPM's router drops below this.
    pub overflow_enter_below: f64,
    /// Leave the overflow state when the fraction rises above this
    /// (hysteresis).
    pub overflow_exit_above: f64,
    /// Capacity of the Offload Data Memory Buffer in tokens; paper
    /// §III-C2 sizes it to 4 instruction flits (one 64 B DDR3 transaction).
    pub offload_buffer_tokens: usize,
}

impl Default for CpmConfig {
    fn default() -> Self {
        CpmConfig {
            instr_buffer_capacity: 128,
            fetch_batch: 64,
            instrs_per_packet: 2,
            overflow_enter_below: 0.25,
            overflow_exit_above: 0.50,
            offload_buffer_tokens: 4,
        }
    }
}

/// Kernel execution state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpmState {
    /// No kernel resident.
    Idle,
    /// Fetching/issuing/awaiting results of the resident kernel.
    Running,
}

/// The CPM rejected a submission because a kernel is already resident
/// (paper: the CPM "delivers a busy response to the runtime").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpmBusy;

impl fmt::Display for CpmBusy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpm busy: a kernel is already resident")
    }
}

impl std::error::Error for CpmBusy {}

/// Why a kernel submission failed.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum SubmitError {
    /// A kernel is already resident.
    Busy,
    /// The program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "cpm busy: a kernel is already resident"),
            SubmitError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Something the CPM wants to inject this cycle.
#[derive(Clone, PartialEq, Debug)]
pub enum CpmEmission {
    /// An instruction packet (one flit) carrying instructions for one RCU.
    Instructions(Vec<Instruction>),
    /// A replayed overflow token, re-launched onto the ring.
    ReplayToken(DataToken),
}

/// Counters for the cost/QoS analyses.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpmStats {
    /// Instruction packets issued.
    pub packets_issued: u64,
    /// Instructions issued.
    pub instructions_issued: u64,
    /// Tokens absorbed into the overflow buffer.
    pub tokens_absorbed: u64,
    /// Tokens replayed from the overflow buffer.
    pub tokens_replayed: u64,
    /// Cycles spent in the overflow state.
    pub overflow_cycles: u64,
    /// Submissions rejected busy.
    pub busy_rejections: u64,
}

/// Bit position of the CPM namespace within dependency ids and output
/// indices. A decentralized platform (paper §VII) runs one CPM per memory
/// controller; each tags the tokens it issues with its namespace so
/// concurrently-resident kernels never collide on the ring.
pub const NAMESPACE_SHIFT: u32 = 24;

/// Mask selecting the intra-kernel part of a dependency id/output index.
pub const NAMESPACE_MASK: u32 = (1 << NAMESPACE_SHIFT) - 1;

/// The Central Packet Manager.
#[derive(Clone, Debug)]
pub struct Cpm {
    node: NodeId,
    /// Namespace tag stamped into issued dependency ids and output indices.
    namespace: u32,
    cfg: CpmConfig,
    dram: DramModel,
    state: CpmState,
    /// Resident program (command buffer in main memory).
    program: Vec<Instruction>,
    /// Next program index to fetch from memory.
    fetch_ptr: usize,
    /// In-flight DRAM batch: (ready_at, count).
    fetch_inflight: Option<(u64, usize)>,
    /// Assembled instructions awaiting issue.
    instr_buffer: VecDeque<Instruction>,
    /// Output results FIFO (slot-indexed).
    results: Vec<Option<Fixed>>,
    results_remaining: usize,
    kernel_name: String,
    started_at: u64,
    finished_at: Option<u64>,
    /// Offload Data Memory Buffer: staging for overflow tokens. Tokens
    /// beyond its capacity spill (conceptually) straight to the in-memory
    /// overflow region, modelled by the same queue.
    overflow: VecDeque<DataToken>,
    in_overflow: bool,
    /// Alternation flag between overflow replay and instruction issue.
    replay_turn: bool,
    /// Whether the resident kernel's operand assembly is an irregular
    /// gather (throttles the DRAM stream rate — SPMV, paper §V-B).
    irregular_fetch: bool,
    /// Whether the command-buffer stream has already paid its first row
    /// activation: subsequent batches pipeline behind the open row.
    row_open: bool,
    /// Counters.
    pub stats: CpmStats,
}

impl Cpm {
    /// Creates a CPM attached to the router at `node` (a memory-controller
    /// node in the paper's floorplan).
    pub fn new(node: NodeId, cfg: CpmConfig, dram: DramModel) -> Self {
        Self::with_namespace(node, 0, cfg, dram)
    }

    /// Creates a CPM with an explicit namespace tag (used by the
    /// decentralized multi-CPM platform; see [`NAMESPACE_SHIFT`]).
    ///
    /// # Panics
    ///
    /// Panics if `namespace` does not fit above [`NAMESPACE_SHIFT`].
    pub fn with_namespace(node: NodeId, namespace: u32, cfg: CpmConfig, dram: DramModel) -> Self {
        assert!(namespace < (1 << (32 - NAMESPACE_SHIFT)), "namespace too large");
        Cpm {
            node,
            namespace,
            cfg,
            dram,
            state: CpmState::Idle,
            program: Vec::new(),
            fetch_ptr: 0,
            fetch_inflight: None,
            instr_buffer: VecDeque::new(),
            results: Vec::new(),
            results_remaining: 0,
            kernel_name: String::new(),
            started_at: 0,
            finished_at: None,
            overflow: VecDeque::new(),
            in_overflow: false,
            replay_turn: false,
            irregular_fetch: false,
            row_open: false,
            stats: CpmStats::default(),
        }
    }

    /// The node this CPM is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current kernel state.
    pub fn state(&self) -> CpmState {
        self.state
    }

    /// Whether the CPM is in the NoC-overflow state.
    pub fn in_overflow(&self) -> bool {
        self.in_overflow
    }

    /// Cycle the resident kernel finished, if it has.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Submits a kernel for execution.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] while a kernel is resident;
    /// [`SubmitError::Invalid`] if the program fails validation.
    pub fn submit(&mut self, kernel: &CompiledKernel, now: u64) -> Result<(), SubmitError> {
        if self.state != CpmState::Idle {
            self.stats.busy_rejections += 1;
            return Err(SubmitError::Busy);
        }
        kernel.validate().map_err(SubmitError::Invalid)?;
        let fits = |v: u32| v <= NAMESPACE_MASK;
        if !fits(kernel.num_outputs as u32)
            || kernel.instructions.iter().any(|i| {
                !fits(i.sub_block)
                    || matches!(i.dest, crate::token::ResultDest::Token { dep, .. } if !fits(dep))
            })
        {
            return Err(SubmitError::Invalid(ProgramError::NamespaceOverflow));
        }
        self.program = kernel.instructions.clone();
        self.kernel_name = kernel.name.clone();
        self.irregular_fetch = kernel.irregular_fetch;
        self.row_open = false;
        self.fetch_ptr = 0;
        self.instr_buffer.clear();
        self.results = vec![None; kernel.num_outputs];
        self.results_remaining = kernel.num_outputs;
        self.started_at = now;
        self.finished_at = None;
        self.state = CpmState::Running;
        // Kick off the first command-buffer fetch.
        self.start_fetch(now);
        Ok(())
    }

    /// Takes the completed kernel's results, returning the CPM to idle.
    /// Returns `None` if no kernel has finished.
    pub fn take_results(&mut self) -> Option<(String, Vec<Fixed>)> {
        self.finished_at?;
        let values =
            self.results.iter().map(|r| r.expect("all results arrived")).collect();
        self.state = CpmState::Idle;
        self.finished_at = None;
        let name = std::mem::take(&mut self.kernel_name);
        self.results.clear();
        Some((name, values))
    }

    /// Receives a kernel result routed back from an RCU. The index may
    /// carry this CPM's namespace tag in its high bits.
    pub fn accept_result(&mut self, index: u32, value: Fixed, now: u64) {
        let slot = &mut self.results[(index & NAMESPACE_MASK) as usize];
        debug_assert!(slot.is_none(), "output {index} written twice");
        *slot = Some(value);
        self.results_remaining -= 1;
        if self.results_remaining == 0 {
            // Remaining FIFO entries are written back to memory; the final
            // writeback transaction closes the kernel (paper §III-C).
            self.finished_at = Some(now + self.dram.access_latency);
        }
    }

    /// Offers a transient token passing through the CPM node. In the
    /// overflow state the CPM absorbs it into the offload buffer and
    /// returns `true`; otherwise the token continues on the ring.
    pub fn maybe_absorb(&mut self, token: DataToken) -> Option<DataToken> {
        if self.in_overflow {
            self.overflow.push_back(token);
            self.stats.tokens_absorbed += 1;
            None
        } else {
            Some(token)
        }
    }

    /// Number of tokens parked in the overflow path.
    pub fn overflow_backlog(&self) -> usize {
        self.overflow.len()
    }

    /// Advances the CPM one cycle.
    ///
    /// `congestion` is the ALO signal from the local router:
    /// `(useful_free_vcs, total_vcs)`. Returns at most one emission (the
    /// CPM issues one flit per cycle, the NoC transaction speed).
    pub fn tick(&mut self, cycle: u64, congestion: (usize, usize)) -> Option<CpmEmission> {
        // Congestion state with hysteresis.
        let (free, total) = congestion;
        if total > 0 {
            let frac = free as f64 / total as f64;
            if !self.in_overflow && frac < self.cfg.overflow_enter_below {
                self.in_overflow = true;
            } else if self.in_overflow && frac > self.cfg.overflow_exit_above {
                self.in_overflow = false;
            }
        }
        if self.in_overflow {
            self.stats.overflow_cycles += 1;
        }
        // Complete an in-flight command-buffer fetch.
        if let Some((ready, count)) = self.fetch_inflight {
            if cycle >= ready {
                let from = self.fetch_ptr;
                self.instr_buffer.extend(self.program[from..from + count].iter().copied());
                self.fetch_ptr += count;
                self.fetch_inflight = None;
            }
        }
        // Refill when the buffer runs low.
        if self.fetch_inflight.is_none()
            && self.fetch_ptr < self.program.len()
            && self.instr_buffer.len() < self.cfg.instr_buffer_capacity / 2
        {
            self.start_fetch(cycle);
        }
        if self.state != CpmState::Running {
            return None;
        }
        // In overflow: pause issue entirely — CMP workloads take priority.
        if self.in_overflow {
            return None;
        }
        // Alternate overflow replay with instruction issue once pressure
        // has cleared (paper §III-C2).
        if !self.overflow.is_empty() && (self.replay_turn || self.instr_buffer.is_empty()) {
            self.replay_turn = false;
            let token = self.overflow.pop_front().expect("non-empty");
            self.stats.tokens_replayed += 1;
            return Some(CpmEmission::ReplayToken(token));
        }
        self.replay_turn = !self.overflow.is_empty();
        // Issue one instruction packet: up to `instrs_per_packet`
        // consecutive instructions sharing a destination RCU. Dependency
        // ids and output indices are stamped with this CPM's namespace so
        // kernels resident on different CPMs never collide on the wire.
        let first = self.instr_buffer.pop_front()?;
        let mut packet = vec![self.stamp(first)];
        while packet.len() < self.cfg.instrs_per_packet {
            match self.instr_buffer.front() {
                Some(next) if next.pe == packet[0].pe => {
                    let ins = self.instr_buffer.pop_front().expect("peeked");
                    packet.push(self.stamp(ins));
                }
                _ => break,
            }
        }
        self.stats.packets_issued += 1;
        self.stats.instructions_issued += packet.len() as u64;
        Some(CpmEmission::Instructions(packet))
    }

    /// The namespace tag of this CPM.
    pub fn namespace(&self) -> u32 {
        self.namespace
    }

    /// Applies this CPM's namespace to an instruction's wire-visible ids.
    fn stamp(&self, mut ins: Instruction) -> Instruction {
        use crate::token::{Operand, ResultDest};
        let tag = self.namespace << NAMESPACE_SHIFT;
        if self.namespace == 0 {
            return ins;
        }
        for op in [&mut ins.vl, &mut ins.vr] {
            if let Operand::Dep(d) = op {
                *d |= tag;
            }
        }
        match &mut ins.dest {
            ResultDest::Token { dep, .. } => *dep |= tag,
            ResultDest::Output { index } => *index |= tag,
            ResultDest::Accumulate => {}
        }
        // Sub-blocks are namespaced too: concurrent kernels may map
        // sub-blocks to the same RCU, and its ordered instruction buffer
        // keys on the block id.
        ins.sub_block |= tag;
        ins
    }

    fn start_fetch(&mut self, now: u64) {
        let remaining = self.program.len() - self.fetch_ptr;
        let count = remaining.min(self.cfg.fetch_batch);
        if count == 0 {
            return;
        }
        // The command buffer is a sequential stream: after the first row
        // activation, batches pipeline at the DRAM stream rate (the paper's
        // "peak rate of 45 SnackNoC instructions/cycle buffered", §III-C1).
        let mut latency = self.dram.stream_cycles(count, self.irregular_fetch);
        if !self.row_open {
            latency += self.dram.access_latency;
            self.row_open = true;
        }
        self.fetch_inflight = Some((now + latency, count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Op, Operand, ResultDest};

    fn imm(v: f64) -> Operand {
        Operand::Imm(Fixed::from_f64(v))
    }

    /// n independent single-instruction blocks, alternating between 2 PEs.
    fn program(n: usize) -> CompiledKernel {
        CompiledKernel {
            irregular_fetch: false,
            name: "p".into(),
            num_outputs: n,
            instructions: (0..n)
                .map(|i| Instruction {
                    op: Op::Add,
                    pe: NodeId::new(i % 2),
                    vl: imm(i as f64),
                    vr: imm(1.0),
                    dest: ResultDest::Output { index: i as u32 },
                    sub_block: i as u32,
                    seq: 0,
                    ends_block: true,
                })
                .collect(),
        }
    }

    fn uncongested() -> (usize, usize) {
        (16, 16)
    }

    #[test]
    fn fetch_then_issue_one_packet_per_cycle() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(8), 0).unwrap();
        assert_eq!(cpm.state(), CpmState::Running);
        // Nothing can issue before the DRAM batch lands.
        let mut first_issue = None;
        let mut packets = 0;
        for c in 1..200 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, uncongested()) {
                first_issue.get_or_insert(c);
                assert!(!p.is_empty() && p.len() <= 2);
                assert!(p.iter().all(|i| i.pe == p[0].pe), "packet targets one RCU");
                packets += 1;
            }
        }
        let first = first_issue.expect("issues eventually");
        assert!(first > DramModel::default().access_latency, "waits for DRAM");
        // Alternating PEs defeat packing, so 8 packets of 1.
        assert_eq!(packets, 8);
        assert_eq!(cpm.stats.instructions_issued, 8);
    }

    #[test]
    fn packs_consecutive_same_pe_instructions() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let mut k = program(8);
        for ins in &mut k.instructions {
            ins.pe = NodeId::new(5);
        }
        cpm.submit(&k, 0).unwrap();
        let mut packets = 0;
        for c in 1..200 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, uncongested()) {
                assert_eq!(p.len(), 2);
                packets += 1;
            }
        }
        assert_eq!(packets, 4);
    }

    #[test]
    fn busy_until_results_collected() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(2), 0).unwrap();
        assert_eq!(cpm.submit(&program(2), 1), Err(SubmitError::Busy));
        assert_eq!(cpm.stats.busy_rejections, 1);
        cpm.accept_result(0, Fixed::ONE, 100);
        assert!(cpm.finished_at().is_none());
        cpm.accept_result(1, Fixed::ONE, 120);
        let done = cpm.finished_at().expect("all results in");
        assert!(done > 120, "writeback latency applies");
        let (name, values) = cpm.take_results().expect("results ready");
        assert_eq!(name, "p");
        assert_eq!(values.len(), 2);
        assert_eq!(cpm.state(), CpmState::Idle);
        cpm.submit(&program(2), 200).expect("idle again");
    }

    #[test]
    fn rejects_invalid_programs() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let bad = CompiledKernel::default();
        assert!(matches!(cpm.submit(&bad, 0), Err(SubmitError::Invalid(_))));
    }

    #[test]
    fn overflow_state_absorbs_and_replays_tokens() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        cpm.submit(&program(4), 0).unwrap();
        // Congested: below the 25% enter threshold.
        assert_eq!(cpm.tick(1, (2, 16)), None, "no issue while congested");
        assert!(cpm.in_overflow());
        let tok = DataToken { dep: 1, dependents: 3, value: Fixed::ONE };
        assert_eq!(cpm.maybe_absorb(tok), None, "token absorbed");
        assert_eq!(cpm.overflow_backlog(), 1);
        assert_eq!(cpm.stats.tokens_absorbed, 1);
        // Still congested at 40% (hysteresis: needs > 50% to exit).
        cpm.tick(2, (6, 16));
        assert!(cpm.in_overflow());
        // Pressure clears: replay comes back out before/interleaved with
        // instruction issue.
        let mut replayed = false;
        for c in 3..300 {
            match cpm.tick(c, (14, 16)) {
                Some(CpmEmission::ReplayToken(t)) => {
                    assert_eq!(t.dep, 1);
                    replayed = true;
                }
                Some(CpmEmission::Instructions(_)) | None => {}
            }
        }
        assert!(!cpm.in_overflow());
        assert!(replayed);
        assert_eq!(cpm.stats.tokens_replayed, 1);
        // Tokens pass through untouched when not in overflow.
        let tok2 = DataToken { dep: 2, dependents: 1, value: Fixed::ONE };
        assert_eq!(cpm.maybe_absorb(tok2), Some(tok2));
    }

    #[test]
    fn namespace_stamps_wire_visible_ids() {
        use crate::token::{Operand, ResultDest};
        let mut cpm =
            Cpm::with_namespace(NodeId::new(0), 3, CpmConfig::default(), DramModel::default());
        assert_eq!(cpm.namespace(), 3);
        let kernel = CompiledKernel {
            name: "ns".into(),
            num_outputs: 1,
            irregular_fetch: false,
            instructions: vec![
                Instruction {
                    op: Op::Add,
                    pe: NodeId::new(1),
                    vl: imm(1.0),
                    vr: imm(2.0),
                    dest: ResultDest::Token { dep: 5, dependents: 1 },
                    sub_block: 0,
                    seq: 0,
                    ends_block: true,
                },
                Instruction {
                    op: Op::Add,
                    pe: NodeId::new(2),
                    vl: Operand::Dep(5),
                    vr: imm(0.0),
                    dest: ResultDest::Output { index: 0 },
                    sub_block: 1,
                    seq: 0,
                    ends_block: true,
                },
            ],
        };
        cpm.submit(&kernel, 0).unwrap();
        let tag = 3u32 << NAMESPACE_SHIFT;
        let mut seen = Vec::new();
        for c in 1..500 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, (16, 16)) {
                seen.extend(p);
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].dest, ResultDest::Token { dep: 5 | tag, dependents: 1 });
        assert_eq!(seen[0].sub_block, tag);
        assert_eq!(seen[1].vl, Operand::Dep(5 | tag));
        assert_eq!(seen[1].dest, ResultDest::Output { index: tag });
        // Results arrive with the tag; the slot is the masked index.
        cpm.accept_result(tag, Fixed::ONE, 600);
        assert!(cpm.finished_at().is_some());
    }

    #[test]
    fn oversized_ids_are_rejected_for_namespacing() {
        let mut cpm = Cpm::new(NodeId::new(0), CpmConfig::default(), DramModel::default());
        let mut k = program(2);
        k.instructions[0].sub_block = NAMESPACE_MASK + 1;
        k.instructions[0].ends_block = true;
        assert!(matches!(
            cpm.submit(&k, 0),
            Err(SubmitError::Invalid(ProgramError::BadSubBlock(_) | ProgramError::NamespaceOverflow))
        ));
    }

    #[test]
    fn instruction_buffer_refills_in_batches() {
        let cfg = CpmConfig { fetch_batch: 16, instr_buffer_capacity: 32, ..CpmConfig::default() };
        let mut cpm = Cpm::new(NodeId::new(0), cfg, DramModel::default());
        cpm.submit(&program(64), 0).unwrap();
        let mut issued = 0;
        for c in 1..2_000 {
            if let Some(CpmEmission::Instructions(p)) = cpm.tick(c, uncongested()) {
                issued += p.len();
            }
        }
        assert_eq!(issued, 64, "all instructions eventually issued across refills");
    }
}
