//! A simple two-rank DDR3 timing model for the CPM's memory interface.
//!
//! Paper §III-C1 sizes the CPM instruction buffer from the peak rate at
//! which kernel inputs stream out of a standard two-rank DDR3 part: 128
//! data inputs per DRAM row, giving bursts of up to 45 assembled
//! instructions per cycle when accesses hit open rows. We model fetches at
//! batch granularity: a fixed access latency to open the row, then a
//! streaming rate while the row stays open.

/// Timing parameters of the CPM's DRAM channel, in CPM (1 GHz) cycles.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DramModel {
    /// Cycles to activate a row and return the first beat.
    pub access_latency: u64,
    /// Items streamed per cycle once a row is open.
    pub items_per_cycle: f64,
    /// Items per DRAM row (fetches larger than this pay another activate).
    pub row_items: usize,
    /// Items streamed per cycle when the access pattern is an irregular
    /// indexed gather (row-buffer misses dominate).
    pub irregular_items_per_cycle: f64,
}

impl Default for DramModel {
    /// DDR3-1600-like timing at a 1 GHz controller: ~60 cycle access, 8
    /// items/cycle stream, 128 items per row (paper §III-C1).
    fn default() -> Self {
        DramModel {
            access_latency: 60,
            items_per_cycle: 8.0,
            row_items: 128,
            irregular_items_per_cycle: 1.0,
        }
    }
}

impl DramModel {
    /// Cycles to fetch a batch of `items` sequential items.
    pub fn batch_latency(&self, items: usize) -> u64 {
        self.latency_at_rate(items, self.items_per_cycle)
    }

    /// Cycles to fetch a batch of `items` via irregular indexed gathers.
    pub fn irregular_batch_latency(&self, items: usize) -> u64 {
        self.latency_at_rate(items, self.irregular_items_per_cycle)
    }

    fn latency_at_rate(&self, items: usize, rate: f64) -> u64 {
        if items == 0 {
            return 0;
        }
        let rows = items.div_ceil(self.row_items) as u64;
        let stream = (items as f64 / rate).ceil() as u64;
        rows * self.access_latency + stream
    }

    /// Completion cycle of a batch fetch started at `now`.
    pub fn batch_done(&self, now: u64, items: usize) -> u64 {
        now + self.batch_latency(items)
    }

    /// Streaming cycles for `items` once the row pipeline is primed
    /// (activates overlap with transfers in a sequential stream).
    pub fn stream_cycles(&self, items: usize, irregular: bool) -> u64 {
        let rate = if irregular { self.irregular_items_per_cycle } else { self.items_per_cycle };
        (items as f64 / rate).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_rows_and_items() {
        let d = DramModel::default();
        assert_eq!(d.batch_latency(0), 0);
        assert_eq!(d.batch_latency(8), 60 + 1);
        assert_eq!(d.batch_latency(64), 60 + 8);
        assert_eq!(d.batch_latency(128), 60 + 16);
        assert_eq!(d.batch_latency(129), 120 + 17, "second row pays another activate");
    }

    #[test]
    fn batch_done_offsets_from_now() {
        let d = DramModel::default();
        assert_eq!(d.batch_done(1_000, 64), 1_068);
    }
}
