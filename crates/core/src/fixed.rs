//! Q16.16 signed fixed-point arithmetic — the RCU datapath number format.
//!
//! The paper's RTL uses "32-bit fixed point functional units to keep area
//! costs low as opposed to floating point units" (§III-F). We adopt Q16.16:
//! 16 integer bits, 16 fractional bits, two's complement. All platform
//! arithmetic (RCU ALUs *and* the reference interpreter) uses this type, so
//! simulated kernel results can be compared bit-exactly.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Number of fractional bits.
pub const FRAC_BITS: u32 = 16;

/// A 32-bit Q16.16 fixed-point value.
///
/// Addition and subtraction wrap (matching the behaviour of the 32-bit
/// parallel adder/subtractor of Table II); multiplication computes the
/// full 64-bit product and truncates toward negative infinity (arithmetic
/// shift), as a hardware multiplier would.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed(i32);

impl Fixed {
    /// Zero.
    pub const ZERO: Fixed = Fixed(0);
    /// One (1.0).
    pub const ONE: Fixed = Fixed(1 << FRAC_BITS);
    /// Largest representable value.
    pub const MAX: Fixed = Fixed(i32::MAX);
    /// Smallest representable value.
    pub const MIN: Fixed = Fixed(i32::MIN);

    /// Builds a value from raw Q16.16 bits.
    pub fn from_bits(bits: i32) -> Fixed {
        Fixed(bits)
    }

    /// The raw Q16.16 bits.
    pub fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating at the
    /// representable range.
    pub fn from_f64(v: f64) -> Fixed {
        let scaled = (v * f64::from(1u32 << FRAC_BITS)).round();
        if scaled >= f64::from(i32::MAX) {
            Fixed::MAX
        } else if scaled <= f64::from(i32::MIN) {
            Fixed::MIN
        } else {
            Fixed(scaled as i32)
        }
    }

    /// Converts to `f64` (exact: every Q16.16 value is representable).
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1u32 << FRAC_BITS)
    }

    /// Builds from an integer, saturating.
    pub fn from_int(v: i32) -> Fixed {
        if v > i16::MAX as i32 {
            Fixed::MAX
        } else if v < i16::MIN as i32 {
            Fixed::MIN
        } else {
            Fixed(v << FRAC_BITS)
        }
    }

    /// Fused multiply-add: `self + a * b`, with the product truncated to
    /// Q16.16 before the (wrapping) addition — the MAC unit datapath.
    pub fn mac(self, a: Fixed, b: Fixed) -> Fixed {
        self + a * b
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    pub fn abs(self) -> Fixed {
        if self.0 == i32::MIN {
            Fixed::MAX
        } else {
            Fixed(self.0.abs())
        }
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Fixed) {
        *self = *self + rhs;
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for Fixed {
    fn sub_assign(&mut self, rhs: Fixed) {
        *self = *self - rhs;
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        let wide = i64::from(self.0) * i64::from(rhs.0);
        Fixed((wide >> FRAC_BITS) as i32)
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed(self.0.wrapping_neg())
    }
}

impl From<i16> for Fixed {
    fn from(v: i16) -> Fixed {
        Fixed(i32::from(v) << FRAC_BITS)
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({})", self.to_f64())
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_quantised_values() {
        for v in [-2.0, -1.5, -0.00390625, 0.0, 0.5, 1.0, 1.25, 7.75] {
            assert_eq!(Fixed::from_f64(v).to_f64(), v, "exact at 1/256 grid");
        }
    }

    #[test]
    fn arithmetic_basics() {
        let a = Fixed::from_f64(1.5);
        let b = Fixed::from_f64(2.25);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!((a - b).to_f64(), -0.75);
        assert_eq!((a * b).to_f64(), 3.375);
        assert_eq!((-a).to_f64(), -1.5);
        assert_eq!(Fixed::ZERO.mac(a, b), a * b);
        assert_eq!(Fixed::ONE.to_f64(), 1.0);
    }

    #[test]
    fn mul_truncates_like_hardware() {
        // 0.1 is not representable; check the truncation direction of the
        // product is toward -inf (arithmetic shift).
        let a = Fixed::from_bits(3); // 3 * 2^-16
        let b = Fixed::from_bits(3);
        assert_eq!((a * b).to_bits(), 0, "underflow truncates to zero");
        let c = Fixed::from_bits(-3);
        assert_eq!((c * b).to_bits(), -1, "negative underflow truncates toward -inf");
    }

    #[test]
    fn saturating_conversions() {
        assert_eq!(Fixed::from_f64(1e9), Fixed::MAX);
        assert_eq!(Fixed::from_f64(-1e9), Fixed::MIN);
        assert_eq!(Fixed::from_int(40_000), Fixed::MAX);
        assert_eq!(Fixed::from_int(-40_000), Fixed::MIN);
        assert_eq!(Fixed::from_int(12).to_f64(), 12.0);
        assert_eq!(Fixed::from(3i16).to_f64(), 3.0);
    }

    #[test]
    fn add_wraps_like_rtl() {
        let r = Fixed::MAX + Fixed::from_bits(1);
        assert_eq!(r, Fixed::MIN);
    }

    #[test]
    fn mac_chain_matches_separate_ops() {
        let xs = [0.5, -1.25, 2.0, 0.75];
        let ys = [1.5, 0.25, -0.5, 3.0];
        let mut acc = Fixed::ZERO;
        for (&x, &y) in xs.iter().zip(&ys) {
            acc = acc.mac(Fixed::from_f64(x), Fixed::from_f64(y));
        }
        let expect: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        assert_eq!(acc.to_f64(), expect, "exact for 1/256-grid inputs");
    }

    #[test]
    fn abs_handles_min() {
        assert_eq!(Fixed::MIN.abs(), Fixed::MAX);
        assert_eq!(Fixed::from_f64(-2.5).abs().to_f64(), 2.5);
    }
}
