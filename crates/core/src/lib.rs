//! # snacknoc-core
//!
//! The SnackNoC platform (HPCA 2020): a computation layer living inside a
//! CMP's Network-on-Chip. Each router gains a light-weight **Router Compute
//! Unit** (RCU); a **Central Packet Manager** (CPM) at a memory-controller
//! node fetches compiled kernels from DRAM, issues instruction tokens at
//! one flit per cycle, and collects results. Intermediate values circulate
//! as **transient data tokens** on a static Hamiltonian ring, using the
//! NoC's spare bandwidth as the token store.
//!
//! Modules:
//!
//! * [`fixed`] — the 32-bit Q16.16 fixed-point RCU datapath format.
//! * [`token`] — instruction/data tokens and compiled-kernel validation.
//! * [`rcu`] — the per-router dataflow processing element.
//! * [`cpm`] — the central controller, congestion detection and overflow.
//! * [`dram`] — the DDR3 batch-fetch timing model behind the CPM.
//! * [`platform`] — the assembled system: NoC + CPM + RCUs + CMP workload.
//!
//! ## Example
//!
//! ```
//! use snacknoc_core::platform::SnackPlatform;
//! use snacknoc_core::token::{CompiledKernel, Instruction, Op, Operand, ResultDest};
//! use snacknoc_core::fixed::Fixed;
//! use snacknoc_noc::NocConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform = SnackPlatform::new(NocConfig::default())?;
//! let pe = platform.mesh().node_at(1, 1);
//! let kernel = CompiledKernel {
//!     name: "add".into(),
//!     num_outputs: 1,
//!     irregular_fetch: false,
//!     instructions: vec![Instruction {
//!         op: Op::Add,
//!         pe,
//!         vl: Operand::Imm(Fixed::from_f64(2.0)),
//!         vr: Operand::Imm(Fixed::from_f64(3.0)),
//!         dest: ResultDest::Output { index: 0 },
//!         sub_block: 0,
//!         seq: 0,
//!         ends_block: true,
//!     }],
//! };
//! let run = platform.run_kernel(&kernel, 10_000)?;
//! assert_eq!(run.outputs[0], Fixed::from_f64(5.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cpm;
pub mod dram;
pub mod fixed;
pub mod platform;
pub mod rcu;
pub mod token;

pub use cpm::{
    Cpm, CpmConfig, CpmConfigError, CpmState, RecoveryConfig, RecoveryStats, SubmitError,
};
pub use dram::DramModel;
pub use fixed::Fixed;
pub use platform::{
    DegradationReport, DegradedResource, KernelRun, MultiProgramRun, PlatformConfig,
    PlatformConfigError, PlatformError, SnackPayload, SnackPlatform,
};
pub use rcu::{Emission, Rcu};
pub use token::{
    CompiledKernel, DataToken, DepId, Instruction, Op, Operand, ProgramError, ResultDest,
};
