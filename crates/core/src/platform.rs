//! The assembled SnackNoC platform: a mesh NoC whose routers carry RCUs,
//! a CPM at a memory-controller node, and (optionally) a CMP workload
//! sharing the network — the full system of paper Fig. 5.

use crate::cpm::{Cpm, CpmConfig, CpmEmission, CpmState, SubmitError, NAMESPACE_MASK, NAMESPACE_SHIFT};
use crate::dram::DramModel;
use crate::fixed::Fixed;
use crate::token::{CompiledKernel, DataToken, Instruction, DATA_TOKEN_BYTES, INSTRUCTION_BYTES};
use crate::rcu::{Emission, Rcu, RcuStats};
use snacknoc_noc::{
    ConfigError, Mesh, NetStats, Network, NocConfig, NodeId, PacketSpec, TrafficClass,
};
use snacknoc_workloads::coherence::{AccessPattern, CohMessage, CoherentEngine};
use snacknoc_workloads::{BenchmarkProfile, CmpMessage, TrafficEngine};
use std::fmt;

/// The payload carried by every packet on a SnackNoC platform network.
#[derive(Clone, Debug)]
pub enum SnackPayload {
    /// Baseline CMP communication (phase-model traffic).
    Cmp(CmpMessage),
    /// Baseline CMP communication (MESI coherence traffic).
    Coh(CohMessage),
    /// An instruction packet: one flit carrying instructions for one RCU.
    Instructions(Vec<Instruction>),
    /// A transient data token hopping along the static ring.
    Data(DataToken),
    /// A kernel result headed for the CPM output FIFO.
    Result {
        /// Output slot.
        index: u32,
        /// Result value.
        value: Fixed,
    },
}

/// Error building a [`SnackPlatform`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum PlatformError {
    /// Invalid NoC configuration.
    Config(ConfigError),
    /// The mesh has no Hamiltonian ring for transient data
    /// (needs at least one even side).
    Ring(snacknoc_noc::topology::RingError),
    /// The configuration lacks the dedicated SnackNoC virtual network
    /// (needs at least 3 vnets).
    MissingSnackVnet,
    /// A decentralized platform asked for more CPMs than the mesh has
    /// memory-controller corners.
    BadCpmCount {
        /// CPMs requested.
        requested: usize,
        /// Corners available.
        corners: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Config(e) => write!(f, "noc config: {e}"),
            PlatformError::Ring(e) => write!(f, "transient ring: {e}"),
            PlatformError::MissingSnackVnet => {
                write!(f, "platform needs >= 3 vnets (requests, responses, snack)")
            }
            PlatformError::BadCpmCount { requested, corners } => {
                write!(f, "requested {requested} cpms but the mesh has {corners} corners")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<ConfigError> for PlatformError {
    fn from(e: ConfigError) -> Self {
        PlatformError::Config(e)
    }
}

/// Result of running one kernel to completion.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// Cycles from submission to the final result writeback.
    pub cycles: u64,
    /// The kernel outputs, in slot order.
    pub outputs: Vec<Fixed>,
}

/// The CMP workload sharing the platform's NoC.
#[derive(Debug)]
enum Workload {
    /// Phase-model closed-loop traffic (the calibrated Table III suite).
    Phase(TrafficEngine),
    /// Directory-MESI coherence traffic from synthetic address streams.
    Coherent(CoherentEngine),
}

/// Result of a multi-program run (CMP benchmark + repeated kernels).
#[derive(Clone, Debug)]
pub struct MultiProgramRun {
    /// CMP application runtime in cycles.
    pub app_runtime: u64,
    /// Whether the application finished before the safety cap.
    pub app_finished: bool,
    /// Kernels completed during the application run.
    pub kernels_completed: u64,
    /// Mean kernel latency in cycles (completed kernels only).
    pub mean_kernel_cycles: f64,
    /// Final network statistics.
    pub stats: NetStats,
}

/// The SnackNoC platform: network + one or more CPMs + one RCU per router
/// (+ an optional CMP workload).
///
/// The paper's baseline uses a single CPM at one memory controller; its
/// §VII sketches a *decentralized* variant with a CPM per memory
/// controller issuing kernels in parallel. Build the latter with
/// [`SnackPlatform::with_cpm_count`].
#[derive(Debug)]
pub struct SnackPlatform {
    net: Network<SnackPayload>,
    rcus: Vec<Rcu>,
    cpms: Vec<Cpm>,
    engine: Option<Workload>,
    /// `ring_next[node]` = successor on the transient-data ring.
    ring_next: Vec<NodeId>,
    submitted_at: Vec<u64>,
    nodes: Vec<NodeId>,
    /// The virtual network carrying SnackNoC tokens: the last vnet, so the
    /// CMP workload owns the lower ones (2 for the phase model's
    /// request/response pair, 3 for the MESI protocol classes).
    snack_vnet: u8,
}

impl SnackPlatform {
    /// Builds a platform on `cfg`, with the CPM at the first corner
    /// memory-controller node and one RCU per router.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for invalid configs, meshes without a
    /// Hamiltonian ring, or fewer than 3 vnets.
    pub fn new(cfg: NocConfig) -> Result<Self, PlatformError> {
        Self::with_cpm_config(cfg, CpmConfig::default(), DramModel::default())
    }

    /// Builds a *decentralized* platform (paper §VII) with `cpm_count`
    /// CPMs, one per memory-controller corner in corner order.
    ///
    /// # Errors
    ///
    /// See [`SnackPlatform::new`]. Also fails if the mesh has fewer
    /// corners than `cpm_count`.
    pub fn with_cpm_count(cfg: NocConfig, cpm_count: usize) -> Result<Self, PlatformError> {
        let mut platform = Self::with_cpm_config(cfg, CpmConfig::default(), DramModel::default())?;
        let corners = platform.net.mesh().corner_nodes();
        if cpm_count == 0 || cpm_count > corners.len() {
            return Err(PlatformError::BadCpmCount { requested: cpm_count, corners: corners.len() });
        }
        platform.cpms = corners[..cpm_count]
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                Cpm::with_namespace(node, i as u32, CpmConfig::default(), DramModel::default())
            })
            .collect();
        platform.submitted_at = vec![0; cpm_count];
        Ok(platform)
    }

    /// Builds a platform with explicit CPM and DRAM parameters.
    ///
    /// # Errors
    ///
    /// See [`SnackPlatform::new`].
    pub fn with_cpm_config(
        cfg: NocConfig,
        cpm_cfg: CpmConfig,
        dram: DramModel,
    ) -> Result<Self, PlatformError> {
        if cfg.vnets < 3 {
            return Err(PlatformError::MissingSnackVnet);
        }
        let net: Network<SnackPayload> = Network::new(cfg)?;
        let mesh = *net.mesh();
        let ring = mesh.ring().map_err(PlatformError::Ring)?;
        let mut ring_next = vec![NodeId::new(0); mesh.node_count()];
        for (i, &node) in ring.iter().enumerate() {
            ring_next[node.index()] = ring[(i + 1) % ring.len()];
        }
        let cpm_node = mesh.corner_nodes()[0];
        let snack_vnet = net.config().vnets - 1;
        Ok(SnackPlatform {
            rcus: (0..mesh.node_count()).map(|_| Rcu::new()).collect(),
            cpms: vec![Cpm::new(cpm_node, cpm_cfg, dram)],
            engine: None,
            ring_next,
            submitted_at: vec![0],
            nodes: mesh.nodes().collect(),
            snack_vnet,
            net,
        })
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        self.net.mesh()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.net.cycle()
    }

    /// Network statistics.
    pub fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// Flushes the trailing partial sampling window and returns the
    /// statistics (see [`snacknoc_noc::Network::finalize_stats`]). Call
    /// at the end of a measurement so runs shorter than one sampling
    /// window still report utilization samples.
    pub fn finalize_stats(&mut self) -> &NetStats {
        self.net.finalize_stats()
    }

    /// The primary CPM (kernel controller).
    pub fn cpm(&self) -> &Cpm {
        &self.cpms[0]
    }

    /// The `i`-th CPM of a decentralized platform.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn cpm_at(&self, i: usize) -> &Cpm {
        &self.cpms[i]
    }

    /// Number of CPMs on this platform.
    pub fn cpm_count(&self) -> usize {
        self.cpms.len()
    }

    /// Replaces every RCU with a `lanes`-wide vectorized one
    /// (paper §VII: increased compute density). Call before submitting
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn set_rcu_lanes(&mut self, lanes: usize) {
        self.rcus = (0..self.rcus.len()).map(|_| Rcu::with_lanes(lanes)).collect();
    }

    /// Aggregated RCU statistics across all routers.
    pub fn rcu_stats(&self) -> RcuStats {
        let mut agg = RcuStats::default();
        for r in &self.rcus {
            agg.executed += r.stats.executed;
            agg.captures += r.stats.captures;
            agg.stalled_cycles += r.stats.stalled_cycles;
        }
        agg
    }

    /// Attaches a phase-model CMP workload that shares the NoC with kernel
    /// execution.
    pub fn attach_workload(&mut self, profile: &BenchmarkProfile, seed: u64) {
        self.engine =
            Some(Workload::Phase(TrafficEngine::new(profile.clone(), *self.net.mesh(), seed)));
    }

    /// Attaches a directory-MESI coherent CMP workload (higher-fidelity
    /// traffic: the protocol of Table IV). Requires a 4-vnet config so the
    /// three protocol classes don't share the SnackNoC vnet.
    ///
    /// # Panics
    ///
    /// Panics if the platform has fewer than 4 vnets.
    pub fn attach_coherent_workload(&mut self, pattern: AccessPattern, seed: u64) {
        assert!(
            self.snack_vnet >= 3,
            "coherent workloads need 4 vnets (request/forward/response + snack)"
        );
        self.engine = Some(Workload::Coherent(CoherentEngine::new(
            pattern,
            *self.net.mesh(),
            Default::default(),
            seed,
        )));
    }

    /// Whether the attached workload (if any) has completed.
    pub fn workload_done(&self) -> bool {
        match &self.engine {
            None => true,
            Some(Workload::Phase(e)) => e.done(),
            Some(Workload::Coherent(e)) => e.done(),
        }
    }

    /// The attached workload's runtime, if it finished.
    pub fn workload_runtime(&self) -> Option<u64> {
        match &self.engine {
            None => None,
            Some(Workload::Phase(e)) => e.finished_at(),
            Some(Workload::Coherent(e)) => e.finished_at(),
        }
    }

    /// Submits a kernel to the CPM.
    ///
    /// # Errors
    ///
    /// Propagates the CPM's busy/validation errors.
    pub fn submit_kernel(&mut self, kernel: &CompiledKernel) -> Result<(), SubmitError> {
        self.submit_kernel_to(0, kernel)
    }

    /// Submits a kernel to the `i`-th CPM of a decentralized platform.
    ///
    /// # Errors
    ///
    /// Propagates the CPM's busy/validation errors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn submit_kernel_to(&mut self, i: usize, kernel: &CompiledKernel) -> Result<(), SubmitError> {
        self.cpms[i].submit(kernel, self.net.cycle())?;
        self.submitted_at[i] = self.net.cycle();
        Ok(())
    }

    /// Takes the finished kernel's outputs from the primary CPM.
    pub fn take_kernel_results(&mut self) -> Option<KernelRun> {
        self.take_kernel_results_from(0)
    }

    /// Takes the finished kernel's outputs from the `i`-th CPM.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn take_kernel_results_from(&mut self, i: usize) -> Option<KernelRun> {
        let finished_at = self.cpms[i].finished_at()?;
        if self.net.cycle() < finished_at {
            return None;
        }
        let (name, outputs) = self.cpms[i].take_results()?;
        Some(KernelRun { name, cycles: finished_at - self.submitted_at[i], outputs })
    }

    /// Advances the platform by one cycle: workload traffic, CPM issue,
    /// RCU execution, one network step, and delivery dispatch.
    pub fn step(&mut self) {
        let now = self.net.cycle();
        // CMP workload injections.
        match &mut self.engine {
            None => {}
            Some(Workload::Phase(engine)) => {
                for spec in engine.tick(now) {
                    let mapped = PacketSpec::new(
                        spec.src,
                        spec.dst,
                        spec.vnet,
                        spec.class,
                        spec.size_bytes,
                        SnackPayload::Cmp(spec.payload),
                    );
                    self.net.inject(mapped).expect("engine produces valid packets");
                }
            }
            Some(Workload::Coherent(engine)) => {
                for spec in engine.tick(now) {
                    let mapped = PacketSpec::new(
                        spec.src,
                        spec.dst,
                        spec.vnet,
                        spec.class,
                        spec.size_bytes,
                        SnackPayload::Coh(spec.payload),
                    );
                    self.net.inject(mapped).expect("engine produces valid packets");
                }
            }
        }
        // CPM issue (1 flit/cycle each).
        for c in 0..self.cpms.len() {
            let node = self.cpms[c].node();
            let congestion = self.net.useful_free_output_vcs(node);
            match self.cpms[c].tick(now, congestion) {
                Some(CpmEmission::Instructions(packet)) => {
                    let dst = packet[0].pe;
                    let bytes = INSTRUCTION_BYTES * packet.len() as u32;
                    let spec = PacketSpec::new(
                        node,
                        dst,
                        self.snack_vnet,
                        TrafficClass::SnackInstruction,
                        bytes,
                        SnackPayload::Instructions(packet),
                    );
                    self.net.inject(spec).expect("valid instruction packet");
                }
                Some(CpmEmission::ReplayToken(token)) => {
                    self.launch_token(node, token);
                }
                None => {}
            }
        }
        // RCU execution.
        for i in 0..self.rcus.len() {
            for emission in self.rcus[i].tick(now) {
                let node = self.nodes[i];
                match emission {
                    Emission::Token(token) => self.launch_token(node, token),
                    Emission::Output { index, value } => {
                        // The namespace in the index's high bits routes the
                        // result home to the CPM that issued the kernel.
                        let home = (index >> NAMESPACE_SHIFT) as usize;
                        let spec = PacketSpec::new(
                            node,
                            self.cpms[home.min(self.cpms.len() - 1)].node(),
                            self.snack_vnet,
                            TrafficClass::SnackData,
                            DATA_TOKEN_BYTES,
                            SnackPayload::Result { index, value },
                        );
                        self.net.inject(spec).expect("valid result packet");
                    }
                }
            }
        }
        // The network cycle.
        self.net.step();
        // Deliveries.
        let now = self.net.cycle();
        for i in 0..self.nodes.len() {
            let node = self.nodes[i];
            for pkt in self.net.drain_ejected(node) {
                match pkt.payload {
                    SnackPayload::Cmp(msg) => {
                        if let Some(Workload::Phase(engine)) = &mut self.engine {
                            engine.deliver(now, node, msg);
                        }
                    }
                    SnackPayload::Coh(msg) => {
                        if let Some(Workload::Coherent(engine)) = &mut self.engine {
                            engine.deliver(now, node, msg);
                        }
                    }
                    SnackPayload::Instructions(instrs) => {
                        for ins in instrs {
                            debug_assert_eq!(ins.pe, node, "instruction routed to its PE");
                            self.rcus[i].accept_instruction(ins);
                        }
                    }
                    SnackPayload::Data(token) => self.ring_pass(node, token),
                    SnackPayload::Result { index, value } => {
                        let home = ((index >> NAMESPACE_SHIFT) as usize).min(self.cpms.len() - 1);
                        self.cpms[home].accept_result(index & NAMESPACE_MASK, value, now);
                    }
                }
            }
        }
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Submits `kernel` and steps until its results are written back.
    ///
    /// Returns `None` if the kernel does not finish within `max_cycles`
    /// (indicating saturation or an invalid mapping).
    ///
    /// # Errors
    ///
    /// Propagates CPM submission errors.
    pub fn run_kernel(
        &mut self,
        kernel: &CompiledKernel,
        max_cycles: u64,
    ) -> Result<Option<KernelRun>, SubmitError> {
        self.submit_kernel(kernel)?;
        let deadline = self.net.cycle() + max_cycles;
        while self.net.cycle() < deadline {
            self.step();
            if let Some(run) = self.take_kernel_results() {
                return Ok(Some(run));
            }
        }
        Ok(None)
    }

    /// Runs the attached workload to completion while *continually*
    /// re-submitting `kernel` (the paper's multi-program experiment:
    /// kernels execute on the NoC simultaneously with CMP applications).
    ///
    /// Pass `kernel = None` to run the workload alone on the same platform
    /// (the interference baseline).
    ///
    /// # Panics
    ///
    /// Panics if no workload is attached.
    pub fn run_multiprogram(
        &mut self,
        kernel: Option<&CompiledKernel>,
        max_cycles: u64,
    ) -> MultiProgramRun {
        assert!(self.engine.is_some(), "attach_workload first");
        let mut kernels_completed = 0u64;
        let mut kernel_cycles_sum = 0u64;
        let deadline = self.net.cycle() + max_cycles;
        while !self.workload_done() && self.net.cycle() < deadline {
            if let Some(k) = kernel {
                if self.cpms[0].state() == CpmState::Idle {
                    self.submit_kernel(k).expect("cpm idle");
                }
            }
            self.step();
            if let Some(run) = self.take_kernel_results() {
                kernels_completed += 1;
                kernel_cycles_sum += run.cycles;
            }
        }
        MultiProgramRun {
            app_runtime: self.workload_runtime().unwrap_or(self.net.cycle()),
            app_finished: self.workload_done(),
            kernels_completed,
            mean_kernel_cycles: if kernels_completed == 0 {
                0.0
            } else {
                kernel_cycles_sum as f64 / kernels_completed as f64
            },
            // Flush the trailing partial sampling window so short runs
            // report real utilization medians (not a silent 0.0).
            stats: self.net.finalize_stats().clone(),
        }
    }

    /// Launches a data token from `node` to the next node on the static
    /// ring.
    fn launch_token(&mut self, node: NodeId, token: DataToken) {
        debug_assert!(token.dependents > 0, "dead token launched");
        let next = self.ring_next[node.index()];
        let spec = PacketSpec::new(
            node,
            next,
            self.snack_vnet,
            TrafficClass::SnackData,
            DATA_TOKEN_BYTES,
            SnackPayload::Data(token),
        );
        self.net.inject(spec).expect("valid token packet");
    }

    /// Handles a ring token arriving at `node`: CPM overflow absorption,
    /// RCU inspection, then retirement or the next hop.
    fn ring_pass(&mut self, node: NodeId, token: DataToken) {
        let cpm_here = self.cpms.iter().position(|c| c.node() == node);
        let mut token = if let Some(ci) = cpm_here {
            match self.cpms[ci].maybe_absorb(token) {
                Some(t) => t,
                None => return, // parked in the overflow buffer
            }
        } else {
            token
        };
        self.rcus[node.index()].observe_token(&mut token);
        if token.dependents > 0 {
            self.launch_token(node, token);
        }
    }

    /// Count of transient data tokens currently parked in CPM overflow
    /// buffers. Useful for conservation tests.
    pub fn live_tokens_lower_bound(&self) -> usize {
        self.cpms.iter().map(|c| c.overflow_backlog()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Op, Operand, ResultDest};

    fn imm(v: f64) -> Operand {
        Operand::Imm(Fixed::from_f64(v))
    }

    fn platform() -> SnackPlatform {
        SnackPlatform::new(NocConfig::default().with_sample_window(1_000)).unwrap()
    }

    /// out0 = (1+2)*4 computed on two different RCUs via a ring token.
    fn cross_pe_kernel(mesh: &Mesh) -> CompiledKernel {
        CompiledKernel {
            irregular_fetch: false,
            name: "cross".into(),
            num_outputs: 1,
            instructions: vec![
                Instruction {
                    op: Op::Add,
                    pe: mesh.node_at(1, 1),
                    vl: imm(1.0),
                    vr: imm(2.0),
                    dest: ResultDest::Token { dep: 0, dependents: 1 },
                    sub_block: 0,
                    seq: 0,
                    ends_block: true,
                },
                Instruction {
                    op: Op::Mul,
                    pe: mesh.node_at(2, 3),
                    vl: Operand::Dep(0),
                    vr: imm(4.0),
                    dest: ResultDest::Output { index: 0 },
                    sub_block: 1,
                    seq: 0,
                    ends_block: true,
                },
            ],
        }
    }

    #[test]
    fn runs_a_cross_pe_kernel_end_to_end() {
        let mut p = platform();
        let k = cross_pe_kernel(&p.mesh().clone());
        let run = p.run_kernel(&k, 10_000).unwrap().expect("kernel finishes");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        assert!(run.cycles > 60, "includes DRAM fetch latency");
        assert_eq!(run.name, "cross");
        let rs = p.rcu_stats();
        assert_eq!(rs.executed, 2);
        assert!(rs.captures >= 1);
    }

    #[test]
    fn mac_reduction_kernel_on_one_rcu() {
        let mut p = platform();
        let pe = p.mesh().node_at(3, 3);
        // acc = 1*2 + 3*4 + 5*6 = 44.
        let pairs = [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)];
        let n = pairs.len();
        let instructions = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Instruction {
                op: Op::Mac,
                pe,
                vl: imm(a),
                vr: imm(b),
                dest: if i == n - 1 {
                    ResultDest::Output { index: 0 }
                } else {
                    ResultDest::Accumulate
                },
                sub_block: 0,
                seq: i as u32,
                ends_block: i == n - 1,
            })
            .collect();
        let k = CompiledKernel { name: "dot".into(), num_outputs: 1, instructions, irregular_fetch: false };
        let run = p.run_kernel(&k, 10_000).unwrap().expect("finishes");
        assert_eq!(run.outputs, vec![Fixed::from_f64(44.0)]);
    }

    #[test]
    fn token_with_many_dependents_feeds_every_rcu() {
        let mut p = platform();
        let mesh = *p.mesh();
        let producer = mesh.node_at(0, 1);
        let n = mesh.node_count() as u32;
        let mut instructions = vec![Instruction {
            op: Op::Add,
            pe: producer,
            vl: imm(5.0),
            vr: imm(5.0),
            dest: ResultDest::Token { dep: 0, dependents: n },
            sub_block: 0,
            seq: 0,
            ends_block: true,
        }];
        for (i, node) in mesh.nodes().enumerate() {
            instructions.push(Instruction {
                op: Op::Add,
                pe: node,
                vl: Operand::Dep(0),
                vr: imm(i as f64),
                dest: ResultDest::Output { index: i as u32 },
                sub_block: 1 + i as u32,
                seq: 0,
                ends_block: true,
            });
        }
        let k = CompiledKernel { name: "bcast".into(), num_outputs: 16, instructions, irregular_fetch: false };
        let run = p.run_kernel(&k, 50_000).unwrap().expect("finishes");
        for (i, out) in run.outputs.iter().enumerate() {
            assert_eq!(*out, Fixed::from_f64(10.0 + i as f64), "output {i}");
        }
    }

    #[test]
    fn workload_alone_matches_standalone_runner_protocol() {
        let mut p = platform();
        let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Fmm)
            .scaled(0.005);
        p.attach_workload(&profile, 11);
        let run = p.run_multiprogram(None, 50_000_000);
        assert!(run.app_finished);
        assert_eq!(run.kernels_completed, 0);
        assert!(run.app_runtime > 0);
    }

    #[test]
    fn multiprogram_runs_kernels_alongside_workload() {
        let mut p = platform();
        let mesh = *p.mesh();
        let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Volrend)
            .scaled(0.003);
        p.attach_workload(&profile, 13);
        let k = cross_pe_kernel(&mesh);
        let run = p.run_multiprogram(Some(&k), 100_000_000);
        assert!(run.app_finished);
        assert!(run.kernels_completed > 0, "kernels complete during the app");
        assert!(run.mean_kernel_cycles > 0.0);
    }

    #[test]
    fn platform_and_results_are_send() {
        // The parallel sweep harness constructs platforms from owned
        // configs inside worker threads and ships results back; these
        // bounds are load-bearing for `crates/bench/src/sweep.rs`.
        fn assert_send<T: Send>() {}
        assert_send::<SnackPlatform>();
        assert_send::<MultiProgramRun>();
        assert_send::<KernelRun>();
        assert_send::<NocConfig>();
    }

    #[test]
    fn rejects_two_vnets() {
        let cfg = NocConfig::default().with_vnets(2);
        assert!(matches!(
            SnackPlatform::new(cfg),
            Err(PlatformError::MissingSnackVnet)
        ));
    }

    #[test]
    fn decentralized_cpms_run_kernels_concurrently() {
        // Paper §VII future work: one CPM per memory controller. Four
        // kernels with *identical* dependency ids run at once; namespacing
        // keeps their ring tokens apart and routes results home.
        let mut p = SnackPlatform::with_cpm_count(
            NocConfig::default().with_sample_window(1_000),
            4,
        )
        .unwrap();
        assert_eq!(p.cpm_count(), 4);
        let mesh = *p.mesh();
        let kernels: Vec<CompiledKernel> = (0..4)
            .map(|i| {
                let mut k = cross_pe_kernel(&mesh);
                // Different immediate so each CPM's answer is distinct:
                // out = (1 + 2 + i) * 4.
                k.instructions[0].vr = imm(2.0 + i as f64);
                k.name = format!("k{i}");
                k
            })
            .collect();
        for (i, k) in kernels.iter().enumerate() {
            p.submit_kernel_to(i, k).expect("idle cpm accepts");
        }
        let mut done = vec![None; 4];
        for _ in 0..100_000 {
            p.step();
            for (i, slot) in done.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = p.take_kernel_results_from(i);
                }
            }
            if done.iter().all(|d| d.is_some()) {
                break;
            }
        }
        for (i, run) in done.into_iter().enumerate() {
            let run = run.unwrap_or_else(|| panic!("kernel {i} must finish"));
            assert_eq!(run.name, format!("k{i}"));
            assert_eq!(run.outputs, vec![Fixed::from_f64((3.0 + i as f64) * 4.0)], "kernel {i}");
        }
    }

    #[test]
    fn decentralized_cpm_count_is_validated() {
        assert!(matches!(
            SnackPlatform::with_cpm_count(NocConfig::default(), 5),
            Err(PlatformError::BadCpmCount { requested: 5, corners: 4 })
        ));
        assert!(matches!(
            SnackPlatform::with_cpm_count(NocConfig::default(), 0),
            Err(PlatformError::BadCpmCount { .. })
        ));
    }

    #[test]
    fn coherent_workload_shares_the_noc_with_kernels() {
        // The MESI traffic mode: protocol classes on vnets 0-2, snack on 3.
        let cfg = NocConfig::default().with_vnets(4).with_sample_window(1_000);
        let mut p = SnackPlatform::new(cfg).unwrap();
        let mesh = *p.mesh();
        p.attach_coherent_workload(
            AccessPattern { accesses_per_core: 200, ..AccessPattern::shared_heavy() },
            21,
        );
        let k = cross_pe_kernel(&mesh);
        let run = p.run_multiprogram(Some(&k), 100_000_000);
        assert!(run.app_finished, "coherent workload completes");
        assert!(run.kernels_completed > 0, "kernels complete alongside MESI traffic");
    }

    #[test]
    fn coherent_workload_requires_four_vnets() {
        let mut p = SnackPlatform::new(NocConfig::default()).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.attach_coherent_workload(AccessPattern::default(), 1);
        }));
        assert!(result.is_err(), "3-vnet platform must reject coherent workloads");
    }

    #[test]
    fn kernel_latency_grows_under_interference() {
        // Zero-load kernel latency vs the same kernel sharing the NoC with
        // a heavy benchmark: interference must not speed the kernel up, and
        // the paper reports it slows by a few percent at most.
        let mesh_kernel = |p: &SnackPlatform| cross_pe_kernel(p.mesh());
        let mut alone = platform();
        let k = mesh_kernel(&alone);
        let solo = alone.run_kernel(&k, 100_000).unwrap().expect("finishes").cycles;

        let mut shared = platform();
        let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Radix)
            .scaled(0.001);
        shared.attach_workload(&profile, 17);
        // Let the workload warm up, then run the kernel.
        shared.run(2_000);
        let busy = shared.run_kernel(&k, 200_000).unwrap().expect("finishes").cycles;
        assert!(busy >= solo, "interference cannot accelerate the kernel: {busy} vs {solo}");
    }
}
