//! The assembled SnackNoC platform: a mesh NoC whose routers carry RCUs,
//! a CPM at a memory-controller node, and (optionally) a CMP workload
//! sharing the network — the full system of paper Fig. 5.

use crate::cpm::{
    Cpm, CpmConfig, CpmConfigError, CpmEmission, CpmState, RecoveryConfig, RecoveryStats,
    SubmitError, NAMESPACE_MASK, NAMESPACE_SHIFT,
};
use crate::dram::DramModel;
use crate::fixed::Fixed;
use crate::token::{CompiledKernel, DataToken, Instruction, DATA_TOKEN_BYTES, INSTRUCTION_BYTES};
use crate::rcu::{Emission, Rcu, RcuStats};
use snacknoc_noc::{
    ConfigError, FaultCounters, FaultPlan, FaultPlanError, LinkFaultKind, Mesh, NetStats, Network,
    NocConfig, NodeId, PacketSpec, StallReport, TimeWheel, TrafficClass,
};
use snacknoc_trace::{EventKind, TracerHandle};
use snacknoc_workloads::coherence::{AccessPattern, CohMessage, CoherentEngine};
use snacknoc_workloads::{BenchmarkProfile, CmpMessage, TrafficEngine};
use std::collections::HashMap;
use std::fmt;

/// The payload carried by every packet on a SnackNoC platform network.
#[derive(Clone, Debug)]
pub enum SnackPayload {
    /// Baseline CMP communication (phase-model traffic).
    Cmp(CmpMessage),
    /// Baseline CMP communication (MESI coherence traffic).
    Coh(CohMessage),
    /// An instruction packet: one flit carrying instructions for one RCU.
    Instructions(Vec<Instruction>),
    /// A transient data token hopping along the static ring.
    Data(DataToken),
    /// A kernel result headed for the CPM output FIFO.
    Result {
        /// Output slot.
        index: u32,
        /// Result value.
        value: Fixed,
    },
}

/// Error building a [`SnackPlatform`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum PlatformError {
    /// Invalid NoC configuration.
    Config(ConfigError),
    /// The mesh has no Hamiltonian ring for transient data
    /// (needs at least one even side).
    Ring(snacknoc_noc::topology::RingError),
    /// The configuration lacks the dedicated SnackNoC virtual network
    /// (needs at least 3 vnets).
    MissingSnackVnet,
    /// A decentralized platform asked for more CPMs than the mesh has
    /// memory-controller corners.
    BadCpmCount {
        /// CPMs requested.
        requested: usize,
        /// Corners available.
        corners: usize,
    },
    /// The CPM configuration failed validation (bad hysteresis thresholds,
    /// out-of-range fractions, or zero capacities).
    CpmConfig(CpmConfigError),
    /// An epoch-tagged submission ([`SnackPlatform::submit_kernel_epoch`])
    /// asked for a namespace epoch outside the 8-bit namespace budget.
    BadEpoch {
        /// Epoch requested.
        epoch: u32,
        /// Epochs available per CPM on this platform
        /// ([`SnackPlatform::namespace_epochs`]); valid epochs are
        /// `0..max`.
        max: u32,
    },
    /// The CPM rejected the kernel at submission time.
    Submit(SubmitError),
    /// The kernel made no forward progress for a full watchdog window and
    /// was aborted. Carries a structured snapshot of where the network's
    /// in-flight state was stuck.
    KernelTimeout {
        /// Cycles elapsed since submission when the platform gave up.
        cycles: u64,
        /// In-flight network state at abort time.
        stall: Box<StallReport>,
    },
    /// Permanent faults exhausted every graceful-degradation avenue:
    /// the named resource ran out before any remapped/failed-over attempt
    /// could complete. Unlike [`PlatformError::KernelTimeout`] this is a
    /// *verdict* — retrying on the same platform cannot succeed.
    Unrecoverable {
        /// The resource that ran out.
        resource: DegradedResource,
        /// Kernel-level submission attempts completed before giving up.
        attempts: u32,
        /// Cycles elapsed since the original submission.
        cycles: u64,
        /// In-flight network state when the platform gave up.
        stall: Box<StallReport>,
    },
}

/// Which resource ran out when graceful degradation failed (the payload of
/// [`PlatformError::Unrecoverable`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum DegradedResource {
    /// Every candidate RCU node is permanently dead: there is nothing
    /// left to remap kernel blocks onto.
    Rcus,
    /// The home CPM's node died and no live, idle standby corner CPM
    /// remains to fail over to.
    StandbyCpms,
    /// The kernel-attempt budget ([`PlatformConfig::max_kernel_attempts`])
    /// was spent without a completed run.
    RetryBudget,
}

impl fmt::Display for DegradedResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DegradedResource::Rcus => "live RCUs",
            DegradedResource::StandbyCpms => "standby CPMs",
            DegradedResource::RetryBudget => "kernel retry budget",
        };
        f.write_str(s)
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Config(e) => write!(f, "noc config: {e}"),
            PlatformError::Ring(e) => write!(f, "transient ring: {e}"),
            PlatformError::MissingSnackVnet => {
                write!(f, "platform needs >= 3 vnets (requests, responses, snack)")
            }
            PlatformError::BadCpmCount { requested, corners } => {
                write!(f, "requested {requested} cpms but the mesh has {corners} corners")
            }
            PlatformError::CpmConfig(e) => write!(f, "cpm config: {e}"),
            PlatformError::BadEpoch { epoch, max } => {
                write!(f, "namespace epoch {epoch} is outside 0..{max}")
            }
            PlatformError::Submit(e) => write!(f, "kernel submission: {e}"),
            PlatformError::KernelTimeout { cycles, stall } => {
                write!(f, "kernel timeout after {cycles} cycles: {stall}")
            }
            PlatformError::Unrecoverable { resource, attempts, cycles, stall } => write!(
                f,
                "unrecoverable after {attempts} attempt(s) / {cycles} cycles: \
                 out of {resource}: {stall}"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<ConfigError> for PlatformError {
    fn from(e: ConfigError) -> Self {
        PlatformError::Config(e)
    }
}

impl From<SubmitError> for PlatformError {
    fn from(e: SubmitError) -> Self {
        PlatformError::Submit(e)
    }
}

impl From<CpmConfigError> for PlatformError {
    fn from(e: CpmConfigError) -> Self {
        PlatformError::CpmConfig(e)
    }
}

/// Result of running one kernel to completion.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// Cycles from submission to the final result writeback (the *final*
    /// attempt only; abandoned graceful-degradation attempts are accounted
    /// in [`DegradationReport::penalty_cycles`]).
    pub cycles: u64,
    /// The kernel outputs, in slot order.
    pub outputs: Vec<Fixed>,
    /// How the run coped with permanent faults — `None` for a clean run
    /// on an undegraded platform.
    pub degradation: Option<DegradationReport>,
}

/// How a kernel run completed *despite* permanent faults: the resources
/// lost, the recovery work taken, and the latency penalty relative to a
/// fault-free run. Attached to [`KernelRun::degradation`] whenever the
/// platform was degraded or graceful degradation had to act.
///
/// Invariant: [`DegradationReport::total_cycles`] (`final_attempt_cycles +
/// penalty_cycles`) equals the wall-clock cycles from the original
/// submission to the final writeback.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DegradationReport {
    /// Permanently dead RCU nodes the final mapping avoided.
    pub dead_rcus: usize,
    /// Permanently dead links in the active fault plan.
    pub dead_links: usize,
    /// Attempts whose submitted kernel was remapped off dead RCUs
    /// (including a proactive remap on the first attempt when deaths were
    /// already visible at submission time).
    pub remaps: u32,
    /// Home-CPM failovers to a standby corner.
    pub failovers: u32,
    /// Watchdog re-issue attempts across all attempts (transient-loss
    /// recovery work, *retries taken*).
    pub watchdog_retries: u64,
    /// Cycles burned by abandoned attempts — the latency penalty versus a
    /// fault-free run that completes on its first attempt.
    pub penalty_cycles: u64,
    /// Cycles of the successful final attempt (equals
    /// [`KernelRun::cycles`]).
    pub final_attempt_cycles: u64,
}

impl DegradationReport {
    /// Whether anything in the report is non-trivial (a clean run on an
    /// undegraded platform reports nothing at all).
    pub fn is_degraded(&self) -> bool {
        self.dead_rcus > 0
            || self.dead_links > 0
            || self.remaps > 0
            || self.failovers > 0
            || self.penalty_cycles > 0
    }

    /// Submission-to-writeback wall clock: the final attempt plus every
    /// abandoned attempt's penalty.
    pub fn total_cycles(&self) -> u64 {
        self.final_attempt_cycles + self.penalty_cycles
    }
}

/// Platform-level runtime knobs: the hang detector's window and the
/// graceful-degradation retry budget. Installed with
/// [`SnackPlatform::set_platform_config`]; invalid values are rejected
/// with a typed [`PlatformConfigError`] instead of silently misbehaving.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlatformConfig {
    /// Cycles of zero forward progress [`SnackPlatform::run_kernel`]
    /// tolerates before aborting the attempt. Defaults to
    /// [`SnackPlatform::NO_PROGRESS_WINDOW`]; chaos tests shrink it so
    /// remap/failover escalation fires quickly, think-heavy closed-loop
    /// runs may grow it. Must be at least
    /// [`SnackPlatform::MIN_NO_PROGRESS_WINDOW`].
    pub no_progress_window: u64,
    /// Kernel-level submission attempts (the initial run plus
    /// remap/failover retries) before `run_kernel` gives up with
    /// [`PlatformError::Unrecoverable`]. At least 1, at most
    /// [`PlatformConfig::MAX_KERNEL_ATTEMPTS`].
    pub max_kernel_attempts: u32,
    /// Per-kernel cycle budget: how long a single kernel may run from
    /// submission before the caller should give up on it. Consumed by
    /// the multi-tenant service loop as its abort deadline (a dispatched
    /// kernel that outlives the cap is quarantined and counted against
    /// its tenant) and available to any `run_kernel` caller as the
    /// canonical budget instead of an ad-hoc magic number. Must be at
    /// least [`PlatformConfig::no_progress_window`].
    pub kernel_cycle_cap: u64,
    /// Safety cap for [`SnackPlatform::run_multiprogram_capped`]: the
    /// hard deadline a multi-program run is bounded by when the caller
    /// does not supply one (previously the `u64::MAX / 2` magic constant
    /// scattered across examples and experiment binaries). Must be at
    /// least [`PlatformConfig::no_progress_window`].
    pub multiprogram_cycle_cap: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            no_progress_window: SnackPlatform::NO_PROGRESS_WINDOW,
            max_kernel_attempts: 4,
            kernel_cycle_cap: SnackPlatform::KERNEL_CYCLE_CAP,
            multiprogram_cycle_cap: SnackPlatform::MULTIPROGRAM_CYCLE_CAP,
        }
    }
}

impl PlatformConfig {
    /// Upper bound on [`PlatformConfig::max_kernel_attempts`]: the
    /// namespace epoch tag (`home + cpm_count * epoch`) must fit the
    /// 8-bit CPM namespace alongside up to 4 corner CPMs.
    pub const MAX_KERNEL_ATTEMPTS: u32 = 32;

    /// Checks the knobs: a window no smaller than
    /// [`SnackPlatform::MIN_NO_PROGRESS_WINDOW`] (zero or tiny windows
    /// would abort runs the watchdog was still legitimately recovering)
    /// and an attempt budget in `1..=MAX_KERNEL_ATTEMPTS`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), PlatformConfigError> {
        if self.no_progress_window < SnackPlatform::MIN_NO_PROGRESS_WINDOW {
            return Err(PlatformConfigError::WindowTooSmall {
                window: self.no_progress_window,
                min: SnackPlatform::MIN_NO_PROGRESS_WINDOW,
            });
        }
        if self.max_kernel_attempts == 0 || self.max_kernel_attempts > Self::MAX_KERNEL_ATTEMPTS {
            return Err(PlatformConfigError::BadAttemptBudget {
                attempts: self.max_kernel_attempts,
                max: Self::MAX_KERNEL_ATTEMPTS,
            });
        }
        if self.kernel_cycle_cap < self.no_progress_window {
            return Err(PlatformConfigError::CycleCapBelowWindow {
                cap: self.kernel_cycle_cap,
                window: self.no_progress_window,
            });
        }
        if self.multiprogram_cycle_cap < self.no_progress_window {
            return Err(PlatformConfigError::CycleCapBelowWindow {
                cap: self.multiprogram_cycle_cap,
                window: self.no_progress_window,
            });
        }
        Ok(())
    }
}

/// An invalid [`PlatformConfig`], rejected before installation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PlatformConfigError {
    /// The no-progress window is zero or smaller than the deepest
    /// recovery backoff the watchdog may legitimately take.
    WindowTooSmall {
        /// The rejected window.
        window: u64,
        /// The smallest accepted window.
        min: u64,
    },
    /// The kernel-attempt budget is zero or exceeds the namespace-epoch
    /// bit budget.
    BadAttemptBudget {
        /// The rejected budget.
        attempts: u32,
        /// The largest accepted budget.
        max: u32,
    },
    /// A cycle cap ([`PlatformConfig::kernel_cycle_cap`] or
    /// [`PlatformConfig::multiprogram_cycle_cap`]) is smaller than the
    /// no-progress window — the hang detector could never fire before
    /// the cap, making the cap the *only* backstop and the window dead
    /// configuration.
    CycleCapBelowWindow {
        /// The rejected cap.
        cap: u64,
        /// The configured no-progress window the cap must cover.
        window: u64,
    },
}

impl fmt::Display for PlatformConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformConfigError::WindowTooSmall { window, min } => {
                write!(f, "no-progress window {window} is below the minimum {min}")
            }
            PlatformConfigError::BadAttemptBudget { attempts, max } => {
                write!(f, "kernel attempt budget {attempts} is outside 1..={max}")
            }
            PlatformConfigError::CycleCapBelowWindow { cap, window } => {
                write!(f, "cycle cap {cap} is below the no-progress window {window}")
            }
        }
    }
}

impl std::error::Error for PlatformConfigError {}

/// How one graceful-degradation attempt of
/// [`SnackPlatform::run_kernel`] ended.
enum AttemptEnd {
    /// Results written back.
    Finished(KernelRun),
    /// A full no-progress window elapsed with a frozen progress
    /// signature.
    Stalled,
    /// The caller's overall `max_cycles` deadline was reached.
    Deadline,
}

/// Why the event-driven scheduler wants the platform awake at a given
/// cycle. The calendar queue keys on the cycle; the source tags exist for
/// debugging (which component bounded a jump) and to keep intra-cycle
/// entries distinguishable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WakeSource {
    /// The CMP workload engine has a due response or an expired think timer.
    Engine,
    /// CPM `i` has a fetch completion, queued issue work, or a watchdog
    /// sweep deadline.
    Cpm(usize),
    /// RCU `i` leaves its execution-latency horizon.
    Rcu(usize),
    /// A fault-plan RCU-stall window opens (stalled RCUs accrue
    /// `stalled_cycles` every cycle, so the window start is a state edge).
    StallWindow,
    /// The network's own calendar (fault-plan link-window edges).
    Net,
}

/// The CMP workload sharing the platform's NoC.
#[derive(Debug)]
enum Workload {
    /// Phase-model closed-loop traffic (the calibrated Table III suite).
    Phase(TrafficEngine),
    /// Directory-MESI coherence traffic from synthetic address streams.
    Coherent(CoherentEngine),
}

/// Result of a multi-program run (CMP benchmark + repeated kernels).
#[derive(Clone, Debug)]
pub struct MultiProgramRun {
    /// CMP application runtime in cycles.
    pub app_runtime: u64,
    /// Whether the application finished before the safety cap.
    pub app_finished: bool,
    /// Kernels completed during the application run.
    pub kernels_completed: u64,
    /// Mean kernel latency in cycles (completed kernels only).
    pub mean_kernel_cycles: f64,
    /// Final network statistics.
    pub stats: NetStats,
}

/// The SnackNoC platform: network + one or more CPMs + one RCU per router
/// (+ an optional CMP workload).
///
/// The paper's baseline uses a single CPM at one memory controller; its
/// §VII sketches a *decentralized* variant with a CPM per memory
/// controller issuing kernels in parallel. Build the latter with
/// [`SnackPlatform::with_cpm_count`].
#[derive(Debug)]
pub struct SnackPlatform {
    net: Network<SnackPayload>,
    rcus: Vec<Rcu>,
    cpms: Vec<Cpm>,
    engine: Option<Workload>,
    /// `ring_next[node]` = successor on the transient-data ring.
    ring_next: Vec<NodeId>,
    submitted_at: Vec<u64>,
    nodes: Vec<NodeId>,
    /// Active-RCU worklist: indices `i` with `!rcus[i].is_idle()`.
    /// Invariant: `rcu_flag[i]` ⟺ `i ∈ rcu_active` (no duplicates), and
    /// every RCU with queued or staged work is on the list. An RCU off
    /// the list is provably quiescent — ticking it is a pure no-op — so
    /// the per-cycle RCU loop touches only this set. Wake edge:
    /// instruction delivery ([`Rcu::accept_instruction`]).
    rcu_active: Vec<usize>,
    /// Drain scratch for `rcu_active` (ping-pong, keeps capacity).
    rcu_scratch: Vec<usize>,
    /// Membership flags mirroring `rcu_active`.
    rcu_flag: Vec<bool>,
    /// Reused scratch buffer for [`Rcu::tick_into`] emissions — one
    /// allocation for the whole platform instead of one `Vec` per RCU
    /// per cycle.
    emit_scratch: Vec<Emission>,
    /// Debug mode: tick every RCU densely each cycle (and forward dense
    /// stepping to the network). Must be bit-identical to active-set
    /// scheduling; `tests/determinism.rs` holds that proof.
    dense: bool,
    /// Event-driven time-wheel mode: when the whole platform is provably
    /// quiescent, jump the clock to the earliest scheduled wake instead of
    /// stepping cycle by cycle. Bit-identical to both other modes;
    /// mutually exclusive with `dense`.
    event: bool,
    /// The calendar queue of component wakes, rebuilt at each jump
    /// attempt (components are polled, not persistently subscribed — a
    /// poll is cheap and immune to stale-entry bugs).
    wheel: TimeWheel<WakeSource>,
    /// The virtual network carrying SnackNoC tokens: the last vnet, so the
    /// CMP workload owns the lower ones (2 for the phase model's
    /// request/response pair, 3 for the MESI protocol classes).
    snack_vnet: u8,
    /// Validated platform-level knobs (hang detector window, graceful-
    /// degradation attempt budget).
    pcfg: PlatformConfig,
}

impl SnackPlatform {
    /// Builds a platform on `cfg`, with the CPM at the first corner
    /// memory-controller node and one RCU per router.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for invalid configs, meshes without a
    /// Hamiltonian ring, or fewer than 3 vnets.
    pub fn new(cfg: NocConfig) -> Result<Self, PlatformError> {
        Self::with_cpm_config(cfg, CpmConfig::default(), DramModel::default())
    }

    /// Builds a *decentralized* platform (paper §VII) with `cpm_count`
    /// CPMs, one per memory-controller corner in corner order.
    ///
    /// # Errors
    ///
    /// See [`SnackPlatform::new`]. Also fails if the mesh has fewer
    /// corners than `cpm_count`.
    pub fn with_cpm_count(cfg: NocConfig, cpm_count: usize) -> Result<Self, PlatformError> {
        let mut platform = Self::with_cpm_config(cfg, CpmConfig::default(), DramModel::default())?;
        let corners = platform.net.mesh().corner_nodes();
        if cpm_count == 0 || cpm_count > corners.len() {
            return Err(PlatformError::BadCpmCount { requested: cpm_count, corners: corners.len() });
        }
        platform.cpms = corners[..cpm_count]
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                Cpm::with_namespace(node, i as u32, CpmConfig::default(), DramModel::default())
            })
            .collect();
        platform.submitted_at = vec![0; cpm_count];
        Ok(platform)
    }

    /// Builds a platform with explicit CPM and DRAM parameters.
    ///
    /// # Errors
    ///
    /// See [`SnackPlatform::new`].
    pub fn with_cpm_config(
        cfg: NocConfig,
        cpm_cfg: CpmConfig,
        dram: DramModel,
    ) -> Result<Self, PlatformError> {
        if cfg.vnets < 3 {
            return Err(PlatformError::MissingSnackVnet);
        }
        cpm_cfg.validate().map_err(PlatformError::CpmConfig)?;
        let net: Network<SnackPayload> = Network::new(cfg)?;
        let mesh = *net.mesh();
        let ring = mesh.ring().map_err(PlatformError::Ring)?;
        let mut ring_next = vec![NodeId::new(0); mesh.node_count()];
        for (i, &node) in ring.iter().enumerate() {
            ring_next[node.index()] = ring[(i + 1) % ring.len()];
        }
        let cpm_node = mesh.corner_nodes()[0];
        let snack_vnet = net.config().vnets - 1;
        let n = mesh.node_count();
        Ok(SnackPlatform {
            rcus: (0..n).map(|_| Rcu::new()).collect(),
            cpms: vec![Cpm::new(cpm_node, cpm_cfg, dram)],
            engine: None,
            ring_next,
            submitted_at: vec![0],
            nodes: mesh.nodes().collect(),
            snack_vnet,
            rcu_active: Vec::with_capacity(n),
            rcu_scratch: Vec::with_capacity(n),
            rcu_flag: vec![false; n],
            emit_scratch: Vec::new(),
            dense: false,
            event: false,
            wheel: TimeWheel::new(),
            pcfg: PlatformConfig::default(),
            net,
        })
    }

    /// Installs validated platform-level knobs (see [`PlatformConfig`]).
    ///
    /// # Errors
    ///
    /// Rejects zero/too-small no-progress windows and out-of-range
    /// attempt budgets with a typed [`PlatformConfigError`].
    pub fn set_platform_config(&mut self, cfg: PlatformConfig) -> Result<(), PlatformConfigError> {
        cfg.validate()?;
        self.pcfg = cfg;
        Ok(())
    }

    /// The platform-level knobs in force.
    pub fn platform_config(&self) -> PlatformConfig {
        self.pcfg
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        self.net.mesh()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.net.cycle()
    }

    /// Network statistics.
    pub fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// Flushes the trailing partial sampling window and returns the
    /// statistics (see [`snacknoc_noc::Network::finalize_stats`]). Call
    /// at the end of a measurement so runs shorter than one sampling
    /// window still report utilization samples.
    pub fn finalize_stats(&mut self) -> &NetStats {
        self.net.finalize_stats()
    }

    /// Installs a tracer; all subsequent instrumentation events from the
    /// NoC, the RCUs and the CPMs flow into it. Install
    /// [`TracerHandle::Nop`] (the default) to disable tracing — a
    /// `Nop`-traced run is bit-identical to an untraced one.
    pub fn set_tracer(&mut self, tracer: TracerHandle) {
        self.net.set_tracer(tracer);
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &TracerHandle {
        self.net.tracer()
    }

    /// Mutable access to the installed tracer.
    pub fn tracer_mut(&mut self) -> &mut TracerHandle {
        self.net.tracer_mut()
    }

    /// Removes and returns the installed tracer, leaving
    /// [`TracerHandle::Nop`] behind.
    pub fn take_tracer(&mut self) -> TracerHandle {
        self.net.take_tracer()
    }

    /// The primary CPM (kernel controller).
    pub fn cpm(&self) -> &Cpm {
        &self.cpms[0]
    }

    /// The `i`-th CPM of a decentralized platform.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn cpm_at(&self, i: usize) -> &Cpm {
        &self.cpms[i]
    }

    /// Number of CPMs on this platform.
    pub fn cpm_count(&self) -> usize {
        self.cpms.len()
    }

    /// Replaces every RCU with a `lanes`-wide vectorized one
    /// (paper §VII: increased compute density). Call before submitting
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn set_rcu_lanes(&mut self, lanes: usize) {
        self.rcus = (0..self.rcus.len()).map(|_| Rcu::with_lanes(lanes)).collect();
        // Fresh RCUs are idle: reset the worklist to match.
        self.rcu_active.clear();
        self.rcu_flag.iter_mut().for_each(|f| *f = false);
    }

    /// Switches between activity-driven scheduling (the default) and the
    /// dense reference loop that visits every component every cycle, in
    /// both the platform's RCU phase and the underlying network (see
    /// [`snacknoc_noc::Network::set_dense_stepping`]). The two modes are
    /// bit-identical by construction; dense mode exists as the oracle for
    /// that proof and for perf baselines.
    pub fn set_dense_stepping(&mut self, dense: bool) {
        self.dense = dense;
        self.event = false;
        self.net.set_event_stepping(false);
        self.net.set_dense_stepping(dense);
    }

    /// Whether the dense reference loop is in force.
    pub fn dense_stepping(&self) -> bool {
        self.dense
    }

    /// Switches event-driven time-wheel stepping on or off (and forwards
    /// the mode to the underlying network). In event mode the run loops
    /// skip provably-dead cycles by jumping the clock to the earliest
    /// component wake; per-cycle behaviour is otherwise the active-set
    /// scheduler's. Bit-identical to dense and active stepping —
    /// `tests/determinism.rs` and `tests/properties.rs` hold that proof.
    /// Turning event mode on turns dense mode off and vice versa.
    pub fn set_event_stepping(&mut self, on: bool) {
        self.event = on;
        if on {
            self.dense = false;
        }
        self.net.set_event_stepping(on);
    }

    /// Whether event-driven time-wheel stepping is in force.
    pub fn event_stepping(&self) -> bool {
        self.event
    }

    /// Partitions the underlying mesh into `shards` horizontal bands
    /// stepped by worker threads with deterministic boundary-flit
    /// exchange (forwards to [`snacknoc_noc::Network::set_sharding`];
    /// `0` restores serial stepping). Sharding composes with active and
    /// event stepping — the platform only jumps the clock when *all*
    /// shards report quiescent — and is bit-identical to both, which
    /// `tests/determinism.rs` holds as part of the four-mode matrix.
    /// Turning dense mode on folds the shards back into the serial path.
    pub fn set_sharding(&mut self, shards: usize) -> Result<(), snacknoc_noc::ShardError> {
        if shards > 0 {
            self.dense = false;
            self.net.set_dense_stepping(false);
        }
        self.net.set_sharding(shards)
    }

    /// Worker-shard count in force on the underlying network (`0` when
    /// stepping serially).
    pub fn sharding(&self) -> usize {
        self.net.sharding()
    }

    /// Total packets injected into the underlying network.
    pub fn net_injected_packets(&self) -> u64 {
        self.net.injected_packets()
    }

    /// Total packets fully delivered by the underlying network.
    pub fn net_delivered_packets(&self) -> u64 {
        self.net.delivered_packets()
    }

    /// Aggregated RCU statistics across all routers.
    pub fn rcu_stats(&self) -> RcuStats {
        let mut agg = RcuStats::default();
        for r in &self.rcus {
            agg.executed += r.stats.executed;
            agg.captures += r.stats.captures;
            agg.stalled_cycles += r.stats.stalled_cycles;
        }
        agg
    }

    /// Attaches a phase-model CMP workload that shares the NoC with kernel
    /// execution.
    pub fn attach_workload(&mut self, profile: &BenchmarkProfile, seed: u64) {
        self.engine =
            Some(Workload::Phase(TrafficEngine::new(profile.clone(), *self.net.mesh(), seed)));
    }

    /// Attaches a directory-MESI coherent CMP workload (higher-fidelity
    /// traffic: the protocol of Table IV). Requires a 4-vnet config so the
    /// three protocol classes don't share the SnackNoC vnet.
    ///
    /// # Panics
    ///
    /// Panics if the platform has fewer than 4 vnets.
    pub fn attach_coherent_workload(&mut self, pattern: AccessPattern, seed: u64) {
        assert!(
            self.snack_vnet >= 3,
            "coherent workloads need 4 vnets (request/forward/response + snack)"
        );
        self.engine = Some(Workload::Coherent(CoherentEngine::new(
            pattern,
            *self.net.mesh(),
            Default::default(),
            seed,
        )));
    }

    /// Whether the attached workload (if any) has completed.
    pub fn workload_done(&self) -> bool {
        match &self.engine {
            None => true,
            Some(Workload::Phase(e)) => e.done(),
            Some(Workload::Coherent(e)) => e.done(),
        }
    }

    /// The attached workload's runtime, if it finished.
    pub fn workload_runtime(&self) -> Option<u64> {
        match &self.engine {
            None => None,
            Some(Workload::Phase(e)) => e.finished_at(),
            Some(Workload::Coherent(e)) => e.finished_at(),
        }
    }

    /// Submits a kernel to the CPM.
    ///
    /// # Errors
    ///
    /// Propagates the CPM's busy/validation errors.
    pub fn submit_kernel(&mut self, kernel: &CompiledKernel) -> Result<(), SubmitError> {
        self.submit_kernel_to(0, kernel)
    }

    /// Submits a kernel to the `i`-th CPM of a decentralized platform.
    ///
    /// # Errors
    ///
    /// Propagates the CPM's busy/validation errors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn submit_kernel_to(&mut self, i: usize, kernel: &CompiledKernel) -> Result<(), SubmitError> {
        self.cpms[i].submit(kernel, self.net.cycle())?;
        let cycle = self.net.cycle();
        self.submitted_at[i] = cycle;
        self.net.tracer_mut().record_with(cycle, || EventKind::KernelSubmit { cpm: i as u32 });
        Ok(())
    }

    /// Namespace epochs available per CPM: how many distinct epoch tags
    /// (`ns = cpm + cpm_count * epoch`) fit the 8-bit namespace field.
    /// The multi-tenant service layer wraps its per-CPM dispatch epoch
    /// modulo this bound.
    pub fn namespace_epochs(&self) -> u32 {
        (1u32 << (32 - NAMESPACE_SHIFT)) / self.cpms.len() as u32
    }

    /// Submits a kernel to the `i`-th CPM under a fresh namespace epoch
    /// (`ns = i + cpm_count * epoch`): the multi-submission hook for the
    /// online service layer. Re-tagging the namespace before every
    /// dispatch guarantees that stragglers from any earlier kernel on
    /// this CPM — including one the service aborted with
    /// [`SnackPlatform::abort_kernel_on`] — carry a retired epoch and are
    /// quarantined at delivery, so concurrent tenants can never observe
    /// each other's tokens.
    ///
    /// # Errors
    ///
    /// [`PlatformError::BadEpoch`] when `epoch` exceeds
    /// [`SnackPlatform::namespace_epochs`], [`PlatformError::Submit`] for
    /// the CPM's busy/validation rejections.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn submit_kernel_epoch(
        &mut self,
        i: usize,
        epoch: u32,
        kernel: &CompiledKernel,
    ) -> Result<(), PlatformError> {
        let max = self.namespace_epochs();
        if epoch >= max {
            return Err(PlatformError::BadEpoch { epoch, max });
        }
        if self.cpms[i].state() != CpmState::Idle {
            return Err(PlatformError::Submit(SubmitError::Busy));
        }
        let ns = i as u32 + self.cpms.len() as u32 * epoch;
        self.cpms[i].set_namespace(ns);
        self.submit_kernel_to(i, kernel).map_err(PlatformError::Submit)
    }

    /// Whether the `i`-th CPM's node is permanently dead at the current
    /// cycle under the active fault plan (its CPM is frozen: it can
    /// neither fetch, issue, nor collect results). The service layer's
    /// admission control treats such a CPM as a lost slot.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn cpm_node_dead(&self, i: usize) -> bool {
        self.node_dead(self.cpms[i].node(), self.net.cycle())
    }

    /// Aborts and quarantines the kernel resident on CPM `i`, returning
    /// whether one was resident. The same quarantine `run_kernel` applies
    /// to a stalled graceful-degradation attempt: the CPM is reset to
    /// idle, the kernel's namespace is purged from every CPM's overflow
    /// buffer and every RCU, and the RCU worklist is rebuilt. In-flight
    /// stragglers keep the retired namespace and are dropped at delivery
    /// once the next [`SnackPlatform::submit_kernel_epoch`] re-tags the
    /// CPM. The service layer uses this to enforce its per-kernel cycle
    /// budget ([`PlatformConfig::kernel_cycle_cap`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn abort_kernel_on(&mut self, i: usize) -> bool {
        if self.cpms[i].state() == CpmState::Idle {
            return false;
        }
        let ns = self.cpms[i].namespace();
        self.cpms[i].abort();
        for c in &mut self.cpms {
            c.purge_overflow_namespace(ns);
        }
        for r in &mut self.rcus {
            r.abort_namespace(ns);
        }
        self.rcu_active.clear();
        for j in 0..self.rcus.len() {
            let live = !self.rcus[j].is_idle();
            self.rcu_flag[j] = live;
            if live {
                self.rcu_active.push(j);
            }
        }
        true
    }

    /// Kernels run to completion and collected across all CPMs
    /// (per-namespace accounting aggregated; see
    /// [`crate::cpm::CpmStats::kernels_completed`]).
    pub fn kernels_completed(&self) -> u64 {
        self.cpms.iter().map(|c| c.stats.kernels_completed).sum()
    }

    /// Advances the platform by one step — or, in event mode, by one
    /// clock jump capped at `cap` — and returns the new cycle. This is
    /// the service loop's advance primitive: the service passes its next
    /// scheduled event (pending arrival, abort deadline, horizon) as the
    /// cap, so a jump never skips a cycle on which the service must act,
    /// and every stepping mode observes service events at identical
    /// cycles.
    pub fn step_or_jump(&mut self, cap: u64) -> u64 {
        if !self.maybe_jump(cap) {
            self.step();
        }
        self.net.cycle()
    }

    /// Takes the finished kernel's outputs from the primary CPM.
    pub fn take_kernel_results(&mut self) -> Option<KernelRun> {
        self.take_kernel_results_from(0)
    }

    /// Takes the finished kernel's outputs from the `i`-th CPM.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpm_count()`.
    pub fn take_kernel_results_from(&mut self, i: usize) -> Option<KernelRun> {
        let finished_at = self.cpms[i].finished_at()?;
        if self.net.cycle() < finished_at {
            return None;
        }
        let (name, outputs) = self.cpms[i].take_results()?;
        self.net.tracer_mut().record_with(finished_at, || EventKind::KernelFinish { cpm: i as u32 });
        // The kernel is complete: drop the RCUs' retained token copies for
        // this CPM's namespace so retransmission state can't leak into the
        // next kernel.
        let ns = self.cpms[i].namespace();
        for r in &mut self.rcus {
            r.clear_retained_namespace(ns);
        }
        Some(KernelRun {
            name,
            cycles: finished_at - self.submitted_at[i],
            outputs,
            degradation: None,
        })
    }

    /// Whether compute at `node` (the RCU and any co-located CPM) is
    /// permanently dead at `cycle` under the active fault plan. Node
    /// death is a compute-layer failure: the *router* at a dead node
    /// keeps forwarding — the paper's slack disappears, the NoC does not.
    fn node_dead(&self, node: NodeId, cycle: u64) -> bool {
        self.net.fault_plan().is_some_and(|p| p.rcu_dead(node, cycle))
    }

    /// Whether the active fault plan declares any permanent RCU/node
    /// deaths (a cheap gate so fault-free stepping pays nothing).
    fn any_dead_nodes(&self) -> bool {
        self.net.fault_plan().is_some_and(|p| !p.dead_rcus.is_empty())
    }

    /// Installs (or replaces) the network's deterministic fault plan.
    /// Pass [`FaultPlan::none`] to clear it; a cleared plan restores
    /// bit-identical fault-free behaviour.
    ///
    /// # Errors
    ///
    /// Rejects invalid plans (out-of-range rates, inverted windows,
    /// off-mesh link coordinates).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        self.net.set_fault_plan(plan)
    }

    /// Fault-injection counters accumulated by the network.
    pub fn fault_counters(&self) -> FaultCounters {
        self.net.fault_counters()
    }

    /// Packets the fault layer dropped outright.
    pub fn lost_packets(&self) -> u64 {
        self.net.lost_packets()
    }

    /// Enables token-loss recovery (watchdog + retransmission) on every
    /// CPM with the given policy.
    pub fn enable_recovery(&mut self, cfg: RecoveryConfig) {
        for c in &mut self.cpms {
            c.enable_recovery(cfg);
        }
    }

    /// Aggregated recovery statistics across all CPMs.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut agg = RecoveryStats::default();
        for c in &self.cpms {
            agg.merge(c.recovery_stats());
        }
        agg
    }

    /// Advances the platform by one cycle: workload traffic, CPM issue,
    /// RCU execution, one network step, and delivery dispatch.
    pub fn step(&mut self) {
        let now = self.net.cycle();
        // CMP workload injections.
        match &mut self.engine {
            None => {}
            Some(Workload::Phase(engine)) => {
                for spec in engine.tick(now) {
                    let mapped = PacketSpec::new(
                        spec.src,
                        spec.dst,
                        spec.vnet,
                        spec.class,
                        spec.size_bytes,
                        SnackPayload::Cmp(spec.payload),
                    );
                    self.net.inject(mapped).expect("engine produces valid packets");
                }
            }
            Some(Workload::Coherent(engine)) => {
                for spec in engine.tick(now) {
                    let mapped = PacketSpec::new(
                        spec.src,
                        spec.dst,
                        spec.vnet,
                        spec.class,
                        spec.size_bytes,
                        SnackPayload::Coh(spec.payload),
                    );
                    self.net.inject(mapped).expect("engine produces valid packets");
                }
            }
        }
        // CPM issue (1 flit/cycle each).
        let dead_active = self.any_dead_nodes();
        for c in 0..self.cpms.len() {
            let node = self.cpms[c].node();
            if dead_active && self.node_dead(node, now) {
                // A dead corner node's CPM is frozen: no fetch, no issue,
                // no watchdog sweeps. The router underneath keeps
                // forwarding. All stepping modes skip it identically.
                continue;
            }
            let congestion = self.net.useful_free_output_vcs(node);
            // CPM decision events (overflow mode flips, watchdog loss
            // declarations) are diffed across the tick. The pre/post state
            // reads are gated on an enabled tracer so the disabled path
            // does no extra work.
            let traced = self.net.tracer().is_enabled();
            let (was_overflow, prev_detected) = if traced {
                (self.cpms[c].in_overflow(), self.cpms[c].recovery_stats().detected)
            } else {
                (false, 0)
            };
            let emission = self.cpms[c].tick(now, congestion);
            if traced {
                let now_overflow = self.cpms[c].in_overflow();
                if now_overflow != was_overflow {
                    let (free, total) = congestion;
                    self.net.tracer_mut().record_with(now, || {
                        if now_overflow {
                            EventKind::CpmOverflowEnter {
                                cpm: c as u32,
                                free: free as u32,
                                total: total as u32,
                            }
                        } else {
                            EventKind::CpmOverflowExit {
                                cpm: c as u32,
                                free: free as u32,
                                total: total as u32,
                            }
                        }
                    });
                }
                let detected = self.cpms[c].recovery_stats().detected;
                if detected > prev_detected {
                    self.net.tracer_mut().record_with(now, || EventKind::WatchdogDetect {
                        cpm: c as u32,
                        losses: detected - prev_detected,
                    });
                }
            }
            match emission {
                Some(CpmEmission::Instructions(packet)) => {
                    let dst = packet[0].pe;
                    self.net.tracer_mut().record_with(now, || EventKind::CpmIssue {
                        cpm: c as u32,
                        pe: dst.index() as u32,
                        count: packet.len() as u32,
                    });
                    let bytes = INSTRUCTION_BYTES * packet.len() as u32;
                    let spec = PacketSpec::new(
                        node,
                        dst,
                        self.snack_vnet,
                        TrafficClass::SnackInstruction,
                        bytes,
                        SnackPayload::Instructions(packet),
                    )
                    .with_protected();
                    self.net.inject(spec).expect("valid instruction packet");
                }
                Some(CpmEmission::ReplayToken(token)) => {
                    self.net.tracer_mut().record_with(now, || EventKind::CpmRefill {
                        cpm: c as u32,
                        dep: token.dep,
                    });
                    self.launch_token(node, token);
                }
                Some(CpmEmission::RequestRetransmit { dep, producer, remaining }) => {
                    self.net.tracer_mut().record_with(now, || EventKind::WatchdogRetransmit {
                        cpm: c as u32,
                        dep,
                        producer: producer.index() as u32,
                    });
                    // The watchdog asks the producing RCU to re-issue from
                    // its retained copy. We model the request as arriving
                    // instantly (a single control flit on the protected
                    // class); the re-issued token pays full ring transit.
                    // A dead producer's retained state is gone with it: the
                    // request goes unanswered, the watchdog burns its
                    // bounded retries, and the platform's no-progress
                    // window escalates to a kernel-level remap.
                    if dead_active && self.node_dead(producer, now) {
                        // Unanswered by design.
                    } else if let Some(token) =
                        self.rcus[producer.index()].retransmit(dep, remaining)
                    {
                        self.launch_token(producer, token);
                    }
                }
                None => {}
            }
        }
        // RCU execution. Fault-stall plans charge `stalled_cycles` to
        // *every* stalled RCU, idle or not, so they force the dense
        // reference loop; otherwise only the active set is ticked — an
        // RCU off the worklist has empty `pending` and `staged`, for
        // which `tick` is a pure no-op (no stats, no state).
        let has_stalls =
            self.net.fault_plan().is_some_and(|p| !p.rcu_stalls.is_empty());
        if has_stalls || self.dense {
            for i in 0..self.rcus.len() {
                if dead_active && self.node_dead(self.nodes[i], now) {
                    // A dead RCU never ticks (and never accrues stall
                    // statistics): its pending work freezes in place until
                    // the platform's escalation path purges it.
                    continue;
                }
                if has_stalls {
                    let node = self.nodes[i];
                    let stalled = self
                        .net
                        .fault_plan()
                        .is_some_and(|p| p.rcu_stalled(node, now));
                    if stalled {
                        self.rcus[i].stats.stalled_cycles += 1;
                        continue;
                    }
                }
                self.tick_rcu(i, now);
            }
            // Rebuild the worklist so a later switch back to active-set
            // scheduling resumes from a consistent set.
            self.rcu_active.clear();
            for i in 0..self.rcus.len() {
                let live = !self.rcus[i].is_idle();
                self.rcu_flag[i] = live;
                if live {
                    self.rcu_active.push(i);
                }
            }
        } else {
            // Drain the worklist in index order (matching the dense
            // loop); survivors re-enlist, quiescent RCUs drop off.
            std::mem::swap(&mut self.rcu_active, &mut self.rcu_scratch);
            self.rcu_scratch.sort_unstable();
            for k in 0..self.rcu_scratch.len() {
                let i = self.rcu_scratch[k];
                debug_assert!(self.rcu_flag[i], "worklist entry lost its flag");
                // Dead RCUs are skipped (identically to the dense loop);
                // their frozen pending work keeps them on the worklist
                // until escalation purges it.
                if !(dead_active && self.node_dead(self.nodes[i], now)) {
                    self.tick_rcu(i, now);
                }
                if self.rcus[i].is_idle() {
                    self.rcu_flag[i] = false;
                } else {
                    self.rcu_active.push(i);
                }
            }
            self.rcu_scratch.clear();
        }
        // The network cycle.
        self.net.step();
        // Deliveries.
        let now = self.net.cycle();
        for i in 0..self.nodes.len() {
            let node = self.nodes[i];
            for pkt in self.net.drain_ejected(node) {
                let corrupted = pkt.corrupted;
                match pkt.payload {
                    SnackPayload::Cmp(msg) => {
                        if let Some(Workload::Phase(engine)) = &mut self.engine {
                            engine.deliver(now, node, msg);
                        }
                    }
                    SnackPayload::Coh(msg) => {
                        if let Some(Workload::Coherent(engine)) = &mut self.engine {
                            engine.deliver(now, node, msg);
                        }
                    }
                    SnackPayload::Instructions(instrs) => {
                        // Stale instruction packets from an aborted
                        // attempt's epoch are quarantined, and packets
                        // that arrive at a node that has since died are
                        // dropped (the kernel stalls, then escalates to
                        // remap-and-retry). On a healthy platform every
                        // namespace matches its issuing CPM, so neither
                        // branch ever fires.
                        let ns = instrs[0].sub_block >> NAMESPACE_SHIFT;
                        let stale =
                            self.cpms[ns as usize % self.cpms.len()].namespace() != ns;
                        if stale || (dead_active && self.node_dead(node, now)) {
                            continue;
                        }
                        for ins in instrs {
                            debug_assert_eq!(ins.pe, node, "instruction routed to its PE");
                            self.net.tracer_mut().record_with(now, || EventKind::RcuIssue {
                                node: i as u32,
                                sub_block: ins.sub_block,
                                seq: ins.seq,
                            });
                            self.rcus[i].accept_instruction(ins);
                            // Wake edge: the RCU now has queued work, so
                            // it must be on next cycle's worklist.
                            if !self.rcu_flag[i] {
                                self.rcu_flag[i] = true;
                                self.rcu_active.push(i);
                            }
                        }
                    }
                    SnackPayload::Data(token) => {
                        // Quarantine first: tokens from an aborted
                        // attempt's stale epoch, or homed to a CPM whose
                        // node has died, are dropped — their kernel is
                        // gone (or about to be resubmitted under a fresh
                        // namespace) and a late straggler must never be
                        // confused with the retry's tokens.
                        let ns = token.dep >> NAMESPACE_SHIFT;
                        let home = ns as usize % self.cpms.len();
                        if self.cpms[home].namespace() != ns
                            || (dead_active && self.node_dead(self.cpms[home].node(), now))
                        {
                            continue;
                        }
                        // A corrupted ring hop damages the token's value; the
                        // checksum (sealed over dep/seq/value, not the
                        // in-flight dependent count) is the single detection
                        // path — corrupt tokens are quarantined and reported
                        // to the owning CPM's watchdog instead of poisoning
                        // downstream captures.
                        let token = if corrupted { token.with_damaged_value() } else { token };
                        if token.checksum_ok() {
                            self.ring_pass(node, token);
                        } else {
                            self.cpms[home].note_corrupt(token.dep, now);
                        }
                    }
                    SnackPayload::Result { index, value } => {
                        let ns = index >> NAMESPACE_SHIFT;
                        let home = ns as usize % self.cpms.len();
                        // Same quarantine as data tokens: stale-epoch
                        // results and results homed to a dead CPM are
                        // dropped, never written into a live kernel's FIFO.
                        if self.cpms[home].namespace() != ns
                            || (dead_active && self.node_dead(self.cpms[home].node(), now))
                        {
                            continue;
                        }
                        self.cpms[home].accept_result(index & NAMESPACE_MASK, value, now);
                    }
                }
            }
        }
    }

    /// Ticks RCU `i` through the reused emission scratch buffer and
    /// dispatches its completions (ring tokens, result packets). Shared
    /// by the dense and active-set RCU loops so both produce identical
    /// emission order with zero steady-state allocation.
    fn tick_rcu(&mut self, i: usize, now: u64) {
        let mut emissions = std::mem::take(&mut self.emit_scratch);
        debug_assert!(emissions.is_empty());
        self.rcus[i].tick_into(now, i as u32, self.net.tracer_mut(), &mut emissions);
        let node = self.nodes[i];
        for emission in emissions.drain(..) {
            match emission {
                Emission::Token(token) => self.launch_token(node, token),
                Emission::Output { index, value } => {
                    // The namespace in the index's high bits routes the
                    // result home to the CPM that issued the kernel
                    // (modulo the CPM count: epoch-bumped namespaces from
                    // graceful degradation still resolve to their home).
                    let home = (index >> NAMESPACE_SHIFT) as usize % self.cpms.len();
                    let spec = PacketSpec::new(
                        node,
                        self.cpms[home].node(),
                        self.snack_vnet,
                        TrafficClass::SnackData,
                        DATA_TOKEN_BYTES,
                        SnackPayload::Result { index, value },
                    )
                    .with_protected();
                    self.net.inject(spec).expect("valid result packet");
                }
            }
        }
        self.emit_scratch = emissions;
    }

    /// Attempts an event-driven clock jump: if the platform is provably
    /// quiescent at the current cycle, every component schedules its next
    /// wake into the calendar queue and the clock jumps to the earliest
    /// one (capped at `cap`). Returns whether a jump happened; `false`
    /// means the caller must take a real [`SnackPlatform::step`].
    ///
    /// Soundness: a jump from `now` to `to` is taken only when every
    /// skipped [`SnackPlatform::step`] in `now..to` would have been a
    /// no-op — network quiescent (nothing buffered, in flight, or queued
    /// at an NI), the workload engine's next response/think-expiry at or
    /// past `to`, every CPM's next effectful tick at or past `to` (the
    /// ALO congestion signal is frozen while the network is quiescent, so
    /// polling it once is sound), every RCU idle or busy until at least
    /// `to`, no RCU-stall fault window open or opening before `to`, and
    /// no fault-plan link-window edge before `to`. The skipped cycles'
    /// only observable effect — idle statistics accounting — is replayed
    /// in bulk by [`snacknoc_noc::Network::advance_idle_to`].
    fn maybe_jump(&mut self, cap: u64) -> bool {
        if !self.event {
            return false;
        }
        let now = self.net.cycle();
        if cap <= now || !self.net.is_quiescent() {
            return false;
        }
        debug_assert!(self.wheel.is_empty(), "wake wheel must be drained between jumps");
        // Poll every component for its next wake. Any wake at (or before)
        // `now` means the next step is not a no-op: abort the jump.
        let engine_wake = match &self.engine {
            None => None,
            Some(Workload::Phase(e)) => e.next_event_cycle(),
            Some(Workload::Coherent(e)) => e.next_event_cycle(),
        };
        if let Some(w) = engine_wake {
            if w <= now {
                return false;
            }
            self.wheel.schedule(w, WakeSource::Engine);
        }
        let dead_active = self.any_dead_nodes();
        for c in 0..self.cpms.len() {
            // Dead CPMs never tick (see `step`), so they never bound a
            // jump either.
            if dead_active && self.node_dead(self.cpms[c].node(), now) {
                continue;
            }
            let congestion = self.net.useful_free_output_vcs(self.cpms[c].node());
            match self.cpms[c].next_wake(now, congestion) {
                Some(w) if w <= now => {
                    self.wheel.clear();
                    return false;
                }
                Some(w) => self.wheel.schedule(w, WakeSource::Cpm(c)),
                None => {}
            }
        }
        if let Some(plan) = self.net.fault_plan() {
            if !plan.rcu_stalls.is_empty() {
                if plan.any_rcu_stalled(now) {
                    // Stalled RCUs are charged `stalled_cycles` every
                    // cycle of the window: stepping is mandatory.
                    self.wheel.clear();
                    return false;
                }
                if let Some(s) = plan.next_rcu_stall_start_after(now) {
                    self.wheel.schedule(s, WakeSource::StallWindow);
                }
            }
        }
        for (i, r) in self.rcus.iter().enumerate() {
            // Dead RCUs never tick, so their frozen pending work must not
            // pin the clock (it would otherwise report a wake at `now`
            // forever and forbid every jump).
            if dead_active
                && self.net.fault_plan().is_some_and(|p| p.rcu_dead(self.nodes[i], now))
            {
                continue;
            }
            match r.next_wake(now) {
                Some(w) if w <= now => {
                    self.wheel.clear();
                    return false;
                }
                Some(w) => self.wheel.schedule(w, WakeSource::Rcu(i)),
                None => {}
            }
        }
        if let Some(w) = self.net.next_wake() {
            self.wheel.schedule(w, WakeSource::Net);
        }
        let to = self.wheel.next_cycle().map_or(cap, |w| w.min(cap));
        self.wheel.clear();
        self.net.advance_idle_to(to);
        true
    }

    /// Steps (or, in event mode, jumps) until the clock reaches `target`.
    pub fn step_until(&mut self, target: u64) {
        while self.net.cycle() < target {
            if !self.maybe_jump(target) {
                self.step();
            }
        }
    }

    /// Runs `cycles` steps (event mode: jumps across provably-dead
    /// stretches, landing on exactly the same cycle and statistics).
    pub fn run(&mut self, cycles: u64) {
        self.step_until(self.net.cycle() + cycles);
    }

    /// Submits `kernel` and steps until its results are written back,
    /// gracefully degrading around permanent faults.
    ///
    /// With no permanent faults this is a single attempt. With a fault
    /// plan declaring dead RCUs, dead links, or dead CPM nodes, the run
    /// becomes an *attempt loop* (bounded by
    /// [`PlatformConfig::max_kernel_attempts`]):
    ///
    /// * a dead home-CPM node triggers failover to the first live, idle
    ///   standby corner CPM (the standby inherits the recovery policy);
    /// * kernel blocks mapped to dead RCUs are remapped round-robin onto
    ///   live nodes before submission;
    /// * an attempt that stalls for a full no-progress window against a
    ///   permanent fault is aborted and quarantined (its namespace epoch
    ///   is retired so in-flight stragglers can never pollute the retry)
    ///   and the kernel is resubmitted remapped.
    ///
    /// A run that needed any of this (or merely ran on a degraded
    /// platform) carries a [`DegradationReport`] in
    /// [`KernelRun::degradation`].
    ///
    /// # Errors
    ///
    /// Propagates CPM submission errors as [`PlatformError::Submit`].
    /// If the kernel does not finish within `max_cycles`, or stalls with
    /// no permanent fault to route around, returns
    /// [`PlatformError::KernelTimeout`] with a [`StallReport`] snapshot.
    /// If permanent faults exhaust a degradation resource — no live RCU
    /// to remap onto, no live standby CPM, or the attempt budget — returns
    /// [`PlatformError::Unrecoverable`] naming the exhausted resource.
    /// Never hangs: every attempt is bounded by the validated no-progress
    /// window.
    pub fn run_kernel(
        &mut self,
        kernel: &CompiledKernel,
        max_cycles: u64,
    ) -> Result<KernelRun, PlatformError> {
        let overall_start = self.net.cycle();
        let deadline = overall_start + max_cycles;
        let base_retries = self.recovery_stats().retries;
        let mut report = DegradationReport::default();
        let mut home = 0usize;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let now = self.net.cycle();
            // Home-CPM failover: a dead home node can neither fetch,
            // issue, nor collect results — move the kernel to the first
            // live, idle standby corner before (re)submitting.
            if self.node_dead(self.cpms[home].node(), now) {
                let standby = (0..self.cpms.len()).find(|&i| {
                    !self.node_dead(self.cpms[i].node(), now)
                        && self.cpms[i].state() == CpmState::Idle
                });
                let Some(standby) = standby else {
                    return Err(PlatformError::Unrecoverable {
                        resource: DegradedResource::StandbyCpms,
                        attempts: attempt - 1,
                        cycles: now - overall_start,
                        stall: Box::new(self.net.stall_report()),
                    });
                };
                self.net.tracer_mut().record_with(now, || EventKind::CpmFailover {
                    from: home as u32,
                    to: standby as u32,
                });
                // Retained-state handoff: the standby inherits the dead
                // home's recovery policy so watchdog behaviour survives
                // the move.
                let policy = self.cpms[home].recovery_config();
                self.cpms[standby].enable_recovery(policy);
                home = standby;
                report.failovers += 1;
            }
            // Remap off permanently dead RCUs: nodes already dead at
            // submission time are guaranteed stalls, and nodes that died
            // mid-attempt get their blocks moved on the retry. The
            // translation is always derived from the *original* kernel,
            // so repeated remaps never chain.
            let dead =
                self.net.fault_plan().map_or_else(Vec::new, |p| p.dead_rcu_nodes_at(now));
            let prepared: CompiledKernel;
            let to_run: &CompiledKernel = if dead.is_empty() {
                kernel
            } else {
                let live: Vec<NodeId> =
                    self.nodes.iter().copied().filter(|n| !dead.contains(n)).collect();
                if live.is_empty() {
                    return Err(PlatformError::Unrecoverable {
                        resource: DegradedResource::Rcus,
                        attempts: attempt - 1,
                        cycles: now - overall_start,
                        stall: Box::new(self.net.stall_report()),
                    });
                }
                // Dead PEs rehome round-robin over the live set, in
                // first-use order for determinism.
                let mut translate: HashMap<NodeId, NodeId> = HashMap::new();
                let mut rr = 0usize;
                for ins in &kernel.instructions {
                    if dead.contains(&ins.pe) && !translate.contains_key(&ins.pe) {
                        translate.insert(ins.pe, live[rr % live.len()]);
                        rr += 1;
                    }
                }
                if translate.is_empty() {
                    kernel
                } else {
                    let moved = kernel
                        .instructions
                        .iter()
                        .filter(|i| translate.contains_key(&i.pe))
                        .count();
                    report.remaps += 1;
                    self.net.tracer_mut().record_with(now, || EventKind::KernelRemap {
                        cpm: home as u32,
                        attempt,
                        moved: moved as u32,
                    });
                    prepared = kernel.remapped(&translate);
                    &prepared
                }
            };
            // Epoch bump on every resubmission: stragglers from aborted
            // attempts stay behind a retired namespace. Home resolution is
            // namespace mod CPM count, so the bumped tag still routes here.
            if attempt > 1 {
                let epoch = attempt - 1;
                let ns = home as u32 + self.cpms.len() as u32 * epoch;
                self.cpms[home].set_namespace(ns);
            }
            self.submit_kernel_to(home, to_run).map_err(PlatformError::Submit)?;
            let attempt_start = self.net.cycle();
            match self.run_attempt(home, deadline) {
                AttemptEnd::Finished(run) => {
                    let now = self.net.cycle();
                    report.final_attempt_cycles = run.cycles;
                    report.watchdog_retries = self.recovery_stats().retries - base_retries;
                    if let Some(p) = self.net.fault_plan() {
                        report.dead_rcus = p.dead_rcu_nodes_at(now).len();
                        report.dead_links = p
                            .links
                            .iter()
                            .filter(|l| matches!(l.kind, LinkFaultKind::Dead))
                            .count();
                    }
                    let degradation = report.is_degraded().then_some(report);
                    return Ok(KernelRun { degradation, ..run });
                }
                AttemptEnd::Deadline => {
                    return Err(PlatformError::KernelTimeout {
                        cycles: self.net.cycle() - overall_start,
                        stall: Box::new(self.net.stall_report()),
                    });
                }
                AttemptEnd::Stalled => {
                    let now = self.net.cycle();
                    let permanent =
                        self.net.fault_plan().is_some_and(|p| p.has_permanent_faults());
                    if !permanent {
                        // Transient-only stall: nothing to remap around —
                        // the pre-degradation timeout semantics hold.
                        return Err(PlatformError::KernelTimeout {
                            cycles: now - overall_start,
                            stall: Box::new(self.net.stall_report()),
                        });
                    }
                    report.penalty_cycles += now - attempt_start;
                    // Quarantine the failed attempt: abort the home CPM,
                    // purge its namespace from every RCU and every CPM's
                    // overflow buffer, and rebuild the RCU worklist (purged
                    // RCUs may have gone idle).
                    let ns = self.cpms[home].namespace();
                    self.cpms[home].abort();
                    for c in &mut self.cpms {
                        c.purge_overflow_namespace(ns);
                    }
                    for r in &mut self.rcus {
                        r.abort_namespace(ns);
                    }
                    self.rcu_active.clear();
                    for i in 0..self.rcus.len() {
                        let live = !self.rcus[i].is_idle();
                        self.rcu_flag[i] = live;
                        if live {
                            self.rcu_active.push(i);
                        }
                    }
                    if attempt >= self.pcfg.max_kernel_attempts {
                        return Err(PlatformError::Unrecoverable {
                            resource: DegradedResource::RetryBudget,
                            attempts: attempt,
                            cycles: now - overall_start,
                            stall: Box::new(self.net.stall_report()),
                        });
                    }
                }
            }
        }
    }

    /// Steps (or, in event mode, jumps) until the kernel resident on CPM
    /// `home` finishes, stalls for a full no-progress window, or reaches
    /// the overall `deadline`. The stall cycle is
    /// `last_change + no_progress_window` exactly, in every stepping mode:
    /// event-mode jumps are capped there, so the hang detector observes
    /// the same cycle it would have fired at under dense stepping.
    fn run_attempt(&mut self, home: usize, deadline: u64) -> AttemptEnd {
        let window = self.pcfg.no_progress_window;
        let mut last_sig = self.progress_signature();
        let mut last_change = self.net.cycle();
        while self.net.cycle() < deadline {
            if self.net.cycle() - last_change >= window {
                return AttemptEnd::Stalled;
            }
            if self.maybe_jump(deadline.min(last_change + window)) {
                // A jump can land exactly on the final-writeback deadline:
                // poll completion so the run ends at the same cycle dense
                // stepping ends at.
                if let Some(run) = self.take_kernel_results_from(home) {
                    return AttemptEnd::Finished(run);
                }
                continue;
            }
            self.step();
            if let Some(run) = self.take_kernel_results_from(home) {
                return AttemptEnd::Finished(run);
            }
            let sig = self.progress_signature();
            if sig != last_sig {
                last_sig = sig;
                last_change = self.net.cycle();
            } else if self.net.cycle() - last_change >= window {
                return AttemptEnd::Stalled;
            }
        }
        AttemptEnd::Deadline
    }

    /// Default for [`PlatformConfig::no_progress_window`]: how long
    /// `run_kernel` tolerates zero forward progress before aborting an
    /// attempt. Generous enough to cover the deepest recovery backoff
    /// (`max_retries * backoff` plus a full ring circulation) at default
    /// settings.
    pub const NO_PROGRESS_WINDOW: u64 = 50_000;

    /// Smallest accepted [`PlatformConfig::no_progress_window`]: it must
    /// comfortably exceed the deepest default recovery backoff
    /// (`max_retries * backoff = 1024` cycles) plus a full ring
    /// circulation, or the hang detector would abort runs the watchdog
    /// was still legitimately recovering.
    pub const MIN_NO_PROGRESS_WINDOW: u64 = 2_048;

    /// Default for [`PlatformConfig::kernel_cycle_cap`]: the per-kernel
    /// cycle budget historically hardcoded at `run_kernel` call sites
    /// (generous enough for every paper kernel at its simulated size,
    /// including watchdog recovery and graceful-degradation retries).
    pub const KERNEL_CYCLE_CAP: u64 = 50_000_000;

    /// Default for [`PlatformConfig::multiprogram_cycle_cap`]: the
    /// effectively-unbounded safety deadline multi-program runs were
    /// historically given via a `u64::MAX / 2` magic constant.
    pub const MULTIPROGRAM_CYCLE_CAP: u64 = u64::MAX / 2;

    /// A deterministic fingerprint of kernel-level forward progress:
    /// instruction issue, RCU execution and captures, overflow absorption
    /// and replay, recovery activity, and pending result count. Network
    /// injections are deliberately *excluded* — a token circling the ring
    /// without ever being captured is not progress.
    fn progress_signature(&self) -> u64 {
        let mut sig = 0u64;
        for r in &self.rcus {
            sig = sig.wrapping_add(r.stats.executed).wrapping_add(r.stats.captures);
        }
        for c in &self.cpms {
            let s = &c.stats;
            sig = sig
                .wrapping_add(s.instructions_issued)
                .wrapping_add(s.tokens_absorbed)
                .wrapping_add(s.tokens_replayed);
            let rs = c.recovery_stats();
            sig = sig.wrapping_add(rs.retries).wrapping_add(rs.corrupt_detected);
            sig = sig.wrapping_add(c.pending_results() as u64);
        }
        sig
    }

    /// Runs the attached workload to completion while *continually*
    /// re-submitting `kernel` (the paper's multi-program experiment:
    /// kernels execute on the NoC simultaneously with CMP applications).
    ///
    /// Pass `kernel = None` to run the workload alone on the same platform
    /// (the interference baseline).
    ///
    /// # Panics
    ///
    /// Panics if no workload is attached.
    pub fn run_multiprogram(
        &mut self,
        kernel: Option<&CompiledKernel>,
        max_cycles: u64,
    ) -> MultiProgramRun {
        assert!(self.engine.is_some(), "attach_workload first");
        let mut kernels_completed = 0u64;
        let mut kernel_cycles_sum = 0u64;
        let deadline = self.net.cycle() + max_cycles;
        while !self.workload_done() && self.net.cycle() < deadline {
            if let Some(k) = kernel {
                if self.cpms[0].state() == CpmState::Idle {
                    self.submit_kernel(k).expect("cpm idle");
                }
            }
            // Event mode: jump across workload think-time gaps (a fresh
            // submission parks a wake at `now` via the CPM's fetch path,
            // so a jump never skips kernel work).
            if !self.maybe_jump(deadline) {
                self.step();
            }
            if let Some(run) = self.take_kernel_results() {
                kernels_completed += 1;
                kernel_cycles_sum += run.cycles;
            }
        }
        MultiProgramRun {
            app_runtime: self.workload_runtime().unwrap_or(self.net.cycle()),
            app_finished: self.workload_done(),
            kernels_completed,
            mean_kernel_cycles: if kernels_completed == 0 {
                0.0
            } else {
                kernel_cycles_sum as f64 / kernels_completed as f64
            },
            // Flush the trailing partial sampling window so short runs
            // report real utilization medians (not a silent 0.0).
            stats: self.net.finalize_stats().clone(),
        }
    }

    /// [`SnackPlatform::run_multiprogram`] bounded by the validated
    /// [`PlatformConfig::multiprogram_cycle_cap`] instead of a caller
    /// magic number.
    ///
    /// # Panics
    ///
    /// Panics if no workload is attached.
    pub fn run_multiprogram_capped(&mut self, kernel: Option<&CompiledKernel>) -> MultiProgramRun {
        let cap = self.pcfg.multiprogram_cycle_cap;
        self.run_multiprogram(kernel, cap)
    }

    /// Launches a data token from `node` to the next node on the static
    /// ring, detouring around faulted-down ring links when a fault plan is
    /// active.
    fn launch_token(&mut self, node: NodeId, token: DataToken) {
        debug_assert!(token.dependents > 0, "dead token launched");
        let now = self.net.cycle();
        let ns = token.dep >> NAMESPACE_SHIFT;
        let home = ns as usize % self.cpms.len();
        // Registry bookkeeping only for the epoch actually resident on
        // the home CPM — a straggler from an aborted attempt must not
        // plant a watch record in the retry's registry.
        if self.cpms[home].namespace() == ns {
            self.cpms[home].note_token(&token, node, now);
        }
        let mut next = self.ring_next[node.index()];
        if let Some(plan) = self.net.fault_plan() {
            if plan
                .links
                .iter()
                .any(|l| matches!(l.kind, LinkFaultKind::Down | LinkFaultKind::Dead))
            {
                // Graceful ring degradation: if the deterministic route to
                // the ring successor crosses a severed link right now, skip
                // ahead to the first successor whose route is fully live.
                // Skipped nodes are safe — a circulating token revisits
                // them on a later lap once the link heals, and permanently
                // unreachable captures are the watchdog's job.
                let mesh = *self.net.mesh();
                let routing = self.net.config().routing;
                let route_blocked = |dst: NodeId| -> bool {
                    let mut cur = node;
                    while cur != dst {
                        let dir = routing.route(&mesh, cur, dst);
                        if plan.link_is_down(cur, dir, now) {
                            return true;
                        }
                        match mesh.neighbor(cur, dir) {
                            Some(nb) => cur = nb,
                            None => return true,
                        }
                    }
                    false
                };
                let mut candidate = next;
                for _ in 0..mesh.node_count() {
                    if candidate != node && !route_blocked(candidate) {
                        next = candidate;
                        break;
                    }
                    candidate = self.ring_next[candidate.index()];
                }
            }
        }
        self.net.tracer_mut().record_with(now, || EventKind::TokenLaunch {
            dep: token.dep,
            seq: token.seq,
            from: node.index() as u32,
            to: next.index() as u32,
        });
        let spec = PacketSpec::new(
            node,
            next,
            self.snack_vnet,
            TrafficClass::SnackData,
            DATA_TOKEN_BYTES,
            SnackPayload::Data(token),
        );
        self.net.inject(spec).expect("valid token packet");
    }

    /// Handles a ring token arriving at `node`: CPM overflow absorption,
    /// RCU inspection, then retirement or the next hop.
    fn ring_pass(&mut self, node: NodeId, token: DataToken) {
        let now = self.net.cycle();
        let dep = token.dep;
        // A dead node's compute is gone but its router forwards: the token
        // passes straight through — no CPM absorption, no RCU capture.
        let dead_here = self.node_dead(node, now);
        let cpm_here =
            if dead_here { None } else { self.cpms.iter().position(|c| c.node() == node) };
        let mut token = if let Some(ci) = cpm_here {
            match self.cpms[ci].maybe_absorb(token, now) {
                Some(t) => t,
                None => {
                    // Parked in the overflow buffer.
                    self.net
                        .tracer_mut()
                        .record_with(now, || EventKind::CpmSpill { cpm: ci as u32, dep });
                    return;
                }
            }
        } else {
            token
        };
        let before = token.dependents;
        if !dead_here {
            self.rcus[node.index()].observe_token(&mut token);
        }
        let home = ((token.dep >> NAMESPACE_SHIFT) as usize) % self.cpms.len();
        let captured = before - token.dependents;
        if captured > 0 {
            self.net.tracer_mut().record_with(now, || EventKind::RcuCapture {
                node: node.index() as u32,
                dep,
                captured,
            });
            self.cpms[home].note_captures(token.dep, captured, now);
        }
        // A copy retires when its own countdown hits zero — or, with the
        // watchdog enabled, as soon as the home CPM's record says every
        // dependent has been served. The latter catches duplicates from
        // false-positive loss declarations: the original and the replay
        // each capture a subset, so neither copy's own counter reaches
        // zero even though the dep is fully settled.
        if token.dependents > 0 && !self.cpms[home].token_settled(token.dep) {
            self.launch_token(node, token);
        } else {
            self.net.tracer_mut().record_with(now, || EventKind::TokenRetire {
                dep,
                node: node.index() as u32,
            });
            self.cpms[home].note_retired(token.dep, now);
        }
    }

    /// Count of transient data tokens currently parked in CPM overflow
    /// buffers. Useful for conservation tests.
    pub fn live_tokens_lower_bound(&self) -> usize {
        self.cpms.iter().map(|c| c.overflow_backlog()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Op, Operand, ResultDest};

    fn imm(v: f64) -> Operand {
        Operand::Imm(Fixed::from_f64(v))
    }

    fn platform() -> SnackPlatform {
        SnackPlatform::new(NocConfig::default().with_sample_window(1_000)).unwrap()
    }

    /// out0 = (1+2)*4 computed on two different RCUs via a ring token.
    fn cross_pe_kernel(mesh: &Mesh) -> CompiledKernel {
        CompiledKernel {
            irregular_fetch: false,
            name: "cross".into(),
            num_outputs: 1,
            instructions: vec![
                Instruction {
                    op: Op::Add,
                    pe: mesh.node_at(1, 1),
                    vl: imm(1.0),
                    vr: imm(2.0),
                    dest: ResultDest::Token { dep: 0, dependents: 1 },
                    sub_block: 0,
                    seq: 0,
                    ends_block: true,
                },
                Instruction {
                    op: Op::Mul,
                    pe: mesh.node_at(2, 3),
                    vl: Operand::Dep(0),
                    vr: imm(4.0),
                    dest: ResultDest::Output { index: 0 },
                    sub_block: 1,
                    seq: 0,
                    ends_block: true,
                },
            ],
        }
    }

    #[test]
    fn runs_a_cross_pe_kernel_end_to_end() {
        let mut p = platform();
        let k = cross_pe_kernel(&p.mesh().clone());
        let run = p.run_kernel(&k, 10_000).expect("kernel finishes");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        assert!(run.cycles > 60, "includes DRAM fetch latency");
        assert_eq!(run.name, "cross");
        let rs = p.rcu_stats();
        assert_eq!(rs.executed, 2);
        assert!(rs.captures >= 1);
    }

    #[test]
    fn mac_reduction_kernel_on_one_rcu() {
        let mut p = platform();
        let pe = p.mesh().node_at(3, 3);
        // acc = 1*2 + 3*4 + 5*6 = 44.
        let pairs = [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)];
        let n = pairs.len();
        let instructions = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Instruction {
                op: Op::Mac,
                pe,
                vl: imm(a),
                vr: imm(b),
                dest: if i == n - 1 {
                    ResultDest::Output { index: 0 }
                } else {
                    ResultDest::Accumulate
                },
                sub_block: 0,
                seq: i as u32,
                ends_block: i == n - 1,
            })
            .collect();
        let k = CompiledKernel { name: "dot".into(), num_outputs: 1, instructions, irregular_fetch: false };
        let run = p.run_kernel(&k, 10_000).expect("finishes");
        assert_eq!(run.outputs, vec![Fixed::from_f64(44.0)]);
    }

    #[test]
    fn token_with_many_dependents_feeds_every_rcu() {
        let mut p = platform();
        let mesh = *p.mesh();
        let producer = mesh.node_at(0, 1);
        let n = mesh.node_count() as u32;
        let mut instructions = vec![Instruction {
            op: Op::Add,
            pe: producer,
            vl: imm(5.0),
            vr: imm(5.0),
            dest: ResultDest::Token { dep: 0, dependents: n },
            sub_block: 0,
            seq: 0,
            ends_block: true,
        }];
        for (i, node) in mesh.nodes().enumerate() {
            instructions.push(Instruction {
                op: Op::Add,
                pe: node,
                vl: Operand::Dep(0),
                vr: imm(i as f64),
                dest: ResultDest::Output { index: i as u32 },
                sub_block: 1 + i as u32,
                seq: 0,
                ends_block: true,
            });
        }
        let k = CompiledKernel { name: "bcast".into(), num_outputs: 16, instructions, irregular_fetch: false };
        let run = p.run_kernel(&k, 50_000).expect("finishes");
        for (i, out) in run.outputs.iter().enumerate() {
            assert_eq!(*out, Fixed::from_f64(10.0 + i as f64), "output {i}");
        }
    }

    #[test]
    fn workload_alone_matches_standalone_runner_protocol() {
        let mut p = platform();
        let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Fmm)
            .scaled(0.005);
        p.attach_workload(&profile, 11);
        let run = p.run_multiprogram(None, 50_000_000);
        assert!(run.app_finished);
        assert_eq!(run.kernels_completed, 0);
        assert!(run.app_runtime > 0);
    }

    #[test]
    fn multiprogram_runs_kernels_alongside_workload() {
        let mut p = platform();
        let mesh = *p.mesh();
        let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Volrend)
            .scaled(0.003);
        p.attach_workload(&profile, 13);
        let k = cross_pe_kernel(&mesh);
        let run = p.run_multiprogram(Some(&k), 100_000_000);
        assert!(run.app_finished);
        assert!(run.kernels_completed > 0, "kernels complete during the app");
        assert!(run.mean_kernel_cycles > 0.0);
    }

    #[test]
    fn platform_and_results_are_send() {
        // The parallel sweep harness constructs platforms from owned
        // configs inside worker threads and ships results back; these
        // bounds are load-bearing for `crates/bench/src/sweep.rs`.
        fn assert_send<T: Send>() {}
        assert_send::<SnackPlatform>();
        assert_send::<MultiProgramRun>();
        assert_send::<KernelRun>();
        assert_send::<NocConfig>();
    }

    #[test]
    fn rejects_two_vnets() {
        let cfg = NocConfig::default().with_vnets(2);
        assert!(matches!(
            SnackPlatform::new(cfg),
            Err(PlatformError::MissingSnackVnet)
        ));
    }

    #[test]
    fn decentralized_cpms_run_kernels_concurrently() {
        // Paper §VII future work: one CPM per memory controller. Four
        // kernels with *identical* dependency ids run at once; namespacing
        // keeps their ring tokens apart and routes results home.
        let mut p = SnackPlatform::with_cpm_count(
            NocConfig::default().with_sample_window(1_000),
            4,
        )
        .unwrap();
        assert_eq!(p.cpm_count(), 4);
        let mesh = *p.mesh();
        let kernels: Vec<CompiledKernel> = (0..4)
            .map(|i| {
                let mut k = cross_pe_kernel(&mesh);
                // Different immediate so each CPM's answer is distinct:
                // out = (1 + 2 + i) * 4.
                k.instructions[0].vr = imm(2.0 + i as f64);
                k.name = format!("k{i}");
                k
            })
            .collect();
        for (i, k) in kernels.iter().enumerate() {
            p.submit_kernel_to(i, k).expect("idle cpm accepts");
        }
        let mut done = vec![None; 4];
        for _ in 0..100_000 {
            p.step();
            for (i, slot) in done.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = p.take_kernel_results_from(i);
                }
            }
            if done.iter().all(|d| d.is_some()) {
                break;
            }
        }
        for (i, run) in done.into_iter().enumerate() {
            let run = run.unwrap_or_else(|| panic!("kernel {i} must finish"));
            assert_eq!(run.name, format!("k{i}"));
            assert_eq!(run.outputs, vec![Fixed::from_f64((3.0 + i as f64) * 4.0)], "kernel {i}");
        }
    }

    #[test]
    fn decentralized_cpm_count_is_validated() {
        assert!(matches!(
            SnackPlatform::with_cpm_count(NocConfig::default(), 5),
            Err(PlatformError::BadCpmCount { requested: 5, corners: 4 })
        ));
        assert!(matches!(
            SnackPlatform::with_cpm_count(NocConfig::default(), 0),
            Err(PlatformError::BadCpmCount { .. })
        ));
    }

    #[test]
    fn coherent_workload_shares_the_noc_with_kernels() {
        // The MESI traffic mode: protocol classes on vnets 0-2, snack on 3.
        let cfg = NocConfig::default().with_vnets(4).with_sample_window(1_000);
        let mut p = SnackPlatform::new(cfg).unwrap();
        let mesh = *p.mesh();
        p.attach_coherent_workload(
            AccessPattern { accesses_per_core: 200, ..AccessPattern::shared_heavy() },
            21,
        );
        let k = cross_pe_kernel(&mesh);
        let run = p.run_multiprogram(Some(&k), 100_000_000);
        assert!(run.app_finished, "coherent workload completes");
        assert!(run.kernels_completed > 0, "kernels complete alongside MESI traffic");
    }

    #[test]
    fn coherent_workload_requires_four_vnets() {
        let mut p = SnackPlatform::new(NocConfig::default()).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.attach_coherent_workload(AccessPattern::default(), 1);
        }));
        assert!(result.is_err(), "3-vnet platform must reject coherent workloads");
    }

    #[test]
    fn kernel_latency_grows_under_interference() {
        // Zero-load kernel latency vs the same kernel sharing the NoC with
        // a heavy benchmark: interference must not speed the kernel up, and
        // the paper reports it slows by a few percent at most.
        let mesh_kernel = |p: &SnackPlatform| cross_pe_kernel(p.mesh());
        let mut alone = platform();
        let k = mesh_kernel(&alone);
        let solo = alone.run_kernel(&k, 100_000).expect("finishes").cycles;

        let mut shared = platform();
        let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Radix)
            .scaled(0.001);
        shared.attach_workload(&profile, 17);
        // Let the workload warm up, then run the kernel.
        shared.run(2_000);
        let busy = shared.run_kernel(&k, 200_000).expect("finishes").cycles;
        assert!(busy >= solo, "interference cannot accelerate the kernel: {busy} vs {solo}");
    }

    /// A plan that drops *every* unprotected data packet on *every* link
    /// for cycles `start..end` — the worst transient outage.
    fn blackout_plan(mesh: &Mesh, start: u64, end: u64) -> FaultPlan {
        let mut plan = FaultPlan::seeded(7);
        for node in mesh.nodes() {
            for dir in snacknoc_noc::Dir::ROUTER_DIRS {
                if mesh.neighbor(node, dir).is_some() {
                    plan = plan.with_link_fault(
                        node,
                        dir,
                        start,
                        end,
                        LinkFaultKind::Drop { rate: 1.0 },
                    );
                }
            }
        }
        plan
    }

    #[test]
    fn recovery_replays_tokens_lost_to_a_transient_blackout() {
        let mut p = platform();
        let mesh = *p.mesh();
        let k = cross_pe_kernel(&mesh);
        p.set_fault_plan(blackout_plan(&mesh, 0, 2_000)).unwrap();
        p.enable_recovery(RecoveryConfig::aggressive());
        let run = p.run_kernel(&k, 100_000).expect("kernel survives the outage");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        assert!(p.lost_packets() > 0, "the blackout actually dropped tokens");
        let rs = p.recovery_stats();
        assert!(rs.detected > 0, "the watchdog noticed the loss");
        assert_eq!(rs.recovered, rs.detected, "every detected loss was recovered");
        assert!(rs.retries >= rs.detected);
        assert!(rs.recovery_latency.samples() > 0);
    }

    #[test]
    fn corrupted_tokens_are_quarantined_and_retransmitted() {
        let mut p = platform();
        let mesh = *p.mesh();
        let k = cross_pe_kernel(&mesh);
        // Corrupt every data packet until cycle 1500, then go clean.
        let mut plan = FaultPlan::seeded(11);
        for node in mesh.nodes() {
            for dir in snacknoc_noc::Dir::ROUTER_DIRS {
                if mesh.neighbor(node, dir).is_some() {
                    plan = plan.with_link_fault(
                        node,
                        dir,
                        0,
                        1_500,
                        LinkFaultKind::Corrupt { rate: 1.0 },
                    );
                }
            }
        }
        p.set_fault_plan(plan).unwrap();
        p.enable_recovery(RecoveryConfig::aggressive());
        let run = p.run_kernel(&k, 100_000).expect("kernel survives corruption");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        let rs = p.recovery_stats();
        assert!(rs.corrupt_detected > 0, "checksums caught the damage");
        assert_eq!(rs.recovered, rs.detected);
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
    }

    #[test]
    fn permanent_loss_terminates_with_a_kernel_timeout() {
        let mut p = platform();
        let mesh = *p.mesh();
        let k = cross_pe_kernel(&mesh);
        // The blackout never lifts: the token can never reach its consumer
        // and the retry budget runs dry. run_kernel must abort with a
        // structured report instead of spinning to the cycle cap.
        p.set_fault_plan(blackout_plan(&mesh, 0, u64::MAX)).unwrap();
        p.enable_recovery(RecoveryConfig::aggressive());
        match p.run_kernel(&k, 50_000_000) {
            Err(PlatformError::KernelTimeout { cycles, stall }) => {
                assert!(
                    cycles < 1_000_000,
                    "no-progress watchdog fires long before the cycle cap: {cycles}"
                );
                assert!(stall.lost_packets > 0, "report blames the dropped tokens: {stall}");
            }
            other => panic!("expected KernelTimeout, got {other:?}"),
        }
        let rs = p.recovery_stats();
        assert!(rs.detected > 0);
        assert!(rs.recovered < rs.detected, "the loss was genuinely unrecoverable");
    }

    #[test]
    fn ring_detours_around_a_downed_link_without_recovery() {
        let mut p = platform();
        let mesh = *p.mesh();
        // Sever the producer's outbound ring hop for the whole run. The
        // launch path must steer tokens around the dead wire; no recovery
        // machinery is enabled, so completion proves the detour works.
        let ring = mesh.ring().unwrap();
        let producer = mesh.node_at(1, 1);
        let pos = ring.iter().position(|&n| n == producer).unwrap();
        let succ = ring[(pos + 1) % ring.len()];
        let dir = snacknoc_noc::Dir::ROUTER_DIRS
            .into_iter()
            .find(|&d| mesh.neighbor(producer, d) == Some(succ))
            .expect("ring hops are mesh links");
        let plan = FaultPlan::seeded(3).with_link_fault(
            producer,
            dir,
            0,
            u64::MAX,
            LinkFaultKind::Down,
        );
        p.set_fault_plan(plan).unwrap();
        let k = cross_pe_kernel(&mesh);
        let run = p.run_kernel(&k, 100_000).expect("detour keeps the ring live");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
    }

    #[test]
    fn rcu_stall_windows_delay_but_do_not_break_kernels() {
        let mut baseline = platform();
        let mesh = *baseline.mesh();
        let k = cross_pe_kernel(&mesh);
        let clean = baseline.run_kernel(&k, 100_000).expect("finishes").cycles;

        let mut p = platform();
        let plan = FaultPlan::seeded(5)
            .with_rcu_stall(mesh.node_at(1, 1), 0, 3_000)
            .with_rcu_stall(mesh.node_at(2, 3), 0, 3_000);
        p.set_fault_plan(plan).unwrap();
        let run = p.run_kernel(&k, 100_000).expect("finishes after the stall");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        assert!(
            run.cycles > clean,
            "stalled RCUs must slow the kernel: {} vs {clean}",
            run.cycles
        );
    }

    #[test]
    fn with_cpm_config_rejects_inverted_hysteresis() {
        let cfg = CpmConfig {
            overflow_enter_below: 0.9,
            overflow_exit_above: 0.2,
            ..CpmConfig::default()
        };
        assert!(matches!(
            SnackPlatform::with_cpm_config(NocConfig::default(), cfg, DramModel::default()),
            Err(PlatformError::CpmConfig(CpmConfigError::HysteresisInverted { .. }))
        ));
    }

    #[test]
    fn default_fault_free_run_is_bit_identical_with_and_without_none_plan() {
        // Zero-cost-when-disabled: installing FaultPlan::none() must not
        // perturb a single cycle of the simulation.
        let mut a = platform();
        let mesh = *a.mesh();
        let k = cross_pe_kernel(&mesh);
        let run_a = a.run_kernel(&k, 100_000).expect("finishes");

        let mut b = platform();
        b.set_fault_plan(FaultPlan::none()).unwrap();
        let run_b = b.run_kernel(&k, 100_000).expect("finishes");
        assert_eq!(run_a.cycles, run_b.cycles);
        assert_eq!(run_a.outputs, run_b.outputs);
        assert_eq!(b.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn ring_tracer_records_full_kernel_lifecycle() {
        use snacknoc_trace::{ComponentClass, TracerHandle};
        let mut p = platform();
        p.set_tracer(TracerHandle::ring(1 << 16));
        let k = cross_pe_kernel(&p.mesh().clone());
        let run = p.run_kernel(&k, 10_000).expect("kernel finishes");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        let tracer = *p.take_tracer().take_ring().expect("ring tracer installed");
        assert_eq!(tracer.dropped(ComponentClass::Cpm), 0);
        let count = |name: &str| {
            tracer.merged_events().iter().filter(|e| e.kind.name() == name).count()
        };
        // Kernel bracket on the CPM lane.
        assert_eq!(count("kernel_submit"), 1);
        assert_eq!(count("kernel_finish"), 1);
        // One instruction packet per PE, one issue event per instruction.
        assert_eq!(count("cpm_issue"), 2);
        assert_eq!(count("rcu_issue"), 2);
        // Both instructions fired; the token launched, was captured by the
        // consumer RCU, and retired.
        assert_eq!(count("rcu_fire"), 2);
        assert!(count("token_launch") >= 1);
        assert_eq!(count("rcu_capture"), 1);
        assert_eq!(count("token_retire"), 1);
        // The NoC lane saw every snack packet.
        assert!(count("packet_inject") >= 4, "2 instr + token hops + result");
        assert_eq!(count("packet_inject"), count("packet_eject"));
        // Submit/finish bracket matches the measured kernel latency.
        let submit = tracer
            .merged_events()
            .iter()
            .find(|e| e.kind.name() == "kernel_submit")
            .map(|e| e.cycle)
            .expect("submit recorded");
        let finish = tracer
            .merged_events()
            .iter()
            .find(|e| e.kind.name() == "kernel_finish")
            .map(|e| e.cycle)
            .expect("finish recorded");
        assert_eq!(finish - submit, run.cycles);
    }

    #[test]
    fn nop_tracer_kernel_run_is_bit_identical_to_untraced() {
        use snacknoc_trace::TracerHandle;
        let mut a = platform();
        let mesh = *a.mesh();
        let k = cross_pe_kernel(&mesh);
        let run_a = a.run_kernel(&k, 100_000).expect("finishes");

        let mut b = platform();
        b.set_tracer(TracerHandle::Nop);
        let run_b = b.run_kernel(&k, 100_000).expect("finishes");
        assert_eq!(run_a.cycles, run_b.cycles);
        assert_eq!(run_a.outputs, run_b.outputs);
        assert_eq!(a.rcu_stats().executed, b.rcu_stats().executed);
        assert_eq!(a.stats().injected_flits, b.stats().injected_flits);
        assert_eq!(a.stats().crossbar_transfers, b.stats().crossbar_transfers);
    }

    #[test]
    fn ring_tracer_does_not_perturb_kernel_timing() {
        use snacknoc_trace::TracerHandle;
        let mut a = platform();
        let mesh = *a.mesh();
        let k = cross_pe_kernel(&mesh);
        let run_a = a.run_kernel(&k, 100_000).expect("finishes");

        let mut b = platform();
        b.set_tracer(TracerHandle::ring(4096));
        let run_b = b.run_kernel(&k, 100_000).expect("finishes");
        assert_eq!(run_a.cycles, run_b.cycles, "observation must not change timing");
        assert_eq!(run_a.outputs, run_b.outputs);
    }

    /// Applies stepping mode 0 (dense), 1 (active, the default),
    /// 2 (event), 3 (sharded ×2) or 4 (event + sharded ×2) to a fresh
    /// platform.
    fn set_mode(p: &mut SnackPlatform, mode: u8) {
        match mode {
            0 => p.set_dense_stepping(true),
            1 => {}
            2 => p.set_event_stepping(true),
            3 => p.set_sharding(2).expect("two shards fit the test mesh"),
            _ => {
                p.set_event_stepping(true);
                p.set_sharding(2).expect("two shards fit the test mesh");
            }
        }
    }

    /// A comparable snapshot of everything a stepping mode could perturb.
    fn mode_fingerprint(p: &mut SnackPlatform) -> (u64, u64, u64, u64, u64, u64, u64, usize) {
        let rcu = p.rcu_stats();
        let rec = p.recovery_stats();
        let cycle = p.cycle();
        let (inj, del) = (p.net_injected_packets(), p.net_delivered_packets());
        let stats = p.finalize_stats();
        (
            cycle,
            inj,
            del,
            stats.injected_flits,
            stats.crossbar_transfers,
            rcu.executed + rcu.captures + rcu.stalled_cycles,
            rec.detected + rec.recovered + rec.retries,
            (0..stats.router_count())
                .map(|r| stats.crossbar_series(r).samples().len())
                .sum::<usize>(),
        )
    }

    /// Satellite 1: an event-mode jump that lands exactly on the
    /// no-progress deadline must time out at the *same cycle* as the
    /// dense reference, with identical statistics — the watchdog fires
    /// neither early (spuriously, mid-jump) nor late (jumped over).
    #[test]
    fn event_mode_watchdog_fires_at_the_exact_dense_timeout_cycle() {
        let run = |mode: u8| {
            let mut p = platform();
            set_mode(&mut p, mode);
            let k = cross_pe_kernel(&p.mesh().clone());
            // Drop *everything*, protected classes included: the kernel
            // can never progress and the platform goes fully quiescent,
            // so event mode's only path to the timeout is an idle jump
            // that lands exactly on `last_change + NO_PROGRESS_WINDOW`.
            let plan = FaultPlan::seeded(3)
                .with_drop_rate(1.0)
                .with_respect_protection(false)
                .with_targets(snacknoc_noc::FaultTargets {
                    data: true,
                    instructions: true,
                    communication: true,
                });
            p.set_fault_plan(plan).unwrap();
            match p.run_kernel(&k, 10_000_000) {
                Err(PlatformError::KernelTimeout { cycles, .. }) => (cycles, mode_fingerprint(&mut p)),
                other => panic!("expected KernelTimeout, got {other:?}"),
            }
        };
        let dense = run(0);
        let active = run(1);
        let event = run(2);
        assert_eq!(dense, active, "active mode diverged from dense");
        assert_eq!(dense, event, "event mode diverged from dense");
        assert_eq!(dense, run(3), "sharded mode diverged from dense");
        assert_eq!(dense, run(4), "event+sharded mode diverged from dense");
        assert!(
            dense.0 >= SnackPlatform::NO_PROGRESS_WINDOW
                && dense.0 < SnackPlatform::NO_PROGRESS_WINDOW + 1_000,
            "timeout = brief issue burst + one full dead window, got {}",
            dense.0
        );
    }

    /// Satellite 1: recovery-watchdog sweep deadlines are wheel events —
    /// jumping across the post-blackout quiet period must reach each
    /// sweep at exactly the dense cycle, declaring exactly the same
    /// losses and replaying exactly the same tokens.
    #[test]
    fn event_mode_recovery_matches_dense_across_watchdog_deadlines() {
        let run = |mode: u8| {
            let mut p = platform();
            set_mode(&mut p, mode);
            let mesh = *p.mesh();
            let k = cross_pe_kernel(&mesh);
            p.set_fault_plan(blackout_plan(&mesh, 0, 2_000)).unwrap();
            p.enable_recovery(RecoveryConfig::aggressive());
            let run = p.run_kernel(&k, 100_000).expect("kernel survives the outage");
            (run.cycles, run.outputs.clone(), mode_fingerprint(&mut p))
        };
        let dense = run(0);
        assert_eq!(dense, run(1), "active mode diverged from dense");
        assert_eq!(dense, run(2), "event mode diverged from dense");
        assert_eq!(dense, run(3), "sharded mode diverged from dense");
        assert_eq!(dense, run(4), "event+sharded mode diverged from dense");
    }

    /// Satellite 1: a fault-free event-mode run with recovery armed must
    /// never declare a loss — idle jumps crossing sweep deadlines are
    /// observationally identical to stepping through them.
    #[test]
    fn idle_jumps_do_not_trip_the_recovery_watchdog_spuriously() {
        let mut p = platform();
        p.set_event_stepping(true);
        p.enable_recovery(RecoveryConfig::aggressive());
        let k = cross_pe_kernel(&p.mesh().clone());
        let run = p.run_kernel(&k, 100_000).expect("finishes");
        assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
        assert_eq!(p.recovery_stats().detected, 0, "no spurious loss declarations");
        // A long idle run afterwards is one jump: the clock lands exactly
        // on target and the watchdog still holds its fire.
        let before = p.cycle();
        p.run(1_000_000);
        assert_eq!(p.cycle(), before + 1_000_000);
        assert_eq!(p.recovery_stats().detected, 0);
    }

    /// Event mode must produce the identical multiprogram result —
    /// think-time gaps between workload bursts are where the jumps land.
    #[test]
    fn event_mode_multiprogram_is_bit_identical() {
        let run = |mode: u8| {
            let mut p = platform();
            set_mode(&mut p, mode);
            let profile = snacknoc_workloads::suite::profile(snacknoc_workloads::Benchmark::Radix)
                .scaled(0.002);
            p.attach_workload(&profile, 23);
            let k = cross_pe_kernel(&p.mesh().clone());
            let out = p.run_multiprogram(Some(&k), 2_000_000);
            (
                out.app_runtime,
                out.app_finished,
                out.kernels_completed,
                out.mean_kernel_cycles.to_bits(),
                mode_fingerprint(&mut p),
            )
        };
        let dense = run(0);
        assert_eq!(dense, run(1), "active mode diverged from dense");
        assert_eq!(dense, run(2), "event mode diverged from dense");
        assert_eq!(dense, run(3), "sharded mode diverged from dense");
        assert_eq!(dense, run(4), "event+sharded mode diverged from dense");
    }

    #[test]
    fn dead_rcu_at_submission_is_remapped_proactively() {
        // Node (1,1) hosts sub-block 0 and is dead before submission: the
        // first attempt must already run on a remapped kernel — no wasted
        // stall window, no penalty cycles.
        let run = |mode: u8| {
            let mut p = platform();
            set_mode(&mut p, mode);
            let mesh = *p.mesh();
            let k = cross_pe_kernel(&mesh);
            let plan = FaultPlan::seeded(9).with_dead_rcu(mesh.node_at(1, 1), 0);
            p.set_fault_plan(plan).unwrap();
            let run = p.run_kernel(&k, 200_000).expect("remap routes around the dead RCU");
            assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
            let d = run.degradation.expect("degraded run carries a report");
            assert_eq!(d.dead_rcus, 1);
            assert_eq!(d.remaps, 1, "proactive remap on the first attempt");
            assert_eq!(d.failovers, 0);
            assert_eq!(d.penalty_cycles, 0, "no attempt was wasted");
            assert_eq!(d.final_attempt_cycles, run.cycles);
            assert_eq!(d.total_cycles(), run.cycles);
            (run.cycles, run.outputs.clone(), d, mode_fingerprint(&mut p))
        };
        let dense = run(0);
        assert_eq!(dense, run(1), "active mode diverged from dense");
        assert_eq!(dense, run(2), "event mode diverged from dense");
        assert_eq!(dense, run(3), "sharded mode diverged from dense");
        assert_eq!(dense, run(4), "event+sharded mode diverged from dense");
    }

    #[test]
    fn mid_run_rcu_death_stalls_then_retries_with_a_remap() {
        // The consumer RCU dies *after* submission but before its
        // instruction packet can arrive: attempt 1 stalls out a full
        // no-progress window, is quarantined, and attempt 2 resubmits the
        // kernel remapped off the corpse under a fresh namespace epoch.
        let run = |mode: u8| {
            let mut p = platform();
            set_mode(&mut p, mode);
            let mesh = *p.mesh();
            let k = cross_pe_kernel(&mesh);
            let plan = FaultPlan::seeded(13).with_dead_rcu(mesh.node_at(2, 3), 1);
            p.set_fault_plan(plan).unwrap();
            p.set_platform_config(PlatformConfig {
                no_progress_window: 3_000,
                ..PlatformConfig::default()
            })
            .unwrap();
            let run = p.run_kernel(&k, 200_000).expect("retry-with-remap recovers");
            assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
            let d = run.degradation.expect("degraded run carries a report");
            assert_eq!(d.dead_rcus, 1);
            assert_eq!(d.remaps, 1, "the retry was remapped");
            assert!(d.penalty_cycles >= 3_000, "attempt 1 burned a stall window");
            assert_eq!(d.final_attempt_cycles, run.cycles);
            (run.cycles, run.outputs.clone(), d, mode_fingerprint(&mut p))
        };
        let dense = run(0);
        assert_eq!(dense, run(1), "active mode diverged from dense");
        assert_eq!(dense, run(2), "event mode diverged from dense");
        assert_eq!(dense, run(3), "sharded mode diverged from dense");
        assert_eq!(dense, run(4), "event+sharded mode diverged from dense");
    }

    #[test]
    fn dead_home_cpm_node_fails_over_to_a_standby_corner() {
        let run = |mode: u8| {
            let mut p = SnackPlatform::with_cpm_count(
                NocConfig::default().with_sample_window(1_000),
                4,
            )
            .unwrap();
            set_mode(&mut p, mode);
            let mesh = *p.mesh();
            let home_node = p.cpm_at(0).node();
            let k = cross_pe_kernel(&mesh);
            let plan = FaultPlan::seeded(17).with_dead_rcu(home_node, 0);
            p.set_fault_plan(plan).unwrap();
            let run = p.run_kernel(&k, 200_000).expect("failover keeps the kernel alive");
            assert_eq!(run.outputs, vec![Fixed::from_f64(12.0)]);
            let d = run.degradation.expect("degraded run carries a report");
            assert_eq!(d.failovers, 1, "home CPM moved to a standby corner");
            assert_eq!(d.dead_rcus, 1);
            (run.cycles, run.outputs.clone(), d, mode_fingerprint(&mut p))
        };
        let dense = run(0);
        assert_eq!(dense, run(1), "active mode diverged from dense");
        assert_eq!(dense, run(2), "event mode diverged from dense");
        assert_eq!(dense, run(3), "sharded mode diverged from dense");
        assert_eq!(dense, run(4), "event+sharded mode diverged from dense");
    }

    #[test]
    fn dead_home_cpm_with_no_standby_is_unrecoverable() {
        let mut p = platform();
        let mesh = *p.mesh();
        let home_node = p.cpm().node();
        let k = cross_pe_kernel(&mesh);
        p.set_fault_plan(FaultPlan::seeded(19).with_dead_rcu(home_node, 0)).unwrap();
        match p.run_kernel(&k, 200_000) {
            Err(PlatformError::Unrecoverable { resource, attempts, .. }) => {
                assert_eq!(resource, DegradedResource::StandbyCpms);
                assert_eq!(attempts, 0, "failed before any submission");
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn unfixable_permanent_stall_exhausts_the_attempt_budget() {
        // A permanent dead link plus a total forever-blackout: every
        // attempt stalls, no remap can help (no RCU is dead), and the
        // attempt budget runs out with a typed verdict — never a hang.
        let mut p = platform();
        let mesh = *p.mesh();
        let k = cross_pe_kernel(&mesh);
        let node = mesh.node_at(1, 1);
        let dir = snacknoc_noc::Dir::ROUTER_DIRS
            .into_iter()
            .find(|&d| mesh.neighbor(node, d).is_some())
            .unwrap();
        let plan = blackout_plan(&mesh, 0, u64::MAX).with_dead_link(node, dir, 0);
        p.set_fault_plan(plan).unwrap();
        p.set_platform_config(PlatformConfig {
            no_progress_window: SnackPlatform::MIN_NO_PROGRESS_WINDOW,
            max_kernel_attempts: 2,
            ..PlatformConfig::default()
        })
        .unwrap();
        match p.run_kernel(&k, 10_000_000) {
            Err(PlatformError::Unrecoverable { resource, attempts, cycles, .. }) => {
                assert_eq!(resource, DegradedResource::RetryBudget);
                assert_eq!(attempts, 2, "both budgeted attempts were spent");
                assert!(cycles < 100_000, "bounded by windows, not the cycle cap: {cycles}");
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn transient_only_stalls_keep_the_plain_timeout_contract() {
        // No permanent fault to route around: the degradation loop must
        // not retry at all — same KernelTimeout as before this feature.
        let mut p = platform();
        let mesh = *p.mesh();
        let k = cross_pe_kernel(&mesh);
        p.set_fault_plan(blackout_plan(&mesh, 0, u64::MAX)).unwrap();
        match p.run_kernel(&k, 10_000_000) {
            Err(PlatformError::KernelTimeout { .. }) => {}
            other => panic!("expected KernelTimeout, got {other:?}"),
        }
    }

    #[test]
    fn platform_config_knobs_are_validated() {
        let mut p = platform();
        assert_eq!(
            p.set_platform_config(PlatformConfig {
                no_progress_window: 0,
                ..PlatformConfig::default()
            }),
            Err(PlatformConfigError::WindowTooSmall {
                window: 0,
                min: SnackPlatform::MIN_NO_PROGRESS_WINDOW,
            })
        );
        assert_eq!(
            p.set_platform_config(PlatformConfig {
                no_progress_window: SnackPlatform::MIN_NO_PROGRESS_WINDOW - 1,
                ..PlatformConfig::default()
            }),
            Err(PlatformConfigError::WindowTooSmall {
                window: SnackPlatform::MIN_NO_PROGRESS_WINDOW - 1,
                min: SnackPlatform::MIN_NO_PROGRESS_WINDOW,
            })
        );
        assert_eq!(
            p.set_platform_config(PlatformConfig {
                max_kernel_attempts: 0,
                ..PlatformConfig::default()
            }),
            Err(PlatformConfigError::BadAttemptBudget {
                attempts: 0,
                max: PlatformConfig::MAX_KERNEL_ATTEMPTS,
            })
        );
        assert_eq!(
            p.set_platform_config(PlatformConfig {
                max_kernel_attempts: PlatformConfig::MAX_KERNEL_ATTEMPTS + 1,
                ..PlatformConfig::default()
            }),
            Err(PlatformConfigError::BadAttemptBudget {
                attempts: PlatformConfig::MAX_KERNEL_ATTEMPTS + 1,
                max: PlatformConfig::MAX_KERNEL_ATTEMPTS,
            })
        );
        assert_eq!(
            p.set_platform_config(PlatformConfig {
                kernel_cycle_cap: SnackPlatform::NO_PROGRESS_WINDOW - 1,
                ..PlatformConfig::default()
            }),
            Err(PlatformConfigError::CycleCapBelowWindow {
                cap: SnackPlatform::NO_PROGRESS_WINDOW - 1,
                window: SnackPlatform::NO_PROGRESS_WINDOW,
            })
        );
        assert_eq!(
            p.set_platform_config(PlatformConfig {
                multiprogram_cycle_cap: 0,
                ..PlatformConfig::default()
            }),
            Err(PlatformConfigError::CycleCapBelowWindow {
                cap: 0,
                window: SnackPlatform::NO_PROGRESS_WINDOW,
            })
        );
        // A valid config installs and reads back.
        let cfg = PlatformConfig {
            no_progress_window: 4_096,
            max_kernel_attempts: 8,
            ..PlatformConfig::default()
        };
        p.set_platform_config(cfg).unwrap();
        assert_eq!(p.platform_config(), cfg);
    }

    #[test]
    fn clean_runs_report_no_degradation() {
        let mut p = platform();
        let k = cross_pe_kernel(&p.mesh().clone());
        let run = p.run_kernel(&k, 100_000).expect("finishes");
        assert_eq!(run.degradation, None, "fault-free runs carry no report");
    }

}
