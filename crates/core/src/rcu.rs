//! The Router Compute Unit: the dataflow processing element added to every
//! NoC router (paper §III-D).
//!
//! An RCU holds an **ordered instruction buffer** (instructions grouped in
//! sub-blocks, executed in sequence within a block), a **dependency
//! buffer** (values captured from passing transient data tokens), an
//! **accumulator register**, and a fixed-point ALU (1-cycle add/sub/acc,
//! 2-cycle multiply/MAC). It follows the classic dataflow firing rule: an
//! instruction executes once its operands are available — with the
//! constraint that a sub-block, once started, owns the accumulator until
//! its final instruction retires (paper §III-D1).

use crate::fixed::Fixed;
use crate::token::{DataToken, DepId, Instruction, Op, Operand, ResultDest, SubBlockId};
use snacknoc_trace::{EventKind, FireDest, TracerHandle, NO_DEP};
use std::collections::{BTreeMap, HashMap};

/// Stable small-integer encoding of an [`Op`] for structured trace events.
fn op_code(op: Op) -> u8 {
    match op {
        Op::Add => 0,
        Op::Sub => 1,
        Op::Mul => 2,
        Op::Mac => 3,
        Op::Acc => 4,
    }
}

/// Something an RCU wants to put on the network after an execution.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Emission {
    /// A transient data token to launch onto the static ring.
    Token(DataToken),
    /// A final kernel result headed for the CPM's output FIFO.
    Output {
        /// Output slot index.
        index: u32,
        /// The result value.
        value: Fixed,
    },
}

/// Counters exposed for the utilization and QoS analyses.
#[derive(Clone, Copy, Debug, Default)]
pub struct RcuStats {
    /// Instructions executed.
    pub executed: u64,
    /// Data-token captures from the ring.
    pub captures: u64,
    /// Cycles spent with at least one instruction pending but none
    /// fireable (dependency stalls).
    pub stalled_cycles: u64,
}

/// One Router Compute Unit.
#[derive(Clone, Debug)]
pub struct Rcu {
    /// Pending instructions: per sub-block, ordered by sequence number.
    pending: BTreeMap<SubBlockId, BTreeMap<u32, Instruction>>,
    /// Next sequence number to execute per sub-block.
    progress: HashMap<SubBlockId, u32>,
    /// Captured dependency values with their remaining local use count.
    dep_buffer: HashMap<DepId, (Fixed, u32)>,
    /// Operand references awaiting capture from the ring.
    wanted: HashMap<DepId, u32>,
    /// The accumulator register.
    acc: Fixed,
    /// The sub-block currently owning the accumulator.
    active_block: Option<SubBlockId>,
    /// Cursor cache for the active block: the sequence number it wants
    /// next (mirror of `progress[active_block]`) and a copy of that
    /// instruction if it has already arrived. Lets [`Rcu::next_fireable`]
    /// answer the common every-cycle question — "can the active block
    /// advance?" — without re-walking `progress` (HashMap) and `pending`
    /// (two BTreeMap levels) per lane per cycle. Meaningful only while
    /// `active_block.is_some()`.
    active_seq: u32,
    /// Copy of `pending[active_block][active_seq]`, `None` if that
    /// instruction has not arrived yet (or no block is active).
    cursor: Option<Instruction>,
    /// ALU busy until this cycle.
    busy_until: u64,
    /// Emissions produced by the in-flight instruction group, released
    /// when the ALU latency elapses.
    staged: Vec<Emission>,
    /// Last token produced per dependency id — the *kernel state* the
    /// CPM watchdog re-issues from when a ring token is lost to a fault
    /// (see [`Rcu::retransmit`]). Cleared per CPM namespace when that
    /// CPM's kernel retires its results.
    produced: HashMap<DepId, DataToken>,
    /// Instructions fired per cycle. 1 models the paper's scalar RCU;
    /// larger widths model the *vectorized RCUs* of §VII (a MAC tree
    /// retiring several chain steps per cycle).
    lanes: usize,
    /// Counters.
    pub stats: RcuStats,
}

impl Default for Rcu {
    fn default() -> Self {
        Self::new()
    }
}

impl Rcu {
    /// Creates an idle scalar (1-lane) RCU.
    pub fn new() -> Self {
        Self::with_lanes(1)
    }

    /// Creates an idle RCU firing up to `lanes` instructions per cycle
    /// (paper §VII: vectorized RCUs).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_lanes(lanes: usize) -> Self {
        assert!(lanes > 0, "an RCU needs at least one lane");
        Rcu {
            pending: BTreeMap::new(),
            progress: HashMap::new(),
            dep_buffer: HashMap::new(),
            wanted: HashMap::new(),
            acc: Fixed::ZERO,
            active_block: None,
            active_seq: 0,
            cursor: None,
            busy_until: 0,
            staged: Vec::new(),
            produced: HashMap::new(),
            lanes,
            stats: RcuStats::default(),
        }
    }

    /// Number of instructions waiting in the ordered instruction buffer.
    pub fn pending_instructions(&self) -> usize {
        self.pending.values().map(|b| b.len()).sum()
    }

    /// Whether the RCU has nothing queued, staged, or in flight.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.staged.is_empty()
    }

    /// The next cycle at which ticking this RCU is *not* a provable no-op,
    /// given the current cycle — `None` for an idle RCU (event-driven
    /// stepping may sleep indefinitely; delivery of work re-wakes it).
    ///
    /// A busy RCU wakes at its execution-latency horizon (`tick` returns
    /// untouched before then); a non-idle RCU past that horizon must run
    /// every cycle — either it fires instructions or it accrues
    /// `stalled_cycles`, and both change state.
    pub fn next_wake(&self, now: u64) -> Option<u64> {
        if self.is_idle() {
            None
        } else if self.busy_until > now {
            Some(self.busy_until)
        } else {
            Some(now)
        }
    }

    /// Enqueues an arriving instruction token into the ordered buffer and
    /// registers its dependency wants.
    pub fn accept_instruction(&mut self, ins: Instruction) {
        for operand in [ins.vl, ins.vr] {
            if let Some(d) = operand.dep() {
                *self.wanted.entry(d).or_insert(0) += 1;
            }
        }
        self.pending.entry(ins.sub_block).or_default().insert(ins.seq, ins);
        self.progress.entry(ins.sub_block).or_insert(0);
        // Wake edge for the cursor cache: the active block may have been
        // waiting exactly for this instruction.
        if self.active_block == Some(ins.sub_block) && ins.seq == self.active_seq {
            self.cursor = Some(ins);
        }
    }

    /// Lets the RCU inspect a transient data token passing its router.
    /// If any pending operand references the token's dependency, the value
    /// is captured into the dependency buffer and the token's dependent
    /// count is decremented by the number of captured references.
    pub fn observe_token(&mut self, token: &mut DataToken) {
        if let Some(w) = self.wanted.remove(&token.dep) {
            debug_assert!(w > 0);
            debug_assert!(
                token.dependents >= w,
                "token retired early: dependents underflow (program invalid)"
            );
            token.dependents -= w;
            let entry = self.dep_buffer.entry(token.dep).or_insert((token.value, 0));
            entry.0 = token.value;
            entry.1 += w;
            self.stats.captures += 1;
        }
    }

    /// Re-issues the retained token for `dep` with `remaining` dependents
    /// and a bumped sequence tag — the recovery path the CPM watchdog
    /// drives when a ring token is presumed lost (paper-faithful kernel
    /// state lives at the producing RCU). Returns `None` if this RCU never
    /// produced `dep` (e.g. the producer instruction has not fired yet).
    pub fn retransmit(&mut self, dep: DepId, remaining: u32) -> Option<DataToken> {
        let retained = self.produced.get_mut(&dep)?;
        *retained = retained.with_seq(retained.seq + 1);
        Some(DataToken::new(dep, remaining, retained.value).with_seq(retained.seq))
    }

    /// Drops retained tokens belonging to the CPM namespace `namespace`
    /// (called when that CPM's kernel completes, so retained state never
    /// leaks across kernels).
    pub fn clear_retained_namespace(&mut self, namespace: u32) {
        self.produced.retain(|dep, _| dep >> crate::cpm::NAMESPACE_SHIFT != namespace);
    }

    /// Number of produced tokens currently retained for retransmission.
    pub fn retained_tokens(&self) -> usize {
        self.produced.len()
    }

    /// Purges every piece of per-kernel state belonging to CPM namespace
    /// `namespace`: pending instructions, operand wants, captured operand
    /// values, staged emissions, and retained retransmission tokens. The
    /// platform's graceful-degradation path calls this when it aborts a
    /// stalled kernel attempt — the whole failed epoch is quarantined
    /// before the kernel is resubmitted under a fresh namespace, so no
    /// half-executed sub-block or stale capture can leak into the retry.
    /// State belonging to other namespaces (concurrent kernels from other
    /// CPMs) is untouched.
    pub fn abort_namespace(&mut self, namespace: u32) {
        let foreign = |id: u32| id >> crate::cpm::NAMESPACE_SHIFT != namespace;
        self.pending.retain(|&sb, _| foreign(sb));
        self.progress.retain(|&sb, _| foreign(sb));
        self.wanted.retain(|&d, _| foreign(d));
        self.dep_buffer.retain(|&d, _| foreign(d));
        self.produced.retain(|&d, _| foreign(d));
        if self.active_block.is_some_and(|b| !foreign(b)) {
            // Releasing the accumulator is safe: the next block to claim
            // it resets `acc` before executing (see `execute`).
            self.active_block = None;
            self.cursor = None;
        }
        self.staged.retain(|e| match e {
            Emission::Token(t) => foreign(t.dep),
            Emission::Output { index, .. } => foreign(*index),
        });
    }

    /// Advances the RCU by one cycle. Returns the emissions completing
    /// this cycle (at most one per lane).
    pub fn tick(&mut self, cycle: u64) -> Vec<Emission> {
        self.tick_traced(cycle, 0, &mut TracerHandle::Nop)
    }

    /// [`Rcu::tick`] with tracing: every fired instruction is recorded as a
    /// [`EventKind::RcuFire`] span on `tracer`, attributed to router `node`.
    pub fn tick_traced(
        &mut self,
        cycle: u64,
        node: u32,
        tracer: &mut TracerHandle,
    ) -> Vec<Emission> {
        let mut out = Vec::new();
        self.tick_into(cycle, node, tracer, &mut out);
        out
    }

    /// [`Rcu::tick_traced`] writing completions into a caller-owned
    /// scratch buffer — the allocation-free hot-loop entry point
    /// ([`Platform::step`](crate::platform::Platform::step) reuses one
    /// buffer across all RCUs and cycles). `out` is appended to; emission
    /// order is identical to the `Vec`-returning forms.
    pub fn tick_into(
        &mut self,
        cycle: u64,
        node: u32,
        tracer: &mut TracerHandle,
        out: &mut Vec<Emission>,
    ) {
        if cycle < self.busy_until {
            return;
        }
        out.append(&mut self.staged);
        let mut group_latency = 0;
        for _ in 0..self.lanes {
            let Some((block, seq)) = self.next_fireable() else { break };
            let ins = self
                .pending
                .get_mut(&block)
                .and_then(|b| b.remove(&seq))
                .expect("fireable instruction exists");
            if self.pending.get(&block).is_some_and(|b| b.is_empty()) {
                self.pending.remove(&block);
            }
            group_latency = group_latency.max(ins.op.latency());
            tracer.record_with(cycle, || EventKind::RcuFire {
                node,
                sub_block: ins.sub_block,
                seq: ins.seq,
                op: op_code(ins.op),
                latency: ins.op.latency(),
                deps: [
                    ins.vl.dep().unwrap_or(NO_DEP),
                    ins.vr.dep().unwrap_or(NO_DEP),
                ],
                dest: match ins.dest {
                    ResultDest::Accumulate => FireDest::Acc,
                    ResultDest::Token { dep, .. } => FireDest::Token { dep },
                    ResultDest::Output { index } => FireDest::Output { index },
                },
            });
            self.execute(ins);
        }
        if group_latency > 0 {
            self.busy_until = cycle + group_latency;
        } else if !self.pending.is_empty() {
            self.stats.stalled_cycles += 1;
        }
    }

    /// Finds the next instruction the firing rule allows.
    fn next_fireable(&self) -> Option<(SubBlockId, u32)> {
        if let Some(b) = self.active_block {
            // The active sub-block owns the accumulator: only its next
            // instruction may fire. The cursor cache answers this without
            // touching `progress`/`pending` — the debug assertions below
            // pin it to the maps it mirrors.
            debug_assert_eq!(
                self.active_seq,
                *self.progress.get(&b).expect("active block tracked"),
                "cursor seq diverged from progress map"
            );
            debug_assert_eq!(
                self.cursor,
                self.pending.get(&b).and_then(|blk| blk.get(&self.active_seq)).copied(),
                "cursor instruction diverged from pending buffer"
            );
            let ins = self.cursor.as_ref()?;
            return self.operands_ready(ins).then_some((b, self.active_seq));
        }
        // Otherwise any sub-block may start; take the lowest-numbered ready
        // one for determinism.
        for (&b, block) in &self.pending {
            let seq = *self.progress.get(&b).expect("progress tracked per block");
            if let Some(ins) = block.get(&seq) {
                if self.operands_ready(ins) {
                    return Some((b, seq));
                }
            }
        }
        None
    }

    fn operands_ready(&self, ins: &Instruction) -> bool {
        [ins.vl, ins.vr].iter().all(|o| match o.dep() {
            None => true,
            Some(d) => self.dep_buffer.get(&d).is_some_and(|(_, uses)| *uses > 0),
        })
    }

    fn operand_value(&mut self, o: Operand) -> Fixed {
        match o {
            Operand::Imm(v) => v,
            Operand::Dep(d) => {
                let (value, uses) = self.dep_buffer.get_mut(&d).expect("operand ready");
                let v = *value;
                *uses -= 1;
                if *uses == 0 {
                    self.dep_buffer.remove(&d);
                }
                v
            }
        }
    }

    fn execute(&mut self, ins: Instruction) {
        // A new sub-block claiming the accumulator resets it.
        if self.active_block != Some(ins.sub_block) {
            self.active_block = Some(ins.sub_block);
            self.acc = Fixed::ZERO;
        }
        let vl = self.operand_value(ins.vl);
        let vr = self.operand_value(ins.vr);
        let result = match ins.op {
            Op::Add => vl + vr,
            Op::Sub => vl - vr,
            Op::Mul => vl * vr,
            Op::Mac => {
                self.acc = self.acc.mac(vl, vr);
                self.acc
            }
            Op::Acc => {
                self.acc = self.acc + vl + vr;
                self.acc
            }
        };
        if ins.ends_block {
            self.active_block = None;
            self.cursor = None;
            self.progress.remove(&ins.sub_block);
        } else {
            *self.progress.get_mut(&ins.sub_block).expect("tracked") += 1;
            // Refresh the cursor cache: the block now wants `seq + 1`,
            // which may already be waiting in the ordered buffer.
            self.active_seq = ins.seq + 1;
            self.cursor = self
                .pending
                .get(&ins.sub_block)
                .and_then(|blk| blk.get(&self.active_seq))
                .copied();
        }
        match ins.dest {
            ResultDest::Accumulate => {}
            ResultDest::Token { dep, dependents } => {
                let token = DataToken::new(dep, dependents, result);
                self.produced.insert(dep, token);
                self.staged.push(Emission::Token(token));
            }
            ResultDest::Output { index } => {
                self.staged.push(Emission::Output { index, value: result });
            }
        }
        self.stats.executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_noc::NodeId;

    fn imm(v: f64) -> Operand {
        Operand::Imm(Fixed::from_f64(v))
    }

    fn ins(
        op: Op,
        vl: Operand,
        vr: Operand,
        dest: ResultDest,
        block: SubBlockId,
        seq: u32,
        ends: bool,
    ) -> Instruction {
        Instruction { op, pe: NodeId::new(0), vl, vr, dest, sub_block: block, seq, ends_block: ends }
    }

    /// Drives the RCU until it produces an emission or `limit` cycles pass.
    fn drain(rcu: &mut Rcu, from: u64, limit: u64) -> Option<(u64, Emission)> {
        for c in from..from + limit {
            let out = rcu.tick(c);
            if let Some(e) = out.into_iter().next() {
                return Some((c, e));
            }
        }
        None
    }

    #[test]
    fn add_with_immediates_emits_after_latency() {
        let mut rcu = Rcu::new();
        rcu.accept_instruction(ins(
            Op::Add,
            imm(2.0),
            imm(3.0),
            ResultDest::Output { index: 0 },
            0,
            0,
            true,
        ));
        // Fires at cycle 1, 1-cycle latency, emission at cycle 2.
        assert!(rcu.tick(1).is_empty());
        let e = rcu.tick(2);
        assert_eq!(e, vec![Emission::Output { index: 0, value: Fixed::from_f64(5.0) }]);
        assert!(rcu.is_idle());
        assert_eq!(rcu.stats.executed, 1);
    }

    #[test]
    fn mul_takes_two_cycles() {
        let mut rcu = Rcu::new();
        rcu.accept_instruction(ins(
            Op::Mul,
            imm(2.0),
            imm(3.5),
            ResultDest::Output { index: 0 },
            0,
            0,
            true,
        ));
        assert!(rcu.tick(1).is_empty(), "fires");
        assert!(rcu.tick(2).is_empty(), "still in the multiplier");
        let e = rcu.tick(3);
        assert_eq!(e, vec![Emission::Output { index: 0, value: Fixed::from_f64(7.0) }]);
    }

    #[test]
    fn mac_sub_block_accumulates_and_is_atomic() {
        let mut rcu = Rcu::new();
        // Block 0: acc = 1*2 + 3*4 = 14 (two MACs).
        rcu.accept_instruction(ins(Op::Mac, imm(1.0), imm(2.0), ResultDest::Accumulate, 0, 0, false));
        rcu.accept_instruction(ins(
            Op::Mac,
            imm(3.0),
            imm(4.0),
            ResultDest::Output { index: 0 },
            0,
            1,
            true,
        ));
        // Block 1 is ready too but must not interleave with block 0.
        rcu.accept_instruction(ins(
            Op::Add,
            imm(10.0),
            imm(20.0),
            ResultDest::Output { index: 1 },
            1,
            0,
            true,
        ));
        let (c1, e1) = drain(&mut rcu, 1, 20).unwrap();
        assert_eq!(e1, Emission::Output { index: 0, value: Fixed::from_f64(14.0) });
        let (_, e2) = drain(&mut rcu, c1, 20).unwrap();
        assert_eq!(e2, Emission::Output { index: 1, value: Fixed::from_f64(30.0) });
    }

    #[test]
    fn accumulator_resets_between_blocks() {
        let mut rcu = Rcu::new();
        rcu.accept_instruction(ins(
            Op::Acc,
            imm(5.0),
            imm(5.0),
            ResultDest::Output { index: 0 },
            0,
            0,
            true,
        ));
        rcu.accept_instruction(ins(
            Op::Acc,
            imm(1.0),
            imm(1.0),
            ResultDest::Output { index: 1 },
            1,
            0,
            true,
        ));
        let (c1, e1) = drain(&mut rcu, 1, 20).unwrap();
        assert_eq!(e1, Emission::Output { index: 0, value: Fixed::from_f64(10.0) });
        let (_, e2) = drain(&mut rcu, c1, 20).unwrap();
        assert_eq!(
            e2,
            Emission::Output { index: 1, value: Fixed::from_f64(2.0) },
            "second block must not see the first block's accumulator"
        );
    }

    #[test]
    fn dependency_stalls_until_token_passes() {
        let mut rcu = Rcu::new();
        rcu.accept_instruction(ins(
            Op::Add,
            Operand::Dep(7),
            imm(1.0),
            ResultDest::Output { index: 0 },
            0,
            0,
            true,
        ));
        for c in 1..5 {
            assert!(rcu.tick(c).is_empty(), "stalled on dep 7");
        }
        assert!(rcu.stats.stalled_cycles >= 3);
        let mut tok = DataToken::new(7, 2, Fixed::from_f64(41.0));
        rcu.observe_token(&mut tok);
        assert_eq!(tok.dependents, 1, "one local reference captured");
        assert_eq!(rcu.stats.captures, 1);
        let (_, e) = drain(&mut rcu, 5, 10).unwrap();
        assert_eq!(e, Emission::Output { index: 0, value: Fixed::from_f64(42.0) });
    }

    #[test]
    fn uninterested_tokens_pass_untouched() {
        let mut rcu = Rcu::new();
        let mut tok = DataToken::new(3, 4, Fixed::ONE);
        rcu.observe_token(&mut tok);
        assert_eq!(tok.dependents, 4);
        assert_eq!(rcu.stats.captures, 0);
    }

    #[test]
    fn same_dep_used_by_both_operands() {
        let mut rcu = Rcu::new();
        rcu.accept_instruction(ins(
            Op::Mul,
            Operand::Dep(1),
            Operand::Dep(1),
            ResultDest::Output { index: 0 },
            0,
            0,
            true,
        ));
        let mut tok = DataToken::new(1, 2, Fixed::from_f64(3.0));
        rcu.observe_token(&mut tok);
        assert_eq!(tok.dependents, 0, "both references captured in one pass");
        let (_, e) = drain(&mut rcu, 1, 10).unwrap();
        assert_eq!(e, Emission::Output { index: 0, value: Fixed::from_f64(9.0) });
    }

    #[test]
    fn late_instruction_captures_from_later_pass() {
        // Token passes before the instruction wanting it arrives; since the
        // dependent count includes the future want, the token keeps
        // circulating and a later pass serves it.
        let mut rcu = Rcu::new();
        let mut tok = DataToken::new(9, 1, Fixed::from_f64(6.0));
        rcu.observe_token(&mut tok); // nothing wants it yet
        assert_eq!(tok.dependents, 1);
        rcu.accept_instruction(ins(
            Op::Add,
            Operand::Dep(9),
            imm(0.0),
            ResultDest::Output { index: 0 },
            0,
            0,
            true,
        ));
        rcu.observe_token(&mut tok); // next lap
        assert_eq!(tok.dependents, 0);
        let (_, e) = drain(&mut rcu, 1, 10).unwrap();
        assert_eq!(e, Emission::Output { index: 0, value: Fixed::from_f64(6.0) });
    }

    #[test]
    fn vector_lanes_retire_a_chain_faster() {
        // An 8-step Acc chain: a scalar RCU needs 8 firing cycles, a
        // 4-lane RCU two groups.
        let chain = |rcu: &mut Rcu| {
            for seq in 0..8u32 {
                rcu.accept_instruction(ins(
                    Op::Acc,
                    imm(1.0),
                    imm(0.0),
                    if seq == 7 { ResultDest::Output { index: 0 } } else { ResultDest::Accumulate },
                    0,
                    seq,
                    seq == 7,
                ));
            }
        };
        let mut scalar = Rcu::new();
        chain(&mut scalar);
        let (t_scalar, e) = drain(&mut scalar, 1, 32).unwrap();
        assert_eq!(e, Emission::Output { index: 0, value: Fixed::from_f64(8.0) });
        let mut vector = Rcu::with_lanes(4);
        chain(&mut vector);
        let (t_vector, e) = drain(&mut vector, 1, 32).unwrap();
        assert_eq!(e, Emission::Output { index: 0, value: Fixed::from_f64(8.0) }, "same result");
        assert!(t_vector < t_scalar, "4 lanes finish sooner: {t_vector} vs {t_scalar}");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = Rcu::with_lanes(0);
    }

    #[test]
    fn retransmit_reissues_retained_tokens_with_bumped_seq() {
        let mut rcu = Rcu::new();
        rcu.accept_instruction(ins(
            Op::Add,
            imm(4.0),
            imm(5.0),
            ResultDest::Token { dep: 3, dependents: 2 },
            0,
            0,
            true,
        ));
        let (_, e) = drain(&mut rcu, 1, 10).unwrap();
        assert_eq!(e, Emission::Token(DataToken::new(3, 2, Fixed::from_f64(9.0))));
        assert_eq!(rcu.retained_tokens(), 1);
        // One dependent already captured elsewhere: re-issue with 1 left.
        let r1 = rcu.retransmit(3, 1).expect("retained");
        assert_eq!((r1.dep, r1.dependents, r1.seq), (3, 1, 1));
        assert_eq!(r1.value, Fixed::from_f64(9.0));
        assert!(r1.checksum_ok());
        let r2 = rcu.retransmit(3, 1).expect("still retained");
        assert_eq!(r2.seq, 2, "each re-issue bumps the sequence tag");
        assert_eq!(rcu.retransmit(99, 1), None, "never produced");
        rcu.clear_retained_namespace(0);
        assert_eq!(rcu.retained_tokens(), 0);
        assert_eq!(rcu.retransmit(3, 1), None, "cleared with its kernel");
    }

    #[test]
    fn clear_retained_namespace_is_selective() {
        let mut rcu = Rcu::new();
        let mk = |dep: DepId, block: SubBlockId| {
            ins(Op::Add, imm(1.0), imm(1.0), ResultDest::Token { dep, dependents: 1 }, block, 0, true)
        };
        let ns1 = 1u32 << crate::cpm::NAMESPACE_SHIFT;
        rcu.accept_instruction(mk(5, 0));
        rcu.accept_instruction(mk(5 | ns1, 1));
        for c in 1..20 {
            rcu.tick(c);
        }
        assert_eq!(rcu.retained_tokens(), 2);
        rcu.clear_retained_namespace(1);
        assert_eq!(rcu.retained_tokens(), 1);
        assert!(rcu.retransmit(5, 1).is_some(), "namespace 0 survives");
    }

    #[test]
    fn out_of_order_arrival_within_block_executes_in_seq_order() {
        let mut rcu = Rcu::new();
        // seq 1 arrives before seq 0.
        rcu.accept_instruction(ins(
            Op::Acc,
            imm(1.0),
            imm(0.0),
            ResultDest::Output { index: 0 },
            0,
            1,
            true,
        ));
        assert_eq!(drain(&mut rcu, 1, 5), None, "cannot start at seq 1");
        rcu.accept_instruction(ins(Op::Acc, imm(10.0), imm(0.0), ResultDest::Accumulate, 0, 0, false));
        let (_, e) = drain(&mut rcu, 6, 20).unwrap();
        assert_eq!(e, Emission::Output { index: 0, value: Fixed::from_f64(11.0) });
    }
}
