//! The SnackNoC token vocabulary: instruction tokens, transient data
//! tokens, compiled kernel programs and their validation.
//!
//! Paper §III-A defines two token types:
//!
//! * **Instruction tokens** `⟨O, P, Vl, Vr, N⟩` — operation, destination
//!   PE, two operands (immediate or dependency references), and the
//!   dependent count of the result.
//! * **Data tokens** `⟨S, N, V⟩` — dependency id, remaining dependents, and
//!   the value. Data tokens have *no destination list*: they circulate on
//!   the static ring until `N` consumers have captured them.

use crate::fixed::Fixed;
use snacknoc_noc::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A dependency identifier (`S` in the paper's data-token tuple).
pub type DepId = u32;

/// Identifier of a sub-block: an intra-dependent instruction set that owns
/// the RCU accumulator while it executes (paper §III-D1).
pub type SubBlockId = u32;

/// An RCU scalar operation (`O` in the instruction tuple).
///
/// Latencies follow paper §III-D2: 1-cycle operations traverse the router
/// in 3 cycles total, 2-cycle operations (multiply) in 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `r = vl + vr` (1 cycle).
    Add,
    /// `r = vl - vr` (1 cycle).
    Sub,
    /// `r = vl * vr` (2 cycles).
    Mul,
    /// `acc = acc + vl * vr; r = acc` (2 cycles) — the MAC unit.
    Mac,
    /// `acc = acc + vl + vr; r = acc` (1 cycle) — accumulating add, used by
    /// reductions to consume two elements per instruction.
    Acc,
}

impl Op {
    /// ALU latency in RCU cycles.
    pub fn latency(self) -> u64 {
        match self {
            Op::Add | Op::Sub | Op::Acc => 1,
            Op::Mul | Op::Mac => 2,
        }
    }

    /// Whether the operation reads/writes the accumulator register.
    pub fn uses_accumulator(self) -> bool {
        matches!(self, Op::Mac | Op::Acc)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Mac => "mac",
            Op::Acc => "acc",
        };
        f.write_str(s)
    }
}

/// An instruction operand (`Vl` / `Vr`): an immediate streamed from memory
/// by the CPM, or a reference to a transient dependency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Immediately available value.
    Imm(Fixed),
    /// Reference to the data token with this dependency id.
    Dep(DepId),
}

impl Operand {
    /// The dependency id, if this operand is a reference.
    pub fn dep(self) -> Option<DepId> {
        match self {
            Operand::Imm(_) => None,
            Operand::Dep(d) => Some(d),
        }
    }
}

/// Where an instruction's result goes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResultDest {
    /// Result stays in the RCU accumulator (the paper's same-source/
    /// destination special case: no data token is transmitted).
    Accumulate,
    /// Result becomes a transient data token `⟨dep, dependents, value⟩`
    /// circulating on the static ring.
    Token {
        /// Dependency id assigned by the compiler.
        dep: DepId,
        /// Total number of consuming instruction operands, across all RCUs.
        dependents: u32,
    },
    /// Result is a kernel output: routed to the CPM and written to the
    /// output-results FIFO at `index`.
    Output {
        /// Output buffer slot.
        index: u32,
    },
}

/// A SnackNoC instruction token.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Instruction {
    /// Operation.
    pub op: Op,
    /// Destination processing element (`P`): the RCU that executes this.
    pub pe: NodeId,
    /// Left operand.
    pub vl: Operand,
    /// Right operand.
    pub vr: Operand,
    /// Result destination.
    pub dest: ResultDest,
    /// Sub-block this instruction belongs to.
    pub sub_block: SubBlockId,
    /// Position within the sub-block (executed in order).
    pub seq: u32,
    /// Whether this is the final instruction of its sub-block (releases the
    /// accumulator).
    pub ends_block: bool,
}

/// A transient data token `⟨S, N, V⟩`, extended with the recovery
/// metadata of the fault-tolerant platform: a retransmission sequence tag
/// and an integrity checksum.
///
/// Build tokens with [`DataToken::new`], which seals the checksum over the
/// wire-stable fields (`dep`, `seq`, `value`). The `dependents` count is
/// deliberately *excluded* from the checksum: it decrements in flight as
/// RCUs capture the value, which is normal operation, not corruption.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DataToken {
    /// Dependency id.
    pub dep: DepId,
    /// Remaining dependents; the token retires when this reaches zero.
    pub dependents: u32,
    /// The value.
    pub value: Fixed,
    /// Retransmission sequence tag: 0 for the original launch, bumped by
    /// the producer on every watchdog-requested re-issue so stale copies
    /// are distinguishable in traces.
    pub seq: u32,
    /// Integrity checksum over `(dep, seq, value)`; see
    /// [`DataToken::checksum_ok`].
    pub checksum: u32,
}

impl DataToken {
    /// Creates a token with a valid checksum and sequence tag 0.
    pub fn new(dep: DepId, dependents: u32, value: Fixed) -> Self {
        let mut t = DataToken { dep, dependents, value, seq: 0, checksum: 0 };
        t.checksum = t.expected_checksum();
        t
    }

    /// Returns the token re-tagged with `seq`, with the checksum re-sealed.
    #[must_use]
    pub fn with_seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self.checksum = self.expected_checksum();
        self
    }

    /// Whether the stored checksum matches the wire-stable fields. A
    /// mismatch means the payload was corrupted in flight; the platform
    /// discards such tokens and asks the issuing CPM's watchdog for a
    /// retransmission.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.expected_checksum()
    }

    /// Returns a copy whose value bits were damaged (emulating in-flight
    /// payload corruption) *without* re-sealing the checksum, so
    /// [`DataToken::checksum_ok`] on the result returns `false`.
    #[must_use]
    pub fn with_damaged_value(mut self) -> Self {
        self.value = Fixed::from_bits(self.value.to_bits() ^ 0x5A5A_5A5A);
        self
    }

    fn expected_checksum(&self) -> u32 {
        let x = (u64::from(self.dep) << 32)
            ^ (u64::from(self.seq) << 8)
            ^ u64::from(self.value.to_bits() as u32);
        let h = Self::mix64(x);
        (h ^ (h >> 32)) as u32
    }

    /// SplitMix64-style avalanche; local so the token layer stays
    /// dependency-free.
    const fn mix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// On-wire size of one encoded instruction in bytes: `O` (1) + `P` (2) +
/// two operands (5 each: tag + 32-bit value) + destination/ordering
/// metadata (3). Used to decide how many instructions share a flit.
pub const INSTRUCTION_BYTES: u32 = 16;

/// On-wire size of a data-token packet in bytes (`S` + `N` + `V` + header).
pub const DATA_TOKEN_BYTES: u32 = 16;

/// A compiled SnackNoC kernel: the CPM command buffer plus metadata.
#[derive(Clone, Debug, Default)]
pub struct CompiledKernel {
    /// Instructions in CPM issue (program) order.
    pub instructions: Vec<Instruction>,
    /// Number of kernel outputs (size of the CPM output FIFO allocation).
    pub num_outputs: usize,
    /// Human-readable kernel name for reports.
    pub name: String,
    /// Whether assembling this kernel's operands requires irregular
    /// (indexed-gather) memory accesses, which throttle the CPM's DRAM
    /// stream rate. Set by the compiler for SPMV — the paper attributes
    /// SPMV's reduced SnackNoC speedup to "the irregular data pattern in
    /// accessing an indexed vector prior to computation" (§V-B).
    pub irregular_fetch: bool,
}

/// A violation found by [`CompiledKernel::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ProgramError {
    /// A dependency is produced by more than one instruction.
    DuplicateProducer(DepId),
    /// A dependency is referenced but never produced.
    MissingProducer(DepId),
    /// A produced token's dependent count does not equal its reference
    /// count (would strand or prematurely retire the token).
    DependentMismatch {
        /// The dependency in question.
        dep: DepId,
        /// Dependents declared by the producer.
        declared: u32,
        /// References found across all instructions.
        referenced: u32,
    },
    /// An output index is written more than once.
    DuplicateOutput(u32),
    /// Output indices are not exactly `0..num_outputs`.
    OutputGap(u32),
    /// Sub-block sequence numbers are not contiguous from zero, or the
    /// block-terminator flag is wrong.
    BadSubBlock(SubBlockId),
    /// A sub-block spans more than one PE (the accumulator is per-RCU).
    SubBlockSpansPes(SubBlockId),
    /// An accumulator op appears outside any multi-instruction sub-block
    /// context it could initialise (first instruction of a block must not
    /// read a stale accumulator — enforced structurally here).
    EmptyProgram,
    /// A dependency id or output index does not fit below the CPM
    /// namespace bits (kernel too large for multi-CPM namespacing).
    NamespaceOverflow,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateProducer(d) => write!(f, "dependency {d} produced twice"),
            ProgramError::MissingProducer(d) => write!(f, "dependency {d} never produced"),
            ProgramError::DependentMismatch { dep, declared, referenced } => write!(
                f,
                "dependency {dep} declares {declared} dependents but is referenced {referenced} times"
            ),
            ProgramError::DuplicateOutput(i) => write!(f, "output {i} written twice"),
            ProgramError::OutputGap(i) => write!(f, "output {i} never written"),
            ProgramError::BadSubBlock(b) => write!(f, "sub-block {b} has non-contiguous sequence"),
            ProgramError::SubBlockSpansPes(b) => write!(f, "sub-block {b} spans multiple PEs"),
            ProgramError::EmptyProgram => write!(f, "program has no instructions"),
            ProgramError::NamespaceOverflow => {
                write!(f, "dependency/output ids exceed the cpm namespace range")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl CompiledKernel {
    /// Checks the structural invariants the platform relies on:
    ///
    /// * every referenced dependency has exactly one producer;
    /// * every producer's declared dependent count equals the number of
    ///   operand references (so ring tokens retire exactly on time);
    /// * outputs are written exactly once each, densely `0..num_outputs`;
    /// * sub-blocks have contiguous `seq` from 0, a single terminator at
    ///   the end, and live on a single PE.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.instructions.is_empty() {
            return Err(ProgramError::EmptyProgram);
        }
        let mut produced: HashMap<DepId, u32> = HashMap::new();
        let mut referenced: HashMap<DepId, u32> = HashMap::new();
        let mut outputs: Vec<u32> = Vec::new();
        let mut blocks: HashMap<SubBlockId, (Vec<u32>, bool, NodeId)> = HashMap::new();
        for ins in &self.instructions {
            for operand in [ins.vl, ins.vr] {
                if let Some(d) = operand.dep() {
                    *referenced.entry(d).or_insert(0) += 1;
                }
            }
            match ins.dest {
                ResultDest::Token { dep, dependents } => {
                    if produced.insert(dep, dependents).is_some() {
                        return Err(ProgramError::DuplicateProducer(dep));
                    }
                }
                ResultDest::Output { index } => outputs.push(index),
                ResultDest::Accumulate => {}
            }
            let entry =
                blocks.entry(ins.sub_block).or_insert_with(|| (Vec::new(), false, ins.pe));
            entry.0.push(ins.seq);
            entry.1 |= ins.ends_block;
            if entry.2 != ins.pe {
                return Err(ProgramError::SubBlockSpansPes(ins.sub_block));
            }
        }
        for (&dep, &refs) in &referenced {
            match produced.get(&dep) {
                None => return Err(ProgramError::MissingProducer(dep)),
                Some(&declared) if declared != refs => {
                    return Err(ProgramError::DependentMismatch { dep, declared, referenced: refs })
                }
                _ => {}
            }
        }
        for (&dep, &declared) in &produced {
            let refs = referenced.get(&dep).copied().unwrap_or(0);
            if declared != refs {
                return Err(ProgramError::DependentMismatch { dep, declared, referenced: refs });
            }
        }
        outputs.sort_unstable();
        for (i, &o) in outputs.iter().enumerate() {
            if o as usize != i {
                if i > 0 && outputs[i - 1] == o {
                    return Err(ProgramError::DuplicateOutput(o));
                }
                return Err(ProgramError::OutputGap(i as u32));
            }
        }
        if outputs.len() != self.num_outputs {
            return Err(ProgramError::OutputGap(outputs.len() as u32));
        }
        for (&b, (seqs, has_end, _)) in &blocks {
            let mut s = seqs.clone();
            s.sort_unstable();
            let contiguous = s.iter().enumerate().all(|(i, &v)| v as usize == i);
            if !contiguous || !has_end {
                return Err(ProgramError::BadSubBlock(b));
            }
        }
        Ok(())
    }

    /// Returns a copy of the kernel with every instruction assigned to a
    /// node in `translate` moved to that node's replacement — the
    /// platform's remap-and-retry path for permanently dead RCUs. The
    /// translation is per-node, so sub-blocks move wholesale and the
    /// single-PE sub-block invariant survives; dependency structure is
    /// untouched, so a valid kernel stays valid as long as `translate`
    /// never maps two live nodes onto each other's sub-block ids (the
    /// platform only ever maps *dead* nodes onto live ones).
    #[must_use]
    pub fn remapped(&self, translate: &HashMap<NodeId, NodeId>) -> CompiledKernel {
        let mut k = self.clone();
        for ins in &mut k.instructions {
            if let Some(&to) = translate.get(&ins.pe) {
                ins.pe = to;
            }
        }
        k
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn imm(v: f64) -> Operand {
        Operand::Imm(Fixed::from_f64(v))
    }

    /// out0 = (1+2) + (3+4) via a token from PE0 to PE1.
    fn two_pe_program() -> CompiledKernel {
        CompiledKernel {
            irregular_fetch: false,
            name: "test".into(),
            num_outputs: 1,
            instructions: vec![
                Instruction {
                    op: Op::Add,
                    pe: pe(0),
                    vl: imm(1.0),
                    vr: imm(2.0),
                    dest: ResultDest::Token { dep: 0, dependents: 1 },
                    sub_block: 0,
                    seq: 0,
                    ends_block: true,
                },
                Instruction {
                    op: Op::Add,
                    pe: pe(1),
                    vl: Operand::Dep(0),
                    vr: imm(7.0),
                    dest: ResultDest::Output { index: 0 },
                    sub_block: 1,
                    seq: 0,
                    ends_block: true,
                },
            ],
        }
    }

    #[test]
    fn valid_program_passes() {
        two_pe_program().validate().unwrap();
    }

    #[test]
    fn detects_missing_producer() {
        let mut p = two_pe_program();
        p.instructions.remove(0);
        assert_eq!(p.validate(), Err(ProgramError::MissingProducer(0)));
    }

    #[test]
    fn detects_dependent_mismatch() {
        let mut p = two_pe_program();
        if let ResultDest::Token { dependents, .. } = &mut p.instructions[0].dest {
            *dependents = 3;
        }
        assert!(matches!(p.validate(), Err(ProgramError::DependentMismatch { dep: 0, .. })));
    }

    #[test]
    fn detects_duplicate_producer() {
        let mut p = two_pe_program();
        let mut dup = p.instructions[0];
        dup.sub_block = 2;
        p.instructions.push(dup);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::DuplicateProducer(0) | ProgramError::DependentMismatch { .. })
        ));
    }

    #[test]
    fn detects_output_gap_and_duplicates() {
        let mut p = two_pe_program();
        if let ResultDest::Output { index } = &mut p.instructions[1].dest {
            *index = 1;
        }
        assert_eq!(p.validate(), Err(ProgramError::OutputGap(0)));
    }

    #[test]
    fn detects_bad_sub_block() {
        let mut p = two_pe_program();
        p.instructions[1].seq = 5;
        assert_eq!(p.validate(), Err(ProgramError::BadSubBlock(1)));
        let mut q = two_pe_program();
        q.instructions[1].ends_block = false;
        assert_eq!(q.validate(), Err(ProgramError::BadSubBlock(1)));
    }

    #[test]
    fn detects_sub_block_spanning_pes() {
        let mut p = two_pe_program();
        p.instructions[1].sub_block = 0;
        p.instructions[1].seq = 1;
        p.instructions[0].ends_block = false;
        assert_eq!(p.validate(), Err(ProgramError::SubBlockSpansPes(0)));
    }

    #[test]
    fn empty_program_rejected() {
        let p = CompiledKernel::default();
        assert_eq!(p.validate(), Err(ProgramError::EmptyProgram));
        assert!(p.is_empty());
    }

    #[test]
    fn remapping_moves_whole_sub_blocks_and_stays_valid() {
        let p = two_pe_program();
        let mut translate = HashMap::new();
        translate.insert(pe(0), pe(3));
        let r = p.remapped(&translate);
        r.validate().unwrap();
        assert_eq!(r.instructions[0].pe, pe(3), "dead PE moved");
        assert_eq!(r.instructions[1].pe, pe(1), "live PE untouched");
        // Dependency structure is untouched.
        assert_eq!(r.instructions[0].dest, p.instructions[0].dest);
        // An empty translation is the identity.
        let id = p.remapped(&HashMap::new());
        assert_eq!(id.instructions, p.instructions);
    }

    #[test]
    fn checksum_survives_dependent_decrements_but_not_value_damage() {
        let mut t = DataToken::new(7, 3, Fixed::from_f64(2.5));
        assert!(t.checksum_ok());
        t.dependents -= 1;
        assert!(t.checksum_ok(), "capture decrements are not corruption");
        let damaged = t.with_damaged_value();
        assert!(!damaged.checksum_ok(), "flipped value bits must be detected");
        assert_ne!(damaged.value, t.value);
    }

    #[test]
    fn seq_retag_reseals_the_checksum() {
        let t = DataToken::new(9, 1, Fixed::ONE);
        let r = t.with_seq(3);
        assert_eq!(r.seq, 3);
        assert!(r.checksum_ok());
        assert_ne!(r.checksum, t.checksum, "seq participates in the checksum");
        // A stale checksum paired with a new seq is detectable.
        let mut stale = t;
        stale.seq = 5;
        assert!(!stale.checksum_ok());
    }

    #[test]
    fn checksums_separate_distinct_tokens() {
        // Not a cryptographic guarantee — just confirm the mix actually
        // varies across neighbouring ids and values.
        let a = DataToken::new(0, 1, Fixed::ONE);
        let b = DataToken::new(1, 1, Fixed::ONE);
        let c = DataToken::new(0, 1, Fixed::from_f64(1.0 + 1.0 / 65536.0));
        assert_ne!(a.checksum, b.checksum);
        assert_ne!(a.checksum, c.checksum);
    }

    #[test]
    fn op_latencies_match_paper() {
        assert_eq!(Op::Add.latency(), 1);
        assert_eq!(Op::Sub.latency(), 1);
        assert_eq!(Op::Acc.latency(), 1);
        assert_eq!(Op::Mul.latency(), 2);
        assert_eq!(Op::Mac.latency(), 2);
        assert!(Op::Mac.uses_accumulator());
        assert!(!Op::Add.uses_accumulator());
    }
}
