//! # snacknoc-cost
//!
//! The 45 nm area/power cost model of the SnackNoC paper: the per-unit
//! synthesis results of Table II (Synopsys DC, NCSU 45 nm, 1 GHz), the
//! platform scaling to 16–147 RCUs, the CPU comparison of Table V, and the
//! Cacti/Orion-style uncore breakdown of Fig. 10.
//!
//! Everything here is constants plus linear arithmetic — exactly what the
//! paper reports — so these results reproduce Table II to within its
//! printed rounding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Add;

/// Power (W) and area (mm²) of one unit at 45 nm / 1 GHz.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct UnitCost {
    /// Power in watts.
    pub power_w: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

impl UnitCost {
    /// Creates a cost entry.
    pub const fn new(power_w: f64, area_mm2: f64) -> Self {
        UnitCost { power_w, area_mm2 }
    }

    /// Scales both power and area by `n` instances.
    pub fn times(self, n: usize) -> UnitCost {
        UnitCost { power_w: self.power_w * n as f64, area_mm2: self.area_mm2 * n as f64 }
    }
}

impl Add for UnitCost {
    type Output = UnitCost;
    fn add(self, rhs: UnitCost) -> UnitCost {
        UnitCost { power_w: self.power_w + rhs.power_w, area_mm2: self.area_mm2 + rhs.area_mm2 }
    }
}

impl fmt::Display for UnitCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W / {:.3} mm2", self.power_w, self.area_mm2)
    }
}

/// A named cost line item, as printed in Table II.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostItem {
    /// Component name (Table II row).
    pub name: &'static str,
    /// Its cost.
    pub cost: UnitCost,
}

/// The CPM component costs (Table II, upper half).
pub const CPM_ITEMS: [CostItem; 5] = [
    CostItem { name: "Assembly Logic and Buffers", cost: UnitCost::new(0.4e-3, 0.05) },
    CostItem { name: "Kernel State", cost: UnitCost::new(0.8e-3, 0.002) },
    CostItem { name: "Instruction Buffer", cost: UnitCost::new(53e-3, 0.53) },
    CostItem { name: "Offload Data Memory Buffer", cost: UnitCost::new(4.7e-3, 0.047) },
    CostItem { name: "Output Result FIFO", cost: UnitCost::new(4.7e-3, 0.047) },
];

/// The RCU component costs (Table II, lower half).
pub const RCU_ITEMS: [CostItem; 7] = [
    CostItem { name: "32-bit Parallel Adder", cost: UnitCost::new(0.5e-3, 0.002) },
    CostItem { name: "32-bit Parallel Subtractor", cost: UnitCost::new(0.5e-3, 0.002) },
    CostItem { name: "32-bit Multiply and Accumulate (MAC)", cost: UnitCost::new(0.9e-3, 0.003) },
    CostItem { name: "Ordered Instruction Buffer", cost: UnitCost::new(0.9e-3, 0.004) },
    CostItem { name: "Dependency Buffer", cost: UnitCost::new(1.1e-3, 0.002) },
    CostItem { name: "Accumulator Buffer", cost: UnitCost::new(0.3e-3, 0.0002) },
    CostItem { name: "Sub Block List", cost: UnitCost::new(0.1e-3, 0.003) },
];

/// Total cost of one CPM.
pub fn cpm_cost() -> UnitCost {
    CPM_ITEMS.iter().fold(UnitCost::default(), |acc, i| acc + i.cost)
}

/// Total cost of one RCU.
pub fn rcu_cost() -> UnitCost {
    RCU_ITEMS.iter().fold(UnitCost::default(), |acc, i| acc + i.cost)
}

/// Total SnackNoC platform cost for one CPM plus `rcus` RCUs
/// (Table II's "Total CPM + N RCU" rows; the paper tabulates N ∈
/// {16, 32, 64, 128, 147}, the last being the ITRS-projected 2029 socket).
pub fn platform_cost(rcus: usize) -> UnitCost {
    cpm_cost() + rcu_cost().times(rcus)
}

/// The Intel Xeon E5-2660 v3 reference point of Table V.
pub const XEON_E5_2660_V3: UnitCost = UnitCost::new(105.0, 492.0);

/// Intel Teraflops Research processor power range (paper §III-F), watts.
pub const TERAFLOPS_POWER_RANGE_W: (f64, f64) = (65.0, 265.0);

/// Per-instance uncore component costs for a 45 nm CMP node
/// (Cacti-7.0-style SRAM estimates and Orion-3.0-style router estimates),
/// chosen to reproduce the Fig. 10 uncore breakdown for a 16-core CMP.
pub mod uncore {
    use super::UnitCost;

    /// One 256 KB shared-L2 bank.
    pub const L2_BANK: UnitCost = UnitCost::new(0.380, 4.42);
    /// One core's 32 KB L1 I + 32 KB L1 D pair.
    pub const L1_PAIR: UnitCost = UnitCost::new(0.0962, 0.707);
    /// One baseline NoC router with its link drivers.
    pub const ROUTER: UnitCost = UnitCost::new(0.0309, 0.1275);
}

/// One slice of the uncore breakdown (Fig. 10).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct UncoreSlice {
    /// Component name.
    pub name: &'static str,
    /// Absolute cost.
    pub cost: UnitCost,
    /// Share of total uncore power, in percent.
    pub power_pct: f64,
    /// Share of total uncore area, in percent.
    pub area_pct: f64,
}

/// The uncore power/area breakdown for a CMP with `cores` cores (one L2
/// bank, L1 pair and router per core) plus the SnackNoC additions
/// (CPM + one RCU per core). Reproduces Fig. 10 at `cores = 16`.
pub fn uncore_breakdown(cores: usize) -> Vec<UncoreSlice> {
    let l2 = uncore::L2_BANK.times(cores);
    let l1 = uncore::L1_PAIR.times(cores);
    let noc = uncore::ROUTER.times(cores);
    let snack = platform_cost(cores);
    let total = l2 + l1 + noc + snack;
    let slice = |name, cost: UnitCost| UncoreSlice {
        name,
        cost,
        power_pct: 100.0 * cost.power_w / total.power_w,
        area_pct: 100.0 * cost.area_mm2 / total.area_mm2,
    };
    vec![
        slice("L2 Cache", l2),
        slice("L1 Cache", l1),
        slice("Baseline NoC", noc),
        slice("SnackNoC Additions", snack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II prints totals at two significant figures; allow that
    /// rounding.
    fn close(got: f64, want: f64, tol: f64) -> bool {
        (got - want).abs() <= tol
    }

    #[test]
    fn platform_totals_match_table_two() {
        // Table II: (RCUs, power W, area mm2).
        let rows = [
            (16, 0.13, 0.90),
            (32, 0.20, 1.16),
            (64, 0.34, 1.67),
            (128, 0.61, 2.71),
            (147, 0.70, 3.02),
        ];
        for (n, p, a) in rows {
            let c = platform_cost(n);
            assert!(close(c.power_w, p, 0.01), "{n} RCUs power: {} vs {p}", c.power_w);
            assert!(close(c.area_mm2, a, 0.06), "{n} RCUs area: {} vs {a}", c.area_mm2);
        }
    }

    #[test]
    fn rcu_is_small_relative_to_cpm() {
        // Paper: "the CPM accounts for 71% of the area resources" at 16
        // RCUs.
        let total = platform_cost(16);
        let share = cpm_cost().area_mm2 / total.area_mm2;
        assert!((0.65..0.78).contains(&share), "cpm area share {share}");
    }

    #[test]
    fn teraflops_comparison_is_about_one_percent() {
        // Paper §III-F: 147-RCU SnackNoC ≈ 1% of the 65 W Teraflops chip.
        let frac = platform_cost(147).power_w / TERAFLOPS_POWER_RANGE_W.0;
        assert!((0.008..0.015).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn table_five_reference_point() {
        assert_eq!(XEON_E5_2660_V3.power_w, 105.0);
        assert_eq!(XEON_E5_2660_V3.area_mm2, 492.0);
        let snack = platform_cost(16);
        assert!(snack.power_w < XEON_E5_2660_V3.power_w / 500.0);
        assert!(snack.area_mm2 < XEON_E5_2660_V3.area_mm2 / 400.0);
    }

    #[test]
    fn uncore_breakdown_matches_figure_ten() {
        // Fig. 10 (16-core): power L2 73.7 / L1 18.7 / NoC 6.0 / Snack 1.6;
        // area L2 83.2 / L1 13.3 / NoC 2.4 / Snack 1.1 (percent).
        let slices = uncore_breakdown(16);
        let get = |name: &str| slices.iter().find(|s| s.name == name).unwrap();
        assert!(close(get("L2 Cache").power_pct, 73.7, 1.0));
        assert!(close(get("L1 Cache").power_pct, 18.7, 1.0));
        assert!(close(get("Baseline NoC").power_pct, 6.0, 0.8));
        assert!(close(get("SnackNoC Additions").power_pct, 1.6, 0.4));
        assert!(close(get("L2 Cache").area_pct, 83.2, 1.0));
        assert!(close(get("L1 Cache").area_pct, 13.3, 1.0));
        assert!(close(get("Baseline NoC").area_pct, 2.4, 0.5));
        assert!(close(get("SnackNoC Additions").area_pct, 1.1, 0.3));
        // Shares sum to 100%.
        let p: f64 = slices.iter().map(|s| s.power_pct).sum();
        let a: f64 = slices.iter().map(|s| s.area_pct).sum();
        assert!(close(p, 100.0, 1e-9) && close(a, 100.0, 1e-9));
    }

    #[test]
    fn costs_scale_monotonically() {
        let mut prev = UnitCost::default();
        for n in [1, 16, 32, 64, 128, 147, 256] {
            let c = platform_cost(n);
            assert!(c.power_w > prev.power_w && c.area_mm2 > prev.area_mm2);
            prev = c;
        }
    }

    #[test]
    fn unit_cost_arithmetic() {
        let a = UnitCost::new(1.0, 2.0);
        let b = UnitCost::new(0.5, 0.5);
        let s = a + b;
        assert_eq!(s, UnitCost::new(1.5, 2.5));
        assert_eq!(a.times(3), UnitCost::new(3.0, 6.0));
        assert!(s.to_string().contains("W"));
    }
}
