//! # snacknoc-cpu
//!
//! The multicore CPU baseline performance model behind Fig. 9 of the
//! SnackNoC paper: kernel execution time on an Intel Haswell-EP-class
//! processor (Xeon E5-2660 v3, Table IV) running the OpenMP kernels with
//! 1–8 threads.
//!
//! The paper measures a physical Dell server; this model substitutes an
//! analytic one with two per-kernel parameters:
//!
//! * **`cycles_per_op`** — effective core cycles per arithmetic operation
//!   for the naive single-thread kernel, folding in cache/memory behaviour
//!   (large-matrix GEMM thrashes, streaming reductions run near bandwidth,
//!   SPMV gathers irregularly). Calibrated so the SnackNoC-to-1-core
//!   ratios land in the paper's reported range.
//! * **`serial_fraction`** — an Amdahl term fitted to the paper's measured
//!   8-thread speedups (7.86× SGEMM, 7.89× Reduction, 7.57× MAC, 5.4×
//!   SPMV).
//!
//! Both calibrations are documented per kernel in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Kernel identifiers, mirrored from the workloads crate to keep this
/// model dependency-free (the two enums are bridged in the bench crate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CpuKernel {
    /// Dense matrix multiply.
    Sgemm,
    /// Vector sum reduction.
    Reduction,
    /// Vector dot product (multiply-accumulate).
    Mac,
    /// Sparse matrix-vector multiply.
    Spmv,
}

impl CpuKernel {
    /// All kernels in paper order.
    pub const ALL: [CpuKernel; 4] =
        [CpuKernel::Sgemm, CpuKernel::Reduction, CpuKernel::Mac, CpuKernel::Spmv];
}

/// Per-kernel model parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KernelParams {
    /// Effective core cycles per arithmetic operation, single thread.
    pub cycles_per_op: f64,
    /// Amdahl serial fraction governing thread scaling.
    pub serial_fraction: f64,
}

/// An analytic multicore CPU.
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Model name for reports.
    pub name: &'static str,
    params: HashMap<CpuKernel, KernelParams>,
}

impl CpuModel {
    /// The paper's native platform: Xeon E5-2660 v3 ("Haswell EP") at
    /// 2.6 GHz (Table IV), with per-kernel parameters calibrated to the
    /// paper's Fig. 9 measurements.
    pub fn haswell() -> Self {
        let mut params = HashMap::new();
        // cycles_per_op: naive 4Kx4K GEMM is cache-hostile (~4 cy/op);
        // streaming reduction and MAC run near memory bandwidth; SPMV pays
        // for the indexed gather.
        params.insert(
            CpuKernel::Sgemm,
            KernelParams { cycles_per_op: 4.0, serial_fraction: 0.0025 },
        );
        params.insert(
            CpuKernel::Reduction,
            KernelParams { cycles_per_op: 1.8, serial_fraction: 0.0020 },
        );
        params.insert(CpuKernel::Mac, KernelParams { cycles_per_op: 1.7, serial_fraction: 0.0080 });
        params.insert(
            CpuKernel::Spmv,
            KernelParams { cycles_per_op: 2.7, serial_fraction: 0.0686 },
        );
        CpuModel { freq_ghz: 2.6, name: "Xeon E5-2660 v3", params }
    }

    /// The simulated 2 GHz in-order CMP core of Table IV (used for
    /// sensitivity checks; roughly 1.8× the cycles per op of the
    /// out-of-order Haswell core).
    pub fn simulated_inorder() -> Self {
        let mut model = Self::haswell();
        model.freq_ghz = 2.0;
        model.name = "simulated in-order";
        for p in model.params.values_mut() {
            p.cycles_per_op *= 1.8;
        }
        model
    }

    /// Model parameters for `kernel`.
    pub fn params(&self, kernel: CpuKernel) -> KernelParams {
        self.params[&kernel]
    }

    /// Amdahl speedup of `threads` threads over one.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn speedup(&self, kernel: CpuKernel, threads: usize) -> f64 {
        assert!(threads > 0, "need at least one thread");
        let s = self.params[&kernel].serial_fraction;
        1.0 / (s + (1.0 - s) / threads as f64)
    }

    /// Core cycles to execute `ops` arithmetic operations on `threads`
    /// threads.
    pub fn kernel_cycles(&self, kernel: CpuKernel, ops: u64, threads: usize) -> u64 {
        let single = ops as f64 * self.params[&kernel].cycles_per_op;
        (single / self.speedup(kernel, threads)).ceil() as u64
    }

    /// Wall-clock seconds for `ops` operations on `threads` threads.
    pub fn kernel_seconds(&self, kernel: CpuKernel, ops: u64, threads: usize) -> f64 {
        self.kernel_cycles(kernel, ops, threads) as f64 / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_thread_speedups_match_paper_measurements() {
        // Paper Fig. 9: 7.86x, 7.89x, 7.57x, 5.4x at 8 cores.
        let cpu = CpuModel::haswell();
        let expect = [
            (CpuKernel::Sgemm, 7.86),
            (CpuKernel::Reduction, 7.89),
            (CpuKernel::Mac, 7.57),
            (CpuKernel::Spmv, 5.4),
        ];
        for (k, want) in expect {
            let got = cpu.speedup(k, 8);
            assert!(
                (got - want).abs() / want < 0.03,
                "{k:?}: modelled {got:.2} vs paper {want}"
            );
        }
    }

    #[test]
    fn intermediate_thread_counts_track_paper_shape() {
        let cpu = CpuModel::haswell();
        // Paper: SGEMM 2.0x/3.9x at 2/4 cores, SPMV 1.8x/3.5x.
        assert!((cpu.speedup(CpuKernel::Sgemm, 2) - 2.0).abs() < 0.05);
        assert!((cpu.speedup(CpuKernel::Sgemm, 4) - 3.9).abs() < 0.15);
        assert!((cpu.speedup(CpuKernel::Spmv, 2) - 1.8).abs() < 0.1);
        assert!((cpu.speedup(CpuKernel::Spmv, 4) - 3.5).abs() < 0.25);
    }

    #[test]
    fn speedup_is_monotone_and_bounded() {
        let cpu = CpuModel::haswell();
        for k in CpuKernel::ALL {
            let mut prev = 0.0;
            for t in 1..=16 {
                let s = cpu.speedup(k, t);
                assert!(s > prev, "{k:?} speedup must grow with threads");
                assert!(s <= t as f64 + 1e-9, "no superlinear scaling");
                prev = s;
            }
        }
    }

    #[test]
    fn cycles_scale_with_ops_and_threads() {
        let cpu = CpuModel::haswell();
        let one = cpu.kernel_cycles(CpuKernel::Mac, 1_000_000, 1);
        let two = cpu.kernel_cycles(CpuKernel::Mac, 2_000_000, 1);
        assert!(two > one && (two as f64 / one as f64 - 2.0).abs() < 0.01);
        let eight = cpu.kernel_cycles(CpuKernel::Mac, 1_000_000, 8);
        assert!(eight < one);
    }

    #[test]
    fn seconds_respect_frequency() {
        let hw = CpuModel::haswell();
        let sim = CpuModel::simulated_inorder();
        let ops = 10_000_000;
        // The in-order core is slower per op and lower-clocked.
        assert!(
            sim.kernel_seconds(CpuKernel::Sgemm, ops, 1)
                > hw.kernel_seconds(CpuKernel::Sgemm, ops, 1)
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        CpuModel::haswell().speedup(CpuKernel::Sgemm, 0);
    }
}
