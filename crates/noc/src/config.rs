//! NoC configuration: router resources, pipeline depth, and the three
//! baseline presets of the paper (Table I).

use crate::routing::RoutingAlgorithm;
use std::fmt;

/// The three state-of-the-art NoC baselines analysed in §II of the paper
/// (Table I), all NOCS 2017/2018 best-paper nominees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NocPreset {
    /// DAPPER (Raparti & Pasricha, NOCS 2018): 4-stage pipeline, 16 B
    /// channels, 5 VCs, 4 buffers per VC.
    Dapper,
    /// AxNoC (Ahmed et al., NOCS 2018): 3-stage pipeline, 16 B channels,
    /// 4 VCs, 4 buffers per VC.
    AxNoc,
    /// BiNoCHS (Mirhosseini et al., NOCS 2017): 2-stage pipeline, 32 B
    /// channels, 4 VCs, 4 buffers per VC. The highest-performing baseline.
    BiNoChs,
}

impl NocPreset {
    /// All three presets, in paper order.
    pub const ALL: [NocPreset; 3] = [NocPreset::Dapper, NocPreset::AxNoc, NocPreset::BiNoChs];
}

impl fmt::Display for NocPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NocPreset::Dapper => "DAPPER",
            NocPreset::AxNoc => "AxNoC",
            NocPreset::BiNoChs => "BiNoCHS",
        };
        f.write_str(s)
    }
}

/// Configuration of a mesh NoC.
///
/// Construct with a preset ([`NocConfig::dapper`], [`NocConfig::axnoc`],
/// [`NocConfig::binochs`]) or [`NocConfig::default`], then adjust with the
/// builder-style `with_*` methods:
///
/// ```
/// use snacknoc_noc::NocConfig;
///
/// let cfg = NocConfig::axnoc().with_mesh(8, 8).with_buffers_per_vc(2);
/// assert_eq!(cfg.vcs_per_vnet, 4);
/// assert_eq!(cfg.buffers_per_vc, 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NocConfig {
    /// Mesh columns.
    pub cols: u16,
    /// Mesh rows.
    pub rows: u16,
    /// Link/channel width in bytes; packets are segmented into
    /// `ceil(size / channel_width)` flits.
    pub channel_width_bytes: u32,
    /// Number of virtual networks. The SnackNoC platform uses three:
    /// CMP requests, CMP responses, and a dedicated SnackNoC vnet (§III-B).
    pub vnets: u8,
    /// Virtual channels per vnet per input port.
    pub vcs_per_vnet: u8,
    /// Flit buffer slots per virtual channel.
    pub buffers_per_vc: u8,
    /// Router pipeline depth in stages (2–4 supported). Per-hop latency is
    /// `pipeline_stages - 1` router cycles plus 1 link cycle.
    pub pipeline_stages: u8,
    /// When `true`, communication-class flits are arbitrated strictly before
    /// SnackNoC flits at the VC and switch allocators (paper §III-D3).
    pub priority_arbitration: bool,
    /// Deterministic routing algorithm (XY default, YX dual).
    pub routing: RoutingAlgorithm,
    /// Statistics sampling window in cycles (the paper samples utilization
    /// every 10 K cycles).
    pub sample_window: u64,
    /// Network-interface injection bandwidth in flits per cycle.
    pub ni_flits_per_cycle: u8,
}

impl NocConfig {
    /// The DAPPER baseline on a 4×4 mesh (paper Table I).
    pub fn dapper() -> Self {
        NocConfig {
            channel_width_bytes: 16,
            vcs_per_vnet: 5,
            buffers_per_vc: 4,
            pipeline_stages: 4,
            ..Self::default()
        }
    }

    /// The AxNoC baseline on a 4×4 mesh (paper Table I).
    pub fn axnoc() -> Self {
        NocConfig {
            channel_width_bytes: 16,
            vcs_per_vnet: 4,
            buffers_per_vc: 4,
            pipeline_stages: 3,
            ..Self::default()
        }
    }

    /// The BiNoCHS baseline on a 4×4 mesh (paper Table I).
    pub fn binochs() -> Self {
        NocConfig {
            channel_width_bytes: 32,
            vcs_per_vnet: 4,
            buffers_per_vc: 4,
            pipeline_stages: 2,
            ..Self::default()
        }
    }

    /// The configuration for a named preset.
    pub fn preset(preset: NocPreset) -> Self {
        match preset {
            NocPreset::Dapper => Self::dapper(),
            NocPreset::AxNoc => Self::axnoc(),
            NocPreset::BiNoChs => Self::binochs(),
        }
    }

    /// Sets the mesh dimensions.
    pub fn with_mesh(mut self, cols: u16, rows: u16) -> Self {
        self.cols = cols;
        self.rows = rows;
        self
    }

    /// Sets the channel width in bytes.
    pub fn with_channel_width(mut self, bytes: u32) -> Self {
        self.channel_width_bytes = bytes;
        self
    }

    /// Sets the number of virtual channels per vnet.
    pub fn with_vcs_per_vnet(mut self, vcs: u8) -> Self {
        self.vcs_per_vnet = vcs;
        self
    }

    /// Sets the buffer depth per virtual channel.
    pub fn with_buffers_per_vc(mut self, buffers: u8) -> Self {
        self.buffers_per_vc = buffers;
        self
    }

    /// Sets the number of virtual networks.
    pub fn with_vnets(mut self, vnets: u8) -> Self {
        self.vnets = vnets;
        self
    }

    /// Sets the router pipeline depth (2–4 stages).
    pub fn with_pipeline_stages(mut self, stages: u8) -> Self {
        self.pipeline_stages = stages;
        self
    }

    /// Enables or disables communication-over-snack priority arbitration.
    pub fn with_priority_arbitration(mut self, on: bool) -> Self {
        self.priority_arbitration = on;
        self
    }

    /// Selects the dimension-order routing algorithm.
    pub fn with_routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the statistics sampling window, in cycles.
    pub fn with_sample_window(mut self, cycles: u64) -> Self {
        self.sample_window = cycles;
        self
    }

    /// Total virtual channels per input port.
    pub fn vcs_per_port(&self) -> usize {
        self.vnets as usize * self.vcs_per_vnet as usize
    }

    /// Extra router-pipeline cycles a flit spends buffered before it may
    /// compete in switch allocation (`pipeline_stages - 1`).
    pub fn pipeline_extra(&self) -> u64 {
        u64::from(self.pipeline_stages) - 1
    }

    /// Number of flits a packet of `size_bytes` occupies on this NoC.
    pub fn flits_for(&self, size_bytes: u32) -> usize {
        (size_bytes.max(1)).div_ceil(self.channel_width_bytes) as usize
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cols == 0 || self.rows == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        if self.channel_width_bytes == 0 {
            return Err(ConfigError::ZeroChannelWidth);
        }
        if self.vnets == 0 || self.vcs_per_vnet == 0 {
            return Err(ConfigError::NoVirtualChannels);
        }
        if self.vcs_per_port() > 64 {
            return Err(ConfigError::TooManyVirtualChannels(self.vcs_per_port()));
        }
        if u32::from(self.cols) * u32::from(self.rows) > 65_536 {
            return Err(ConfigError::MeshTooLarge {
                cols: self.cols,
                rows: self.rows,
            });
        }
        if self.buffers_per_vc == 0 {
            return Err(ConfigError::NoBuffers);
        }
        if !(2..=4).contains(&self.pipeline_stages) {
            return Err(ConfigError::BadPipelineDepth(self.pipeline_stages));
        }
        if self.sample_window == 0 {
            return Err(ConfigError::ZeroSampleWindow);
        }
        if self.ni_flits_per_cycle == 0 {
            return Err(ConfigError::ZeroNiBandwidth);
        }
        Ok(())
    }
}

impl Default for NocConfig {
    /// A 4×4 BiNoCHS-resourced mesh with 3 vnets and a 10 K-cycle sampling
    /// window — the simulated platform of paper Table IV.
    fn default() -> Self {
        NocConfig {
            cols: 4,
            rows: 4,
            channel_width_bytes: 32,
            vnets: 3,
            vcs_per_vnet: 4,
            buffers_per_vc: 4,
            pipeline_stages: 2,
            priority_arbitration: false,
            routing: RoutingAlgorithm::Xy,
            sample_window: 10_000,
            ni_flits_per_cycle: 1,
        }
    }
}

/// An invalid [`NocConfig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// A mesh dimension was zero.
    EmptyMesh,
    /// Channel width was zero bytes.
    ZeroChannelWidth,
    /// No virtual networks or no VCs per vnet.
    NoVirtualChannels,
    /// More than 64 virtual channels per port — the router tracks VC
    /// occupancy/credit state in per-port `u64` bitmasks.
    TooManyVirtualChannels(usize),
    /// More than 65 536 nodes — flits address nodes with `u16` indices.
    MeshTooLarge {
        /// Mesh columns.
        cols: u16,
        /// Mesh rows.
        rows: u16,
    },
    /// Zero buffers per VC.
    NoBuffers,
    /// Pipeline depth outside the supported 2–4 stage range.
    BadPipelineDepth(u8),
    /// Statistics sampling window of zero cycles.
    ZeroSampleWindow,
    /// Network-interface bandwidth of zero flits per cycle.
    ZeroNiBandwidth,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyMesh => write!(f, "mesh dimensions must be non-zero"),
            ConfigError::ZeroChannelWidth => write!(f, "channel width must be non-zero"),
            ConfigError::NoVirtualChannels => write!(f, "need at least one vnet and one vc per vnet"),
            ConfigError::TooManyVirtualChannels(n) => {
                write!(f, "{n} vcs per port exceeds the 64-vc bitmask limit")
            }
            ConfigError::MeshTooLarge { cols, rows } => {
                write!(f, "{cols}x{rows} mesh exceeds the 65536-node flit addressing limit")
            }
            ConfigError::NoBuffers => write!(f, "need at least one buffer slot per vc"),
            ConfigError::BadPipelineDepth(d) => {
                write!(f, "pipeline depth {d} unsupported (expected 2-4 stages)")
            }
            ConfigError::ZeroSampleWindow => write!(f, "sample window must be non-zero"),
            ConfigError::ZeroNiBandwidth => write!(f, "ni bandwidth must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        let d = NocConfig::dapper();
        assert_eq!((d.pipeline_stages, d.channel_width_bytes, d.vcs_per_vnet, d.buffers_per_vc), (4, 16, 5, 4));
        let a = NocConfig::axnoc();
        assert_eq!((a.pipeline_stages, a.channel_width_bytes, a.vcs_per_vnet, a.buffers_per_vc), (3, 16, 4, 4));
        let b = NocConfig::binochs();
        assert_eq!((b.pipeline_stages, b.channel_width_bytes, b.vcs_per_vnet, b.buffers_per_vc), (2, 32, 4, 4));
        for p in NocPreset::ALL {
            NocConfig::preset(p).validate().unwrap();
        }
    }

    #[test]
    fn flit_segmentation_rounds_up() {
        let cfg = NocConfig::default().with_channel_width(16);
        assert_eq!(cfg.flits_for(1), 1);
        assert_eq!(cfg.flits_for(16), 1);
        assert_eq!(cfg.flits_for(17), 2);
        assert_eq!(cfg.flits_for(64), 4);
        assert_eq!(cfg.flits_for(0), 1, "zero-byte packets still need a flit");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(NocConfig::default().with_mesh(0, 4).validate(), Err(ConfigError::EmptyMesh));
        assert_eq!(NocConfig::default().with_channel_width(0).validate(), Err(ConfigError::ZeroChannelWidth));
        assert_eq!(NocConfig::default().with_vcs_per_vnet(0).validate(), Err(ConfigError::NoVirtualChannels));
        assert_eq!(NocConfig::default().with_vnets(0).validate(), Err(ConfigError::NoVirtualChannels));
        assert_eq!(NocConfig::default().with_buffers_per_vc(0).validate(), Err(ConfigError::NoBuffers));
        assert_eq!(
            NocConfig::default().with_pipeline_stages(7).validate(),
            Err(ConfigError::BadPipelineDepth(7))
        );
        assert_eq!(NocConfig::default().with_sample_window(0).validate(), Err(ConfigError::ZeroSampleWindow));
        assert_eq!(
            NocConfig::default().with_vnets(5).with_vcs_per_vnet(13).validate(),
            Err(ConfigError::TooManyVirtualChannels(65))
        );
        assert_eq!(
            NocConfig::default().with_mesh(257, 256).validate(),
            Err(ConfigError::MeshTooLarge { cols: 257, rows: 256 })
        );
        assert!(NocConfig::default().with_mesh(256, 256).validate().is_ok(), "65536 nodes is legal");
        assert!(
            NocConfig::default().with_vnets(4).with_vcs_per_vnet(16).validate().is_ok(),
            "64 vcs per port is legal"
        );
    }

    #[test]
    fn pipeline_extra_matches_per_hop_latency_model() {
        assert_eq!(NocConfig::binochs().pipeline_extra(), 1);
        assert_eq!(NocConfig::axnoc().pipeline_extra(), 2);
        assert_eq!(NocConfig::dapper().pipeline_extra(), 3);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            ConfigError::EmptyMesh,
            ConfigError::ZeroChannelWidth,
            ConfigError::NoVirtualChannels,
            ConfigError::NoBuffers,
            ConfigError::BadPipelineDepth(9),
            ConfigError::ZeroSampleWindow,
            ConfigError::ZeroNiBandwidth,
            ConfigError::TooManyVirtualChannels(65),
            ConfigError::MeshTooLarge { cols: 300, rows: 300 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
