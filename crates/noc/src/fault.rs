//! Deterministic fault injection for the NoC substrate.
//!
//! A [`FaultPlan`] describes *when and where* the network misbehaves:
//! cycle-scheduled link-down windows, per-link flit drops, payload
//! corruption and RCU stall windows. Every decision is derived by hashing
//! `(seed, link, packet)` with the workspace's counter-based PRNG
//! ([`snacknoc_prng::hashrand`]), so a plan replays bit-identically no
//! matter how the simulation is threaded or resumed — the same *common
//! random numbers* discipline the traffic engines use.
//!
//! The plan is pure data; the network compiles it into a [`FaultState`]
//! (resolving `(node, direction)` pairs to directed link ids) via
//! [`crate::Network::set_fault_plan`]. With the default
//! [`FaultPlan::none`] the network keeps a `None` state and the hot path
//! is byte-identical to a build without this module.
//!
//! Fault semantics:
//!
//! * **Down** windows stall switch allocation toward the dead output
//!   port — flits wait in their input buffers, exactly as a link whose
//!   receiver stopped returning credits. Nothing is lost or corrupted;
//!   a flit already on the wire when the window opens still delivers.
//! * **Drop** removes a packet from the wire. The decision is made once,
//!   at the head flit; body/tail flits of a dropped packet are swallowed
//!   by a memo so a wormhole packet is never split in half. Credits are
//!   synthesized upstream so flow control stays live.
//! * **Corrupt** marks the head flit; the packet still delivers but
//!   surfaces `corrupted = true` to the consumer, which is expected to
//!   detect it via payload checksums.

use crate::flit::TrafficClass;
use crate::packet::PacketId;
use crate::routing::Dir;
use crate::topology::NodeId;
use std::collections::HashSet;
use std::fmt;

/// Decision salt for drop rolls (see [`snacknoc_prng::hashrand::unit`]).
const SALT_DROP: u64 = 0xFA17_0001;
/// Decision salt for corruption rolls.
const SALT_CORRUPT: u64 = 0xFA17_0002;

/// What a scheduled [`LinkFault`] does to traffic on its link.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LinkFaultKind {
    /// The link is dead: the upstream router cannot send through it.
    Down,
    /// Flits crossing the link are dropped with this probability
    /// (decided per packet at its head flit).
    Drop {
        /// Per-packet drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Head flits crossing the link are payload-corrupted with this
    /// probability.
    Corrupt {
        /// Per-packet corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// The link is *permanently* dead from `start` onward — a hard
    /// failure that never heals. Behaves like [`LinkFaultKind::Down`]
    /// on the wire (flits stall in their input buffers), but higher
    /// layers treat it as permanent: ring launches recompute a detour
    /// cycle that excludes the link for the rest of the run instead of
    /// waiting the window out. The window `end` must be `u64::MAX`
    /// (use [`FaultPlan::with_dead_link`], which sets it).
    Dead,
}

/// A cycle-scheduled fault on one directed mesh link.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkFault {
    /// Node owning the faulty *output* port.
    pub from: NodeId,
    /// Direction of the faulty output port (`Local` is not a link).
    pub dir: Dir,
    /// First cycle (inclusive) the fault is active.
    pub start: u64,
    /// Last cycle (exclusive) the fault is active.
    pub end: u64,
    /// What the fault does.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    fn active(&self, cycle: u64) -> bool {
        (self.start..self.end).contains(&cycle)
    }
}

/// A cycle window during which one node's RCU refuses to execute.
///
/// The NoC itself does not model RCUs; the platform layer polls
/// [`FaultPlan::rcu_stalled`] before ticking each compute unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StallWindow {
    /// The stalled node.
    pub node: NodeId,
    /// First cycle (inclusive) of the stall.
    pub start: u64,
    /// Last cycle (exclusive) of the stall.
    pub end: u64,
}

/// A permanent node death: the RCU (and any CPM co-located at the node)
/// stops doing compute work from `from` onward, forever.
///
/// Death is a *compute*-layer failure: the node's router keeps forwarding
/// traffic (the NoC failure mode is [`LinkFaultKind::Dead`]). The NoC
/// itself does not model RCUs; the platform layer polls
/// [`FaultPlan::rcu_dead`] before ticking each compute unit, excludes
/// dead nodes from the transient-token ring, and escalates to
/// remap/failover when a kernel depends on a dead node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeadRcu {
    /// The dead node.
    pub node: NodeId,
    /// First cycle (inclusive) the node is dead; it never revives.
    pub from: u64,
}

/// Which traffic classes the random drop/corrupt rates apply to.
///
/// Scheduled [`LinkFault`] windows also respect this mask. `Down` windows
/// stall *everything* regardless (a dead wire has no class filter).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultTargets {
    /// Target SnackNoC transient data tokens (the default).
    pub data: bool,
    /// Target SnackNoC instruction tokens.
    pub instructions: bool,
    /// Target baseline communication traffic.
    pub communication: bool,
}

impl Default for FaultTargets {
    fn default() -> Self {
        FaultTargets { data: true, instructions: false, communication: false }
    }
}

impl FaultTargets {
    /// Whether `class` is in the target set.
    pub fn targets(&self, class: TrafficClass) -> bool {
        match class {
            TrafficClass::Communication => self.communication,
            TrafficClass::SnackInstruction => self.instructions,
            TrafficClass::SnackData => self.data,
        }
    }
}

/// A complete, seeded description of the faults to inject into one run.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and compiles to
/// no per-cycle work at all.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultPlan {
    /// Seed for all hash-derived fault decisions.
    pub seed: u64,
    /// Global per-packet drop probability on every link, every cycle.
    pub drop_rate: f64,
    /// Global per-packet corruption probability on every link.
    pub corrupt_rate: f64,
    /// Scheduled per-link fault windows.
    pub links: Vec<LinkFault>,
    /// Scheduled RCU stall windows (consumed by the platform layer).
    pub rcu_stalls: Vec<StallWindow>,
    /// Permanent node deaths (consumed by the platform layer).
    pub dead_rcus: Vec<DeadRcu>,
    /// Which traffic classes random faults apply to.
    pub targets: FaultTargets,
    /// When `true` (the default), packets flagged as protected
    /// ([`crate::PacketSpec::with_protected`]) are exempt from drops and
    /// corruption — modelling a small ECC/ack-protected control channel.
    pub respect_protection: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, zero simulation cost.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            links: Vec::new(),
            rcu_stalls: Vec::new(),
            dead_rcus: Vec::new(),
            targets: FaultTargets::default(),
            respect_protection: true,
        }
    }

    /// An empty plan carrying a decision seed, ready for builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Self::none() }
    }

    /// Sets the global per-packet drop rate.
    #[must_use]
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the global per-packet corruption rate.
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Schedules a fault on the directed link `from → dir` for cycles
    /// `start..end`.
    #[must_use]
    pub fn with_link_fault(
        mut self,
        from: NodeId,
        dir: Dir,
        start: u64,
        end: u64,
        kind: LinkFaultKind,
    ) -> Self {
        self.links.push(LinkFault { from, dir, start, end, kind });
        self
    }

    /// Schedules an RCU stall at `node` for cycles `start..end`.
    #[must_use]
    pub fn with_rcu_stall(mut self, node: NodeId, start: u64, end: u64) -> Self {
        self.rcu_stalls.push(StallWindow { node, start, end });
        self
    }

    /// Kills the directed link `from → dir` permanently from cycle
    /// `from_cycle` onward ([`LinkFaultKind::Dead`], never heals).
    #[must_use]
    pub fn with_dead_link(mut self, from: NodeId, dir: Dir, from_cycle: u64) -> Self {
        self.links.push(LinkFault {
            from,
            dir,
            start: from_cycle,
            end: u64::MAX,
            kind: LinkFaultKind::Dead,
        });
        self
    }

    /// Kills the node `node` permanently from cycle `from_cycle` onward:
    /// its RCU (and any co-located CPM) stops computing forever. The
    /// node's router keeps forwarding — use [`Self::with_dead_link`] for
    /// wire failures.
    #[must_use]
    pub fn with_dead_rcu(mut self, node: NodeId, from_cycle: u64) -> Self {
        self.dead_rcus.push(DeadRcu { node, from: from_cycle });
        self
    }

    /// Replaces the traffic-class target mask.
    #[must_use]
    pub fn with_targets(mut self, targets: FaultTargets) -> Self {
        self.targets = targets;
        self
    }

    /// Sets whether protected packets are exempt from random faults.
    #[must_use]
    pub fn with_respect_protection(mut self, respect: bool) -> Self {
        self.respect_protection = respect;
        self
    }

    /// Whether this plan injects anything at all.
    pub fn enabled(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || !self.links.is_empty()
            || !self.rcu_stalls.is_empty()
            || !self.dead_rcus.is_empty()
    }

    /// Whether this plan contains any *permanent* fault (a dead link or a
    /// dead node). Permanent faults make a run eligible for the platform's
    /// remap/failover escalation path.
    pub fn has_permanent_faults(&self) -> bool {
        !self.dead_rcus.is_empty()
            || self.links.iter().any(|f| f.kind == LinkFaultKind::Dead)
    }

    /// Whether the directed link `from → dir` is inside a `Down` window
    /// (or permanently dead) at `cycle`. Used by higher layers to steer
    /// around unusable links.
    pub fn link_is_down(&self, from: NodeId, dir: Dir, cycle: u64) -> bool {
        self.links.iter().any(|f| {
            matches!(f.kind, LinkFaultKind::Down | LinkFaultKind::Dead)
                && f.from == from
                && f.dir == dir
                && f.active(cycle)
        })
    }

    /// Whether the directed link `from → dir` is permanently dead at
    /// `cycle` (a [`LinkFaultKind::Dead`] fault whose start has passed).
    pub fn link_is_dead(&self, from: NodeId, dir: Dir, cycle: u64) -> bool {
        self.links.iter().any(|f| {
            f.kind == LinkFaultKind::Dead && f.from == from && f.dir == dir && f.start <= cycle
        })
    }

    /// Whether the node `node` is permanently dead at `cycle`.
    pub fn rcu_dead(&self, node: NodeId, cycle: u64) -> bool {
        self.dead_rcus.iter().any(|d| d.node == node && d.from <= cycle)
    }

    /// The nodes permanently dead at `cycle`, ascending by node index —
    /// the exclusion set for remapping a kernel off dead RCUs.
    pub fn dead_rcu_nodes_at(&self, cycle: u64) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> =
            self.dead_rcus.iter().filter(|d| d.from <= cycle).map(|d| d.node).collect();
        nodes.sort_unstable_by_key(|n| n.index());
        nodes.dedup();
        nodes
    }

    /// Whether the RCU at `node` is inside a stall window at `cycle`.
    pub fn rcu_stalled(&self, node: NodeId, cycle: u64) -> bool {
        self.rcu_stalls.iter().any(|w| w.node == node && (w.start..w.end).contains(&cycle))
    }

    /// Whether *any* RCU stall window covers `cycle`. A covered cycle
    /// charges `stalled_cycles` to the stalled RCUs, so event-driven
    /// stepping must run it on the real clock.
    pub fn any_rcu_stalled(&self, cycle: u64) -> bool {
        self.rcu_stalls.iter().any(|w| (w.start..w.end).contains(&cycle))
    }

    /// The earliest RCU stall-window start strictly after `cycle`, if any —
    /// a wake event for event-driven stepping (a jump must never overshoot
    /// into or across a stall window).
    pub fn next_rcu_stall_start_after(&self, cycle: u64) -> Option<u64> {
        self.rcu_stalls.iter().map(|w| w.start).filter(|&s| s > cycle).min()
    }

    /// Validates rates and windows.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] for rates outside `[0, 1]` or inverted
    /// windows.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let frac = |field: &'static str, v: f64| -> Result<(), FaultPlanError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(FaultPlanError::RateOutOfRange { field, value: v })
            }
        };
        frac("drop_rate", self.drop_rate)?;
        frac("corrupt_rate", self.corrupt_rate)?;
        for f in &self.links {
            match f.kind {
                LinkFaultKind::Drop { rate } => frac("link drop rate", rate)?,
                LinkFaultKind::Corrupt { rate } => frac("link corrupt rate", rate)?,
                LinkFaultKind::Down => {}
                LinkFaultKind::Dead => {
                    // Permanence is the contract: a bounded "dead" window
                    // is a Down window and must be spelled as one.
                    if f.end != u64::MAX {
                        return Err(FaultPlanError::BoundedDeath { end: f.end });
                    }
                }
            }
            if f.start >= f.end {
                return Err(FaultPlanError::EmptyWindow { start: f.start, end: f.end });
            }
            if f.dir == Dir::Local {
                return Err(FaultPlanError::BadLink { node: f.from, dir: f.dir });
            }
        }
        for w in &self.rcu_stalls {
            if w.start >= w.end {
                return Err(FaultPlanError::EmptyWindow { start: w.start, end: w.end });
            }
        }
        Ok(())
    }
}

/// Error returned when a [`FaultPlan`] cannot be compiled for a network.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// A rate field is outside `[0, 1]`.
    RateOutOfRange {
        /// Which rate.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A scheduled window has `start >= end`.
    EmptyWindow {
        /// Window start (inclusive).
        start: u64,
        /// Window end (exclusive).
        end: u64,
    },
    /// A [`LinkFault`] references a link that does not exist in the mesh.
    BadLink {
        /// The node owning the (nonexistent) output port.
        node: NodeId,
        /// The direction with no neighbour.
        dir: Dir,
    },
    /// A [`LinkFaultKind::Dead`] fault has a finite window end — death
    /// is permanent by contract (`end` must be `u64::MAX`).
    BoundedDeath {
        /// The offending (finite) window end.
        end: u64,
    },
    /// A [`DeadRcu`] references a node outside the mesh.
    BadNode {
        /// The nonexistent node.
        node: NodeId,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::RateOutOfRange { field, value } => {
                write!(f, "fault {field} {value} outside [0, 1]")
            }
            FaultPlanError::EmptyWindow { start, end } => {
                write!(f, "fault window {start}..{end} is empty")
            }
            FaultPlanError::BadLink { node, dir } => {
                write!(f, "no link leaves {node} toward {dir}")
            }
            FaultPlanError::BoundedDeath { end } => {
                write!(f, "Dead link fault has finite end {end} (death is permanent)")
            }
            FaultPlanError::BadNode { node } => {
                write!(f, "dead node {node} is outside the mesh")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Counters for everything the fault layer did to the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultCounters {
    /// Fault events injected (packet drops + corruptions).
    pub injected: u64,
    /// Individual flits removed from the wire.
    pub dropped_flits: u64,
    /// Whole packets dropped (counted at their tail flit).
    pub dropped_packets: u64,
    /// Packets delivered with a corrupted payload.
    pub corrupted_packets: u64,
}

/// What the fault layer decides for one flit on one link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FaultAction {
    /// Deliver the flit untouched.
    Deliver,
    /// Deliver the flit with its corruption mark set.
    DeliverCorrupted,
    /// Swallow the flit.
    Drop,
}

/// A [`FaultPlan`] compiled against one network's link table.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// Resolved `Down` windows: `(link id, start, end)`.
    down: Vec<(usize, u64, u64)>,
    /// Resolved `Drop` windows: `(link id, start, end, rate)`.
    drops: Vec<(usize, u64, u64, f64)>,
    /// Resolved `Corrupt` windows: `(link id, start, end, rate)`.
    corrupts: Vec<(usize, u64, u64, f64)>,
    /// Every distinct window start/end cycle across all down/drop/corrupt
    /// windows, sorted ascending. Event-driven stepping treats each edge
    /// as a wake cycle so a clock jump can never silently cross (and thus
    /// skip) a fault window contained inside the jumped interval.
    edges: Vec<u64>,
    /// Packets whose head was dropped on a link: the rest of the wormhole
    /// follows it into the void. Membership-only — never iterated, so the
    /// hash order cannot leak into simulation results.
    dropping: HashSet<(usize, PacketId)>,
    /// What happened so far.
    pub(crate) counters: FaultCounters,
}

impl FaultState {
    /// Compiles `plan` using `resolve` to map `(node, dir)` to link ids.
    pub(crate) fn compile(
        plan: FaultPlan,
        mut resolve: impl FnMut(NodeId, Dir) -> Option<usize>,
    ) -> Result<Self, FaultPlanError> {
        plan.validate()?;
        let mut down = Vec::new();
        let mut drops = Vec::new();
        let mut corrupts = Vec::new();
        for f in &plan.links {
            let lid = resolve(f.from, f.dir)
                .ok_or(FaultPlanError::BadLink { node: f.from, dir: f.dir })?;
            match f.kind {
                // A Dead link is a Down window that never closes: the
                // wire-level machinery (stall switch allocation toward the
                // port) is identical; only higher layers distinguish.
                LinkFaultKind::Down | LinkFaultKind::Dead => down.push((lid, f.start, f.end)),
                LinkFaultKind::Drop { rate } => drops.push((lid, f.start, f.end, rate)),
                LinkFaultKind::Corrupt { rate } => corrupts.push((lid, f.start, f.end, rate)),
            }
        }
        let mut edges: Vec<u64> = down
            .iter()
            .map(|&(_, s, e)| (s, e))
            .chain(drops.iter().map(|&(_, s, e, _)| (s, e)))
            .chain(corrupts.iter().map(|&(_, s, e, _)| (s, e)))
            .flat_map(|(s, e)| [s, e])
            // A window that never ends has no closing edge to wake on.
            .filter(|&c| c != u64::MAX)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        Ok(FaultState {
            plan,
            down,
            drops,
            corrupts,
            edges,
            dropping: HashSet::new(),
            counters: FaultCounters::default(),
        })
    }

    /// Every distinct down/drop/corrupt window edge (starts and exclusive
    /// ends), ascending. These are the cycles event-driven stepping must
    /// treat as wake events.
    pub(crate) fn window_edges(&self) -> &[u64] {
        &self.edges
    }

    /// The plan this state was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether link `lid` is inside a `Down` window at `cycle`.
    pub(crate) fn link_down(&self, lid: usize, cycle: u64) -> bool {
        self.down.iter().any(|&(l, s, e)| l == lid && (s..e).contains(&cycle))
    }

    /// Whether any `Down` window exists at all (lets the network skip
    /// building per-router masks when only drop/corrupt faults run).
    pub(crate) fn has_down_windows(&self) -> bool {
        !self.down.is_empty()
    }

    /// The effective rate for `lid` at `cycle`: the plan-wide baseline,
    /// raised by any covering scheduled window.
    fn rate_at(base: f64, windows: &[(usize, u64, u64, f64)], lid: usize, cycle: u64) -> f64 {
        let mut rate = base;
        for &(l, s, e, r) in windows {
            if l == lid && (s..e).contains(&cycle) {
                rate = rate.max(r);
            }
        }
        rate
    }

    /// Decides the fate of one flit crossing link `lid` at `cycle`.
    ///
    /// Drop decisions are made at head flits only; later flits of a
    /// dropped packet follow via the memo, so a wormhole packet never
    /// splits across a window edge.
    pub(crate) fn on_link_flit(
        &mut self,
        lid: usize,
        cycle: u64,
        flit: &crate::flit::Flit,
    ) -> FaultAction {
        // Disjoint field borrows: the decision reads the compiled plan
        // while mutating the memo and counters.
        let Self { plan, drops, corrupts, dropping, counters, .. } = self;
        Self::decide(plan, drops, corrupts, lid, cycle, flit, dropping, counters)
    }

    /// [`FaultState::on_link_flit`] with the mutable halves — the
    /// mid-packet drop memo and the event counters — supplied by the
    /// caller. The sharded stepper gives every shard its own memo and
    /// counter delta: each link id is consumed by exactly one shard, so a
    /// `(link, packet)` memo entry lives and dies inside a single shard,
    /// and the counters are pure sums merged in shard-index order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_link_flit_sharded(
        &self,
        lid: usize,
        cycle: u64,
        flit: &crate::flit::Flit,
        dropping: &mut HashSet<(usize, PacketId)>,
        counters: &mut FaultCounters,
    ) -> FaultAction {
        Self::decide(&self.plan, &self.drops, &self.corrupts, lid, cycle, flit, dropping, counters)
    }

    /// The shared decision core. Drop/corrupt rolls hash `(seed, link,
    /// packet)` — common random numbers — so the verdict is independent
    /// of evaluation order and of which thread asks.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        plan: &FaultPlan,
        drops: &[(usize, u64, u64, f64)],
        corrupts: &[(usize, u64, u64, f64)],
        lid: usize,
        cycle: u64,
        flit: &crate::flit::Flit,
        dropping: &mut HashSet<(usize, PacketId)>,
        counters: &mut FaultCounters,
    ) -> FaultAction {
        let (kind, class, protected, already_corrupted, packet_id) =
            (flit.kind(), flit.class(), flit.protected(), flit.corrupted(), flit.packet_id);
        if !kind.is_head() {
            if dropping.contains(&(lid, packet_id)) {
                if kind.is_tail() {
                    dropping.remove(&(lid, packet_id));
                    counters.dropped_packets += 1;
                    counters.injected += 1;
                }
                counters.dropped_flits += 1;
                return FaultAction::Drop;
            }
            return FaultAction::Deliver;
        }
        if !plan.targets.targets(class) || (protected && plan.respect_protection) {
            return FaultAction::Deliver;
        }
        let drop = Self::rate_at(plan.drop_rate, drops, lid, cycle);
        if drop > 0.0
            && snacknoc_prng::hashrand::unit(plan.seed, lid as u64, packet_id, SALT_DROP) < drop
        {
            counters.dropped_flits += 1;
            if kind.is_tail() {
                // Single-flit packet: dropped whole right here.
                counters.dropped_packets += 1;
                counters.injected += 1;
            } else {
                dropping.insert((lid, packet_id));
            }
            return FaultAction::Drop;
        }
        let corrupt = Self::rate_at(plan.corrupt_rate, corrupts, lid, cycle);
        if !already_corrupted
            && corrupt > 0.0
            && snacknoc_prng::hashrand::unit(plan.seed, lid as u64, packet_id, SALT_CORRUPT)
                < corrupt
        {
            counters.corrupted_packets += 1;
            counters.injected += 1;
            return FaultAction::DeliverCorrupted;
        }
        FaultAction::Deliver
    }

    /// Mutable access to the mid-packet drop memo, for the sharded
    /// stepper's mode transitions (entries migrate to the shard that owns
    /// the link's destination router, and back on exit).
    pub(crate) fn dropping_mut(&mut self) -> &mut HashSet<(usize, PacketId)> {
        &mut self.dropping
    }

    /// Folds a shard's fault-counter delta into the global counters.
    pub(crate) fn merge_counters(&mut self, delta: &FaultCounters) {
        self.counters.injected += delta.injected;
        self.counters.dropped_flits += delta.dropped_flits;
        self.counters.dropped_packets += delta.dropped_packets;
        self.counters.corrupted_packets += delta.corrupted_packets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;

    /// Builds a minimal flit carrying just the fields the fault layer
    /// inspects.
    fn probe(
        kind: FlitKind,
        class: TrafficClass,
        protected: bool,
        corrupted: bool,
        packet_id: PacketId,
    ) -> crate::flit::Flit {
        let mut f = crate::flit::Flit::new(
            0,
            packet_id,
            kind,
            class,
            0,
            NodeId::new(0),
            NodeId::new(0),
            0,
            crate::pool::PayloadRef::NONE,
            protected,
        );
        if corrupted {
            f.mark_corrupted();
        }
        f
    }

    #[test]
    fn empty_plan_is_disabled_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.enabled());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn builders_enable_the_plan() {
        assert!(FaultPlan::seeded(1).with_drop_rate(0.1).enabled());
        assert!(FaultPlan::seeded(1).with_corrupt_rate(0.1).enabled());
        assert!(FaultPlan::seeded(1)
            .with_link_fault(NodeId::new(0), Dir::East, 0, 10, LinkFaultKind::Down)
            .enabled());
        assert!(FaultPlan::seeded(1).with_rcu_stall(NodeId::new(3), 5, 9).enabled());
        assert!(!FaultPlan::seeded(77).enabled(), "a bare seed injects nothing");
    }

    #[test]
    fn validation_rejects_bad_rates_and_windows() {
        assert!(matches!(
            FaultPlan::seeded(1).with_drop_rate(1.5).validate(),
            Err(FaultPlanError::RateOutOfRange { field: "drop_rate", .. })
        ));
        assert!(matches!(
            FaultPlan::seeded(1).with_corrupt_rate(-0.1).validate(),
            Err(FaultPlanError::RateOutOfRange { .. })
        ));
        assert!(matches!(
            FaultPlan::seeded(1)
                .with_link_fault(NodeId::new(0), Dir::East, 10, 10, LinkFaultKind::Down)
                .validate(),
            Err(FaultPlanError::EmptyWindow { start: 10, end: 10 })
        ));
        assert!(matches!(
            FaultPlan::seeded(1)
                .with_link_fault(NodeId::new(0), Dir::Local, 0, 10, LinkFaultKind::Down)
                .validate(),
            Err(FaultPlanError::BadLink { .. })
        ));
        let err = FaultPlan::seeded(1).with_drop_rate(2.0).validate().unwrap_err();
        assert!(err.to_string().contains("drop_rate"));
    }

    #[test]
    fn down_and_stall_windows_are_half_open() {
        let plan = FaultPlan::seeded(9)
            .with_link_fault(NodeId::new(2), Dir::South, 100, 200, LinkFaultKind::Down)
            .with_rcu_stall(NodeId::new(5), 50, 60);
        assert!(!plan.link_is_down(NodeId::new(2), Dir::South, 99));
        assert!(plan.link_is_down(NodeId::new(2), Dir::South, 100));
        assert!(plan.link_is_down(NodeId::new(2), Dir::South, 199));
        assert!(!plan.link_is_down(NodeId::new(2), Dir::South, 200));
        assert!(!plan.link_is_down(NodeId::new(3), Dir::South, 150), "other node unaffected");
        assert!(!plan.link_is_down(NodeId::new(2), Dir::North, 150), "other dir unaffected");
        assert!(plan.rcu_stalled(NodeId::new(5), 50));
        assert!(!plan.rcu_stalled(NodeId::new(5), 60));
        assert!(!plan.rcu_stalled(NodeId::new(4), 55));
    }

    #[test]
    fn drop_decision_is_head_keyed_and_deterministic() {
        let plan = FaultPlan::seeded(42).with_drop_rate(1.0);
        let mut st = FaultState::compile(plan.clone(), |_, _| Some(0)).unwrap();
        // Multi-flit packet: head decides, body/tail follow the memo.
        assert_eq!(
            st.on_link_flit(3, 10, &probe(FlitKind::Head, TrafficClass::SnackData, false, false, 7)),
            FaultAction::Drop
        );
        assert_eq!(
            st.on_link_flit(3, 11, &probe(FlitKind::Body, TrafficClass::SnackData, false, false, 7)),
            FaultAction::Drop
        );
        assert_eq!(
            st.on_link_flit(3, 12, &probe(FlitKind::Tail, TrafficClass::SnackData, false, false, 7)),
            FaultAction::Drop
        );
        assert_eq!(st.counters.dropped_flits, 3);
        assert_eq!(st.counters.dropped_packets, 1);
        assert_eq!(st.counters.injected, 1);
        // A different packet's body on the same link is untouched.
        assert_eq!(
            st.on_link_flit(3, 12, &probe(FlitKind::Body, TrafficClass::SnackData, false, false, 8)),
            FaultAction::Deliver
        );
        // Replay is bit-identical.
        let mut st2 = FaultState::compile(plan, |_, _| Some(0)).unwrap();
        assert_eq!(
            st2.on_link_flit(3, 10, &probe(FlitKind::Head, TrafficClass::SnackData, false, false, 7)),
            FaultAction::Drop
        );
    }

    #[test]
    fn targeting_and_protection_exempt_traffic() {
        let mut st =
            FaultState::compile(FaultPlan::seeded(1).with_drop_rate(1.0), |_, _| Some(0)).unwrap();
        // Default targets: data only.
        assert_eq!(
            st.on_link_flit(0, 0, &probe(FlitKind::HeadTail, TrafficClass::Communication, false, false, 1)),
            FaultAction::Deliver
        );
        assert_eq!(
            st.on_link_flit(0, 0, &probe(FlitKind::HeadTail, TrafficClass::SnackInstruction, false, false, 2)),
            FaultAction::Deliver
        );
        // Protected data survives too: the would-be drop becomes delivery.
        assert_eq!(
            st.on_link_flit(0, 0, &probe(FlitKind::HeadTail, TrafficClass::SnackData, true, false, 3)),
            FaultAction::Deliver
        );
        assert_eq!(
            st.on_link_flit(0, 0, &probe(FlitKind::HeadTail, TrafficClass::SnackData, false, false, 4)),
            FaultAction::Drop
        );
        assert_eq!(st.counters.dropped_packets, 1);
    }

    #[test]
    fn corruption_marks_but_delivers() {
        let mut st = FaultState::compile(FaultPlan::seeded(5).with_corrupt_rate(1.0), |_, _| {
            Some(0)
        })
        .unwrap();
        assert_eq!(
            st.on_link_flit(0, 0, &probe(FlitKind::HeadTail, TrafficClass::SnackData, false, false, 1)),
            FaultAction::DeliverCorrupted
        );
        assert_eq!(st.counters.corrupted_packets, 1);
        assert_eq!(st.counters.dropped_flits, 0);
    }

    #[test]
    fn windowed_drop_rate_composes_with_global() {
        let plan = FaultPlan::seeded(3)
            .with_link_fault(NodeId::new(0), Dir::East, 10, 20, LinkFaultKind::Drop { rate: 1.0 });
        let mut st = FaultState::compile(plan, |_, _| Some(4)).unwrap();
        // Outside the window: no drops at rate 0.
        assert_eq!(
            st.on_link_flit(4, 9, &probe(FlitKind::HeadTail, TrafficClass::SnackData, false, false, 1)),
            FaultAction::Deliver
        );
        // Inside: certain drop.
        assert_eq!(
            st.on_link_flit(4, 10, &probe(FlitKind::HeadTail, TrafficClass::SnackData, false, false, 2)),
            FaultAction::Drop
        );
        // Other links unaffected.
        assert_eq!(
            st.on_link_flit(5, 10, &probe(FlitKind::HeadTail, TrafficClass::SnackData, false, false, 3)),
            FaultAction::Deliver
        );
    }

    #[test]
    fn dead_links_and_nodes_are_permanent() {
        let plan = FaultPlan::seeded(11)
            .with_dead_link(NodeId::new(2), Dir::East, 1_000)
            .with_dead_rcu(NodeId::new(7), 500);
        assert!(plan.enabled());
        assert!(plan.has_permanent_faults());
        assert!(plan.validate().is_ok());
        // Dead links read as down (detour machinery) and as dead
        // (permanence), from their start cycle to forever.
        assert!(!plan.link_is_down(NodeId::new(2), Dir::East, 999));
        assert!(!plan.link_is_dead(NodeId::new(2), Dir::East, 999));
        assert!(plan.link_is_down(NodeId::new(2), Dir::East, 1_000));
        assert!(plan.link_is_dead(NodeId::new(2), Dir::East, 1_000));
        assert!(plan.link_is_down(NodeId::new(2), Dir::East, u64::MAX - 1));
        // Node death never revives either.
        assert!(!plan.rcu_dead(NodeId::new(7), 499));
        assert!(plan.rcu_dead(NodeId::new(7), 500));
        assert!(plan.rcu_dead(NodeId::new(7), u64::MAX));
        assert!(!plan.rcu_dead(NodeId::new(6), 10_000));
        assert_eq!(plan.dead_rcu_nodes_at(499), Vec::<NodeId>::new());
        assert_eq!(plan.dead_rcu_nodes_at(500), vec![NodeId::new(7)]);
        // A transient-only plan is not permanent.
        assert!(!FaultPlan::seeded(1).with_drop_rate(0.5).has_permanent_faults());
    }

    #[test]
    fn bounded_death_is_rejected() {
        let mut plan = FaultPlan::seeded(1).with_dead_link(NodeId::new(0), Dir::East, 10);
        plan.links[0].end = 5_000;
        assert!(matches!(plan.validate(), Err(FaultPlanError::BoundedDeath { end: 5_000 })));
        let err = plan.validate().unwrap_err();
        assert!(err.to_string().contains("permanent"));
    }

    #[test]
    fn dead_link_compiles_to_an_unbounded_down_window_with_no_end_edge() {
        let plan = FaultPlan::seeded(1).with_dead_link(NodeId::new(0), Dir::East, 42);
        let st = FaultState::compile(plan, |_, _| Some(3)).unwrap();
        assert!(st.has_down_windows());
        assert!(!st.link_down(3, 41));
        assert!(st.link_down(3, 42));
        assert!(st.link_down(3, u64::MAX - 1));
        assert_eq!(st.window_edges(), &[42], "u64::MAX must not appear as a wake edge");
    }

    #[test]
    fn compile_rejects_nonexistent_links() {
        let plan = FaultPlan::seeded(1).with_link_fault(
            NodeId::new(0),
            Dir::West,
            0,
            10,
            LinkFaultKind::Down,
        );
        assert!(matches!(
            FaultState::compile(plan, |_, _| None),
            Err(FaultPlanError::BadLink { .. })
        ));
    }
}
