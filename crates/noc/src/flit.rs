//! Flits: the atomic flow-control units that traverse the network.
//!
//! A [`Flit`] is a small, non-generic `Copy` record (~56 bytes): payloads
//! live in the network's [`crate::pool::PayloadPool`] and head flits carry
//! only a generational [`crate::pool::PayloadRef`], while the per-flit
//! flags (`kind`/`class`/`vnet`/`vc`/`corrupted`/`protected`) are packed
//! into one `u32` meta word and `src`/`dst` are `u16` node indices
//! (bounded by [`crate::ConfigError::MeshTooLarge`]). Moving a flit
//! through a VC buffer therefore copies two cache lines worst-case,
//! independent of the payload type.

use crate::packet::PacketId;
use crate::pool::PayloadRef;
use crate::topology::NodeId;
use std::fmt;

/// Position of a flit within its packet, for wormhole switching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing info and payload.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; departure frees the packet's virtual channels.
    Tail,
    /// A single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit opens a packet (carries the route/payload).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes a packet (frees the VC on departure).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    fn bits(self) -> u32 {
        match self {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        }
    }

    fn from_bits(bits: u32) -> FlitKind {
        match bits & 0b11 {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            _ => FlitKind::HeadTail,
        }
    }
}

/// The traffic class of a flit, used by the priority arbiters and the
/// statistics machinery.
///
/// `Communication` is baseline CMP traffic (cache/memory messages).
/// `SnackInstruction` and `SnackData` are the two SnackNoC token types
/// (§III-A of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Baseline CMP communication traffic — always wins priority arbitration.
    Communication,
    /// A SnackNoC instruction token en route from the CPM to an RCU.
    SnackInstruction,
    /// A SnackNoC transient data token circulating on the static ring.
    SnackData,
}

impl TrafficClass {
    /// Whether this class belongs to the SnackNoC computation layer (loses
    /// priority arbitration to communication traffic).
    pub fn is_snack(self) -> bool {
        !matches!(self, TrafficClass::Communication)
    }

    /// Stable small-integer encoding for structured trace events
    /// (0 = communication, 1 = snack instruction, 2 = snack data).
    pub fn code(self) -> u8 {
        match self {
            TrafficClass::Communication => 0,
            TrafficClass::SnackInstruction => 1,
            TrafficClass::SnackData => 2,
        }
    }

    fn from_bits(bits: u32) -> TrafficClass {
        match bits & 0b11 {
            0 => TrafficClass::Communication,
            1 => TrafficClass::SnackInstruction,
            _ => TrafficClass::SnackData,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Communication => "comm",
            TrafficClass::SnackInstruction => "snack-instr",
            TrafficClass::SnackData => "snack-data",
        };
        f.write_str(s)
    }
}

// Meta-word layout. Everything mutable in flight (vc, corrupted) shares
// the word with the immutable identity bits; setters mask-and-or.
const KIND_SHIFT: u32 = 0;
const CLASS_SHIFT: u32 = 2;
const CORRUPTED_BIT: u32 = 1 << 4;
const PROTECTED_BIT: u32 = 1 << 5;
const VNET_SHIFT: u32 = 8;
const VC_SHIFT: u32 = 16;

/// A flit in flight — a flat `Copy` record; see the module docs for the
/// layout rationale.
#[derive(Clone, Copy, Debug)]
pub struct Flit {
    /// Unique flit id (monotone per network).
    pub id: u64,
    /// Id of the packet this flit belongs to.
    pub packet_id: PacketId,
    /// Cycle at which the packet was queued at the source NI.
    pub queued_at: u64,
    /// Cycle the flit was written into the current router's input buffer;
    /// gates switch allocation to model pipeline depth.
    pub(crate) buffered_at: u64,
    /// Pool handle for the packet payload; `NONE` on body/tail flits.
    pub(crate) payload: PayloadRef,
    /// Packed kind/class/corrupted/protected/vnet/vc flags.
    meta: u32,
    /// Router hops taken so far (saturating; see `Router::hops_saturations`).
    pub(crate) hops: u32,
    /// Source node index.
    src: u16,
    /// Destination node index.
    dst: u16,
}

impl Flit {
    /// Builds a fresh flit at the injection boundary.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u64,
        packet_id: PacketId,
        kind: FlitKind,
        class: TrafficClass,
        vnet: u8,
        src: NodeId,
        dst: NodeId,
        queued_at: u64,
        payload: PayloadRef,
        protected: bool,
    ) -> Flit {
        debug_assert!(src.index() <= u16::MAX as usize && dst.index() <= u16::MAX as usize);
        let meta = (kind.bits() << KIND_SHIFT)
            | (u32::from(class.code()) << CLASS_SHIFT)
            | (u32::from(vnet) << VNET_SHIFT)
            | if protected { PROTECTED_BIT } else { 0 };
        Flit {
            id,
            packet_id,
            queued_at,
            buffered_at: 0,
            payload,
            meta,
            hops: 0,
            src: src.index() as u16,
            dst: dst.index() as u16,
        }
    }

    /// Head/body/tail position.
    pub fn kind(&self) -> FlitKind {
        FlitKind::from_bits(self.meta >> KIND_SHIFT)
    }

    /// Traffic class (communication vs. snack instruction/data).
    pub fn class(&self) -> TrafficClass {
        TrafficClass::from_bits(self.meta >> CLASS_SHIFT)
    }

    /// Virtual network index.
    pub fn vnet(&self) -> u8 {
        (self.meta >> VNET_SHIFT) as u8
    }

    /// Input virtual channel (within the port) this flit occupies/targets.
    pub(crate) fn vc(&self) -> u8 {
        (self.meta >> VC_SHIFT) as u8
    }

    pub(crate) fn set_vc(&mut self, vc: u8) {
        self.meta = (self.meta & !(0xFF << VC_SHIFT)) | (u32::from(vc) << VC_SHIFT);
    }

    /// Whether a `Corrupt` fault hit this packet's head flit; surfaces as
    /// [`crate::Packet::corrupted`] on delivery.
    pub fn corrupted(&self) -> bool {
        self.meta & CORRUPTED_BIT != 0
    }

    pub(crate) fn mark_corrupted(&mut self) {
        self.meta |= CORRUPTED_BIT;
    }

    /// Mirror of [`crate::PacketSpec::protected`]: exempt from random
    /// faults when the plan respects protection.
    pub fn protected(&self) -> bool {
        self.meta & PROTECTED_BIT != 0
    }

    /// Source node.
    pub fn src(&self) -> NodeId {
        NodeId::new(self.src as usize)
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        NodeId::new(self.dst as usize)
    }

    /// Router hops taken so far.
    pub fn hops(&self) -> u32 {
        self.hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn class_predicates() {
        assert!(!TrafficClass::Communication.is_snack());
        assert!(TrafficClass::SnackInstruction.is_snack());
        assert!(TrafficClass::SnackData.is_snack());
        assert_eq!(TrafficClass::Communication.to_string(), "comm");
    }

    #[test]
    fn meta_word_round_trips_every_field() {
        let kinds = [FlitKind::Head, FlitKind::Body, FlitKind::Tail, FlitKind::HeadTail];
        let classes =
            [TrafficClass::Communication, TrafficClass::SnackInstruction, TrafficClass::SnackData];
        for kind in kinds {
            for class in classes {
                for vnet in [0u8, 2, 255] {
                    for protected in [false, true] {
                        let mut f = Flit::new(
                            1,
                            2,
                            kind,
                            class,
                            vnet,
                            NodeId::new(3),
                            NodeId::new(65_535),
                            9,
                            PayloadRef::NONE,
                            protected,
                        );
                        assert_eq!(f.kind(), kind);
                        assert_eq!(f.class(), class);
                        assert_eq!(f.vnet(), vnet);
                        assert_eq!(f.protected(), protected);
                        assert_eq!(f.src(), NodeId::new(3));
                        assert_eq!(f.dst(), NodeId::new(65_535));
                        assert!(!f.corrupted());
                        assert_eq!(f.vc(), 0);
                        f.set_vc(63);
                        f.mark_corrupted();
                        assert_eq!(f.vc(), 63);
                        assert!(f.corrupted());
                        assert_eq!((f.kind(), f.class(), f.vnet()), (kind, class, vnet));
                        f.set_vc(1);
                        assert_eq!(f.vc(), 1, "vc setter clears old bits");
                        assert!(f.corrupted(), "vc setter leaves flags alone");
                    }
                }
            }
        }
    }

    #[test]
    fn flit_is_small() {
        assert!(
            std::mem::size_of::<Flit>() <= 64,
            "a flit must stay within one cache line of plain data; got {}",
            std::mem::size_of::<Flit>()
        );
    }
}
