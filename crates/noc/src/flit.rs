//! Flits: the atomic flow-control units that traverse the network.

use crate::packet::PacketId;
use crate::topology::NodeId;
use std::fmt;

/// Position of a flit within its packet, for wormhole switching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing info and payload.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; departure frees the packet's virtual channels.
    Tail,
    /// A single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit opens a packet (carries the route/payload).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes a packet (frees the VC on departure).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// The traffic class of a flit, used by the priority arbiters and the
/// statistics machinery.
///
/// `Communication` is baseline CMP traffic (cache/memory messages).
/// `SnackInstruction` and `SnackData` are the two SnackNoC token types
/// (§III-A of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Baseline CMP communication traffic — always wins priority arbitration.
    Communication,
    /// A SnackNoC instruction token en route from the CPM to an RCU.
    SnackInstruction,
    /// A SnackNoC transient data token circulating on the static ring.
    SnackData,
}

impl TrafficClass {
    /// Whether this class belongs to the SnackNoC computation layer (loses
    /// priority arbitration to communication traffic).
    pub fn is_snack(self) -> bool {
        !matches!(self, TrafficClass::Communication)
    }

    /// Stable small-integer encoding for structured trace events
    /// (0 = communication, 1 = snack instruction, 2 = snack data).
    pub fn code(self) -> u8 {
        match self {
            TrafficClass::Communication => 0,
            TrafficClass::SnackInstruction => 1,
            TrafficClass::SnackData => 2,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Communication => "comm",
            TrafficClass::SnackInstruction => "snack-instr",
            TrafficClass::SnackData => "snack-data",
        };
        f.write_str(s)
    }
}

/// A flit in flight. `P` is the packet payload type carried by head flits.
#[derive(Clone, Debug)]
pub struct Flit<P> {
    /// Unique flit id (monotone per network).
    pub id: u64,
    /// Id of the packet this flit belongs to.
    pub packet_id: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Traffic class (communication vs. snack instruction/data).
    pub class: TrafficClass,
    /// Virtual network index.
    pub vnet: u8,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle at which the packet was queued at the source NI.
    pub queued_at: u64,
    /// Payload; present only on head flits.
    pub payload: Option<P>,
    /// Router hops taken so far.
    pub hops: u32,
    /// Input virtual channel (within the port) this flit occupies/targets.
    pub(crate) vc: u8,
    /// Cycle the flit was written into the current router's input buffer;
    /// gates switch allocation to model pipeline depth.
    pub(crate) buffered_at: u64,
    /// Set by the fault layer when a `Corrupt` fault hit this packet's
    /// head flit; surfaces as [`crate::Packet::corrupted`] on delivery.
    pub(crate) corrupted: bool,
    /// Mirror of [`crate::PacketSpec::protected`]: exempt from random
    /// faults when the plan respects protection.
    pub(crate) protected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn class_predicates() {
        assert!(!TrafficClass::Communication.is_snack());
        assert!(TrafficClass::SnackInstruction.is_snack());
        assert!(TrafficClass::SnackData.is_snack());
        assert_eq!(TrafficClass::Communication.to_string(), "comm");
    }
}
