//! # snacknoc-noc
//!
//! A cycle-level, virtual-channel, wormhole-routed 2D-mesh Network-on-Chip
//! simulator. This crate is the communication substrate of the
//! SnackNoC (HPCA 2020) reproduction: it models the router microarchitecture
//! whose *slack* (idle crossbar cycles, idle links, empty input buffers)
//! SnackNoC repurposes for computation.
//!
//! ## Model
//!
//! * **Topology**: `cols × rows` 2D mesh, one router per node, one network
//!   interface (NI) per router on the `Local` port.
//! * **Router**: canonical input-queued VC router — per-port input units with
//!   `vnets × vcs_per_vnet` virtual channels, dimension-order (XY) route
//!   computation, separable round-robin VC allocation and switch allocation,
//!   a crossbar, and credit-based flow control. Pipeline depth is
//!   configurable (2/3/4 stages) to model the BiNoCHS / AxNoC / DAPPER
//!   baselines of the paper (Table I).
//! * **Arbitration**: an optional *priority arbitration* mode arbitrates
//!   communication-class flits strictly before SnackNoC instruction/data
//!   flits at both allocators (paper §III-D3).
//! * **Statistics**: per-router crossbar-usage and per-link usage time
//!   series over sampling windows, network-wide buffer-occupancy CDFs, and
//!   per-class packet latency accounting — everything Figures 2, 3 and 11
//!   of the paper are drawn from.
//!
//! The network is *passive*: devices (traffic generators, the SnackNoC CPM
//! and RCUs) live outside, injecting packets with [`Network::inject`] and
//! draining delivered packets with [`Network::drain_ejected`] around each
//! [`Network::step`] call. Payloads are generic, so higher layers can carry
//! arbitrary token types without this crate knowing about them.
//!
//! ## Example
//!
//! ```
//! use snacknoc_noc::{Network, NocConfig, PacketSpec, TrafficClass};
//!
//! # fn main() -> Result<(), snacknoc_noc::ConfigError> {
//! let mut net: Network<u32> = Network::new(NocConfig::binochs())?;
//! let src = net.mesh().node_at(0, 0);
//! let dst = net.mesh().node_at(3, 3);
//! net.inject(PacketSpec::new(src, dst, 0, TrafficClass::Communication, 64, 42));
//! for _ in 0..100 {
//!     net.step();
//! }
//! let delivered = net.drain_ejected(dst);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod fault;
pub mod flit;
pub mod network;
pub mod packet;
pub mod pool;
pub mod router;
pub mod routing;
pub mod stats;
pub mod timewheel;
pub mod topology;

pub use config::{ConfigError, NocConfig, NocPreset};
pub use fault::{
    DeadRcu, FaultCounters, FaultPlan, FaultPlanError, FaultTargets, LinkFault, LinkFaultKind,
    StallWindow,
};
pub use flit::{Flit, FlitKind, TrafficClass};
pub use network::{Network, ShardError, StallReport};
pub use packet::{Packet, PacketId, PacketSpec};
pub use pool::{PayloadPool, PayloadRef, PoolExhausted};
pub use routing::{Dir, RoutingAlgorithm};
pub use stats::{LatencyHistogram, NetStats, OccupancyCdf, ProtocolErrors, SeriesSample};
pub use timewheel::TimeWheel;
pub use topology::{Mesh, NodeId};
