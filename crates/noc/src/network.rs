//! The whole-network simulator: routers, links, network interfaces,
//! packet segmentation/reassembly and the per-cycle evaluation loop.

use crate::config::{ConfigError, NocConfig};
use crate::fault::{FaultAction, FaultCounters, FaultPlan, FaultPlanError, FaultState};
use crate::flit::{Flit, FlitKind};
use crate::packet::{Packet, PacketId, PacketSpec};
use crate::pool::{PayloadPool, PayloadRef};
use crate::router::{Departure, Router};
use crate::routing::Dir;
use crate::stats::NetStats;
use crate::timewheel::TimeWheel;
use crate::topology::{Mesh, NodeId};
use snacknoc_trace::{EventKind, TracerHandle};
use std::collections::{HashMap, VecDeque};
use std::fmt;

mod sharded;
use sharded::Sharding;

/// A one-cycle-latency directed link between two routers.
#[derive(Clone, Debug)]
struct Link {
    to_router: usize,
    in_port: Dir,
    slot: Option<Flit>,
}

/// A credit / VC-free signal in flight back to an upstream router.
#[derive(Clone, Copy, Debug)]
struct CreditMsg {
    router: usize,
    port: Dir,
    vc: u8,
    frees_vc: bool,
}

/// Per-node network interface: per-vnet injection FIFOs.
#[derive(Clone, Debug)]
struct NetIf {
    /// Per-vnet queues of pre-segmented flits.
    queues: Vec<VecDeque<Flit>>,
    /// Per-vnet: the Local input VC currently receiving a packet's flits.
    streaming: Vec<Option<u8>>,
    /// Round-robin pointer over vnets.
    rr: usize,
}

/// Reassembly state for one in-flight packet at its destination NI.
#[derive(Debug)]
struct Partial {
    head: Option<Flit>,
    flits: u64,
    corrupted: bool,
    /// Destination node index — lets sharded stepping keep each partial
    /// in the lane of the shard that owns its ejecting router.
    dst: usize,
}

/// A structured snapshot of why a network failed to drain: which routers
/// still hold flits, how many packets are starved for output VCs, and how
/// stale the oldest in-flight flit is. Returned by
/// [`Network::run_until_drained`] and available any time through
/// [`Network::stall_report`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StallReport {
    /// Cycle at which the report was taken.
    pub cycle: u64,
    /// Packets injected but neither delivered nor lost.
    pub pending_packets: u64,
    /// Packets destroyed by fault injection (never going to arrive).
    pub lost_packets: u64,
    /// Flits resident in router input buffers.
    pub buffered_flits: u64,
    /// Routers still holding at least one buffered flit.
    pub blocked_routers: Vec<usize>,
    /// Input VCs holding a routed packet with no output VC granted.
    pub starved_vcs: usize,
    /// Age (cycles since source queueing) of the oldest buffered or
    /// NI-queued flit; 0 when nothing is in flight.
    pub oldest_packet_age: u64,
    /// Flits still waiting in source NI injection queues.
    pub ni_backlog: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stall at cycle {}: {} pending packets ({} lost to faults), \
             {} buffered flits across {} blocked routers, {} starved VCs, \
             {} flits backlogged at NIs, oldest in-flight flit {} cycles old",
            self.cycle,
            self.pending_packets,
            self.lost_packets,
            self.buffered_flits,
            self.blocked_routers.len(),
            self.starved_vcs,
            self.ni_backlog,
            self.oldest_packet_age,
        )
    }
}

/// A cycle-level mesh NoC. `P` is the packet payload type.
///
/// See the [crate-level documentation](crate) for the model and an example.
#[derive(Debug)]
pub struct Network<P> {
    cfg: NocConfig,
    mesh: Mesh,
    routers: Vec<Router>,
    nis: Vec<NetIf>,
    links: Vec<Link>,
    /// Slab storage for in-flight packet payloads; head flits carry only
    /// a [`PayloadRef`] (DESIGN.md §16). Inserts happen at injection,
    /// takes/releases at ejection and fault drops — all serial contexts,
    /// so slot assignment is identical across every stepping mode.
    pool: PayloadPool<P>,
    /// `link_of[router][dir]` = outgoing link id.
    link_of: Vec<[Option<usize>; 4]>,
    pending_credits: Vec<CreditMsg>,
    reassembly: HashMap<PacketId, Partial>,
    ejected: Vec<Vec<Packet<P>>>,
    /// Dedup flags for the router worklist: `work[r]` ⟺ `r ∈ active`.
    work: Vec<bool>,
    /// The router worklist. Between cycles it holds exactly the routers
    /// that can make progress next cycle (buffered flits survived Phase 4,
    /// plus wakeups from credit return, link delivery and NI injection).
    active: Vec<usize>,
    /// Scratch the worklist is drained through each Phase 4 (kept around
    /// so steady-state stepping never allocates).
    active_scratch: Vec<usize>,
    /// Links whose slot is occupied — exactly one entry per filled slot,
    /// pushed when Phase 4 fills the slot, drained by the next Phase 2.
    occupied_links: Vec<usize>,
    links_scratch: Vec<usize>,
    /// NI worklist: nodes with a nonzero injection backlog.
    ni_active: Vec<usize>,
    ni_scratch: Vec<usize>,
    /// Dedup flags for `ni_active`.
    ni_flag: Vec<bool>,
    /// Per-node incremental NI backlog (flits queued, all vnets).
    ni_backlogs: Vec<u64>,
    /// Network-wide incremental NI backlog.
    ni_backlog_total: u64,
    /// Phase-1 scratch: last cycle's credits are processed out of this
    /// buffer while Phases 2/4 push next cycle's into `pending_credits`
    /// (the two vectors ping-pong, so neither ever reallocates in steady
    /// state).
    credits_scratch: Vec<CreditMsg>,
    /// Phase-4 scratch for router departures.
    departures_scratch: Vec<Departure>,
    /// Dense (reference) stepping: every phase walks every component, as
    /// the pre-activity-driven simulator did. Bit-identical to the
    /// active-set schedule — `tests/determinism.rs` proves it — and kept
    /// as the debug baseline the `snack-perf` speedups are measured
    /// against.
    dense: bool,
    /// Event-driven stepping: when every worklist is empty,
    /// [`Network::step_until`] jumps the clock straight to the next
    /// scheduled wake event (or the target) instead of iterating dead
    /// cycles. Bit-identical to both other modes; see DESIGN.md §12.
    event: bool,
    /// Calendar queue of future wake cycles. Worklist-driven components
    /// wake "now" by construction; the wheel holds only timed events —
    /// currently the fault-plan window edges, scheduled once at
    /// [`Network::set_fault_plan`].
    wheel: TimeWheel<NetWake>,
    cycle: u64,
    next_packet_id: PacketId,
    next_flit_id: u64,
    buffered_total: u64,
    buffer_capacity: u64,
    injected_packets: u64,
    delivered_packets: u64,
    lost_packets: u64,
    /// Fault-injection state; `None` (the default) keeps every hot path
    /// byte-identical to a fault-free build.
    fault: Option<FaultState>,
    stats: NetStats,
    /// Structured event tracer; [`TracerHandle::Nop`] (the default) keeps
    /// every hook a single discriminant branch with no event construction.
    tracer: TracerHandle,
    /// Sharded stepping state (DESIGN.md §13): the mesh split into
    /// horizontal row bands stepped by one worker thread each, with
    /// per-cycle barrier sync and boundary mailboxes. `None` (the
    /// default) keeps the serial paths untouched.
    sharding: Option<Sharding>,
}

/// A timed wake event in the network's calendar queue.
///
/// Today the only timed events a *quiescent* network can experience are
/// fault-plan window edges; the enum leaves room for future sources
/// without changing the wheel's type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetWake {
    /// A fault-plan down/drop/corrupt window starts or ends.
    FaultEdge,
}

/// Error returned by [`Network::inject`] for malformed packet specs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum InjectError {
    /// The vnet index is out of range.
    BadVnet(u8),
    /// Source or destination node is out of range.
    BadNode,
    /// The payload pool hit its configured slot cap
    /// ([`Network::limit_payload_pool`]); the packet was not queued.
    PayloadPoolExhausted {
        /// The pool cap that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for InjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectError::BadVnet(v) => write!(f, "vnet {v} out of range"),
            InjectError::BadNode => write!(f, "source or destination node out of range"),
            InjectError::PayloadPoolExhausted { capacity } => {
                write!(f, "payload pool exhausted at {capacity} slots")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// Error returned by [`Network::set_sharding`] for impossible tilings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ShardError {
    /// More tiles than mesh rows: a row band needs at least one row.
    TooManyShards {
        /// Requested shard count.
        shards: usize,
        /// Mesh rows available to tile.
        rows: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::TooManyShards { shards, rows } => {
                write!(f, "{shards} shards requested but the mesh has only {rows} rows")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl<P> Network<P> {
    /// Builds a network from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: NocConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mesh = Mesh::new(cfg.cols, cfg.rows);
        let n = mesh.node_count();
        let routers: Vec<Router> =
            mesh.nodes().map(|node| Router::new(&cfg, &mesh, node)).collect();
        let mut links = Vec::new();
        let mut link_of = vec![[None; 4]; n];
        for node in mesh.nodes() {
            for d in Dir::ROUTER_DIRS {
                if let Some(nb) = mesh.neighbor(node, d) {
                    link_of[node.index()][d.index()] = Some(links.len());
                    links.push(Link { to_router: nb.index(), in_port: d.opposite(), slot: None });
                }
            }
        }
        let nis = (0..n)
            .map(|_| NetIf {
                queues: (0..cfg.vnets).map(|_| VecDeque::new()).collect(),
                streaming: vec![None; cfg.vnets as usize],
                rr: 0,
            })
            .collect();
        let buffer_capacity = (n * Dir::COUNT * cfg.vcs_per_port()) as u64
            * u64::from(cfg.buffers_per_vc);
        let stats = NetStats::new(n, links.len(), cfg.sample_window);
        Ok(Network {
            cfg,
            mesh,
            routers,
            nis,
            links,
            pool: PayloadPool::new(),
            link_of,
            pending_credits: Vec::new(),
            reassembly: HashMap::new(),
            ejected: (0..n).map(|_| Vec::new()).collect(),
            work: vec![false; n],
            active: Vec::with_capacity(n),
            active_scratch: Vec::with_capacity(n),
            occupied_links: Vec::with_capacity(stats.link_count()),
            links_scratch: Vec::with_capacity(stats.link_count()),
            ni_active: Vec::with_capacity(n),
            ni_scratch: Vec::with_capacity(n),
            ni_flag: vec![false; n],
            ni_backlogs: vec![0; n],
            ni_backlog_total: 0,
            credits_scratch: Vec::new(),
            departures_scratch: Vec::new(),
            dense: false,
            event: false,
            wheel: TimeWheel::new(),
            cycle: 0,
            next_packet_id: 0,
            next_flit_id: 0,
            buffered_total: 0,
            buffer_capacity,
            injected_packets: 0,
            delivered_packets: 0,
            lost_packets: 0,
            fault: None,
            stats,
            tracer: TracerHandle::Nop,
            sharding: None,
        })
    }

    /// Installs (or clears) a fault-injection plan.
    ///
    /// A disabled plan ([`FaultPlan::none`]) removes all fault state, so
    /// the per-cycle cost returns to exactly zero. Scheduled link faults
    /// are resolved against this network's link table up front.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] for invalid rates/windows or link
    /// faults that reference links absent from the mesh.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        if !plan.enabled() {
            plan.validate()?;
            self.fault = None;
            self.wheel.clear();
            return Ok(());
        }
        for d in &plan.dead_rcus {
            if d.node.index() >= self.mesh.node_count() {
                return Err(FaultPlanError::BadNode { node: d.node });
            }
        }
        let link_of = &self.link_of;
        let state =
            FaultState::compile(plan, |node, dir| link_of[node.index()][dir.index()])?;
        // Every window edge becomes a wake event: an event-mode jump stops
        // at each edge instead of silently crossing a window that opens
        // and closes inside the jumped interval.
        self.wheel.clear();
        for &edge in state.window_edges() {
            if edge > self.cycle {
                self.wheel.schedule(edge, NetWake::FaultEdge);
            }
        }
        self.fault = Some(state);
        // A fresh plan starts with an empty mid-packet drop memo; stale
        // per-lane memos from a previous plan must not outlive it.
        if let Some(sh) = self.sharding.as_mut() {
            sh.clear_fault_memos();
        }
        Ok(())
    }

    /// The installed fault plan, if any faults are enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// What the fault layer did so far (all zeros when disabled).
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// Packets destroyed by fault injection or protocol-error discard;
    /// they will never be delivered and are excluded from
    /// [`Network::pending_packets`].
    pub fn lost_packets(&self) -> u64 {
        self.lost_packets
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Gathered statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Flushes the trailing partial sampling window (see
    /// [`NetStats::finalize`]) and returns the statistics. Runners call
    /// this once the workload completes so runs shorter than one sampling
    /// window still report utilization samples. Safe to call repeatedly
    /// and safe to keep stepping the network afterwards.
    pub fn finalize_stats(&mut self) -> &NetStats {
        let cycle = self.cycle;
        self.stats.finalize(cycle);
        &self.stats
    }

    /// Installs a tracer; pass [`TracerHandle::Nop`] to disable tracing.
    ///
    /// With the default `Nop` handle the simulation is bit-identical to a
    /// build without tracing hooks: events are never constructed and no
    /// heap traffic occurs. With a [`snacknoc_trace::RingTracer`] the
    /// simulated behavior is unchanged — only observations are recorded.
    pub fn set_tracer(&mut self, tracer: TracerHandle) {
        self.tracer = tracer;
    }

    /// The installed tracer handle.
    pub fn tracer(&self) -> &TracerHandle {
        &self.tracer
    }

    /// Mutable access for instrumentation layered above the network
    /// (the SnackNoC platform records RCU/CPM events through this).
    pub fn tracer_mut(&mut self) -> &mut TracerHandle {
        &mut self.tracer
    }

    /// Takes the tracer out (leaving `Nop`), e.g. to export a trace.
    pub fn take_tracer(&mut self) -> TracerHandle {
        std::mem::take(&mut self.tracer)
    }

    /// Number of packets with reassembly in flight at destination NIs
    /// (a head or body flit ejected, tail not yet seen).
    ///
    /// After a network has fully drained this must be zero; a nonzero
    /// value after [`Network::run_until_drained`] returns `Ok` would
    /// indicate a reassembly-map leak (an entry whose tail never ejects),
    /// which would otherwise grow silently.
    pub fn stuck_packets(&self) -> usize {
        self.reassembly.len()
            + self.sharding.as_ref().map_or(0, Sharding::stuck_packets)
    }

    /// Queues a packet for injection at its source NI.
    ///
    /// The packet is segmented into flits immediately; flits enter the
    /// network as the NI wins buffer space, at most
    /// [`NocConfig::ni_flits_per_cycle`] per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`InjectError`] if the vnet or either node is out of range.
    pub fn inject(&mut self, spec: PacketSpec<P>) -> Result<PacketId, InjectError> {
        if spec.vnet >= self.cfg.vnets {
            return Err(InjectError::BadVnet(spec.vnet));
        }
        let n = self.mesh.node_count();
        if spec.src.index() >= n || spec.dst.index() >= n {
            return Err(InjectError::BadNode);
        }
        // Pool the payload before touching any other state: a typed
        // exhaustion error must leave the network exactly as it was.
        let payload = match self.pool.insert(spec.payload) {
            Ok(r) => r,
            Err(e) => return Err(InjectError::PayloadPoolExhausted { capacity: e.capacity }),
        };
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        self.injected_packets += 1;
        let nf = self.cfg.flits_for(spec.size_bytes);
        self.tracer.record_with(self.cycle, || EventKind::PacketInject {
            packet: id,
            src: spec.src.index() as u32,
            dst: spec.dst.index() as u32,
            vnet: spec.vnet,
            class: spec.class.code(),
            flits: nf as u32,
        });
        let src = spec.src.index();
        if nf > 0 {
            self.ni_backlogs[src] += nf as u64;
            self.ni_backlog_total += nf as u64;
            if !self.ni_flag[src] {
                self.ni_flag[src] = true;
                // Under sharded stepping the NI worklist lives in the
                // owning shard's lane; the wakeup edge is the same.
                match self.sharding.as_mut() {
                    Some(sh) => sh.push_ni_active(src),
                    None => self.ni_active.push(src),
                }
            }
        }
        let queue = &mut self.nis[src].queues[spec.vnet as usize];
        for i in 0..nf {
            let kind = match (i, nf) {
                (0, 1) => FlitKind::HeadTail,
                (0, _) => FlitKind::Head,
                (i, nf) if i == nf - 1 => FlitKind::Tail,
                _ => FlitKind::Body,
            };
            queue.push_back(Flit::new(
                self.next_flit_id,
                id,
                kind,
                spec.class,
                spec.vnet,
                spec.src,
                spec.dst,
                self.cycle,
                if kind.is_head() { payload } else { PayloadRef::NONE },
                spec.protected,
            ));
            self.next_flit_id += 1;
        }
        Ok(id)
    }

    /// Takes all packets delivered to `node` since the last drain.
    pub fn drain_ejected(&mut self, node: NodeId) -> Vec<Packet<P>> {
        std::mem::take(&mut self.ejected[node.index()])
    }

    /// Moves all packets delivered to `node` into `out`, preserving the
    /// internal buffer's capacity — the allocation-free counterpart of
    /// [`Network::drain_ejected`] for steady-state delivery loops.
    pub fn drain_ejected_into(&mut self, node: NodeId, out: &mut Vec<Packet<P>>) {
        out.append(&mut self.ejected[node.index()]);
    }

    /// Whether any node currently has undrained delivered packets.
    pub fn has_ejected(&self) -> bool {
        self.ejected.iter().any(|q| !q.is_empty())
    }

    /// Packets injected but not yet fully delivered, excluding packets
    /// known to be lost (dropped by faults or discarded on protocol
    /// errors) — those can never drain and are tracked by
    /// [`Network::lost_packets`] instead.
    pub fn pending_packets(&self) -> u64 {
        self.injected_packets - self.delivered_packets - self.lost_packets
    }

    /// Total packets injected so far.
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Total packets fully delivered so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Flits waiting in the injection queue of `node` (all vnets).
    /// O(1): maintained incrementally at inject/transfer time.
    pub fn ni_backlog(&self, node: NodeId) -> usize {
        debug_assert_eq!(
            self.ni_backlogs[node.index()],
            self.nis[node.index()].queues.iter().map(|q| q.len() as u64).sum::<u64>(),
            "incremental NI backlog counter out of sync"
        );
        self.ni_backlogs[node.index()] as usize
    }

    /// Network-wide NI injection backlog in flits, all nodes and vnets.
    /// O(1): maintained incrementally.
    pub fn total_ni_backlog(&self) -> u64 {
        debug_assert_eq!(
            self.ni_backlog_total,
            self.ni_backlogs.iter().sum::<u64>(),
            "incremental NI backlog total out of sync"
        );
        self.ni_backlog_total
    }

    /// Switches between the activity-driven scheduler (the default) and
    /// the dense reference loop that walks every router, link and NI each
    /// cycle. Both modes are bit-identical — dense stepping exists as the
    /// verification baseline (`tests/determinism.rs`,
    /// `tests/properties.rs`) and as the denominator for the `snack-perf`
    /// speedup report. Safe to flip between cycles: both modes keep the
    /// worklists consistent.
    pub fn set_dense_stepping(&mut self, dense: bool) {
        self.dense = dense;
        if dense {
            self.event = false;
            // Dense stepping walks the serial worklists; fold any sharded
            // state back into them first.
            sharded::unshard(self);
        }
    }

    /// Whether the dense reference loop is active.
    pub fn dense_stepping(&self) -> bool {
        self.dense
    }

    /// Enables or disables event-driven stepping (DESIGN.md §12): per-cycle
    /// stepping stays the active-set schedule, but whenever the network is
    /// provably quiescent, [`Network::step_until`] and [`Network::run`]
    /// jump the clock directly to the next wake event instead of iterating
    /// dead cycles. Bit-identical to the active and dense modes; enabling
    /// it turns dense stepping off.
    pub fn set_event_stepping(&mut self, on: bool) {
        self.event = on;
        if on {
            self.dense = false;
        }
    }

    /// Whether event-driven stepping is enabled.
    pub fn event_stepping(&self) -> bool {
        self.event
    }

    /// Whether a [`Network::step`] right now would be a provable no-op
    /// apart from stats bookkeeping: no credits in flight (Phase 1), no
    /// occupied links (Phase 2), no NI injection backlog (Phase 3) and no
    /// router with buffered flits (Phase 4). While this holds, nothing in
    /// the network can change until either an external injection or a
    /// scheduled wake event.
    pub fn is_quiescent(&self) -> bool {
        self.pending_credits.is_empty()
            && self.occupied_links.is_empty()
            && self.ni_active.is_empty()
            && self.active.is_empty()
            && self.sharding.as_ref().is_none_or(Sharding::is_quiescent)
    }

    /// The earliest scheduled wake cycle strictly after the current cycle
    /// (fault-plan window edges today), if any. Only meaningful while the
    /// network [is quiescent](Network::is_quiescent) — an active network
    /// wakes every cycle by definition.
    pub fn next_wake(&self) -> Option<u64> {
        self.wheel.next_after(self.cycle)
    }

    /// Jumps the clock directly to `cycle`, accounting for the skipped
    /// cycles as dead: bulk zero-occupancy samples, with sampling-window
    /// boundaries inside the jump split into their own series samples
    /// (see `NetStats::advance_idle`). The caller asserts that nothing
    /// can happen in between — the network must be quiescent and no wake
    /// event may be scheduled inside the open interval.
    ///
    /// # Panics
    ///
    /// Panics if the network is not quiescent or `cycle` is not ahead of
    /// the current cycle.
    pub fn advance_idle_to(&mut self, cycle: u64) {
        assert!(self.is_quiescent(), "clock jump while the network has work");
        assert!(cycle > self.cycle, "clock jump must move forward");
        debug_assert_eq!(self.buffered_total, 0, "quiescent network holds no flits");
        debug_assert_eq!(self.ni_backlog_total, 0, "quiescent network has no NI backlog");
        let delta = cycle - self.cycle;
        self.stats.advance_idle(self.cycle, delta, self.routers.len() as u64);
        self.cycle = cycle;
        self.wheel.discard_due(cycle);
    }

    /// Advances the clock to exactly `target`, stepping active cycles one
    /// at a time and — in event mode — jumping over provably-dead
    /// stretches (landing on every scheduled wake event in between). In
    /// active/dense mode this is plain per-cycle stepping to `target`.
    pub fn step_until(&mut self, target: u64) {
        while self.cycle < target {
            if self.event && self.is_quiescent() {
                let to = self.next_wake().map_or(target, |w| w.min(target));
                if to > self.cycle {
                    self.advance_idle_to(to);
                    continue;
                }
            }
            if self.sharding.is_some() {
                // Amortize the thread-scope setup over the whole stretch.
                // In event mode the batch returns early once every shard
                // is provably quiescent, handing control back to the
                // clock-jump branch above.
                sharded::step_batch(self, target - self.cycle);
                continue;
            }
            self.step();
        }
    }

    /// Flits currently resident in router input buffers, network-wide.
    pub fn buffered_flits(&self) -> u64 {
        self.buffered_total
    }

    /// ALO-style congestion signal at `node`: `(useful_free, total)` output
    /// VCs that are unallocated and hold at least one credit
    /// (paper §III-C2).
    pub fn useful_free_output_vcs(&self, node: NodeId) -> (usize, usize) {
        self.routers[node.index()].useful_free_output_vcs()
    }

    /// Marks router `r` as having work next Phase 4 (idempotent).
    #[inline]
    fn mark_router(&mut self, r: usize) {
        if !self.work[r] {
            self.work[r] = true;
            self.active.push(r);
        }
    }

    /// Debug invariant: `occupied_links` lists exactly the filled slots.
    fn links_list_consistent(&self) -> bool {
        let filled = self.links.iter().filter(|l| l.slot.is_some()).count();
        filled == self.occupied_links.len()
            && self.occupied_links.iter().all(|&lid| self.links[lid].slot.is_some())
    }

    /// Advances the network by one cycle.
    ///
    /// The loop is **activity-driven**: each phase visits only the
    /// components that can make progress (worklists maintained by the
    /// previous phases), and **allocation-free in steady state** (every
    /// transient buffer is a reusable scratch). The dense reference loop
    /// ([`Network::set_dense_stepping`]) walks every component instead;
    /// the two are bit-identical because a skipped component is provably
    /// quiescent — see DESIGN.md §11 for the invariants and the wakeup
    /// edges.
    pub fn step(&mut self) {
        if self.sharding.is_some() {
            sharded::step_batch(self, 1);
            return;
        }
        self.cycle += 1;
        let cycle = self.cycle;

        // Phase 1: apply credit / VC-free signals sent last cycle. The
        // pending list ping-pongs with a scratch buffer: this cycle's
        // batch is processed out of `credits_scratch` while Phases 2/4
        // push next cycle's messages into the (empty, capacity-warm)
        // `pending_credits`.
        debug_assert!(self.credits_scratch.is_empty());
        std::mem::swap(&mut self.pending_credits, &mut self.credits_scratch);
        for i in 0..self.credits_scratch.len() {
            let msg = self.credits_scratch[i];
            let r = &mut self.routers[msg.router];
            r.return_credit(msg.port, msg.vc, self.cfg.buffers_per_vc);
            if msg.frees_vc {
                r.free_output_vc(msg.port, msg.vc);
            }
            // Wakeup edge: credit return can unblock a waiting flit.
            self.mark_router(msg.router);
        }
        self.credits_scratch.clear();

        // Phase 2: link traversal — deliver flits sent last cycle. Only
        // occupied links can deliver; ascending id order replays the
        // dense loop's iteration order exactly (fault decisions are
        // hash-derived per (link, packet), so they are order-independent
        // anyway).
        let cap = self.cfg.buffers_per_vc as usize;
        debug_assert!(self.links_list_consistent());
        if self.dense {
            for lid in 0..self.links.len() {
                if self.links[lid].slot.is_some() {
                    self.deliver_link(lid, cycle, cap);
                }
            }
            self.occupied_links.clear();
        } else {
            debug_assert!(self.links_scratch.is_empty());
            std::mem::swap(&mut self.occupied_links, &mut self.links_scratch);
            self.links_scratch.sort_unstable();
            for i in 0..self.links_scratch.len() {
                let lid = self.links_scratch[i];
                self.deliver_link(lid, cycle, cap);
            }
            self.links_scratch.clear();
        }

        // Phase 3: NI injection — only nodes with a queued flit can
        // inject. A node with an empty queue is a provable no-op in the
        // dense loop (no state, not even the vnet round-robin pointer,
        // changes), so skipping it is exact.
        if self.dense {
            self.ni_active.clear();
            for node in 0..self.nis.len() {
                let backlog = self.inject_from_ni(node, cycle);
                self.ni_flag[node] = backlog;
                if backlog {
                    self.ni_active.push(node);
                }
            }
        } else {
            debug_assert!(self.ni_scratch.is_empty());
            std::mem::swap(&mut self.ni_active, &mut self.ni_scratch);
            self.ni_scratch.sort_unstable();
            for i in 0..self.ni_scratch.len() {
                let node = self.ni_scratch[i];
                let backlog = self.inject_from_ni(node, cycle);
                self.ni_flag[node] = backlog;
                if backlog {
                    self.ni_active.push(node);
                }
            }
            self.ni_scratch.clear();
        }

        // Phase 4: router pipelines (RC, VA, SA/ST) + ejection, for the
        // worklist only. Both modes visit exactly the routers with
        // `work[r]` set, in ascending order, and leave `active` holding
        // the survivors (routers still buffering flits) in ascending
        // order for Phase 5. No same-phase wakeups exist: credits are
        // deferred to next Phase 1 and link fills to next Phase 2.
        let use_down = self.fault.as_ref().is_some_and(|f| f.has_down_windows());
        if self.dense {
            self.active.clear();
            for r in 0..self.routers.len() {
                if !self.work[r] {
                    continue;
                }
                let still = self.run_router(r, cycle, use_down);
                self.work[r] = still;
                if still {
                    self.active.push(r);
                }
            }
        } else {
            debug_assert!(self.active_scratch.is_empty());
            std::mem::swap(&mut self.active, &mut self.active_scratch);
            self.active_scratch.sort_unstable();
            for i in 0..self.active_scratch.len() {
                let r = self.active_scratch[i];
                debug_assert!(self.work[r], "worklist entry without its flag");
                let still = self.run_router(r, cycle, use_down);
                self.work[r] = still;
                if still {
                    self.active.push(r);
                }
            }
            self.active_scratch.clear();
        }

        // Phase 5: per-router input-buffer occupancy samples + window
        // roll. The paper's Fig. 3 measures buffer utilization per
        // router-cycle: localized contention shows up even when the
        // network as a whole is nearly empty. After Phase 4 the worklist
        // holds exactly the routers with buffered flits (ascending), so
        // the incremental path records the same nonzero samples in the
        // same order as the dense scan, then credits the zeros in one
        // batched call — identical `OccupancyCdf` updates.
        let per_router_capacity = self.buffer_capacity as f64 / self.routers.len() as f64;
        if self.dense {
            let mut zeros = 0u64;
            for r in &self.routers {
                let buffered = r.buffered_flits();
                if buffered == 0 {
                    zeros += 1;
                } else {
                    self.stats.occupancy.record(buffered as f64 / per_router_capacity);
                }
            }
            self.stats.occupancy.record_zeros(zeros);
        } else {
            let zeros = (self.routers.len() - self.active.len()) as u64;
            debug_assert_eq!(
                zeros,
                self.routers.iter().filter(|r| r.buffered_flits() == 0).count() as u64,
                "post-Phase-4 worklist must equal the set of occupied routers"
            );
            for i in 0..self.active.len() {
                let r = self.active[i];
                let buffered = self.routers[r].buffered_flits();
                debug_assert!(buffered > 0);
                self.stats.occupancy.record(buffered as f64 / per_router_capacity);
            }
            self.stats.occupancy.record_zeros(zeros);
        }
        self.stats.end_cycle(cycle);
    }

    /// Runs `cycles` steps (jumping dead stretches in event mode).
    pub fn run(&mut self, cycles: u64) {
        self.step_until(self.cycle + cycles);
    }

    /// Steps until every non-lost injected packet is delivered, up to
    /// `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns a [`StallReport`] describing the blocked state if packets
    /// remain undelivered when the cycle budget runs out.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Result<(), StallReport> {
        let deadline = self.cycle + max_cycles;
        while self.pending_packets() > 0 && self.cycle < deadline {
            self.step();
        }
        if self.pending_packets() == 0 {
            Ok(())
        } else {
            Err(self.stall_report())
        }
    }

    /// Snapshots why the network is (or would be) failing to drain:
    /// blocked routers, starved VCs and the age of the oldest in-flight
    /// flit. Cheap relative to simulation, but walks every buffer — call
    /// it on failure paths, not per cycle.
    pub fn stall_report(&self) -> StallReport {
        let mut blocked_routers = Vec::new();
        let mut starved_vcs = 0;
        let mut oldest: Option<u64> = None;
        for (i, r) in self.routers.iter().enumerate() {
            if r.buffered_flits() > 0 {
                blocked_routers.push(i);
            }
            starved_vcs += r.routed_waiting_vcs();
            if let Some(q) = r.oldest_buffered_queued_at() {
                oldest = Some(oldest.map_or(q, |o| o.min(q)));
            }
        }
        let ni_backlog = self.ni_backlog_total;
        debug_assert_eq!(
            ni_backlog,
            self.nis.iter().map(|ni| ni.queues.iter().map(std::collections::VecDeque::len).sum::<usize>() as u64).sum::<u64>(),
            "incremental NI backlog counter diverged from the queues"
        );
        for ni in &self.nis {
            for q in &ni.queues {
                if let Some(f) = q.front() {
                    oldest = Some(oldest.map_or(f.queued_at, |o| o.min(f.queued_at)));
                }
            }
        }
        StallReport {
            cycle: self.cycle,
            pending_packets: self.pending_packets(),
            lost_packets: self.lost_packets,
            buffered_flits: self.buffered_total,
            blocked_routers,
            starved_vcs,
            oldest_packet_age: oldest.map_or(0, |q| self.cycle.saturating_sub(q)),
            ni_backlog,
        }
    }

    /// Phase-2 link traversal for a single link, with the fault layer
    /// consulted per flit. Dropped flits synthesize their upstream credit
    /// so flow control stays live; corrupted head flits carry the mark to
    /// delivery. No-op if the link slot is empty, so calling it for every
    /// link (dense mode) or only occupied links (active mode) is identical.
    fn deliver_link(&mut self, lid: usize, cycle: u64, cap: usize) {
        let Some(mut flit) = self.links[lid].slot.take() else { return };
        let action = match self.fault.as_mut() {
            Some(f) => f.on_link_flit(lid, cycle, &flit),
            None => FaultAction::Deliver,
        };
        let to = self.links[lid].to_router;
        let in_port = self.links[lid].in_port;
        match action {
            FaultAction::Drop => {
                // The downstream buffer slot reserved for this flit is
                // never filled: return the credit (and the VC on a
                // tail) so the upstream router does not wedge.
                let upstream = self
                    .mesh
                    .neighbor(NodeId::new(to), in_port)
                    .expect("every link has an upstream router");
                self.pending_credits.push(CreditMsg {
                    router: upstream.index(),
                    port: in_port.opposite(),
                    vc: flit.vc(),
                    frees_vc: flit.kind().is_tail(),
                });
                if flit.kind().is_head() {
                    // The payload dies with its head flit.
                    self.pool.release(flit.payload);
                }
                if flit.kind().is_tail() {
                    self.lost_packets += 1;
                    // A partially-delivered wormhole (flits that crossed
                    // earlier links before the drop) may sit in the
                    // reassembly map; it can never complete, so retire
                    // it here rather than leak it.
                    if let Some(partial) = self.reassembly.remove(&flit.packet_id) {
                        if let Some(head) = partial.head {
                            self.pool.release(head.payload);
                        }
                    }
                }
            }
            FaultAction::DeliverCorrupted | FaultAction::Deliver => {
                if action == FaultAction::DeliverCorrupted {
                    flit.mark_corrupted();
                }
                self.routers[to].accept_flit(&self.mesh, &self.cfg, in_port, flit, cycle, cap);
                self.mark_router(to);
                self.buffered_total += 1;
            }
        }
    }

    /// Phase-3 NI injection for a single node: drains up to
    /// `ni_flits_per_cycle` flits into the local router, maintaining the
    /// incremental backlog counters and waking the router. Returns whether
    /// the node still has backlogged flits (i.e. should stay on the NI
    /// worklist). A node with empty queues is a pure no-op in the dense
    /// loop — no state (including the round-robin pointer) changes — so
    /// skipping it in active mode is exact.
    fn inject_from_ni(&mut self, node: usize, cycle: u64) -> bool {
        let vnets = self.cfg.vnets as usize;
        let k = self.cfg.vcs_per_vnet as usize;
        let cap = self.cfg.buffers_per_vc as usize;
        for _ in 0..self.cfg.ni_flits_per_cycle {
            let mut pushed = false;
            for step in 0..vnets {
                let v = (self.nis[node].rr + step) % vnets;
                let ni = &mut self.nis[node];
                let Some(front) = ni.queues[v].front() else { continue };
                let router = &self.routers[node];
                let vc = match ni.streaming[v] {
                    Some(vc) => {
                        debug_assert!(!front.kind().is_head());
                        if router.local_vc_accepts(vc as usize, false, cap) {
                            Some(vc)
                        } else {
                            None
                        }
                    }
                    None => {
                        debug_assert!(front.kind().is_head());
                        (v * k..(v + 1) * k)
                            .find(|&vc| router.local_vc_accepts(vc, true, cap))
                            .map(|vc| vc as u8)
                    }
                };
                let Some(vc) = vc else { continue };
                let ni = &mut self.nis[node];
                let mut flit = ni.queues[v].pop_front().expect("front checked above");
                flit.set_vc(vc);
                ni.streaming[v] = if flit.kind().is_tail() { None } else { Some(vc) };
                self.routers[node].accept_flit(&self.mesh, &self.cfg, Dir::Local, flit, cycle, cap);
                self.buffered_total += 1;
                self.ni_backlogs[node] -= 1;
                self.ni_backlog_total -= 1;
                self.stats.injected_flits += 1;
                self.mark_router(node);
                self.nis[node].rr = (v + 1) % vnets;
                pushed = true;
                break;
            }
            if !pushed {
                break;
            }
        }
        self.ni_backlogs[node] > 0
    }

    /// Phase-4 router pipeline for a single router: RC → VA → SA/ST,
    /// then departures are committed to links / ejection with credits
    /// returned upstream. Uses the per-network departure scratch buffer so
    /// steady-state cycles allocate nothing. Returns whether the router
    /// still buffers flits (i.e. must stay on the worklist).
    fn run_router(&mut self, r: usize, cycle: u64, use_down: bool) -> bool {
        let mut down = Router::NO_DOWN_PORTS;
        if use_down {
            if let Some(f) = &self.fault {
                for d in Dir::ROUTER_DIRS {
                    if let Some(lid) = self.link_of[r][d.index()] {
                        down[d.index()] = f.link_down(lid, cycle);
                    }
                }
            }
        }
        let mut departures = std::mem::take(&mut self.departures_scratch);
        debug_assert!(departures.is_empty());
        {
            // Route computation happened eagerly at head acceptance
            // (`Router::accept_flit`); the per-cycle pipeline starts at VA.
            let router = &mut self.routers[r];
            router.vc_allocate(&self.cfg, cycle, &mut self.tracer);
            router.switch_allocate_into(&self.cfg, cycle, &down, &mut departures);
        }
        if !departures.is_empty() {
            self.stats.record_router_cycle(r, true);
            self.stats.crossbar_transfers += departures.len() as u64;
        }
        for dep in departures.drain(..) {
            self.buffered_total -= 1;
            if dep.in_port != Dir::Local {
                let upstream = self
                    .mesh
                    .neighbor(NodeId::new(r), dep.in_port)
                    .expect("flit arrived from a connected port");
                self.pending_credits.push(CreditMsg {
                    router: upstream.index(),
                    port: dep.in_port.opposite(),
                    vc: dep.in_vc,
                    frees_vc: dep.was_tail,
                });
            }
            if dep.out_port == Dir::Local {
                self.eject(r, dep.flit, cycle);
            } else {
                let lid = self.link_of[r][dep.out_port.index()]
                    .expect("departure through a connected port");
                debug_assert!(self.links[lid].slot.is_none(), "link carries one flit per cycle");
                self.tracer.record_with(cycle, || EventKind::FlitHop {
                    router: r as u32,
                    out_port: dep.out_port.index() as u8,
                    flit: dep.flit.id,
                    packet: dep.flit.packet_id,
                });
                self.tracer.count_link(cycle, r as u32, dep.out_port.index() as u8);
                self.links[lid].slot = Some(dep.flit);
                self.occupied_links.push(lid);
                self.stats.record_link_cycle(lid, true);
            }
        }
        self.departures_scratch = departures;
        self.routers[r].buffered_flits() > 0
    }

    fn eject(&mut self, node: usize, flit: Flit, cycle: u64) {
        let pid = flit.packet_id;
        let is_tail = flit.kind().is_tail();
        let entry = self
            .reassembly
            .entry(pid)
            .or_insert(Partial { head: None, flits: 0, corrupted: false, dst: node });
        entry.flits += 1;
        entry.corrupted |= flit.corrupted();
        if flit.kind().is_head() {
            match &entry.head {
                Some(kept) => {
                    // Wormhole routing cannot legally deliver two heads
                    // for one packet id; count the protocol violation and
                    // keep the first head rather than abort. A true
                    // duplicate shares the kept head's ref (one pool
                    // insert per packet); free only a genuinely distinct
                    // orphaned slot.
                    self.stats.protocol_errors.duplicate_head += 1;
                    if kept.payload != flit.payload {
                        self.pool.release(flit.payload);
                    }
                }
                None => entry.head = Some(flit),
            }
        }
        if is_tail {
            // Wormhole routing ejects a packet's flits in order, so the
            // head is present by the time the tail arrives — unless a
            // protocol fault lost it, which is counted rather than fatal.
            let Some(partial) = self.reassembly.remove(&pid) else { return };
            let Some(head) = partial.head else {
                self.stats.protocol_errors.tail_without_head += 1;
                self.lost_packets += 1;
                return;
            };
            let Some(payload) = self.pool.take(head.payload) else {
                self.stats.protocol_errors.missing_payload += 1;
                self.lost_packets += 1;
                return;
            };
            let packet = Packet {
                id: head.packet_id,
                src: head.src(),
                dst: head.dst(),
                vnet: head.vnet(),
                class: head.class(),
                queued_at: head.queued_at,
                delivered_at: cycle,
                hops: head.hops(),
                corrupted: partial.corrupted || head.corrupted(),
                payload,
            };
            self.tracer.record_with(cycle, || EventKind::PacketEject {
                packet: packet.id,
                node: node as u32,
                latency: packet.latency(),
                hops: packet.hops,
                flits: partial.flits,
                class: packet.class.code(),
            });
            self.stats.record_delivery(packet.class, partial.flits, packet.latency());
            self.delivered_packets += 1;
            self.ejected[node].push(packet);
        }
    }

    /// Payloads currently pooled — equals the number of injected packets
    /// whose payload has not yet been delivered or destroyed. Zero after
    /// a full drain; a nonzero value then would be a pool leak.
    pub fn payload_pool_live(&self) -> usize {
        self.pool.live()
    }

    /// Maximum simultaneous in-flight payloads ever observed.
    pub fn payload_pool_high_water(&self) -> usize {
        self.pool.high_water()
    }

    /// Times the payload slab grew on demand. Constant across a stretch
    /// of stepping means the loaded steady state performs no payload
    /// allocations (see `tests/alloc.rs`).
    pub fn payload_pool_growth_events(&self) -> u64 {
        self.pool.growth_events()
    }

    /// Pre-grows the payload slab to `capacity` slots without counting
    /// growth events — warmup for allocation-free steady states.
    pub fn preallocate_payloads(&mut self, capacity: usize) {
        self.pool.preallocate(capacity);
    }

    /// Caps the payload pool at `max_slots`; [`Network::inject`] then
    /// fails with [`InjectError::PayloadPoolExhausted`] instead of
    /// growing past the cap.
    pub fn limit_payload_pool(&mut self, max_slots: usize) {
        self.pool.set_limit(max_slots);
    }

    /// Times any flit's hop counter saturated at `u32::MAX` instead of
    /// wrapping (network-wide; normally zero — a mesh path is far
    /// shorter, so a nonzero value flags a routing livelock).
    pub fn hops_saturations(&self) -> u64 {
        self.routers.iter().map(Router::hops_saturations).sum()
    }

    /// Switches between serial stepping (`shards == 0`, the default) and
    /// sharded stepping (DESIGN.md §13): the mesh is split into `shards`
    /// horizontal row bands, each stepped by its own worker thread, with
    /// per-cycle barrier synchronization and deterministic boundary-flit
    /// mailboxes. Bit-identical to every serial mode for any shard count —
    /// `tests/determinism.rs` and `tests/properties.rs` prove it against
    /// the dense oracle.
    ///
    /// Sharding composes with event stepping (the clock still jumps dead
    /// stretches, once *all* shards are quiescent) and turns dense
    /// stepping off; enabling dense stepping folds the shards back.
    /// Sharded stepping records no tracer events (install
    /// [`TracerHandle::Nop`] semantics apply regardless of the handle).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if `shards` exceeds the mesh row count.
    pub fn set_sharding(&mut self, shards: usize) -> Result<(), ShardError> {
        if shards == self.sharding() {
            return Ok(());
        }
        if shards > self.mesh.rows() {
            return Err(ShardError::TooManyShards { shards, rows: self.mesh.rows() });
        }
        sharded::unshard(self);
        if shards > 0 {
            sharded::enshard(self, shards);
            self.dense = false;
        }
        Ok(())
    }

    /// The active shard (worker-thread) count; 0 when stepping serially.
    pub fn sharding(&self) -> usize {
        self.sharding.as_ref().map_or(0, |sh| sh.tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::flit::TrafficClass;
    use crate::routing::hop_count;

    fn net(cfg: NocConfig) -> Network<u64> {
        Network::new(cfg).expect("valid config")
    }

    fn comm(src: NodeId, dst: NodeId, bytes: u32, tag: u64) -> PacketSpec<u64> {
        PacketSpec::new(src, dst, 0, TrafficClass::Communication, bytes, tag)
    }

    #[test]
    fn delivers_a_single_packet_with_correct_hops() {
        let mut n = net(NocConfig::binochs());
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 2);
        n.inject(comm(src, dst, 32, 7)).unwrap();
        assert!(n.run_until_drained(1_000).is_ok());
        let pkts = n.drain_ejected(dst);
        assert_eq!(pkts.len(), 1);
        let p = &pkts[0];
        assert_eq!(p.payload, 7);
        assert_eq!(p.hops as usize, hop_count(n.mesh(), src, dst));
        assert_eq!(p.src, src);
        assert!(p.latency() > 0);
    }

    #[test]
    fn per_hop_latency_scales_with_pipeline_depth() {
        // One single-flit packet across the full row; latency grows with
        // pipeline depth by (stages delta) × hops.
        let mut lat = Vec::new();
        for stages in [2u8, 3, 4] {
            let cfg = NocConfig::binochs().with_pipeline_stages(stages);
            let mut n = net(cfg);
            let src = n.mesh().node_at(0, 0);
            let dst = n.mesh().node_at(3, 0);
            n.inject(comm(src, dst, 32, 0)).unwrap();
            assert!(n.run_until_drained(1_000).is_ok());
            let p = n.drain_ejected(dst).remove(0);
            lat.push(p.latency());
        }
        // 3 network hops + ejection; each extra stage adds ~1 cycle per
        // router visited (4 routers on this path).
        assert!(lat[1] > lat[0] && lat[2] > lat[1], "latencies: {lat:?}");
        assert_eq!(lat[1] - lat[0], 4);
        assert_eq!(lat[2] - lat[1], 4);
    }

    #[test]
    fn multi_flit_packets_reassemble() {
        let cfg = NocConfig::dapper(); // 16 B channels
        let mut n = net(cfg);
        let src = n.mesh().node_at(0, 3);
        let dst = n.mesh().node_at(3, 0);
        n.inject(comm(src, dst, 64, 99)).unwrap(); // 4 flits
        assert!(n.run_until_drained(2_000).is_ok());
        let pkts = n.drain_ejected(dst);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload, 99);
        assert_eq!(n.stats().class(TrafficClass::Communication).flits, 4);
    }

    #[test]
    fn conservation_under_random_traffic() {
        use snacknoc_prng::Rng;
        let mut rng = Rng::new(42);
        let mut n = net(NocConfig::axnoc());
        let nodes = n.mesh().node_count();
        let mut sent = 0u64;
        for i in 0..400 {
            let src = NodeId::new(rng.range_usize(0..nodes));
            let dst = NodeId::new(rng.range_usize(0..nodes));
            let vnet = rng.range(0..3) as u8;
            let bytes = *rng.choose(&[16u32, 32, 64, 128]).unwrap();
            n.inject(PacketSpec::new(src, dst, vnet, TrafficClass::Communication, bytes, i))
                .unwrap();
            sent += 1;
            if i % 4 == 0 {
                n.step();
            }
        }
        assert!(n.run_until_drained(100_000).is_ok(), "network must drain");
        assert_eq!(n.delivered_packets(), sent);
        assert_eq!(n.stuck_packets(), 0, "no reassembly leaks after drain");
        let mut got = 0;
        for node in 0..nodes {
            got += n.drain_ejected(NodeId::new(node)).len();
        }
        assert_eq!(got as u64, sent, "every packet ejected exactly once");
    }

    #[test]
    fn self_addressed_packets_loop_back() {
        let mut n = net(NocConfig::binochs());
        let a = n.mesh().node_at(1, 1);
        n.inject(comm(a, a, 32, 5)).unwrap();
        assert!(n.run_until_drained(100).is_ok());
        let pkts = n.drain_ejected(a);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].hops, 0);
    }

    #[test]
    fn rejects_bad_specs() {
        let mut n = net(NocConfig::binochs());
        let a = n.mesh().node_at(0, 0);
        let bad = NodeId::new(999);
        assert_eq!(
            n.inject(PacketSpec::new(a, bad, 0, TrafficClass::Communication, 8, 0)),
            Err(InjectError::BadNode)
        );
        assert_eq!(
            n.inject(PacketSpec::new(a, a, 9, TrafficClass::Communication, 8, 0)),
            Err(InjectError::BadVnet(9))
        );
    }

    #[test]
    fn stats_accumulate_crossbar_and_link_usage() {
        let mut n = net(NocConfig::binochs().with_sample_window(100));
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 0);
        for i in 0..20 {
            n.inject(comm(src, dst, 32, i)).unwrap();
        }
        n.run(300);
        assert!(n.stats().crossbar_transfers > 0);
        assert!(n.stats().peak_crossbar_utilization() > 0.0);
        assert!(n.stats().peak_link_utilization() > 0.0);
        // One occupancy sample per router per cycle.
        assert_eq!(n.stats().occupancy.total_cycles(), 300 * 16);
    }

    #[test]
    fn vnets_isolate_head_of_line_blocking() {
        // Saturate vnet 0 towards a hotspot; a lone vnet-1 packet crossing
        // the same region must still get through quickly (separate VCs).
        let mut n = net(NocConfig::binochs());
        let hot = n.mesh().node_at(0, 0);
        for node in n.mesh().nodes().collect::<Vec<_>>() {
            for i in 0..30 {
                n.inject(comm(node, hot, 128, i)).unwrap();
            }
        }
        n.run(20); // let congestion build
        let src = n.mesh().node_at(3, 3);
        n.inject(PacketSpec::new(src, hot, 1, TrafficClass::Communication, 32, 9999))
            .unwrap();
        let injected_at = n.cycle();
        let mut arrival = None;
        for _ in 0..100_000 {
            n.step();
            for p in n.drain_ejected(hot) {
                if p.vnet == 1 {
                    arrival = Some(n.cycle());
                }
            }
            if arrival.is_some() {
                break;
            }
        }
        let lat = arrival.expect("vnet-1 packet delivered") - injected_at;
        // The vnet-0 backlog is hundreds of flits; the vnet-1 packet should
        // cross in a small multiple of its zero-load latency (it still
        // shares physical links, so allow generous slack).
        assert!(lat < 2_000, "vnet-1 latency {lat} under vnet-0 saturation");
        assert!(n.run_until_drained(200_000).is_ok());
    }

    #[test]
    fn yx_routing_delivers_everything_too() {
        use crate::routing::RoutingAlgorithm;
        let mut n = net(NocConfig::binochs().with_routing(RoutingAlgorithm::Yx));
        let nodes: Vec<_> = n.mesh().nodes().collect();
        for (i, &src) in nodes.iter().enumerate() {
            for (j, &dst) in nodes.iter().enumerate() {
                n.inject(comm(src, dst, 32, (i * 16 + j) as u64)).unwrap();
            }
        }
        assert!(n.run_until_drained(100_000).is_ok());
        let mut got = 0;
        for &node in &nodes {
            for p in n.drain_ejected(node) {
                assert_eq!(p.dst, node);
                assert_eq!(p.hops as usize, hop_count(n.mesh(), p.src, p.dst), "minimal route");
                got += 1;
            }
        }
        assert_eq!(got, 256);
    }

    #[test]
    fn latency_percentiles_are_monotone_under_load() {
        let mut n = net(NocConfig::dapper());
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 3);
        for i in 0..100 {
            n.inject(comm(src, dst, 64, i)).unwrap();
        }
        assert!(n.run_until_drained(100_000).is_ok());
        let c = n.stats().class(TrafficClass::Communication);
        assert_eq!(c.delivered, 100);
        let p50 = c.latency_percentile(50.0);
        let p99 = c.latency_percentile(99.0);
        assert!(p50 > 0 && p99 >= p50);
        assert!(c.latency_max as f64 >= c.mean_latency());
    }

    #[test]
    fn heavy_hotspot_traffic_eventually_drains() {
        // Everyone sends to one corner: worst-case contention.
        let mut n = net(NocConfig::binochs());
        let dst = n.mesh().node_at(0, 0);
        for node in n.mesh().nodes().collect::<Vec<_>>() {
            for i in 0..10 {
                n.inject(comm(node, dst, 64, i)).unwrap();
            }
        }
        assert!(n.run_until_drained(50_000).is_ok());
        assert_eq!(n.stuck_packets(), 0, "hotspot drain leaves no partial reassembly");
        assert_eq!(n.drain_ejected(dst).len(), 160);
    }

    #[test]
    fn stuck_packets_tracks_inflight_reassembly() {
        // A multi-flit packet is "stuck" between its head ejecting and its
        // tail ejecting; once drained the count must return to zero.
        let mut n = net(NocConfig::dapper()); // 16 B channels -> 8 flits
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 3);
        n.inject(comm(src, dst, 128, 1)).unwrap();
        let mut saw_partial = false;
        while n.pending_packets() > 0 && n.cycle() < 10_000 {
            n.step();
            if n.stuck_packets() > 0 {
                saw_partial = true;
            }
        }
        assert!(saw_partial, "reassembly must be observable mid-flight");
        assert_eq!(n.pending_packets(), 0);
        assert_eq!(n.stuck_packets(), 0, "tail ejection retires the entry");
    }

    #[test]
    fn short_run_reports_partial_window_stats_after_finalize() {
        // Regression: a run shorter than `sample_window` used to report
        // zero utilization samples (median silently 0.0).
        let mut n = net(NocConfig::binochs()); // default 10 K-cycle window
        // Traffic from every node so every router's crossbar moves flits.
        for (i, src) in n.mesh().nodes().collect::<Vec<_>>().into_iter().enumerate() {
            let (x, y) = n.mesh().coords(src);
            let dst = n.mesh().node_at(3 - x, 3 - y);
            n.inject(comm(src, dst, 64, i as u64)).unwrap();
        }
        assert!(n.run_until_drained(5_000).is_ok());
        assert!(n.cycle() < 10_000, "run stays under one sampling window");
        assert!(n.stats().crossbar_series(0).samples().is_empty(), "bug precondition");
        assert_eq!(n.stats().median_crossbar_utilization(), 0.0, "the silent zero");
        let stats = n.finalize_stats();
        for r in 0..stats.router_count() {
            assert_eq!(stats.crossbar_series(r).samples().len(), 1, "router {r}");
        }
        assert!(stats.median_crossbar_utilization() > 0.0, "partial window counted");
        assert!(stats.peak_crossbar_utilization() <= 1.0);
    }

    #[test]
    fn useful_free_vcs_drop_under_load() {
        let mut n = net(NocConfig::binochs());
        let probe = n.mesh().node_at(0, 0);
        let (free0, total) = n.useful_free_output_vcs(probe);
        assert_eq!(free0, total);
        // Saturate the corner.
        for node in n.mesh().nodes().collect::<Vec<_>>() {
            for i in 0..20 {
                n.inject(comm(node, probe, 128, i)).unwrap();
            }
        }
        n.run(50);
        let (free_loaded, _) = n.useful_free_output_vcs(probe);
        assert!(free_loaded <= free0);
        assert!(n.run_until_drained(100_000).is_ok());
    }

    #[test]
    fn ring_tracer_records_packet_lifecycle() {
        use snacknoc_trace::{ComponentClass, EventKind, TracerHandle};
        let mut n = net(NocConfig::binochs());
        n.set_tracer(TracerHandle::ring(4096));
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 2);
        n.inject(comm(src, dst, 32, 7)).unwrap();
        assert!(n.run_until_drained(1_000).is_ok());
        let expected_hops = hop_count(n.mesh(), src, dst) as u64;
        let tracer = n.take_tracer();
        let ring = tracer.as_ring().expect("ring tracer installed");
        let router_events = ring.events(ComponentClass::Router);
        let injects = router_events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PacketInject { .. }))
            .count();
        let vc_allocs = router_events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::VcAlloc { .. }))
            .count();
        let flit_hops = router_events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FlitHop { .. }))
            .count() as u64;
        let ejects: Vec<(u64, u32)> = router_events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::PacketEject { latency, hops, .. } => Some((latency, hops)),
                _ => None,
            })
            .collect();
        assert_eq!(injects, 1);
        assert_eq!(ejects.len(), 1);
        assert_eq!(u64::from(ejects[0].1), expected_hops, "eject carries the hop count");
        assert_eq!(flit_hops, expected_hops, "one flit_hop event per link traversal");
        // VA fires once per router visit plus the ejection grant.
        assert_eq!(vc_allocs as u64, expected_hops + 1);
        // The exact link-counter heatmap agrees with the event stream.
        let heat_total: u64 = ring.link_heatmap().iter().map(|(_, c)| *c).sum();
        assert_eq!(heat_total, expected_hops);
        assert_eq!(ring.dropped(ComponentClass::Router), 0);
    }

    #[test]
    fn nop_tracer_run_matches_untraced_run() {
        use snacknoc_trace::TracerHandle;
        let run = |set_nop: bool| {
            let mut n = net(NocConfig::axnoc());
            if set_nop {
                n.set_tracer(TracerHandle::Nop);
            }
            let nodes = n.mesh().node_count();
            use snacknoc_prng::Rng;
            let mut rng = Rng::new(11);
            for i in 0..200 {
                let src = NodeId::new(rng.range_usize(0..nodes));
                let dst = NodeId::new(rng.range_usize(0..nodes));
                n.inject(comm(src, dst, 64, i)).unwrap();
                if i % 3 == 0 {
                    n.step();
                }
            }
            n.run_until_drained(100_000).unwrap();
            (n.cycle(), n.delivered_packets(), n.stats().crossbar_transfers)
        };
        assert_eq!(run(false), run(true), "Nop tracer is observationally free");
    }

    // ---------------------------------------------------------------
    // Fault injection
    // ---------------------------------------------------------------

    use crate::fault::{FaultPlan, FaultTargets, LinkFaultKind};

    /// Targets communication traffic so the plain-payload tests above can
    /// keep using the default class.
    fn comm_targets() -> FaultTargets {
        FaultTargets { data: true, instructions: true, communication: true }
    }

    #[test]
    fn disabled_plan_changes_nothing() {
        let run = |plan: Option<FaultPlan>| {
            let mut n = net(NocConfig::dapper());
            if let Some(p) = plan {
                n.set_fault_plan(p).unwrap();
            }
            let nodes: Vec<_> = n.mesh().nodes().collect();
            for (i, &src) in nodes.iter().enumerate() {
                for (j, &dst) in nodes.iter().enumerate() {
                    n.inject(comm(src, dst, 64, (i * 16 + j) as u64)).unwrap();
                }
            }
            n.run_until_drained(200_000).unwrap();
            (n.cycle(), n.delivered_packets(), n.stats().crossbar_transfers)
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())), "FaultPlan::none is zero-cost");
    }

    #[test]
    fn full_drop_window_loses_exactly_the_crossing_packets() {
        let mut n = net(NocConfig::binochs());
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 0);
        // Certain drop on the first east link, forever.
        n.set_fault_plan(
            FaultPlan::seeded(7)
                .with_targets(comm_targets())
                .with_link_fault(src, Dir::East, 0, u64::MAX, LinkFaultKind::Drop { rate: 1.0 }),
        )
        .unwrap();
        for i in 0..10 {
            n.inject(comm(src, dst, 64, i)).unwrap();
        }
        // Every packet must cross the dead link: all are lost, none hang.
        n.run_until_drained(100_000).unwrap();
        assert_eq!(n.lost_packets(), 10);
        assert_eq!(n.delivered_packets(), 0);
        assert_eq!(n.pending_packets(), 0, "lost packets do not count as pending");
        assert_eq!(n.buffered_flits(), 0, "credits were synthesized; nothing wedged");
        assert_eq!(n.stuck_packets(), 0);
        let c = n.fault_counters();
        assert_eq!(c.dropped_packets, 10);
        assert_eq!(c.injected, 10);
        assert!(c.dropped_flits >= 10);
        // Traffic not crossing the faulty link is untouched.
        let other = n.mesh().node_at(0, 2);
        n.inject(comm(other, n.mesh().node_at(3, 2), 64, 99)).unwrap();
        n.run_until_drained(10_000).unwrap();
        assert_eq!(n.delivered_packets(), 1);
    }

    #[test]
    fn down_window_delays_but_delivers() {
        let mk = |down: bool| {
            let mut n = net(NocConfig::binochs());
            if down {
                n.set_fault_plan(FaultPlan::seeded(1).with_link_fault(
                    n.mesh().node_at(0, 0),
                    Dir::East,
                    0,
                    500,
                    LinkFaultKind::Down,
                ))
                .unwrap();
            }
            let src = n.mesh().node_at(0, 0);
            let dst = n.mesh().node_at(3, 0);
            n.inject(comm(src, dst, 32, 5)).unwrap();
            n.run_until_drained(10_000).unwrap();
            let p = n.drain_ejected(dst).remove(0);
            assert_eq!(p.payload, 5);
            assert!(!p.corrupted);
            p.latency()
        };
        let clean = mk(false);
        let faulted = mk(true);
        assert!(
            faulted >= 500 && faulted > clean,
            "down window stalls the flit ({clean} vs {faulted})"
        );
    }

    #[test]
    fn corruption_delivers_with_the_mark() {
        let mut n = net(NocConfig::dapper());
        n.set_fault_plan(
            FaultPlan::seeded(3).with_corrupt_rate(1.0).with_targets(comm_targets()),
        )
        .unwrap();
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 3);
        n.inject(comm(src, dst, 64, 42)).unwrap();
        n.run_until_drained(10_000).unwrap();
        let p = n.drain_ejected(dst).remove(0);
        assert!(p.corrupted, "corruption mark survives reassembly");
        assert_eq!(p.payload, 42, "payload object itself is delivered");
        assert_eq!(n.fault_counters().corrupted_packets, 1);
        assert_eq!(n.lost_packets(), 0);
    }

    #[test]
    fn protected_packets_are_exempt_from_random_faults() {
        let mut n = net(NocConfig::binochs());
        n.set_fault_plan(FaultPlan::seeded(9).with_drop_rate(1.0).with_targets(comm_targets()))
            .unwrap();
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 3);
        n.inject(comm(src, dst, 64, 1).with_protected()).unwrap();
        n.inject(comm(src, dst, 64, 2)).unwrap();
        n.run_until_drained(10_000).unwrap();
        let pkts = n.drain_ejected(dst);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload, 1, "only the protected packet survives");
        assert_eq!(n.lost_packets(), 1);
    }

    #[test]
    fn stall_report_names_the_blockage() {
        let mut n = net(NocConfig::binochs());
        let src = n.mesh().node_at(0, 0);
        let dst = n.mesh().node_at(3, 0);
        // Permanently dead link on the only XY route: the packet wedges.
        n.set_fault_plan(FaultPlan::seeded(1).with_link_fault(
            src,
            Dir::East,
            0,
            u64::MAX,
            LinkFaultKind::Down,
        ))
        .unwrap();
        n.inject(comm(src, dst, 32, 1)).unwrap();
        let report = n.run_until_drained(2_000).unwrap_err();
        assert_eq!(report.pending_packets, 1);
        assert_eq!(report.blocked_routers, vec![src.index()]);
        assert!(report.buffered_flits > 0);
        assert!(report.oldest_packet_age > 1_000, "the flit aged the whole run");
        let text = report.to_string();
        assert!(text.contains("1 pending"), "display is informative: {text}");
        // The exhaustive-deadline path and the report accessor agree.
        assert_eq!(n.stall_report(), report);
    }

    #[test]
    fn fault_runs_replay_bit_identically() {
        let run = || {
            let mut n = net(NocConfig::axnoc());
            n.set_fault_plan(
                FaultPlan::seeded(1234)
                    .with_drop_rate(0.2)
                    .with_corrupt_rate(0.1)
                    .with_targets(comm_targets()),
            )
            .unwrap();
            let nodes = n.mesh().node_count();
            use snacknoc_prng::Rng;
            let mut rng = Rng::new(5);
            for i in 0..200 {
                let src = NodeId::new(rng.range_usize(0..nodes));
                let dst = NodeId::new(rng.range_usize(0..nodes));
                n.inject(comm(src, dst, 64, i)).unwrap();
                if i % 3 == 0 {
                    n.step();
                }
            }
            n.run_until_drained(100_000).unwrap();
            let mut log = Vec::new();
            for node in 0..nodes {
                for p in n.drain_ejected(NodeId::new(node)) {
                    log.push((p.payload, p.delivered_at, p.corrupted));
                }
            }
            (n.cycle(), n.fault_counters(), log)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "hash-derived fault decisions replay exactly");
        assert!(a.1.dropped_packets > 0 && a.1.corrupted_packets > 0, "faults actually fired");
    }

    // ---------------------------------------------------------------
    // Sharded stepping (DESIGN.md §13)
    // ---------------------------------------------------------------

    /// Everything observable about a finished run, for byte-identity
    /// comparisons across stepping modes.
    type RunFingerprint = (u64, u64, u64, u64, u64, u64, String, Vec<(u64, u64, bool)>);

    fn run_fingerprint(n: &mut Network<u64>) -> RunFingerprint {
        let nodes = n.mesh().node_count();
        let mut log = Vec::new();
        for node in 0..nodes {
            for p in n.drain_ejected(NodeId::new(node)) {
                log.push((p.payload, p.delivered_at, p.corrupted));
            }
        }
        let occupancy = format!(
            "{}/{}/{:.12}",
            n.stats().occupancy.total_cycles(),
            n.stats().occupancy.dropped_samples(),
            n.stats().occupancy.zero_fraction(),
        );
        (
            n.cycle(),
            n.delivered_packets(),
            n.lost_packets(),
            n.stats().crossbar_transfers,
            n.stats().injected_flits,
            n.fault_counters().dropped_flits,
            occupancy,
            log,
        )
    }

    /// Drains in batch-friendly chunks so sharded runs amortize the
    /// per-batch thread-scope setup.
    fn drain_in_chunks(n: &mut Network<u64>) {
        for _ in 0..2_000 {
            if n.pending_packets() == 0 {
                return;
            }
            let target = n.cycle() + 64;
            n.step_until(target);
        }
        panic!("network failed to drain: {}", n.stall_report());
    }

    fn faulted_random_run(shards: usize) -> RunFingerprint {
        let mut n = net(NocConfig::axnoc());
        if shards == 0 {
            n.set_dense_stepping(true);
        } else {
            n.set_sharding(shards).unwrap();
        }
        n.set_fault_plan(
            FaultPlan::seeded(1234)
                .with_drop_rate(0.2)
                .with_corrupt_rate(0.1)
                .with_targets(comm_targets()),
        )
        .unwrap();
        let nodes = n.mesh().node_count();
        use snacknoc_prng::Rng;
        let mut rng = Rng::new(5);
        for i in 0..200 {
            let src = NodeId::new(rng.range_usize(0..nodes));
            let dst = NodeId::new(rng.range_usize(0..nodes));
            n.inject(comm(src, dst, 64, i)).unwrap();
            if i % 3 == 0 {
                n.step();
            }
        }
        drain_in_chunks(&mut n);
        run_fingerprint(&mut n)
    }

    #[test]
    fn sharded_stepping_matches_the_dense_oracle() {
        let dense = faulted_random_run(0);
        for shards in [1, 2, 4] {
            assert_eq!(
                faulted_random_run(shards),
                dense,
                "{shards}-shard run must be byte-identical to dense"
            );
        }
        assert!(dense.2 > 0, "faults actually fired");
    }

    #[test]
    fn sharding_survives_mid_run_mode_flips() {
        let run = |flip: bool| {
            let mut n = net(NocConfig::binochs());
            let nodes: Vec<_> = n.mesh().nodes().collect();
            for (i, &src) in nodes.iter().enumerate() {
                for (j, &dst) in nodes.iter().enumerate() {
                    n.inject(comm(src, dst, 64, (i * 16 + j) as u64)).unwrap();
                }
            }
            // Flip serial → 2 shards → 3 shards → serial mid-flight: the
            // state migrations must be exact, not just the steady state.
            n.run(20);
            if flip {
                n.set_sharding(2).unwrap();
            }
            n.run(50);
            if flip {
                n.set_sharding(3).unwrap();
            }
            n.run(50);
            if flip {
                n.set_sharding(0).unwrap();
            }
            drain_in_chunks(&mut n);
            assert_eq!(n.sharding(), 0);
            run_fingerprint(&mut n)
        };
        assert_eq!(run(true), run(false), "mode flips are observationally free");
    }

    #[test]
    fn sharded_event_stepping_jumps_dead_cycles_identically() {
        let run = |shards: usize| {
            let mut n = net(NocConfig::binochs().with_sample_window(100));
            n.set_event_stepping(true);
            if shards > 0 {
                n.set_sharding(shards).unwrap();
                assert!(n.event_stepping(), "sharding composes with event mode");
            }
            let src = n.mesh().node_at(0, 0);
            let dst = n.mesh().node_at(3, 3);
            for i in 0..10 {
                n.inject(comm(src, dst, 64, i)).unwrap();
            }
            // Drain, then cross a long dead stretch: the sharded batch
            // must hand control back to the clock jump immediately.
            n.step_until(50_000);
            assert!(n.is_quiescent());
            run_fingerprint(&mut n)
        };
        let serial = run(0);
        assert_eq!(serial.0, 50_000, "event mode lands exactly on the target");
        for shards in [1, 2, 4] {
            assert_eq!(run(shards), serial, "{shards}-shard event run identical");
        }
    }

    #[test]
    fn set_sharding_rejects_impossible_tilings() {
        let mut n = net(NocConfig::binochs()); // 4 rows
        assert_eq!(
            n.set_sharding(5),
            Err(ShardError::TooManyShards { shards: 5, rows: 4 })
        );
        assert_eq!(n.sharding(), 0, "failed request leaves serial stepping");
        n.set_sharding(4).unwrap();
        assert_eq!(n.sharding(), 4);
        n.set_sharding(4).unwrap(); // idempotent
        assert_eq!(n.sharding(), 4);
        n.set_dense_stepping(true);
        assert_eq!(n.sharding(), 0, "dense stepping folds the shards back");
    }

    #[test]
    fn injection_wakes_sharded_nis() {
        let mut n = net(NocConfig::binochs());
        n.set_sharding(2).unwrap();
        let src = n.mesh().node_at(1, 3); // bottom band
        let dst = n.mesh().node_at(2, 0); // top band
        n.inject(comm(src, dst, 32, 77)).unwrap();
        drain_in_chunks(&mut n);
        let pkts = n.drain_ejected(dst);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload, 77);
        assert_eq!(n.stuck_packets(), 0);
    }
}
