//! Sharded stepping (DESIGN.md §13): the mesh split into horizontal row
//! bands, each stepped by one worker thread, with per-cycle conservative
//! barrier synchronization and deterministic boundary mailboxes.
//!
//! ## Partitioning
//!
//! [`Mesh::row_bands`] tiles the mesh into full-width horizontal bands.
//! Row-major node numbering makes every band a contiguous node-index
//! range, and links are built per source node in the same order, so each
//! worker owns contiguous `split_at_mut` slices of *all* per-node and
//! per-link state — routers, NIs, link slots, ejection queues, worklist
//! flags and the per-router/per-link stats series. No locks guard the hot
//! path: a worker touches only its own slices.
//!
//! ## Boundary exchange
//!
//! Band boundaries only cut north-south links. A flit departing across a
//! boundary cannot be written into the reader's `Link` slot (the writer
//! owns the link by source, the reader delivers it), so it travels through
//! a mailbox cell instead, carrying `(link, to_router, in_port)` captured
//! at send time. Credits and drop-retirements cross the same way. Each
//! `(from, to)` shard pair has its own single-buffered cell; the phase
//! structure below makes every cell strictly write-then-read within a
//! cycle, so one buffer suffices.
//!
//! ## Cycle structure and determinism
//!
//! Each simulated cycle runs the same five phases as the serial loop,
//! separated by three barriers (a fourth only in event mode, for the
//! all-shards-quiescent vote):
//!
//! ```text
//! Ph1 credits (own, then mail in sender order)        | barrier
//! Ph2 links   (own ascending, then mail by link id)
//! Ph3 NI injection (own nodes ascending)              | barrier
//! Ph4 retire mail, then routers (own ascending)
//! Ph5 occupancy samples + window rolls                | barrier
//! [event mode: quiescence vote]                       | barrier
//! ```
//!
//! Bit-identity with the serial modes holds because every cross-shard
//! interaction commutes: fault verdicts hash `(seed, link, packet)` so
//! they are evaluation-order-free; credits are unique per
//! `(router, port, vc)` per cycle; flits landing in distinct `(port, vc)`
//! queues are independent; ejection is confined to one node; and all stats
//! deltas are sums, maxima or bucket counts, merged in shard-index order
//! at the batch epilogue. `tests/determinism.rs` and `tests/properties.rs`
//! prove fingerprints equal to the dense oracle for every shard count.
//!
//! Sharded stepping records no tracer events (the per-worker handle is
//! [`TracerHandle::Nop`]); install a tracer only on serial modes.

use super::*;
use crate::stats::{OccupancyCdf, ProtocolErrors, WindowSeries};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// A flit crossing a shard boundary, with the link metadata the reader
/// would otherwise have to fetch from the writer's `Link` entry.
struct BoundaryFlit {
    lid: usize,
    to: usize,
    in_port: Dir,
    flit: Flit,
}

/// One directed mailbox cell between a `(from, to)` shard pair.
///
/// Single-buffered: the phase/barrier structure guarantees each message
/// kind is fully written before its reader drains it (credits and flits
/// written one cycle, read the next; retirements written in Phase 2, read
/// before the same cycle's Phase 4).
struct MailCell {
    credits: Vec<CreditMsg>,
    flits: Vec<BoundaryFlit>,
    retire: Vec<PacketId>,
}

impl MailCell {
    fn new() -> Self {
        MailCell { credits: Vec::new(), flits: Vec::new(), retire: Vec::new() }
    }

    fn is_empty(&self) -> bool {
        self.credits.is_empty() && self.flits.is_empty() && self.retire.is_empty()
    }
}

/// Per-shard accumulator deltas, zeroed at batch start and folded into
/// the network totals in shard-index order at the batch epilogue. Every
/// field merges by sum / max / bucket count, so the fold is exact.
#[derive(Default)]
struct LaneStats {
    occupancy: OccupancyCdf,
    injected_flits: u64,
    crossbar_transfers: u64,
    protocol_errors: ProtocolErrors,
    fault: FaultCounters,
    lost_packets: u64,
    ni_drained: u64,
}

/// One shard's private half of the network: the worklists, reassembly map
/// and fault memo restricted to the routers/links/NIs the shard owns,
/// plus the per-batch stats deltas. The serial `Network` fields these
/// mirror sit empty while sharding is active; mode transitions migrate
/// the state both ways ([`enshard`] / [`unshard`]).
struct Lane {
    active: Vec<usize>,
    active_scratch: Vec<usize>,
    ni_active: Vec<usize>,
    occupied_links: Vec<usize>,
    links_scratch: Vec<usize>,
    pending_credits: Vec<CreditMsg>,
    credits_scratch: Vec<CreditMsg>,
    departures: Vec<Departure>,
    /// Scratch for draining boundary-flit mail without holding the cell
    /// lock across delivery (delivery may lock *other* cells to send drop
    /// credits; holding two cells at once could deadlock).
    inbox: Vec<BoundaryFlit>,
    /// Reassembly entries whose destination node this shard owns.
    reassembly: HashMap<PacketId, Partial>,
    /// Mid-packet drop memo for the links this shard delivers.
    dropping: HashSet<(usize, PacketId)>,
    /// Flits resident in this shard's router input buffers.
    buffered: u64,
    /// Completed packets awaiting payload resolution — the pool lives on
    /// the serial `Network`, so workers stage ejections here and the
    /// batch epilogue finishes delivery in shard-index order.
    ejections: Vec<StagedEject>,
    /// Payload refs whose head flit was destroyed in this shard (fault
    /// drops, retirements); released into the pool at the epilogue.
    freed: Vec<PayloadRef>,
    stats: LaneStats,
}

impl Lane {
    fn new() -> Self {
        Lane {
            active: Vec::new(),
            active_scratch: Vec::new(),
            ni_active: Vec::new(),
            occupied_links: Vec::new(),
            links_scratch: Vec::new(),
            pending_credits: Vec::new(),
            credits_scratch: Vec::new(),
            departures: Vec::new(),
            inbox: Vec::new(),
            reassembly: HashMap::new(),
            dropping: HashSet::new(),
            buffered: 0,
            ejections: Vec::new(),
            freed: Vec::new(),
            stats: LaneStats::default(),
        }
    }

    fn has_own_work(&self) -> bool {
        !(self.pending_credits.is_empty()
            && self.occupied_links.is_empty()
            && self.ni_active.is_empty()
            && self.active.is_empty())
    }
}

/// A delivered packet staged by a worker for serial payload resolution.
/// Holds the ejected head flit (carrying the [`PayloadRef`]) plus the
/// per-packet facts the serial `eject` reads off its `Partial`.
struct StagedEject {
    node: usize,
    delivered_at: u64,
    flits: u64,
    corrupted: bool,
    head: Flit,
}

/// The sharded-stepping state hung off [`Network`].
pub(super) struct Sharding {
    /// Shard (= worker thread) count.
    pub(super) tiles: usize,
    /// `node_bounds[t]..node_bounds[t+1]` = the node range of shard `t`.
    node_bounds: Vec<usize>,
    /// Same for link ids (contiguous per shard: links are built per
    /// source node in node order).
    link_bounds: Vec<usize>,
    lanes: Vec<Lane>,
    /// `mail[from * tiles + to]` = the directed cell between two shards.
    mail: Vec<Mutex<MailCell>>,
    /// Per-shard has-work flags for the event-mode quiescence vote.
    busy: Vec<AtomicBool>,
}

impl fmt::Debug for Sharding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sharding")
            .field("tiles", &self.tiles)
            .field("node_bounds", &self.node_bounds)
            .field("link_bounds", &self.link_bounds)
            .finish_non_exhaustive()
    }
}

impl Sharding {
    /// Which shard owns node (or router) `node`.
    fn shard_of(&self, node: usize) -> usize {
        shard_of(&self.node_bounds, node)
    }

    /// Serial-context half of [`Network::is_quiescent`]: no lane has
    /// worklist entries and no mailbox cell holds an undelivered message.
    pub(super) fn is_quiescent(&self) -> bool {
        self.lanes.iter().all(|l| !l.has_own_work())
            && self.mail.iter().all(|cell| lock(cell).is_empty())
    }

    /// Reassembly entries across all lanes (for [`Network::stuck_packets`]).
    pub(super) fn stuck_packets(&self) -> usize {
        self.lanes.iter().map(|l| l.reassembly.len()).sum()
    }

    /// Routes an NI wakeup to the owning shard's worklist (the sharded
    /// counterpart of pushing onto `Network::ni_active`).
    pub(super) fn push_ni_active(&mut self, node: usize) {
        let t = self.shard_of(node);
        self.lanes[t].ni_active.push(node);
    }

    /// Drops all per-lane mid-packet fault memos (a fresh fault plan
    /// starts with an empty memo, exactly as the serial state does).
    pub(super) fn clear_fault_memos(&mut self) {
        for lane in &mut self.lanes {
            lane.dropping.clear();
        }
    }
}

/// Locks a mailbox cell, ignoring poison: cells hold plain data and every
/// access re-establishes its own invariants, so a panicked peer thread
/// must not wedge the teardown path too.
fn lock<T>(cell: &Mutex<T>) -> MutexGuard<'_, T> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which tile a monotone bounds table assigns `index` to.
fn shard_of(bounds: &[usize], index: usize) -> usize {
    debug_assert!(bounds.len() >= 2 && index < bounds[bounds.len() - 1]);
    bounds.partition_point(|&b| b <= index) - 1
}

/// Splits `slice` into the consecutive sub-slices delimited by `bounds`
/// (a monotone table starting at 0 and ending at `slice.len()`).
fn split_ranges<'a, T>(mut slice: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
    let mut prev = 0;
    for &b in &bounds[1..] {
        let (head, tail) = slice.split_at_mut(b - prev);
        out.push(head);
        slice = tail;
        prev = b;
    }
    debug_assert!(slice.is_empty(), "bounds must cover the whole slice");
    out
}

/// Turns sharding on: builds the tile tables and migrates every piece of
/// serial worklist/reassembly/fault state into the owning shard's lane.
/// The caller has validated `1 <= tiles <= mesh.rows()`.
pub(super) fn enshard<P>(net: &mut Network<P>, tiles: usize) {
    debug_assert!(net.sharding.is_none(), "enshard over live sharding state");
    let bands = net.mesh.row_bands(tiles).expect("caller validated the tile count");
    let mut node_bounds = Vec::with_capacity(tiles + 1);
    node_bounds.push(0);
    for band in &bands {
        node_bounds.push(band.end);
    }
    let mut link_bounds = Vec::with_capacity(tiles + 1);
    link_bounds.push(0);
    let mut links_seen = 0usize;
    let mut node = 0usize;
    for t in 0..tiles {
        while node < node_bounds[t + 1] {
            links_seen += net.link_of[node].iter().flatten().count();
            node += 1;
        }
        link_bounds.push(links_seen);
    }
    debug_assert_eq!(links_seen, net.links.len());
    let mut sh = Sharding {
        tiles,
        node_bounds,
        link_bounds,
        lanes: (0..tiles).map(|_| Lane::new()).collect(),
        mail: (0..tiles * tiles).map(|_| Mutex::new(MailCell::new())).collect(),
        busy: (0..tiles).map(|_| AtomicBool::new(false)).collect(),
    };
    for r in net.active.drain(..) {
        let t = sh.shard_of(r);
        sh.lanes[t].active.push(r);
    }
    for n in net.ni_active.drain(..) {
        let t = sh.shard_of(n);
        sh.lanes[t].ni_active.push(n);
    }
    for msg in net.pending_credits.drain(..) {
        let t = sh.shard_of(msg.router);
        sh.lanes[t].pending_credits.push(msg);
    }
    // In-flight flits: a link is *delivered* by the shard owning its
    // destination router. Intra-shard links keep their slot; a flit on a
    // boundary link moves into the writer→reader mailbox, exactly where
    // the sharded Phase 4 would have put it.
    for lid in net.occupied_links.drain(..) {
        let to = net.links[lid].to_router;
        let reader = sh.shard_of(to);
        let writer = shard_of(&sh.link_bounds, lid);
        if reader == writer {
            sh.lanes[reader].occupied_links.push(lid);
        } else {
            let link = &mut net.links[lid];
            let flit = link.slot.take().expect("occupied-list entry without a flit");
            lock(&sh.mail[writer * tiles + reader]).flits.push(BoundaryFlit {
                lid,
                to,
                in_port: link.in_port,
                flit,
            });
        }
    }
    for (pid, partial) in net.reassembly.drain() {
        let t = sh.shard_of(partial.dst);
        sh.lanes[t].reassembly.insert(pid, partial);
    }
    if let Some(f) = net.fault.as_mut() {
        let memo: Vec<(usize, PacketId)> = f.dropping_mut().drain().collect();
        for key in memo {
            let t = sh.shard_of(net.links[key.0].to_router);
            sh.lanes[t].dropping.insert(key);
        }
    }
    for t in 0..tiles {
        sh.lanes[t].buffered = net.routers[sh.node_bounds[t]..sh.node_bounds[t + 1]]
            .iter()
            .map(|r| r.buffered_flits() as u64)
            .sum();
    }
    net.sharding = Some(sh);
}

/// Turns sharding off: folds every lane and mailbox cell back into the
/// serial worklists. The inverse of [`enshard`]; a subsequent serial step
/// behaves exactly as if the sharded cycles had been stepped serially.
pub(super) fn unshard<P>(net: &mut Network<P>) {
    let Some(mut sh) = net.sharding.take() else { return };
    for lane in &mut sh.lanes {
        // Between batches the staged pool work is always drained (the
        // epilogue runs unconditionally), so this is a defensive no-op.
        resolve_pool_work(net, lane);
        net.active.append(&mut lane.active);
        net.ni_active.append(&mut lane.ni_active);
        net.pending_credits.append(&mut lane.pending_credits);
        net.occupied_links.append(&mut lane.occupied_links);
        for (pid, partial) in lane.reassembly.drain() {
            net.reassembly.insert(pid, partial);
        }
        if let Some(f) = net.fault.as_mut() {
            f.dropping_mut().extend(lane.dropping.drain());
        }
    }
    for cell in &mut sh.mail {
        let cell = cell.get_mut().unwrap_or_else(PoisonError::into_inner);
        net.pending_credits.append(&mut cell.credits);
        for b in cell.flits.drain(..) {
            debug_assert!(net.links[b.lid].slot.is_none());
            net.links[b.lid].slot = Some(b.flit);
            net.occupied_links.push(b.lid);
        }
        // Retirements drain after the lane reassembly maps merged above;
        // a retired partial's head still owns its payload slot.
        for pid in cell.retire.drain(..) {
            if let Some(partial) = net.reassembly.remove(&pid) {
                if let Some(head) = partial.head {
                    net.pool.release(head.payload);
                }
            }
        }
    }
}

/// Finishes a lane's staged pool work in serial context: resolves staged
/// ejections through the payload pool (delivering the packet, or counting
/// a missing payload exactly as the serial `Network::eject` would) and
/// releases refs freed by in-shard head destruction. Runs per lane in
/// shard-index order, so slot recycling is deterministic.
fn resolve_pool_work<P>(net: &mut Network<P>, lane: &mut Lane) {
    for e in lane.ejections.drain(..) {
        let head = e.head;
        let Some(payload) = net.pool.take(head.payload) else {
            net.stats.protocol_errors.missing_payload += 1;
            net.lost_packets += 1;
            continue;
        };
        let packet = Packet {
            id: head.packet_id,
            src: head.src(),
            dst: head.dst(),
            vnet: head.vnet(),
            class: head.class(),
            queued_at: head.queued_at,
            delivered_at: e.delivered_at,
            hops: head.hops(),
            corrupted: e.corrupted,
            payload,
        };
        net.stats.record_delivery(packet.class, e.flits, packet.latency());
        net.delivered_packets += 1;
        net.ejected[e.node].push(packet);
    }
    for r in lane.freed.drain(..) {
        net.pool.release(r);
    }
}

/// Everything a worker shares read-only (or through sync primitives)
/// with its peers for one batch.
struct SharedCtx<'a> {
    cfg: &'a NocConfig,
    mesh: &'a Mesh,
    link_of: &'a [[Option<usize>; 4]],
    fault: Option<&'a FaultState>,
    mail: &'a [Mutex<MailCell>],
    busy: &'a [AtomicBool],
    node_bounds: &'a [usize],
    barrier: &'a Barrier,
    completed: &'a AtomicU64,
    tiles: usize,
    start_cycle: u64,
    max_cycles: u64,
    use_down: bool,
    event: bool,
    per_router_capacity: f64,
    window: u64,
    start_in_window: u64,
}

/// One worker's disjoint mutable view of the network: `split_at_mut`
/// slices of every per-node / per-link table, plus its lane.
struct WorkerCtx<'a> {
    tile: usize,
    node_start: usize,
    node_end: usize,
    links_base: usize,
    routers: &'a mut [Router],
    nis: &'a mut [NetIf],
    work: &'a mut [bool],
    ni_flag: &'a mut [bool],
    ni_backlogs: &'a mut [u64],
    links: &'a mut [Link],
    xbar: &'a mut [WindowSeries],
    linkser: &'a mut [WindowSeries],
    lane: &'a mut Lane,
}

impl WorkerCtx<'_> {
    /// The sharded `Network::mark_router` (idempotent worklist push).
    fn mark_router(&mut self, r: usize) {
        let rel = r - self.node_start;
        if !self.work[rel] {
            self.work[rel] = true;
            self.lane.active.push(r);
        }
    }

    /// Queues a credit for next Phase 1, locally or through the mailbox.
    fn send_credit(&mut self, sh: &SharedCtx<'_>, msg: CreditMsg) {
        let t = shard_of(sh.node_bounds, msg.router);
        if t == self.tile {
            self.lane.pending_credits.push(msg);
        } else {
            lock(&sh.mail[self.tile * sh.tiles + t]).credits.push(msg);
        }
    }

    /// Retires a dropped packet's reassembly entry at its destination
    /// shard — immediately when local, else via retire mail drained by
    /// the owner before its same-cycle Phase 4 (replaying the serial
    /// remove-before-eject ordering). Whichever shard removes the partial
    /// also frees its head's payload slot (through the owner's lane).
    fn retire_packet(&mut self, sh: &SharedCtx<'_>, pid: PacketId, dst_node: usize) {
        let t = shard_of(sh.node_bounds, dst_node);
        if t == self.tile {
            if let Some(partial) = self.lane.reassembly.remove(&pid) {
                if let Some(head) = partial.head {
                    self.lane.freed.push(head.payload);
                }
            }
        } else {
            lock(&sh.mail[self.tile * sh.tiles + t]).retire.push(pid);
        }
    }

    /// Phase 1: own credits first (the serial ping-pong), then boundary
    /// credits in sender-index order. Credit application commutes —
    /// each `(router, port, vc)` receives at most independent increments
    /// per cycle — so the order is a canonical choice, not a constraint.
    fn phase1_credits(&mut self, sh: &SharedCtx<'_>) {
        debug_assert!(self.lane.credits_scratch.is_empty());
        std::mem::swap(&mut self.lane.pending_credits, &mut self.lane.credits_scratch);
        let mut batch = std::mem::take(&mut self.lane.credits_scratch);
        for &msg in &batch {
            self.apply_credit(sh, msg);
        }
        batch.clear();
        self.lane.credits_scratch = batch;
        for from in 0..sh.tiles {
            if from == self.tile {
                continue;
            }
            let mut cell = lock(&sh.mail[from * sh.tiles + self.tile]);
            for msg in cell.credits.drain(..) {
                self.apply_credit(sh, msg);
            }
        }
    }

    fn apply_credit(&mut self, sh: &SharedCtx<'_>, msg: CreditMsg) {
        let r = &mut self.routers[msg.router - self.node_start];
        r.return_credit(msg.port, msg.vc, sh.cfg.buffers_per_vc);
        if msg.frees_vc {
            r.free_output_vc(msg.port, msg.vc);
        }
        self.mark_router(msg.router);
    }

    /// Phase 2: own occupied links in ascending id order, then boundary
    /// flits per sender in link-id order. Fault verdicts are hash-derived
    /// per `(link, packet)` and deliveries land in distinct `(port, vc)`
    /// queues, so inter-link order is immaterial — ascending order is the
    /// same canonical choice the serial active mode makes.
    fn phase2_links(&mut self, sh: &SharedCtx<'_>, cycle: u64, cap: usize) {
        debug_assert!(self.lane.links_scratch.is_empty());
        std::mem::swap(&mut self.lane.occupied_links, &mut self.lane.links_scratch);
        let mut batch = std::mem::take(&mut self.lane.links_scratch);
        batch.sort_unstable();
        for &lid in &batch {
            let link = &mut self.links[lid - self.links_base];
            let Some(flit) = link.slot.take() else { continue };
            let (to, in_port) = (link.to_router, link.in_port);
            self.deliver_flit(sh, lid, to, in_port, flit, cycle, cap);
        }
        batch.clear();
        self.lane.links_scratch = batch;
        for from in 0..sh.tiles {
            if from == self.tile {
                continue;
            }
            let mut inbox = std::mem::take(&mut self.lane.inbox);
            inbox.append(&mut lock(&sh.mail[from * sh.tiles + self.tile]).flits);
            // The cell lock is released before delivery: delivering a
            // dropped flit sends a cross-shard credit, which locks the
            // *outgoing* cell — holding two cells at once risks deadlock.
            inbox.sort_unstable_by_key(|b| b.lid);
            for b in inbox.drain(..) {
                self.deliver_flit(sh, b.lid, b.to, b.in_port, b.flit, cycle, cap);
            }
            self.lane.inbox = inbox;
        }
    }

    /// The sharded `Network::deliver_link` body, fed either from an own
    /// link slot or a boundary mailbox entry.
    #[allow(clippy::too_many_arguments)]
    fn deliver_flit(
        &mut self,
        sh: &SharedCtx<'_>,
        lid: usize,
        to: usize,
        in_port: Dir,
        mut flit: Flit,
        cycle: u64,
        cap: usize,
    ) {
        let action = match sh.fault {
            Some(f) => f.on_link_flit_sharded(
                lid,
                cycle,
                &flit,
                &mut self.lane.dropping,
                &mut self.lane.stats.fault,
            ),
            None => FaultAction::Deliver,
        };
        match action {
            FaultAction::Drop => {
                let upstream = sh
                    .mesh
                    .neighbor(NodeId::new(to), in_port)
                    .expect("every link has an upstream router");
                self.send_credit(sh, CreditMsg {
                    router: upstream.index(),
                    port: in_port.opposite(),
                    vc: flit.vc(),
                    frees_vc: flit.kind().is_tail(),
                });
                if flit.kind().is_head() {
                    // The payload dies with its head flit; the release
                    // itself happens at the serial epilogue.
                    self.lane.freed.push(flit.payload);
                }
                if flit.kind().is_tail() {
                    self.lane.stats.lost_packets += 1;
                    self.retire_packet(sh, flit.packet_id, flit.dst().index());
                }
            }
            FaultAction::DeliverCorrupted | FaultAction::Deliver => {
                if action == FaultAction::DeliverCorrupted {
                    flit.mark_corrupted();
                }
                self.routers[to - self.node_start]
                    .accept_flit(sh.mesh, sh.cfg, in_port, flit, cycle, cap);
                self.mark_router(to);
                self.lane.buffered += 1;
            }
        }
    }

    /// Phase 3: NI injection for the shard's backlogged nodes, ascending.
    fn phase3_ni(&mut self, sh: &SharedCtx<'_>, cycle: u64) {
        let mut batch = std::mem::take(&mut self.lane.ni_active);
        batch.sort_unstable();
        let mut kept = 0;
        for i in 0..batch.len() {
            let node = batch[i];
            let backlog = self.inject_node(sh, node, cycle);
            self.ni_flag[node - self.node_start] = backlog;
            if backlog {
                batch[kept] = node;
                kept += 1;
            }
        }
        batch.truncate(kept);
        self.lane.ni_active = batch;
    }

    /// The sharded `Network::inject_from_ni` body.
    fn inject_node(&mut self, sh: &SharedCtx<'_>, node: usize, cycle: u64) -> bool {
        let rel = node - self.node_start;
        let vnets = sh.cfg.vnets as usize;
        let k = sh.cfg.vcs_per_vnet as usize;
        let cap = sh.cfg.buffers_per_vc as usize;
        for _ in 0..sh.cfg.ni_flits_per_cycle {
            let mut pushed = false;
            for step in 0..vnets {
                let v = (self.nis[rel].rr + step) % vnets;
                let ni = &mut self.nis[rel];
                let Some(front) = ni.queues[v].front() else { continue };
                let router = &self.routers[rel];
                let vc = match ni.streaming[v] {
                    Some(vc) => {
                        debug_assert!(!front.kind().is_head());
                        if router.local_vc_accepts(vc as usize, false, cap) {
                            Some(vc)
                        } else {
                            None
                        }
                    }
                    None => {
                        debug_assert!(front.kind().is_head());
                        (v * k..(v + 1) * k)
                            .find(|&vc| router.local_vc_accepts(vc, true, cap))
                            .map(|vc| vc as u8)
                    }
                };
                let Some(vc) = vc else { continue };
                let ni = &mut self.nis[rel];
                let mut flit = ni.queues[v].pop_front().expect("front checked above");
                flit.set_vc(vc);
                ni.streaming[v] = if flit.kind().is_tail() { None } else { Some(vc) };
                self.routers[rel].accept_flit(sh.mesh, sh.cfg, Dir::Local, flit, cycle, cap);
                self.lane.buffered += 1;
                self.ni_backlogs[rel] -= 1;
                self.lane.stats.ni_drained += 1;
                self.lane.stats.injected_flits += 1;
                self.mark_router(node);
                self.nis[rel].rr = (v + 1) % vnets;
                pushed = true;
                break;
            }
            if !pushed {
                break;
            }
        }
        self.ni_backlogs[rel] > 0
    }

    /// Pre-Phase-4 retire drain: removes reassembly entries for packets
    /// whose tail another shard dropped this cycle in its Phase 2 —
    /// before this shard's Phase 4 can eject more of their flits, exactly
    /// the serial remove-before-eject order.
    fn phase4_retires(&mut self, sh: &SharedCtx<'_>) {
        for from in 0..sh.tiles {
            if from == self.tile {
                continue;
            }
            let mut cell = lock(&sh.mail[from * sh.tiles + self.tile]);
            for pid in cell.retire.drain(..) {
                if let Some(partial) = self.lane.reassembly.remove(&pid) {
                    if let Some(head) = partial.head {
                        self.lane.freed.push(head.payload);
                    }
                }
            }
        }
    }

    /// Phase 4: router pipelines for the shard's worklist, ascending,
    /// survivors retained in order.
    fn phase4_routers(&mut self, sh: &SharedCtx<'_>, cycle: u64, tracer: &mut TracerHandle) {
        debug_assert!(self.lane.active_scratch.is_empty());
        std::mem::swap(&mut self.lane.active, &mut self.lane.active_scratch);
        let mut batch = std::mem::take(&mut self.lane.active_scratch);
        batch.sort_unstable();
        for &r in &batch {
            debug_assert!(self.work[r - self.node_start], "worklist entry without its flag");
            let still = self.run_router(sh, r, cycle, tracer);
            self.work[r - self.node_start] = still;
            if still {
                self.lane.active.push(r);
            }
        }
        batch.clear();
        self.lane.active_scratch = batch;
    }

    /// The sharded `Network::run_router` body.
    fn run_router(
        &mut self,
        sh: &SharedCtx<'_>,
        r: usize,
        cycle: u64,
        tracer: &mut TracerHandle,
    ) -> bool {
        let rel = r - self.node_start;
        let mut down = Router::NO_DOWN_PORTS;
        if sh.use_down {
            if let Some(f) = sh.fault {
                for d in Dir::ROUTER_DIRS {
                    if let Some(lid) = sh.link_of[r][d.index()] {
                        down[d.index()] = f.link_down(lid, cycle);
                    }
                }
            }
        }
        let mut departures = std::mem::take(&mut self.lane.departures);
        debug_assert!(departures.is_empty());
        {
            // Route computation happened eagerly at head acceptance.
            let router = &mut self.routers[rel];
            router.vc_allocate(sh.cfg, cycle, tracer);
            router.switch_allocate_into(sh.cfg, cycle, &down, &mut departures);
        }
        if !departures.is_empty() {
            self.xbar[rel].record(true);
            self.lane.stats.crossbar_transfers += departures.len() as u64;
        }
        for dep in departures.drain(..) {
            self.lane.buffered -= 1;
            if dep.in_port != Dir::Local {
                let upstream = sh
                    .mesh
                    .neighbor(NodeId::new(r), dep.in_port)
                    .expect("flit arrived from a connected port");
                self.send_credit(sh, CreditMsg {
                    router: upstream.index(),
                    port: dep.in_port.opposite(),
                    vc: dep.in_vc,
                    frees_vc: dep.was_tail,
                });
            }
            if dep.out_port == Dir::Local {
                self.eject(r, dep.flit, cycle);
            } else {
                let lid = sh.link_of[r][dep.out_port.index()]
                    .expect("departure through a connected port");
                let rel_lid = lid - self.links_base;
                self.linkser[rel_lid].record(true);
                let to = self.links[rel_lid].to_router;
                let reader = shard_of(sh.node_bounds, to);
                if reader == self.tile {
                    debug_assert!(
                        self.links[rel_lid].slot.is_none(),
                        "link carries one flit per cycle"
                    );
                    self.links[rel_lid].slot = Some(dep.flit);
                    self.lane.occupied_links.push(lid);
                } else {
                    let in_port = self.links[rel_lid].in_port;
                    lock(&sh.mail[self.tile * sh.tiles + reader]).flits.push(BoundaryFlit {
                        lid,
                        to,
                        in_port,
                        flit: dep.flit,
                    });
                }
            }
        }
        self.lane.departures = departures;
        self.routers[rel].buffered_flits() > 0
    }

    /// The sharded `Network::eject` body (no tracer events). Payload
    /// resolution needs the pool, which lives on the serial `Network`, so
    /// a completed packet is staged for the batch epilogue instead of
    /// being built here.
    fn eject(&mut self, node: usize, flit: Flit, cycle: u64) {
        let pid = flit.packet_id;
        let is_tail = flit.kind().is_tail();
        let entry = self
            .lane
            .reassembly
            .entry(pid)
            .or_insert(Partial { head: None, flits: 0, corrupted: false, dst: node });
        entry.flits += 1;
        entry.corrupted |= flit.corrupted();
        if flit.kind().is_head() {
            match &entry.head {
                Some(kept) => {
                    self.lane.stats.protocol_errors.duplicate_head += 1;
                    // A true duplicate shares the kept head's ref (one
                    // pool insert per packet); free only a genuinely
                    // distinct orphaned slot.
                    if kept.payload != flit.payload {
                        self.lane.freed.push(flit.payload);
                    }
                }
                None => entry.head = Some(flit),
            }
        }
        if is_tail {
            let Some(partial) = self.lane.reassembly.remove(&pid) else { return };
            let Some(head) = partial.head else {
                self.lane.stats.protocol_errors.tail_without_head += 1;
                self.lane.stats.lost_packets += 1;
                return;
            };
            self.lane.ejections.push(StagedEject {
                node,
                delivered_at: cycle,
                flits: partial.flits,
                corrupted: partial.corrupted || head.corrupted(),
                head,
            });
        }
    }

    /// Phase 5: occupancy samples for the shard's routers. Bucket counts
    /// commute across shards, so the merged CDF equals the serial one.
    fn phase5_occupancy(&mut self, sh: &SharedCtx<'_>) {
        let zeros = ((self.node_end - self.node_start) - self.lane.active.len()) as u64;
        debug_assert_eq!(
            zeros,
            self.routers.iter().filter(|r| r.buffered_flits() == 0).count() as u64,
            "post-Phase-4 worklist must equal the set of occupied routers"
        );
        for i in 0..self.lane.active.len() {
            let r = self.lane.active[i];
            let buffered = self.routers[r - self.node_start].buffered_flits();
            debug_assert!(buffered > 0);
            self.lane.stats.occupancy.record(buffered as f64 / sh.per_router_capacity);
        }
        self.lane.stats.occupancy.record_zeros(zeros);
    }

    /// Event-mode quiescence vote input: own worklists plus every inbound
    /// mailbox cell (all peers' sends completed before the vote barrier).
    fn has_work(&self, sh: &SharedCtx<'_>) -> bool {
        if self.lane.has_own_work() {
            return true;
        }
        (0..sh.tiles).any(|from| !lock(&sh.mail[from * sh.tiles + self.tile]).is_empty())
    }
}

/// One worker thread's batch loop: `max_cycles` barrier-synchronized
/// cycles, breaking early (event mode only) once every shard votes
/// quiescent. All workers observe identical votes, so they break at the
/// same cycle; worker 0 publishes the count.
fn worker(mut ctx: WorkerCtx<'_>, sh: &SharedCtx<'_>) {
    let cap = sh.cfg.buffers_per_vc as usize;
    let mut tracer = TracerHandle::Nop;
    let mut in_window = sh.start_in_window;
    let mut done = sh.max_cycles;
    for i in 0..sh.max_cycles {
        let cycle = sh.start_cycle + i + 1;
        ctx.phase1_credits(sh);
        sh.barrier.wait();
        ctx.phase2_links(sh, cycle, cap);
        ctx.phase3_ni(sh, cycle);
        sh.barrier.wait();
        ctx.phase4_retires(sh);
        ctx.phase4_routers(sh, cycle, &mut tracer);
        ctx.phase5_occupancy(sh);
        // The per-worker mirror of `NetStats::end_cycle`: every worker
        // advances the same in-window count, so the rolls land on the
        // same cycles as the serial loop's.
        in_window += 1;
        if in_window >= sh.window {
            for s in ctx.xbar.iter_mut() {
                s.roll(cycle);
            }
            for s in ctx.linkser.iter_mut() {
                s.roll(cycle);
            }
            in_window = 0;
        }
        sh.barrier.wait();
        if sh.event {
            sh.busy[ctx.tile].store(ctx.has_work(sh), Ordering::SeqCst);
            sh.barrier.wait();
            if sh.busy.iter().all(|b| !b.load(Ordering::SeqCst)) {
                done = i + 1;
                break;
            }
        }
    }
    if ctx.tile == 0 {
        sh.completed.store(done, Ordering::SeqCst);
    }
}

/// Steps the network up to `max_cycles` cycles with one scoped worker
/// thread per shard, then folds the per-shard stats deltas back into the
/// network totals in shard-index order. Returns the cycles actually
/// stepped (fewer than `max_cycles` only in event mode, when every shard
/// went quiescent — the caller's clock-jump logic takes over).
pub(super) fn step_batch<P>(net: &mut Network<P>, max_cycles: u64) -> u64 {
    if max_cycles == 0 {
        return 0;
    }
    let Some(mut sh) = net.sharding.take() else { return 0 };
    for lane in &mut sh.lanes {
        lane.stats = LaneStats::default();
    }
    let tiles = sh.tiles;
    let start_cycle = net.cycle;
    let window = net.stats.sample_window();
    let start_in_window = net.stats.cycles_in_window();
    let use_down = net.fault.as_ref().is_some_and(FaultState::has_down_windows);
    let per_router_capacity = net.buffer_capacity as f64 / net.routers.len() as f64;
    let barrier = Barrier::new(tiles);
    let completed = AtomicU64::new(max_cycles);
    {
        let (crossbar, linkser) = net.stats.series_mut();
        let mut crossbar_s = split_ranges(crossbar, &sh.node_bounds).into_iter();
        let mut linkser_s = split_ranges(linkser, &sh.link_bounds).into_iter();
        let mut routers_s = split_ranges(&mut net.routers, &sh.node_bounds).into_iter();
        let mut nis_s = split_ranges(&mut net.nis, &sh.node_bounds).into_iter();
        let mut work_s = split_ranges(&mut net.work, &sh.node_bounds).into_iter();
        let mut ni_flag_s = split_ranges(&mut net.ni_flag, &sh.node_bounds).into_iter();
        let mut ni_backlogs_s = split_ranges(&mut net.ni_backlogs, &sh.node_bounds).into_iter();
        let mut links_s = split_ranges(&mut net.links, &sh.link_bounds).into_iter();
        let shared = SharedCtx {
            cfg: &net.cfg,
            mesh: &net.mesh,
            link_of: &net.link_of,
            fault: net.fault.as_ref(),
            mail: &sh.mail,
            busy: &sh.busy,
            node_bounds: &sh.node_bounds,
            barrier: &barrier,
            completed: &completed,
            tiles,
            start_cycle,
            max_cycles,
            use_down,
            event: net.event,
            per_router_capacity,
            window,
            start_in_window,
        };
        let mut ctxs = Vec::with_capacity(tiles);
        for (t, lane) in sh.lanes.iter_mut().enumerate() {
            ctxs.push(WorkerCtx {
                tile: t,
                node_start: sh.node_bounds[t],
                node_end: sh.node_bounds[t + 1],
                links_base: sh.link_bounds[t],
                routers: routers_s.next().expect("split covers every tile"),
                nis: nis_s.next().expect("split covers every tile"),
                work: work_s.next().expect("split covers every tile"),
                ni_flag: ni_flag_s.next().expect("split covers every tile"),
                ni_backlogs: ni_backlogs_s.next().expect("split covers every tile"),
                links: links_s.next().expect("split covers every tile"),
                xbar: crossbar_s.next().expect("split covers every tile"),
                linkser: linkser_s.next().expect("split covers every tile"),
                lane,
            });
        }
        std::thread::scope(|scope| {
            for ctx in ctxs {
                let shared = &shared;
                scope.spawn(move || worker(ctx, shared));
            }
        });
    }
    let done = completed.load(Ordering::SeqCst);
    debug_assert!(done >= 1 && done <= max_cycles);
    net.cycle = start_cycle + done;
    net.stats.set_cycles_in_window((start_in_window + done) % window);
    let mut buffered = 0;
    for lane in &mut sh.lanes {
        buffered += lane.buffered;
        {
            let d = &lane.stats;
            net.stats.occupancy.merge(&d.occupancy);
            net.stats.injected_flits += d.injected_flits;
            net.stats.crossbar_transfers += d.crossbar_transfers;
            net.stats.protocol_errors.merge(&d.protocol_errors);
            net.lost_packets += d.lost_packets;
            net.ni_backlog_total -= d.ni_drained;
            if let Some(f) = net.fault.as_mut() {
                f.merge_counters(&d.fault);
            }
        }
        // Deliveries and head-destruction releases touch the payload
        // pool, which only the serial epilogue may do; lanes resolve in
        // shard-index order, so slot recycling stays deterministic.
        resolve_pool_work(net, lane);
    }
    net.buffered_total = buffered;
    net.sharding = Some(sh);
    done
}
