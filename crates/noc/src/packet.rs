//! Packets: the unit of injection and delivery. The network segments a
//! packet into flits at the source NI and reassembles it at the destination.

use crate::flit::TrafficClass;
use crate::topology::NodeId;

/// Unique packet identifier, assigned by the network at injection.
pub type PacketId = u64;

/// A request to send a packet, handed to [`crate::Network::inject`].
#[derive(Clone, Debug)]
pub struct PacketSpec<P> {
    /// Source node (must own the injecting NI).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network to travel on.
    pub vnet: u8,
    /// Traffic class for arbitration and statistics.
    pub class: TrafficClass,
    /// Packet size in bytes; determines the flit count.
    pub size_bytes: u32,
    /// Opaque payload delivered with the packet.
    pub payload: P,
    /// Whether the packet rides a protected (ECC/ack-covered) channel:
    /// the fault layer exempts it from random drops and corruption when
    /// [`crate::FaultPlan::respect_protection`] is set.
    pub protected: bool,
}

impl<P> PacketSpec<P> {
    /// Creates an (unprotected) packet spec.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        vnet: u8,
        class: TrafficClass,
        size_bytes: u32,
        payload: P,
    ) -> Self {
        PacketSpec { src, dst, vnet, class, size_bytes, payload, protected: false }
    }

    /// Marks the packet as riding a protected channel.
    #[must_use]
    pub fn with_protected(mut self) -> Self {
        self.protected = true;
        self
    }
}

/// A delivered packet, returned by [`crate::Network::drain_ejected`].
#[derive(Clone, Debug)]
pub struct Packet<P> {
    /// Packet id assigned at injection.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node (where it was ejected).
    pub dst: NodeId,
    /// Virtual network it travelled on.
    pub vnet: u8,
    /// Traffic class.
    pub class: TrafficClass,
    /// Cycle the packet was queued at the source NI.
    pub queued_at: u64,
    /// Cycle the tail flit was ejected at the destination.
    pub delivered_at: u64,
    /// Router hops the head flit took.
    pub hops: u32,
    /// Whether a fault corrupted this packet's payload in flight.
    ///
    /// The network delivers corrupted packets rather than hiding them;
    /// consumers are expected to verify payload checksums and treat the
    /// mark (or a checksum mismatch) as a loss.
    pub corrupted: bool,
    /// The payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// End-to-end latency in cycles, including source queueing.
    pub fn latency(&self) -> u64 {
        self.delivered_at.saturating_sub(self.queued_at)
    }
}
