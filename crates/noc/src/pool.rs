//! Slab-style payload storage for in-flight packets.
//!
//! Flits used to carry an `Option<P>` payload inline, which sized every
//! body/tail flit to the payload type and made each buffer move copy a
//! payload-wide struct. The pool hoists payloads out of the flit stream:
//! a packet's payload lives in one [`PayloadPool`] slot for its whole
//! flight, and the head flit carries only a small generational
//! [`PayloadRef`]. Body/tail flits carry [`PayloadRef::NONE`].
//!
//! Generations catch stale references: taking a slot bumps its generation,
//! so a ref held past its payload's lifetime resolves to `None` instead of
//! aliasing a recycled slot.
//!
//! Allocation and release happen only in serial context (packet injection,
//! ejection, and the sharded stepper's epilogue), so slot assignment is
//! deterministic and identical across all stepping modes — and slot
//! indices never appear in any observable statistic, so pooling cannot
//! perturb bit-identity.

use std::fmt;

/// A generational handle into a [`PayloadPool`].
///
/// Head flits carry the ref for their packet's payload; every other flit
/// carries [`PayloadRef::NONE`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PayloadRef {
    slot: u32,
    gen: u32,
}

impl PayloadRef {
    /// The null reference carried by body/tail flits.
    pub const NONE: PayloadRef = PayloadRef { slot: u32::MAX, gen: 0 };

    /// Whether this is the null reference.
    pub fn is_none(self) -> bool {
        self.slot == u32::MAX
    }

    /// Whether this reference points at a pool slot.
    pub fn is_some(self) -> bool {
        !self.is_none()
    }
}

/// The pool is full: every slot is live and the configured capacity limit
/// forbids growth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PoolExhausted {
    /// The capacity limit that was hit.
    pub capacity: usize,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload pool exhausted at {} slots", self.capacity)
    }
}

impl std::error::Error for PoolExhausted {}

/// Slab allocator for in-flight packet payloads.
///
/// Freed slots go on a free list and are reused before the slab grows, so
/// a warmed pool performs zero heap allocations in steady state. Growth
/// past the initial capacity is counted in `growth_events` (visible via
/// [`crate::Network::payload_pool_growth_events`]); an optional hard limit
/// turns further growth into a typed [`PoolExhausted`] error instead of an
/// allocation — never a silent wrap or a release-mode panic.
#[derive(Clone, Debug)]
pub struct PayloadPool<P> {
    slots: Vec<Option<P>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    growth_events: u64,
    /// Hard slot cap. `u32::MAX as usize - 1` by default: slot `u32::MAX`
    /// is the [`PayloadRef::NONE`] sentinel and must never be handed out.
    max_slots: usize,
}

impl<P> Default for PayloadPool<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PayloadPool<P> {
    /// An empty pool with no slots and the default (sentinel-bounded) cap.
    pub fn new() -> Self {
        PayloadPool {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            growth_events: 0,
            max_slots: u32::MAX as usize - 1,
        }
    }

    /// Grows the slab to at least `capacity` empty slots without counting
    /// growth events — deliberate warmup, not demand growth.
    pub fn preallocate(&mut self, capacity: usize) {
        let capacity = capacity.min(self.max_slots);
        while self.slots.len() < capacity {
            let slot = self.slots.len() as u32;
            self.slots.push(None);
            self.gens.push(0);
            self.free.push(slot);
        }
    }

    /// Caps the pool at `max_slots`; inserts beyond the cap fail with
    /// [`PoolExhausted`]. The cap is clamped below the `NONE` sentinel.
    pub fn set_limit(&mut self, max_slots: usize) {
        self.max_slots = max_slots.min(u32::MAX as usize - 1);
    }

    /// Stores `payload`, returning its handle.
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when every slot is live and the cap forbids growth.
    pub fn insert(&mut self, payload: P) -> Result<PayloadRef, PoolExhausted> {
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                if self.slots.len() >= self.max_slots {
                    return Err(PoolExhausted { capacity: self.max_slots });
                }
                let slot = self.slots.len() as u32;
                self.slots.push(Some(payload));
                self.gens.push(0);
                self.growth_events += 1;
                slot
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        Ok(PayloadRef { slot, gen: self.gens[slot as usize] })
    }

    /// Removes and returns the payload behind `r`.
    ///
    /// Returns `None` for the null ref, a stale generation, or an already
    /// emptied slot.
    pub fn take(&mut self, r: PayloadRef) -> Option<P> {
        if r.is_none() {
            return None;
        }
        let idx = r.slot as usize;
        if idx >= self.slots.len() || self.gens[idx] != r.gen {
            return None;
        }
        let payload = self.slots[idx].take()?;
        // Wrapping is safe: a stale ref with a recycled generation would
        // need 2^32 reuses of one slot while the ref is still held, and
        // every holder (a head flit) lives far shorter than that.
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(r.slot);
        self.live -= 1;
        Some(payload)
    }

    /// Drops the payload behind `r`, if any — the release path for heads
    /// destroyed in flight (fault drops, duplicate heads).
    pub fn release(&mut self, r: PayloadRef) {
        drop(self.take(r));
    }

    /// Payloads currently stored.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Maximum simultaneous live payloads ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Times the slab grew on demand (insert with an empty free list).
    /// Zero after warmup means the loaded steady state allocates nothing.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }

    /// Total slots (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut pool: PayloadPool<String> = PayloadPool::new();
        let a = pool.insert("a".to_string()).unwrap();
        let b = pool.insert("b".to_string()).unwrap();
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.take(b).as_deref(), Some("b"));
        assert_eq!(pool.take(a).as_deref(), Some("a"));
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.high_water(), 2);
        assert_eq!(pool.growth_events(), 2);
    }

    #[test]
    fn stale_and_null_refs_resolve_to_none() {
        let mut pool: PayloadPool<u64> = PayloadPool::new();
        let r = pool.insert(7).unwrap();
        assert_eq!(pool.take(r), Some(7));
        assert_eq!(pool.take(r), None, "double take is stale");
        let recycled = pool.insert(8).unwrap();
        assert_eq!(pool.take(r), None, "old gen cannot alias the recycled slot");
        assert_eq!(pool.take(recycled), Some(8));
        assert_eq!(pool.take(PayloadRef::NONE), None);
        pool.release(PayloadRef::NONE);
    }

    #[test]
    fn free_list_reuse_avoids_growth() {
        let mut pool: PayloadPool<u64> = PayloadPool::new();
        pool.preallocate(4);
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.growth_events(), 0, "preallocation is not demand growth");
        let mut refs: Vec<PayloadRef> = (0..4).map(|i| pool.insert(i).unwrap()).collect();
        for _ in 0..100 {
            let r = refs.pop().unwrap();
            let v = pool.take(r).unwrap();
            refs.push(pool.insert(v).unwrap());
        }
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.growth_events(), 0);
        assert_eq!(pool.high_water(), 4);
    }

    #[test]
    fn limit_turns_growth_into_typed_error() {
        let mut pool: PayloadPool<u64> = PayloadPool::new();
        pool.set_limit(2);
        let a = pool.insert(1).unwrap();
        let _b = pool.insert(2).unwrap();
        assert_eq!(pool.insert(3), Err(PoolExhausted { capacity: 2 }));
        assert!(pool.insert(3).unwrap_err().to_string().contains("exhausted"));
        pool.release(a);
        assert!(pool.insert(3).is_ok(), "freed slots come back under the cap");
    }
}
