//! The virtual-channel router microarchitecture: input units, route
//! computation, separable VC / switch allocation and the crossbar.
//!
//! Each router is a canonical input-queued VC router. Per cycle it performs,
//! in order: **RC** (route computation — performed once per packet, at head
//! arrival, and cached in the input-VC state), **VA** (virtual-channel
//! allocation, atomic — a downstream VC is granted only when idle and
//! drained) and **SA/ST** (separable two-stage switch allocation followed
//! by crossbar traversal). Pipeline depth is modelled by gating switch
//! allocation until a flit has been buffered for `pipeline_stages - 1`
//! cycles, reproducing the 2/3/4-cycle per-hop latencies of the BiNoCHS /
//! AxNoC / DAPPER baselines.
//!
//! When [`NocConfig::priority_arbitration`] is set, both allocators
//! round-robin over communication-class requests first and consider
//! SnackNoC instruction/data flits only if no communication flit requests
//! the resource (paper §III-D3).
//!
//! ## Bitmask-driven allocation
//!
//! The allocators never scan all ports × VCs. Four per-port `u64` bitmasks
//! — `routed_mask` / `active_mask` over input VCs and `free_mask` /
//! `credit_mask` over output VCs — are maintained at every state
//! transition (head arrival, VC grant, tail traversal, credit return, VC
//! free) and iterated with `trailing_zeros`, so a cycle's allocation work
//! is proportional to the *resident* packets, not the configured resource
//! count. [`NocConfig::validate`] caps `vcs_per_port` at 64 to keep one
//! word per port. Debug builds cross-check every mask against a fresh
//! scan of the underlying state, exactly like the incremental occupancy
//! counters elsewhere in the crate.

use crate::config::NocConfig;
use crate::flit::{Flit, TrafficClass};
use crate::routing::Dir;
use crate::topology::{Mesh, NodeId};
use snacknoc_trace::{EventKind, TracerHandle};
use std::collections::VecDeque;

/// State of an input virtual channel's resident packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VcState {
    /// No packet resident.
    Idle,
    /// Head flit arrived and was routed; waiting for an output VC. The
    /// cached `out_port` is the packet's route decision for this hop —
    /// computed once, never re-derived per cycle.
    Routed { out_port: Dir },
    /// Output VC allocated; flits may compete for the switch.
    Active { out_port: Dir, out_vc: u8 },
}

/// One input virtual channel: a FIFO flit buffer plus packet state.
#[derive(Clone, Debug)]
struct InputVc {
    buf: VecDeque<Flit>,
    state: VcState,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc { buf: VecDeque::with_capacity(depth), state: VcState::Idle }
    }
}

/// Credit/allocation state for one downstream virtual channel.
#[derive(Clone, Copy, Debug)]
struct OutputVc {
    /// Whether the downstream VC is unallocated (atomic VC reuse).
    free: bool,
    /// Buffer slots available downstream.
    credits: u8,
}

/// The bits `lo..hi` of a `u64`, set.
fn range_mask(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi <= 64);
    let below_hi = if hi == 64 { u64::MAX } else { (1u64 << hi) - 1 };
    let below_lo = if lo == 64 { u64::MAX } else { (1u64 << lo) - 1 };
    below_hi & !below_lo
}

/// A flit leaving the router through the crossbar this cycle.
#[derive(Debug)]
pub(crate) struct Departure {
    /// The flit (already stamped with its downstream VC).
    pub flit: Flit,
    /// Output port it leaves through (`Local` = ejection).
    pub out_port: Dir,
    /// Input port it occupied (`Local` = it was injected here).
    pub in_port: Dir,
    /// Input VC it occupied, for the upstream credit return.
    pub in_vc: u8,
    /// Whether this was the packet's tail (frees the upstream output VC).
    pub was_tail: bool,
}

/// A single mesh router with its input units, allocators and crossbar-side
/// output bookkeeping.
#[derive(Clone, Debug)]
pub(crate) struct Router {
    node: NodeId,
    /// `inputs[port][vc]`.
    inputs: Vec<Vec<InputVc>>,
    /// `outputs[port][vc]`; empty vec for unconnected ports. The `Local`
    /// output (ejection) has no VC/credit limits and is handled specially.
    outputs: Vec<Vec<OutputVc>>,
    /// Whether each output port has a link (Local is always "connected").
    connected: [bool; Dir::COUNT],
    /// Per-input-port bitmask of VCs in the `Routed` state (VA requests).
    routed_mask: [u64; Dir::COUNT],
    /// Per-input-port bitmask of VCs in the `Active` state (SA candidates).
    active_mask: [u64; Dir::COUNT],
    /// Per-output-port bitmask of free (unallocated) downstream VCs.
    free_mask: [u64; Dir::COUNT],
    /// Per-output-port bitmask of downstream VCs holding ≥ 1 credit.
    credit_mask: [u64; Dir::COUNT],
    /// Round-robin pointer for VC allocation, over flattened (port, vc).
    va_rr: usize,
    /// Per-input-port round-robin pointer over VCs for SA stage 1.
    sa_in_rr: [usize; Dir::COUNT],
    /// Per-output-port round-robin pointer over input ports for SA stage 2.
    sa_out_rr: [usize; Dir::COUNT],
    /// Flits currently buffered across all input VCs.
    buffered: usize,
    /// Total router-to-router output VCs (constant after construction).
    useful_total: usize,
    /// Times a flit's hop counter saturated at `u32::MAX` instead of
    /// wrapping — nonzero only under pathological livelock, but counted
    /// rather than silently lost or panicked on.
    hops_saturations: u64,
}

impl Router {
    /// The all-clear down-link mask: every output port usable.
    pub(crate) const NO_DOWN_PORTS: [bool; Dir::COUNT] = [false; Dir::COUNT];

    pub(crate) fn new(cfg: &NocConfig, mesh: &Mesh, node: NodeId) -> Self {
        let vcs = cfg.vcs_per_port();
        let inputs = (0..Dir::COUNT)
            .map(|_| (0..vcs).map(|_| InputVc::new(cfg.buffers_per_vc as usize)).collect())
            .collect();
        let mut connected = [false; Dir::COUNT];
        connected[Dir::Local.index()] = true;
        let mut outputs: Vec<Vec<OutputVc>> = vec![Vec::new(); Dir::COUNT];
        let mut free_mask = [0u64; Dir::COUNT];
        let mut credit_mask = [0u64; Dir::COUNT];
        for d in Dir::ROUTER_DIRS {
            if mesh.neighbor(node, d).is_some() {
                connected[d.index()] = true;
                outputs[d.index()] =
                    vec![OutputVc { free: true, credits: cfg.buffers_per_vc }; vcs];
                // Every connected output VC starts free with a full credit
                // stock.
                free_mask[d.index()] = range_mask(0, vcs);
                credit_mask[d.index()] = range_mask(0, vcs);
            }
        }
        let useful_total: usize =
            Dir::ROUTER_DIRS.iter().map(|d| outputs[d.index()].len()).sum();
        Router {
            node,
            inputs,
            outputs,
            connected,
            routed_mask: [0; Dir::COUNT],
            active_mask: [0; Dir::COUNT],
            free_mask,
            credit_mask,
            va_rr: 0,
            sa_in_rr: [0; Dir::COUNT],
            sa_out_rr: [0; Dir::COUNT],
            buffered: 0,
            useful_total,
            hops_saturations: 0,
        }
    }

    /// Number of flits buffered in this router's input units.
    pub(crate) fn buffered_flits(&self) -> usize {
        self.buffered
    }

    /// Times a flit's hop counter saturated in this router (see
    /// [`crate::Network::hops_saturations`]).
    pub(crate) fn hops_saturations(&self) -> u64 {
        self.hops_saturations
    }

    /// Earliest `queued_at` among buffered flits — the age witness for
    /// stall reports. `None` when the router is empty.
    pub(crate) fn oldest_buffered_queued_at(&self) -> Option<u64> {
        self.inputs
            .iter()
            .flatten()
            .flat_map(|vc| vc.buf.iter().map(|f| f.queued_at))
            .min()
    }

    /// Input VCs holding a routed packet that has not yet been granted an
    /// output VC — the "starved" population in a stall report.
    pub(crate) fn routed_waiting_vcs(&self) -> usize {
        let fast: usize = self.routed_mask.iter().map(|m| m.count_ones() as usize).sum();
        debug_assert_eq!(
            fast,
            self.inputs
                .iter()
                .flatten()
                .filter(|vc| matches!(vc.state, VcState::Routed { .. }))
                .count(),
            "routed mask out of sync"
        );
        fast
    }

    /// Writes an arriving flit into its input buffer. A head flit landing
    /// in an idle VC is route-computed *here*, once, and the decision is
    /// cached in the VC state — no per-cycle RC stage exists. (A VC left
    /// by a tail is provably empty, so a head can only ever arrive into an
    /// idle, empty VC.)
    ///
    /// # Panics
    ///
    /// Panics (debug) if credit-based flow control was violated.
    pub(crate) fn accept_flit(
        &mut self,
        mesh: &Mesh,
        cfg: &NocConfig,
        in_port: Dir,
        mut flit: Flit,
        cycle: u64,
        cap: usize,
    ) {
        flit.buffered_at = cycle;
        let vc_idx = flit.vc() as usize;
        let vc = &mut self.inputs[in_port.index()][vc_idx];
        debug_assert!(vc.buf.len() < cap, "input buffer overflow: credit protocol violated");
        if vc.state == VcState::Idle {
            debug_assert!(vc.buf.is_empty(), "idle VC with buffered flits");
            debug_assert!(flit.kind().is_head(), "non-head flit arrived at an idle VC");
            let out_port = cfg.routing.route(mesh, self.node, flit.dst());
            vc.state = VcState::Routed { out_port };
            self.routed_mask[in_port.index()] |= 1u64 << vc_idx;
        }
        vc.buf.push_back(flit);
        self.buffered += 1;
    }

    /// Whether the NI can start/continue streaming into a Local input VC.
    pub(crate) fn local_vc_accepts(&self, vc: usize, needs_idle: bool, cap: usize) -> bool {
        let v = &self.inputs[Dir::Local.index()][vc];
        if needs_idle {
            v.state == VcState::Idle && v.buf.is_empty()
        } else {
            v.buf.len() < cap
        }
    }

    /// Restores one credit for `(out_port, vc)` after a downstream buffer
    /// slot drained.
    pub(crate) fn return_credit(&mut self, out_port: Dir, vc: u8, max: u8) {
        let o = &mut self.outputs[out_port.index()][vc as usize];
        o.credits += 1;
        self.credit_mask[out_port.index()] |= 1u64 << vc;
        debug_assert!(o.credits <= max, "credit overflow");
    }

    /// Marks `(out_port, vc)` free after the downstream VC drained a tail.
    pub(crate) fn free_output_vc(&mut self, out_port: Dir, vc: u8) {
        self.outputs[out_port.index()][vc as usize].free = true;
        self.free_mask[out_port.index()] |= 1u64 << vc;
    }

    /// Counts `(free, total)` *useful* free output VCs — free and holding at
    /// least one credit — across the router-to-router output ports. This is
    /// the ALO-style congestion signal the SnackNoC CPM monitors
    /// (paper §III-C2, after Baydal et al.). A handful of popcounts: the
    /// free/credit bitmasks are maintained at every transition instead of
    /// rescanned per probe.
    pub(crate) fn useful_free_output_vcs(&self) -> (usize, usize) {
        let free: usize = Dir::ROUTER_DIRS
            .iter()
            .map(|d| (self.free_mask[d.index()] & self.credit_mask[d.index()]).count_ones() as usize)
            .sum();
        debug_assert_eq!(
            (free, self.useful_total),
            self.recount_useful_free_output_vcs(),
            "free/credit bitmasks out of sync"
        );
        (free, self.useful_total)
    }

    /// Reference recount of the congestion probe (debug verification of
    /// the bitmasks).
    fn recount_useful_free_output_vcs(&self) -> (usize, usize) {
        let mut free = 0;
        let mut total = 0;
        for d in Dir::ROUTER_DIRS {
            for vc in &self.outputs[d.index()] {
                total += 1;
                if vc.free && vc.credits > 0 {
                    free += 1;
                }
            }
        }
        (free, total)
    }

    /// Debug cross-check: every bitmask agrees with a fresh scan of the
    /// state it summarizes.
    #[cfg(debug_assertions)]
    fn masks_consistent(&self) -> bool {
        for port in 0..Dir::COUNT {
            let mut routed = 0u64;
            let mut active = 0u64;
            for (i, vc) in self.inputs[port].iter().enumerate() {
                match vc.state {
                    VcState::Idle => {}
                    VcState::Routed { .. } => routed |= 1 << i,
                    VcState::Active { .. } => active |= 1 << i,
                }
            }
            if routed != self.routed_mask[port] || active != self.active_mask[port] {
                return false;
            }
            let mut free = 0u64;
            let mut credited = 0u64;
            for (i, o) in self.outputs[port].iter().enumerate() {
                if o.free {
                    free |= 1 << i;
                }
                if o.credits > 0 {
                    credited |= 1 << i;
                }
            }
            if free != self.free_mask[port] || credited != self.credit_mask[port] {
                return false;
            }
        }
        true
    }

    /// VA stage: grant free downstream VCs to routed packets, communication
    /// class first when priority arbitration is on. Each grant is reported
    /// to `tracer` (a no-op for [`TracerHandle::Nop`]).
    ///
    /// Iteration walks the `routed_mask` bits in the exact order the old
    /// flattened `(va_rr + step) % total` scan visited them: the pointer's
    /// port from its VC upward, every later port in full, then the
    /// pointer's port below the pointer.
    pub(crate) fn vc_allocate(&mut self, cfg: &NocConfig, cycle: u64, tracer: &mut TracerHandle) {
        #[cfg(debug_assertions)]
        debug_assert!(self.masks_consistent());
        let vcs = cfg.vcs_per_port();
        let total = Dir::COUNT * vcs;
        let passes: &[Option<bool>] = if cfg.priority_arbitration {
            // Pass 0: communication only; pass 1: snack only.
            &[Some(false), Some(true)]
        } else {
            &[None]
        };
        let p0 = self.va_rr / vcs;
        let v0 = self.va_rr % vcs;
        for &snack_pass in passes {
            for k in 0..=Dir::COUNT {
                let port = (p0 + k) % Dir::COUNT;
                let (lo, hi) = match k {
                    0 => (v0, vcs),
                    _ if k == Dir::COUNT => (0, v0),
                    _ => (0, vcs),
                };
                let mut bits = self.routed_mask[port] & range_mask(lo, hi);
                while bits != 0 {
                    let vc_idx = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let vc = &self.inputs[port][vc_idx];
                    let VcState::Routed { out_port } = vc.state else {
                        debug_assert!(false, "routed mask bit on a non-routed VC");
                        continue;
                    };
                    let Some(head) = vc.buf.front() else { continue };
                    if let Some(want_snack) = snack_pass {
                        if head.class().is_snack() != want_snack {
                            continue;
                        }
                    }
                    let out_vc = if out_port == Dir::Local {
                        // Ejection has no VC contention: the NI reassembles
                        // any number of interleaved packets.
                        Some(head.vc())
                    } else {
                        let vnet = head.vnet() as usize;
                        let lo = vnet * cfg.vcs_per_vnet as usize;
                        let hi = lo + cfg.vcs_per_vnet as usize;
                        let free = self.free_mask[out_port.index()] & range_mask(lo, hi);
                        (free != 0).then(|| free.trailing_zeros() as u8)
                    };
                    if let Some(out_vc) = out_vc {
                        tracer.record_with(cycle, || EventKind::VcAlloc {
                            router: self.node.index() as u32,
                            in_port: port as u8,
                            in_vc: vc_idx as u8,
                            out_port: out_port.index() as u8,
                            out_vc,
                        });
                        if out_port != Dir::Local {
                            self.outputs[out_port.index()][out_vc as usize].free = false;
                            self.free_mask[out_port.index()] &= !(1u64 << out_vc);
                        }
                        self.inputs[port][vc_idx].state = VcState::Active { out_port, out_vc };
                        self.routed_mask[port] &= !(1u64 << vc_idx);
                        self.active_mask[port] |= 1u64 << vc_idx;
                    }
                }
            }
        }
        self.va_rr = (self.va_rr + 1) % total;
    }

    /// SA + ST: separable two-stage switch allocation, then crossbar
    /// traversal of the winners. Returns the departing flits.
    ///
    /// `down` masks output ports whose link is inside a fault window:
    /// flits headed there are simply not ready, exactly as if the
    /// downstream receiver stopped returning credits. Pass
    /// [`Router::NO_DOWN_PORTS`] when fault injection is off.
    ///
    /// Convenience wrapper over [`Router::switch_allocate_into`]; the
    /// network hot loop uses the `_into` form with a reused scratch
    /// buffer, so this allocating form survives only for unit tests.
    #[cfg(test)]
    pub(crate) fn switch_allocate(
        &mut self,
        cfg: &NocConfig,
        cycle: u64,
        down: &[bool; Dir::COUNT],
    ) -> Vec<Departure> {
        let mut departures = Vec::new();
        self.switch_allocate_into(cfg, cycle, down, &mut departures);
        departures
    }

    /// [`Router::switch_allocate`] writing into a caller-owned scratch
    /// buffer — the allocation-free hot-loop entry point. `out` is
    /// appended to (the network's per-cycle loop hands in a cleared,
    /// capacity-warm scratch vector).
    pub(crate) fn switch_allocate_into(
        &mut self,
        cfg: &NocConfig,
        cycle: u64,
        down: &[bool; Dir::COUNT],
        out: &mut Vec<Departure>,
    ) {
        #[cfg(debug_assertions)]
        debug_assert!(self.masks_consistent());
        // A flit spends `pipeline_stages - 1` cycles in the router before
        // link traversal, giving the per-hop latencies of paper §III-D2.
        let extra = cfg.pipeline_extra();
        // Stage 1: each input port nominates one ready VC.
        let mut nominees: [Option<usize>; Dir::COUNT] = [None; Dir::COUNT];
        for (port, nominee) in nominees.iter_mut().enumerate() {
            *nominee = self.pick_input_vc(port, cycle, extra, cfg.priority_arbitration, down);
        }
        // Stage 2: each output port grants one nominee.
        for out_port in 0..Dir::COUNT {
            if !self.connected[out_port] {
                continue;
            }
            let winner = self.pick_output_winner(out_port, &nominees, cfg.priority_arbitration);
            let Some(in_port) = winner else { continue };
            let vc_idx = nominees[in_port.index()].expect("winner must have a nominee");
            nominees[in_port.index()] = None; // an input port sends one flit per cycle
            let dep = self.traverse(in_port, vc_idx);
            out.push(dep);
        }
    }

    /// Whether the `Active` VC `(port, idx)` can traverse this cycle, and
    /// with what class.
    fn vc_ready(
        &self,
        port: usize,
        idx: usize,
        cycle: u64,
        extra: u64,
        down: &[bool; Dir::COUNT],
    ) -> Option<TrafficClass> {
        let vc = &self.inputs[port][idx];
        let VcState::Active { out_port, out_vc } = vc.state else { return None };
        let flit = vc.buf.front()?;
        if cycle < flit.buffered_at + extra {
            return None;
        }
        if out_port != Dir::Local {
            if down[out_port.index()] {
                return None;
            }
            if self.credit_mask[out_port.index()] & (1u64 << out_vc) == 0 {
                return None;
            }
        }
        Some(flit.class())
    }

    /// Picks the input VC that port `port` nominates for the switch,
    /// walking the `active_mask` bits in round-robin order.
    fn pick_input_vc(
        &mut self,
        port: usize,
        cycle: u64,
        extra: u64,
        priority: bool,
        down: &[bool; Dir::COUNT],
    ) -> Option<usize> {
        let vcs = self.inputs[port].len();
        let rr = self.sa_in_rr[port];
        let passes: &[Option<bool>] = if priority { &[Some(false), Some(true)] } else { &[None] };
        for &snack_pass in passes {
            for (lo, hi) in [(rr, vcs), (0, rr)] {
                let mut bits = self.active_mask[port] & range_mask(lo, hi);
                while bits != 0 {
                    let idx = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let Some(class) = self.vc_ready(port, idx, cycle, extra, down) else {
                        continue;
                    };
                    if let Some(want_snack) = snack_pass {
                        if class.is_snack() != want_snack {
                            continue;
                        }
                    }
                    self.sa_in_rr[port] = (idx + 1) % vcs;
                    return Some(idx);
                }
            }
        }
        None
    }

    /// The class nominee `in_port` requests output `out` with, if any.
    fn nominee_class(
        &self,
        out: usize,
        in_port: usize,
        nominees: &[Option<usize>; Dir::COUNT],
    ) -> Option<TrafficClass> {
        let vc_idx = nominees[in_port]?;
        let vc = &self.inputs[in_port][vc_idx];
        let VcState::Active { out_port, .. } = vc.state else { return None };
        if out_port.index() != out {
            return None;
        }
        vc.buf.front().map(|f| f.class())
    }

    /// Picks the winning input port for output `out` among the nominees.
    fn pick_output_winner(
        &mut self,
        out: usize,
        nominees: &[Option<usize>; Dir::COUNT],
        priority: bool,
    ) -> Option<Dir> {
        let passes: &[Option<bool>] = if priority { &[Some(false), Some(true)] } else { &[None] };
        for &snack_pass in passes {
            for step in 0..Dir::COUNT {
                let in_port = (self.sa_out_rr[out] + step) % Dir::COUNT;
                if let Some(class) = self.nominee_class(out, in_port, nominees) {
                    if let Some(want_snack) = snack_pass {
                        if class.is_snack() != want_snack {
                            continue;
                        }
                    }
                    self.sa_out_rr[out] = (in_port + 1) % Dir::COUNT;
                    return Some(Dir::from_index(in_port));
                }
            }
        }
        None
    }

    /// ST: pops the granted flit, charges credits, advances VC state.
    fn traverse(&mut self, in_port: Dir, vc_idx: usize) -> Departure {
        let vc = &mut self.inputs[in_port.index()][vc_idx];
        let VcState::Active { out_port, out_vc } = vc.state else {
            unreachable!("traverse on non-active VC")
        };
        let mut flit = vc.buf.pop_front().expect("traverse on empty VC");
        self.buffered -= 1;
        let was_tail = flit.kind().is_tail();
        if was_tail {
            // Atomic VC reuse upstream guarantees the next packet's head
            // cannot be buffered yet — the invariant that makes routing at
            // head *arrival* (instead of a per-cycle RC stage) sound.
            debug_assert!(vc.buf.is_empty(), "flits buffered behind a departing tail");
            vc.state = VcState::Idle;
            self.active_mask[in_port.index()] &= !(1u64 << vc_idx);
        }
        if out_port != Dir::Local {
            // Atomic VC reuse: the output VC stays allocated until the
            // downstream input VC signals that the tail drained.
            let o = &mut self.outputs[out_port.index()][out_vc as usize];
            debug_assert!(o.credits > 0, "ST without credit");
            o.credits -= 1;
            if o.credits == 0 {
                self.credit_mask[out_port.index()] &= !(1u64 << out_vc);
            }
            if flit.hops == u32::MAX {
                self.hops_saturations += 1;
            } else {
                flit.hops += 1;
            }
            flit.set_vc(out_vc);
        }
        Departure { flit, out_port, in_port, in_vc: vc_idx as u8, was_tail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::pool::PayloadRef;

    fn test_cfg() -> NocConfig {
        NocConfig::default().with_vnets(1).with_vcs_per_vnet(2).with_buffers_per_vc(4)
    }

    fn flit(dst: NodeId, kind: FlitKind, class: TrafficClass, vc: u8) -> Flit {
        let mut f = Flit::new(
            0,
            0,
            kind,
            class,
            0,
            NodeId::new(0),
            dst,
            0,
            PayloadRef::NONE,
            false,
        );
        f.set_vc(vc);
        f
    }

    #[test]
    fn range_mask_covers_edges() {
        assert_eq!(range_mask(0, 0), 0);
        assert_eq!(range_mask(0, 1), 1);
        assert_eq!(range_mask(0, 64), u64::MAX);
        assert_eq!(range_mask(63, 64), 1 << 63);
        assert_eq!(range_mask(2, 5), 0b11100);
        assert_eq!(range_mask(64, 64), 0);
    }

    #[test]
    fn single_flit_departs_toward_destination() {
        let cfg = test_cfg();
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let f = flit(mesh.node_at(3, 1), FlitKind::HeadTail, TrafficClass::Communication, 0);
        r.accept_flit(&mesh, &cfg, Dir::West, f, 0, 4);
        assert_eq!(r.buffered_flits(), 1);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let deps = r.switch_allocate(&cfg, 10, &Router::NO_DOWN_PORTS);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].out_port, Dir::East);
        assert_eq!(deps[0].in_port, Dir::West);
        assert!(deps[0].was_tail);
        assert_eq!(deps[0].flit.hops(), 1);
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn ejection_at_destination() {
        let cfg = test_cfg();
        let mesh = Mesh::new(4, 4);
        let node = mesh.node_at(2, 2);
        let mut r = Router::new(&cfg, &mesh, node);
        r.accept_flit(
            &mesh,
            &cfg,
            Dir::North,
            flit(node, FlitKind::HeadTail, TrafficClass::Communication, 1),
            0,
            4,
        );
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let deps = r.switch_allocate(&cfg, 10, &Router::NO_DOWN_PORTS);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].out_port, Dir::Local);
        assert_eq!(deps[0].flit.hops(), 0, "ejection is not a hop");
    }

    #[test]
    fn pipeline_depth_gates_switch_allocation() {
        let cfg = test_cfg().with_pipeline_stages(4); // 3 router cycles buffered
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        r.accept_flit(
            &mesh,
            &cfg,
            Dir::West,
            flit(mesh.node_at(3, 1), FlitKind::HeadTail, TrafficClass::Communication, 0),
            10,
            4,
        );
        r.vc_allocate(&cfg, 10, &mut TracerHandle::Nop);
        assert!(r.switch_allocate(&cfg, 10, &Router::NO_DOWN_PORTS).is_empty(), "too early at t");
        assert!(r.switch_allocate(&cfg, 11, &Router::NO_DOWN_PORTS).is_empty(), "too early at t+1");
        assert!(r.switch_allocate(&cfg, 12, &Router::NO_DOWN_PORTS).is_empty(), "too early at t+2");
        assert_eq!(
            r.switch_allocate(&cfg, 13, &Router::NO_DOWN_PORTS).len(),
            1,
            "ready at t + (stages-1)"
        );
    }

    #[test]
    fn credits_block_traversal() {
        let cfg = test_cfg().with_buffers_per_vc(1);
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let dst = mesh.node_at(3, 1);
        // Two single-flit packets from different VCs toward the same output.
        r.accept_flit(&mesh, &cfg, Dir::West, flit(dst, FlitKind::HeadTail, TrafficClass::Communication, 0), 0, 1);
        r.accept_flit(&mesh, &cfg, Dir::North, flit(dst, FlitKind::HeadTail, TrafficClass::Communication, 0), 0, 1);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        // First wins the only free VC/credit pair on vc0; second got vc1.
        let d1 = r.switch_allocate(&cfg, 5, &Router::NO_DOWN_PORTS);
        assert_eq!(d1.len(), 1, "both VCs have a credit, but one output port grant per cycle");
        let d2 = r.switch_allocate(&cfg, 6, &Router::NO_DOWN_PORTS);
        assert_eq!(d2.len(), 1);
        assert_ne!(d1[0].flit.vc(), d2[0].flit.vc(), "packets allocated distinct output VCs");
        // Credits now exhausted on both VCs.
        r.accept_flit(&mesh, &cfg, Dir::West, flit(dst, FlitKind::HeadTail, TrafficClass::Communication, 1), 6, 1);
        r.vc_allocate(&cfg, 6, &mut TracerHandle::Nop);
        assert!(
            r.switch_allocate(&cfg, 8, &Router::NO_DOWN_PORTS).is_empty(),
            "no credits and no free VCs: nothing may traverse"
        );
        // Returning a credit + freeing the VC unblocks it.
        r.return_credit(Dir::East, 0, 1);
        r.free_output_vc(Dir::East, 0);
        r.vc_allocate(&cfg, 8, &mut TracerHandle::Nop);
        assert_eq!(r.switch_allocate(&cfg, 9, &Router::NO_DOWN_PORTS).len(), 1);
    }

    #[test]
    fn priority_arbitration_prefers_communication() {
        let cfg = test_cfg().with_priority_arbitration(true);
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let dst = mesh.node_at(3, 1);
        // Snack flit arrives first and would win round-robin.
        r.accept_flit(&mesh, &cfg, Dir::North, flit(dst, FlitKind::HeadTail, TrafficClass::SnackInstruction, 0), 0, 4);
        r.accept_flit(&mesh, &cfg, Dir::West, flit(dst, FlitKind::HeadTail, TrafficClass::Communication, 1), 0, 4);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let deps = r.switch_allocate(&cfg, 10, &Router::NO_DOWN_PORTS);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].flit.class(), TrafficClass::Communication);
        let deps = r.switch_allocate(&cfg, 11, &Router::NO_DOWN_PORTS);
        assert_eq!(deps[0].flit.class(), TrafficClass::SnackInstruction);
    }

    #[test]
    fn down_mask_stalls_the_port_without_losing_flits() {
        let cfg = test_cfg();
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let f = flit(mesh.node_at(3, 1), FlitKind::HeadTail, TrafficClass::Communication, 0);
        r.accept_flit(&mesh, &cfg, Dir::West, f, 0, 4);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let mut down = Router::NO_DOWN_PORTS;
        down[Dir::East.index()] = true;
        assert!(r.switch_allocate(&cfg, 10, &down).is_empty(), "east link is down");
        assert_eq!(r.buffered_flits(), 1, "the flit waits in its buffer");
        assert_eq!(r.routed_waiting_vcs(), 0, "it already holds an output VC");
        assert_eq!(r.oldest_buffered_queued_at(), Some(0));
        // The window closes: traversal resumes exactly where it stalled.
        let deps = r.switch_allocate(&cfg, 11, &Router::NO_DOWN_PORTS);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].out_port, Dir::East);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.oldest_buffered_queued_at(), None);
    }

    #[test]
    fn useful_free_vcs_counts_interior_router() {
        let cfg = test_cfg();
        let mesh = Mesh::new(4, 4);
        let r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let (free, total) = r.useful_free_output_vcs();
        assert_eq!(total, 4 * cfg.vcs_per_port());
        assert_eq!(free, total);
        let corner = Router::new(&cfg, &mesh, mesh.node_at(0, 0));
        let (_, corner_total) = corner.useful_free_output_vcs();
        assert_eq!(corner_total, 2 * cfg.vcs_per_port());
    }

    #[test]
    fn useful_free_counter_tracks_alloc_credit_and_free_transitions() {
        // Drive a VC through allocate -> credit exhaustion -> credit
        // return -> free and check the popcount probe against the recount
        // at every step (the accessor debug_asserts the match).
        let cfg = test_cfg().with_buffers_per_vc(1);
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let dst = mesh.node_at(3, 1);
        let (free0, total) = r.useful_free_output_vcs();
        assert_eq!(free0, total);
        r.accept_flit(&mesh, &cfg, Dir::West, flit(dst, FlitKind::HeadTail, TrafficClass::Communication, 0), 0, 1);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let (after_alloc, _) = r.useful_free_output_vcs();
        assert_eq!(after_alloc, free0 - 1, "the granted VC leaves the useful pool");
        // Traversal spends the VC's only credit; it stays allocated, so the
        // probe is unchanged.
        assert_eq!(r.switch_allocate(&cfg, 5, &Router::NO_DOWN_PORTS).len(), 1);
        assert_eq!(r.useful_free_output_vcs().0, after_alloc);
        // Credit returns while still allocated: not yet useful.
        r.return_credit(Dir::East, 0, 1);
        assert_eq!(r.useful_free_output_vcs().0, after_alloc);
        // The tail drains downstream: the VC is free + credited again.
        r.free_output_vc(Dir::East, 0);
        assert_eq!(r.useful_free_output_vcs().0, free0);
        // Freeing a starved VC first, then crediting it, also re-arms it.
        r.accept_flit(&mesh, &cfg, Dir::West, flit(dst, FlitKind::HeadTail, TrafficClass::Communication, 0), 6, 1);
        r.vc_allocate(&cfg, 6, &mut TracerHandle::Nop);
        assert_eq!(r.switch_allocate(&cfg, 12, &Router::NO_DOWN_PORTS).len(), 1);
        r.free_output_vc(Dir::East, 0); // freed while credits == 0
        assert_eq!(r.useful_free_output_vcs().0, free0 - 1);
        r.return_credit(Dir::East, 0, 1); // credit arrives after the free
        assert_eq!(r.useful_free_output_vcs().0, free0);
    }

    #[test]
    fn wormhole_keeps_packet_on_one_output_vc() {
        let cfg = test_cfg();
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(0, 0));
        let dst = mesh.node_at(3, 0);
        r.accept_flit(&mesh, &cfg, Dir::Local, flit(dst, FlitKind::Head, TrafficClass::Communication, 0), 0, 4);
        r.accept_flit(&mesh, &cfg, Dir::Local, flit(dst, FlitKind::Body, TrafficClass::Communication, 0), 0, 4);
        r.accept_flit(&mesh, &cfg, Dir::Local, flit(dst, FlitKind::Tail, TrafficClass::Communication, 0), 0, 4);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let mut out_vcs = Vec::new();
        for t in 5..8 {
            let deps = r.switch_allocate(&cfg, t, &Router::NO_DOWN_PORTS);
            assert_eq!(deps.len(), 1);
            out_vcs.push(deps[0].flit.vc());
        }
        assert!(out_vcs.windows(2).all(|w| w[0] == w[1]), "all flits share the output VC");
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn hop_counter_saturates_instead_of_wrapping() {
        let cfg = test_cfg();
        let mesh = Mesh::new(4, 4);
        let mut r = Router::new(&cfg, &mesh, mesh.node_at(1, 1));
        let mut f = flit(mesh.node_at(3, 1), FlitKind::HeadTail, TrafficClass::Communication, 0);
        f.hops = u32::MAX;
        r.accept_flit(&mesh, &cfg, Dir::West, f, 0, 4);
        r.vc_allocate(&cfg, 0, &mut TracerHandle::Nop);
        let deps = r.switch_allocate(&cfg, 10, &Router::NO_DOWN_PORTS);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].flit.hops(), u32::MAX, "saturated, not wrapped");
        assert_eq!(r.hops_saturations(), 1, "the saturation is counted");
    }
}
