//! Router port directions and dimension-order (XY) route computation.

use crate::topology::{Mesh, NodeId};
use std::fmt;

/// A router port direction.
///
/// The four cardinal directions connect to neighbouring routers; `Local`
/// connects to the node's network interface (and, in SnackNoC, its Router
/// Compute Unit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum Dir {
    /// Towards increasing `x` (column).
    East = 0,
    /// Towards decreasing `x`.
    West = 1,
    /// Towards decreasing `y` (row 0 is the north edge).
    North = 2,
    /// Towards increasing `y`.
    South = 3,
    /// The node's own network interface.
    Local = 4,
}

impl Dir {
    /// All five port directions, in port-index order.
    pub const ALL: [Dir; 5] = [Dir::East, Dir::West, Dir::North, Dir::South, Dir::Local];

    /// The four router-to-router directions (everything but `Local`).
    pub const ROUTER_DIRS: [Dir; 4] = [Dir::East, Dir::West, Dir::North, Dir::South];

    /// Number of ports on a mesh router.
    pub const COUNT: usize = 5;

    /// The port index of this direction (stable, `0..Dir::COUNT`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The direction from the other end of a link: `East.opposite() == West`.
    ///
    /// # Panics
    ///
    /// Panics for `Dir::Local`, which has no opposite.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::Local => panic!("Local port has no opposite direction"),
        }
    }

    /// Builds a direction from a port index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Dir::COUNT`.
    pub fn from_index(index: usize) -> Dir {
        Dir::ALL[index]
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::East => "E",
            Dir::West => "W",
            Dir::North => "N",
            Dir::South => "S",
            Dir::Local => "L",
        };
        f.write_str(s)
    }
}

/// A deterministic dimension-order routing algorithm. Both orders are
/// deadlock-free on a mesh; they differ in how traffic concentrates on the
/// centre rows vs. columns.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RoutingAlgorithm {
    /// X (east/west) first, then Y — the common default, and what the
    /// paper's baselines use.
    #[default]
    Xy,
    /// Y (north/south) first, then X.
    Yx,
}

impl RoutingAlgorithm {
    /// The output port for a flit at `cur` destined for `dst`.
    pub fn route(self, mesh: &Mesh, cur: NodeId, dst: NodeId) -> Dir {
        match self {
            RoutingAlgorithm::Xy => xy_route(mesh, cur, dst),
            RoutingAlgorithm::Yx => yx_route(mesh, cur, dst),
        }
    }
}

/// Computes the dimension-order (XY) output port for a flit currently at
/// `cur` and destined for `dst`: travel east/west until the column matches,
/// then north/south, then eject at `Local`.
///
/// XY routing is deterministic and deadlock-free on a mesh, which is why the
/// paper reuses the baseline algorithm for SnackNoC instruction flits "as to
/// not increase route computation overhead" (§III-B).
pub fn xy_route(mesh: &Mesh, cur: NodeId, dst: NodeId) -> Dir {
    let (cx, cy) = mesh.coords(cur);
    let (dx, dy) = mesh.coords(dst);
    if dx > cx {
        Dir::East
    } else if dx < cx {
        Dir::West
    } else if dy > cy {
        Dir::South
    } else if dy < cy {
        Dir::North
    } else {
        Dir::Local
    }
}

/// The YX dual of [`xy_route`]: rows first, then columns.
pub fn yx_route(mesh: &Mesh, cur: NodeId, dst: NodeId) -> Dir {
    let (cx, cy) = mesh.coords(cur);
    let (dx, dy) = mesh.coords(dst);
    if dy > cy {
        Dir::South
    } else if dy < cy {
        Dir::North
    } else if dx > cx {
        Dir::East
    } else if dx < cx {
        Dir::West
    } else {
        Dir::Local
    }
}

/// The number of mesh hops an XY-routed packet takes from `src` to `dst`
/// (Manhattan distance).
pub fn hop_count(mesh: &Mesh, src: NodeId, dst: NodeId) -> usize {
    let (sx, sy) = mesh.coords(src);
    let (dx, dy) = mesh.coords(dst);
    sx.abs_diff(dx) + sy.abs_diff(dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_index_round_trips() {
        for d in Dir::ALL {
            assert_eq!(Dir::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposites_pair_up() {
        assert_eq!(Dir::East.opposite(), Dir::West);
        assert_eq!(Dir::West.opposite(), Dir::East);
        assert_eq!(Dir::North.opposite(), Dir::South);
        assert_eq!(Dir::South.opposite(), Dir::North);
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_has_no_opposite() {
        let _ = Dir::Local.opposite();
    }

    #[test]
    fn xy_goes_x_first() {
        let m = Mesh::new(4, 4);
        let src = m.node_at(0, 0);
        let dst = m.node_at(3, 2);
        assert_eq!(xy_route(&m, src, dst), Dir::East);
        assert_eq!(xy_route(&m, m.node_at(3, 0), dst), Dir::South);
        assert_eq!(xy_route(&m, dst, dst), Dir::Local);
        assert_eq!(xy_route(&m, m.node_at(3, 3), dst), Dir::North);
        assert_eq!(xy_route(&m, m.node_at(3, 2), m.node_at(0, 2)), Dir::West);
    }

    #[test]
    fn both_walks_terminate_at_destination_in_minimal_hops() {
        let m = Mesh::new(8, 4);
        for algo in [RoutingAlgorithm::Xy, RoutingAlgorithm::Yx] {
            for src in m.nodes() {
                for dst in m.nodes() {
                    let mut cur = src;
                    let mut hops = 0;
                    loop {
                        let dir = algo.route(&m, cur, dst);
                        if dir == Dir::Local {
                            break;
                        }
                        cur = m.neighbor(cur, dir).expect("route must follow links");
                        hops += 1;
                        assert!(hops <= m.node_count(), "routing loop");
                    }
                    assert_eq!(cur, dst);
                    assert_eq!(hops, hop_count(&m, src, dst), "{algo:?} is minimal");
                }
            }
        }
    }

    #[test]
    fn yx_goes_y_first() {
        let m = Mesh::new(4, 4);
        let dst = m.node_at(3, 2);
        assert_eq!(yx_route(&m, m.node_at(0, 0), dst), Dir::South);
        assert_eq!(yx_route(&m, m.node_at(0, 2), dst), Dir::East);
        assert_eq!(yx_route(&m, dst, dst), Dir::Local);
        assert_eq!(RoutingAlgorithm::default(), RoutingAlgorithm::Xy);
    }
}
