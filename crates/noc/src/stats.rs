//! Network statistics: utilization time series, buffer-occupancy CDFs and
//! per-class latency accounting.
//!
//! These are the measurements §II of the paper uses to identify NoC slack:
//! router crossbar usage (Fig. 2a), link usage (Fig. 2b) and input-buffer
//! occupancy (Fig. 3), plus the delivered-packet latency/runtime statistics
//! behind the QoS experiments (Figs. 11–13).

use crate::flit::TrafficClass;

/// One sample of a windowed utilization time series.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SeriesSample {
    /// Cycle at which the window ended.
    pub end_cycle: u64,
    /// Utilization over the window, in `[0, 1]`.
    pub utilization: f64,
}

/// A windowed utilization counter: counts "busy" events per sampling window
/// and emits one [`SeriesSample`] per window.
#[derive(Clone, Debug)]
pub struct WindowSeries {
    window: u64,
    busy_in_window: u64,
    samples: Vec<SeriesSample>,
}

impl WindowSeries {
    fn new(window: u64) -> Self {
        WindowSeries { window, busy_in_window: 0, samples: Vec::new() }
    }

    pub(crate) fn record(&mut self, busy: bool) {
        if busy {
            self.busy_in_window += 1;
        }
    }

    pub(crate) fn roll(&mut self, end_cycle: u64) {
        let utilization = self.busy_in_window as f64 / self.window as f64;
        self.samples.push(SeriesSample { end_cycle, utilization });
        self.busy_in_window = 0;
    }

    /// Rolls a *partial* window of `elapsed` cycles, normalizing by the
    /// cycles actually observed rather than the nominal window length.
    /// Used by [`NetStats::finalize`] so runs shorter than one sampling
    /// window (or ending mid-window) still contribute a sample instead of
    /// silently dropping their tail measurements.
    fn roll_partial(&mut self, end_cycle: u64, elapsed: u64) {
        debug_assert!(elapsed > 0, "partial roll needs observed cycles");
        let utilization = self.busy_in_window as f64 / elapsed as f64;
        self.samples.push(SeriesSample { end_cycle, utilization });
        self.busy_in_window = 0;
    }

    /// The completed window samples.
    pub fn samples(&self) -> &[SeriesSample] {
        &self.samples
    }

    /// Median utilization across completed windows (0 if no windows yet).
    pub fn median(&self) -> f64 {
        percentile(self.samples.iter().map(|s| s.utilization), 50.0)
    }

    /// Peak window utilization.
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|s| s.utilization).fold(0.0, f64::max)
    }

    /// Mean utilization across completed windows.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.utilization).sum::<f64>() / self.samples.len() as f64
    }
}

/// Computes the `p`-th percentile (0–100) of a sequence; 0.0 when empty.
///
/// `p` is clamped into `0.0..=100.0`: an out-of-range request answers the
/// nearest extreme (minimum or maximum) instead of indexing outside the
/// sorted sample and panicking. A NaN `p` reads as the minimum.
///
/// # NaN handling
///
/// Inputs are ordered with [`f64::total_cmp`], so the function never
/// panics: positive NaNs sort after `+inf` and negative NaNs before
/// `-inf` (IEEE 754 `totalOrder`). A NaN therefore only surfaces in the
/// result when the requested percentile actually lands on (or
/// interpolates with) a NaN sample — it skews the extreme tails instead
/// of aborting the whole experiment.
pub fn percentile(values: impl Iterator<Item = f64>, p: f64) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// A cumulative distribution of buffer occupancy, bucketed at 1 % steps
/// (the paper's Fig. 3).
#[derive(Clone, Debug)]
pub struct OccupancyCdf {
    /// `buckets[i]` counts cycles with occupancy in `[i%, (i+1)%)`;
    /// bucket 100 counts exactly-full cycles.
    buckets: [u64; 101],
    total: u64,
    /// NaN samples rejected by [`OccupancyCdf::record`]. A NaN fraction
    /// used to land silently in bucket 0 (`NaN.clamp` stays NaN, `as
    /// usize` saturates to 0), skewing the Fig. 3 CDF low; now the sample
    /// is skipped and counted here so the stats report can surface it.
    dropped: u64,
    /// Bulk zero-sample batches whose count overflowed u64 and were
    /// saturated instead of recorded exactly (see
    /// `NetStats::advance_idle`).
    saturated: u64,
}

impl Default for OccupancyCdf {
    fn default() -> Self {
        OccupancyCdf { buckets: [0; 101], total: 0, dropped: 0, saturated: 0 }
    }
}

impl OccupancyCdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample at the given occupancy fraction (`0.0..=1.0`).
    ///
    /// A NaN fraction is not a measurement: it is skipped and counted in
    /// [`OccupancyCdf::dropped_samples`] instead of being misfiled as a
    /// zero-occupancy cycle.
    pub fn record(&mut self, fraction: f64) {
        if fraction.is_nan() {
            self.dropped += 1;
            return;
        }
        let pct = (fraction.clamp(0.0, 1.0) * 100.0).round() as usize;
        self.buckets[pct.min(100)] += 1;
        self.total += 1;
    }

    /// Records `n` zero-occupancy samples at once (bulk path for idle
    /// routers). Saturates rather than wraps if the running totals would
    /// overflow u64, counting the event in
    /// [`OccupancyCdf::saturated_batches`].
    pub fn record_zeros(&mut self, n: u64) {
        let bucket = self.buckets[0].checked_add(n);
        let total = self.total.checked_add(n);
        match (bucket, total) {
            (Some(b), Some(t)) => {
                self.buckets[0] = b;
                self.total = t;
            }
            _ => {
                self.buckets[0] = self.buckets[0].saturating_add(n);
                self.total = self.total.saturating_add(n);
                self.saturated += 1;
            }
        }
    }

    /// NaN samples skipped by [`OccupancyCdf::record`].
    pub fn dropped_samples(&self) -> u64 {
        self.dropped
    }

    /// Bulk zero batches saturated on u64 overflow (0 in any sane run).
    pub fn saturated_batches(&self) -> u64 {
        self.saturated
    }

    /// Merges another CDF into this one, bucket-wise. Used to fold
    /// per-shard occupancy deltas into the network-wide CDF; bucket
    /// addition commutes, so the merge order cannot change the result.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.dropped += other.dropped;
        self.saturated += other.saturated;
    }

    /// Cumulative probability that occupancy is `<= pct` percent.
    pub fn cumulative_at(&self, pct: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let sum: u64 = self.buckets[..=pct.min(100)].iter().sum();
        sum as f64 / self.total as f64
    }

    /// The full CDF as 101 `(percent, cumulative_probability)` points.
    pub fn points(&self) -> Vec<(usize, f64)> {
        (0..=100).map(|p| (p, self.cumulative_at(p))).collect()
    }

    /// Fraction of recorded cycles with zero occupancy.
    pub fn zero_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.buckets[0] as f64 / self.total as f64
    }

    /// Number of recorded cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total
    }
}

/// A log₂-bucketed latency histogram supporting approximate percentiles.
///
/// Bucket `i` counts latencies in `[2^i, 2^(i+1))` (bucket 0 holds 0 and
/// 1). Percentile queries interpolate within the winning bucket, giving
/// tail-latency estimates without storing every sample.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    total: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        let bucket = (64 - latency.max(1).leading_zeros() - 1).min(31) as usize;
        self.buckets[bucket] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one, bucket-wise. Used to
    /// aggregate per-CPM recovery-latency histograms into one report.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Approximate `p`-th percentile (0–100) latency in cycles.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                // Interpolate inside [2^i, 2^(i+1)).
                let lo = 1u64 << i;
                let width = lo; // bucket width equals its lower bound
                let into = (rank - seen) as f64 / count as f64;
                return lo + (into * width as f64) as u64;
            }
            seen += count;
        }
        u64::MAX
    }
}

/// Counts of wire-protocol violations observed at packet reassembly.
///
/// A healthy, fault-free network keeps all of these at zero; the
/// tolerant ejection path counts-and-discards instead of panicking so a
/// faulty run degrades into measurable loss rather than an abort.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProtocolErrors {
    /// A tail flit ejected with no head on record; the packet is
    /// discarded and counted as lost.
    pub tail_without_head: u64,
    /// A head flit arrived carrying no payload; the packet is discarded.
    pub missing_payload: u64,
    /// A second head flit ejected for a packet id already holding one;
    /// the first head wins.
    pub duplicate_head: u64,
}

impl ProtocolErrors {
    /// Total protocol violations of any kind.
    pub fn total(&self) -> u64 {
        self.tail_without_head + self.missing_payload + self.duplicate_head
    }

    /// Adds another counter set into this one (per-shard delta merge).
    pub fn merge(&mut self, other: &Self) {
        self.tail_without_head += other.tail_without_head;
        self.missing_payload += other.missing_payload;
        self.duplicate_head += other.duplicate_head;
    }
}

/// Latency and delivery accounting for one traffic class.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Flits delivered.
    pub flits: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub latency_sum: u64,
    /// Maximum packet latency seen.
    pub latency_max: u64,
    /// Log-bucketed latency distribution.
    pub latency_hist: LatencyHistogram,
}

impl ClassStats {
    /// Mean packet latency in cycles (0 if nothing delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Approximate `p`-th percentile latency (see [`LatencyHistogram`]).
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.latency_hist.percentile(p)
    }

    /// Merges another class accumulator into this one. All fields are
    /// sums, maxima or bucket counts, so the merge commutes — per-shard
    /// delivery deltas fold into the network totals in any order.
    pub fn merge(&mut self, other: &Self) {
        self.delivered += other.delivered;
        self.flits += other.flits;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.latency_hist.merge(&other.latency_hist);
    }
}

/// All statistics gathered by a [`crate::Network`].
#[derive(Clone, Debug)]
pub struct NetStats {
    window: u64,
    cycles_in_window: u64,
    /// Per-router crossbar-busy series.
    crossbar: Vec<WindowSeries>,
    /// Per-directed-link usage series, indexed by link id.
    links: Vec<WindowSeries>,
    /// Network-wide input-buffer occupancy CDF.
    pub occupancy: OccupancyCdf,
    /// Per-class delivery stats, indexed by class.
    comm: ClassStats,
    instr: ClassStats,
    data: ClassStats,
    /// Total flits injected into router input buffers from NIs.
    pub injected_flits: u64,
    /// Total crossbar transfers (flits moved input→output).
    pub crossbar_transfers: u64,
    /// Wire-protocol violations observed at reassembly (zero when the
    /// network is healthy).
    pub protocol_errors: ProtocolErrors,
}

impl NetStats {
    pub(crate) fn new(routers: usize, links: usize, window: u64) -> Self {
        NetStats {
            window,
            cycles_in_window: 0,
            crossbar: (0..routers).map(|_| WindowSeries::new(window)).collect(),
            links: (0..links).map(|_| WindowSeries::new(window)).collect(),
            occupancy: OccupancyCdf::new(),
            comm: ClassStats::default(),
            instr: ClassStats::default(),
            data: ClassStats::default(),
            injected_flits: 0,
            crossbar_transfers: 0,
            protocol_errors: ProtocolErrors::default(),
        }
    }

    pub(crate) fn record_router_cycle(&mut self, router: usize, crossbar_busy: bool) {
        self.crossbar[router].record(crossbar_busy);
    }

    pub(crate) fn record_link_cycle(&mut self, link: usize, busy: bool) {
        self.links[link].record(busy);
    }

    pub(crate) fn end_cycle(&mut self, cycle: u64) {
        self.cycles_in_window += 1;
        if self.cycles_in_window >= self.window {
            for s in &mut self.crossbar {
                s.roll(cycle);
            }
            for s in &mut self.links {
                s.roll(cycle);
            }
            self.cycles_in_window = 0;
        }
    }

    /// Accounts for `cycles` consecutive *dead* cycles in one call — the
    /// stats half of an event-driven clock jump starting at `from_cycle`
    /// (the last cycle actually simulated).
    ///
    /// Bit-identical to calling `record_zeros(zeros_per_cycle)` +
    /// `end_cycle(c)` once per dead cycle `c` in
    /// `from_cycle+1 ..= from_cycle+cycles`: the zero-occupancy samples are
    /// bulk-credited, and a jump spanning several sampling windows is
    /// **split across the window boundaries it crosses** — one
    /// [`WindowSeries`] sample per boundary, stamped with the boundary's
    /// own end cycle, with the in-progress partial window's busy counts
    /// rolled into the first of them — rather than attributing every dead
    /// cycle to the window that happens to be current.
    pub(crate) fn advance_idle(&mut self, from_cycle: u64, cycles: u64, zeros_per_cycle: u64) {
        if cycles == 0 {
            return;
        }
        // An overflowing jump would silently corrupt the occupancy CDF —
        // break the bit-identity contract *visibly*: panic in debug
        // builds, saturate-and-count in release so the run degrades into
        // a measurable artifact instead of a wrong-but-plausible CDF.
        let zeros = match cycles.checked_mul(zeros_per_cycle) {
            Some(z) => z,
            None => {
                debug_assert!(
                    false,
                    "idle jump of {cycles} cycles x {zeros_per_cycle} routers \
                     overflows the occupancy sample count"
                );
                self.occupancy.saturated += 1;
                u64::MAX
            }
        };
        self.occupancy.record_zeros(zeros);
        let total = self.cycles_in_window + cycles;
        let rolls = total / self.window;
        if rolls > 0 {
            let mut boundary = from_cycle + (self.window - self.cycles_in_window);
            for _ in 0..rolls {
                for s in &mut self.crossbar {
                    s.roll(boundary);
                }
                for s in &mut self.links {
                    s.roll(boundary);
                }
                boundary += self.window;
            }
        }
        self.cycles_in_window = total % self.window;
    }

    /// Flushes the trailing partial sampling window, if any.
    ///
    /// [`NetStats::end_cycle`] only emits a sample every `sample_window`
    /// cycles, so a run shorter than one window — or one that stops
    /// mid-window — would otherwise report *zero* samples and a silently
    /// wrong `median_crossbar_utilization() == 0.0`. The partial window is
    /// normalized by the cycles actually elapsed, not the nominal window
    /// length. Idempotent: calling it again before further cycles elapse
    /// is a no-op, and simulation may continue afterwards (a fresh window
    /// simply starts).
    pub fn finalize(&mut self, cycle: u64) {
        if self.cycles_in_window == 0 {
            return;
        }
        let elapsed = self.cycles_in_window;
        for s in &mut self.crossbar {
            s.roll_partial(cycle, elapsed);
        }
        for s in &mut self.links {
            s.roll_partial(cycle, elapsed);
        }
        self.cycles_in_window = 0;
    }

    pub(crate) fn record_delivery(&mut self, class: TrafficClass, flits: u64, latency: u64) {
        let c = self.class_mut(class);
        c.delivered += 1;
        c.flits += flits;
        c.latency_sum += latency;
        c.latency_max = c.latency_max.max(latency);
        c.latency_hist.record(latency);
    }

    pub(crate) fn class_mut(&mut self, class: TrafficClass) -> &mut ClassStats {
        match class {
            TrafficClass::Communication => &mut self.comm,
            TrafficClass::SnackInstruction => &mut self.instr,
            TrafficClass::SnackData => &mut self.data,
        }
    }

    /// Delivery stats for a traffic class.
    pub fn class(&self, class: TrafficClass) -> &ClassStats {
        match class {
            TrafficClass::Communication => &self.comm,
            TrafficClass::SnackInstruction => &self.instr,
            TrafficClass::SnackData => &self.data,
        }
    }

    /// The crossbar-usage time series of router `r`.
    pub fn crossbar_series(&self, r: usize) -> &WindowSeries {
        &self.crossbar[r]
    }

    /// Number of router series tracked.
    pub fn router_count(&self) -> usize {
        self.crossbar.len()
    }

    /// The usage time series of directed link `l`.
    pub fn link_series(&self, l: usize) -> &WindowSeries {
        &self.links[l]
    }

    /// Number of directed router-router links tracked.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Median crossbar utilization across all routers and completed windows.
    pub fn median_crossbar_utilization(&self) -> f64 {
        percentile(
            self.crossbar.iter().flat_map(|s| s.samples().iter().map(|x| x.utilization)),
            50.0,
        )
    }

    /// Peak crossbar utilization across all routers and windows.
    pub fn peak_crossbar_utilization(&self) -> f64 {
        self.crossbar.iter().map(|s| s.peak()).fold(0.0, f64::max)
    }

    /// Median link utilization across all links and completed windows.
    pub fn median_link_utilization(&self) -> f64 {
        percentile(
            self.links.iter().flat_map(|s| s.samples().iter().map(|x| x.utilization)),
            50.0,
        )
    }

    /// Peak link utilization across all links and windows.
    pub fn peak_link_utilization(&self) -> f64 {
        self.links.iter().map(|s| s.peak()).fold(0.0, f64::max)
    }

    /// Mutable access to the full per-router crossbar and per-link series
    /// tables, for the sharded stepping path: each worker takes a disjoint
    /// `split_at_mut` slice of both (routers and link ids are contiguous
    /// per tile) and records busy events / rolls windows exactly as
    /// `record_router_cycle` / `record_link_cycle` / `end_cycle` would.
    pub(crate) fn series_mut(&mut self) -> (&mut [WindowSeries], &mut [WindowSeries]) {
        (&mut self.crossbar, &mut self.links)
    }

    /// Cycles accumulated in the current (incomplete) sampling window.
    pub(crate) fn cycles_in_window(&self) -> u64 {
        self.cycles_in_window
    }

    /// Overwrites the in-window cycle counter (sharded batch epilogue:
    /// every shard advanced the same number of cycles, so the per-worker
    /// copies all agree).
    pub(crate) fn set_cycles_in_window(&mut self, cycles: u64) {
        self.cycles_in_window = cycles;
    }

    /// The sampling-window length in cycles.
    pub(crate) fn sample_window(&self) -> u64 {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_series_rolls() {
        let mut s = WindowSeries::new(10);
        for i in 0..10 {
            s.record(i < 3);
        }
        s.roll(10);
        assert_eq!(s.samples().len(), 1);
        assert!((s.samples()[0].utilization - 0.3).abs() < 1e-12);
        assert_eq!(s.samples()[0].end_cycle, 10);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(v.iter().copied(), 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(v.iter().copied(), 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(v.iter().copied(), 100.0) - 4.0).abs() < 1e-12);
        assert_eq!(percentile(std::iter::empty(), 50.0), 0.0);
    }

    #[test]
    fn percentile_tolerates_nan_without_panicking() {
        // Regression: `partial_cmp().expect(...)` used to panic here.
        let v = [2.0, f64::NAN, 1.0, 3.0];
        let p25 = percentile(v.iter().copied(), 25.0);
        assert!((p25 - 1.75).abs() < 1e-12, "NaN sorts to the tail: {p25}");
        assert!((percentile(v.iter().copied(), 0.0) - 1.0).abs() < 1e-12);
        // The top percentile lands on the NaN sample itself.
        assert!(percentile(v.iter().copied(), 100.0).is_nan());
        // All-NaN input yields NaN, still without panicking.
        assert!(percentile([f64::NAN].iter().copied(), 50.0).is_nan());
    }

    #[test]
    fn finalize_flushes_partial_window_normalized_by_elapsed() {
        // Run shorter than the sampling window: without finalize() the
        // series has zero samples and the median silently reads 0.0.
        let mut st = NetStats::new(2, 1, 10_000);
        for c in 1..=100u64 {
            st.record_router_cycle(0, c <= 50); // router 0 busy half the time
            st.record_router_cycle(1, false);
            st.record_link_cycle(0, true);
            st.end_cycle(c);
        }
        assert!(st.crossbar_series(0).samples().is_empty(), "window not yet full");
        st.finalize(100);
        assert_eq!(st.crossbar_series(0).samples().len(), 1);
        // Normalized by the 100 elapsed cycles, not the 10 K window.
        assert!((st.crossbar_series(0).samples()[0].utilization - 0.5).abs() < 1e-12);
        assert!((st.link_series(0).samples()[0].utilization - 1.0).abs() < 1e-12);
        assert!((st.median_crossbar_utilization() - 0.25).abs() < 1e-12);
        // Idempotent until more cycles elapse.
        st.finalize(100);
        assert_eq!(st.crossbar_series(0).samples().len(), 1);
        // Simulation may continue: a fresh window starts cleanly.
        st.record_router_cycle(0, true);
        st.end_cycle(101);
        st.finalize(101);
        assert_eq!(st.crossbar_series(0).samples().len(), 2);
        assert!((st.crossbar_series(0).samples()[1].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finalize_after_exact_window_boundary_is_a_noop() {
        let mut st = NetStats::new(1, 0, 50);
        for c in 1..=50u64 {
            st.record_router_cycle(0, true);
            st.end_cycle(c);
        }
        assert_eq!(st.crossbar_series(0).samples().len(), 1);
        st.finalize(50);
        assert_eq!(st.crossbar_series(0).samples().len(), 1, "no empty partial sample");
    }

    #[test]
    fn occupancy_cdf_accumulates() {
        let mut cdf = OccupancyCdf::new();
        for _ in 0..96 {
            cdf.record(0.0);
        }
        for _ in 0..4 {
            cdf.record(0.10);
        }
        assert!((cdf.zero_fraction() - 0.96).abs() < 1e-12);
        assert!((cdf.cumulative_at(9) - 0.96).abs() < 1e-12);
        assert!((cdf.cumulative_at(10) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.total_cycles(), 100);
        assert_eq!(cdf.points().len(), 101);
    }

    #[test]
    fn occupancy_cdf_clamps() {
        let mut cdf = OccupancyCdf::new();
        cdf.record(2.0);
        cdf.record(-1.0);
        assert!((cdf.cumulative_at(100) - 1.0).abs() < 1e-12);
        assert!((cdf.zero_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_percentiles() {
        let mut h = LatencyHistogram::new();
        for lat in 1..=1000u64 {
            h.record(lat);
        }
        assert_eq!(h.samples(), 1000);
        let p50 = h.percentile(50.0);
        assert!((256..=1024).contains(&p50), "p50 {p50} near the median bucket");
        let p99 = h.percentile(99.0);
        assert!(p99 >= p50, "p99 {p99} >= p50 {p50}");
        assert!(h.percentile(100.0) >= p99);
        assert_eq!(LatencyHistogram::new().percentile(50.0), 0);
    }

    #[test]
    fn latency_histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.samples(), 2);
        assert!(h.percentile(99.0) > 0);
    }

    #[test]
    fn latency_histogram_merge_adds_bucketwise() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for lat in 1..=100u64 {
            a.record(lat);
            b.record(lat * 8);
        }
        let a_p50 = a.percentile(50.0);
        a.merge(&b);
        assert_eq!(a.samples(), 200);
        assert!(a.percentile(50.0) >= a_p50, "merging larger samples raises the median");
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.samples(), 200, "merging empty is a no-op");
    }

    #[test]
    fn finalize_is_idempotent_for_all_derived_metrics() {
        // Regression guard: a second (or N-th) finalize before any further
        // cycle must not emit extra partial samples or move any medians.
        let mut st = NetStats::new(3, 2, 1_000);
        for c in 1..=137u64 {
            st.record_router_cycle(0, c % 2 == 0);
            st.record_router_cycle(1, c % 3 == 0);
            st.record_router_cycle(2, true);
            st.record_link_cycle(0, c % 4 == 0);
            st.record_link_cycle(1, false);
            st.end_cycle(c);
        }
        st.finalize(137);
        let samples: Vec<usize> =
            (0..3).map(|r| st.crossbar_series(r).samples().len()).collect();
        let med_x = st.median_crossbar_utilization();
        let med_l = st.median_link_utilization();
        let peak = st.peak_crossbar_utilization();
        for _ in 0..3 {
            st.finalize(137);
        }
        let samples2: Vec<usize> =
            (0..3).map(|r| st.crossbar_series(r).samples().len()).collect();
        assert_eq!(samples, samples2, "repeat finalize must not add samples");
        assert_eq!(st.median_crossbar_utilization(), med_x);
        assert_eq!(st.median_link_utilization(), med_l);
        assert_eq!(st.peak_crossbar_utilization(), peak);
    }

    #[test]
    fn latency_histogram_empty_and_single_sample() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.samples(), 0);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(empty.percentile(p), 0, "empty histogram reads 0 at p{p}");
        }
        let mut one = LatencyHistogram::new();
        one.record(37);
        assert_eq!(one.samples(), 1);
        let (lo, hi) = (32, 64); // 37's log2 bucket
        for p in [1.0, 50.0, 100.0] {
            let v = one.percentile(p);
            assert!(
                (lo..=hi).contains(&v),
                "single sample always lands in its own bucket: p{p} -> {v}"
            );
        }
        // Merging the single sample into empty equals the single histogram.
        let mut merged = LatencyHistogram::new();
        merged.merge(&one);
        assert_eq!(merged.samples(), 1);
        assert_eq!(merged.percentile(50.0), one.percentile(50.0));
    }

    #[test]
    fn merge_then_percentile_matches_concatenated_samples() {
        // Two disjoint streams merged must answer percentile queries
        // exactly like one histogram fed the concatenation.
        let left: Vec<u64> = (1..=500).collect();
        let right: Vec<u64> = (1..=400).map(|i| i * 13 + 7).collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        for &v in &left {
            a.record(v);
            concat.record(v);
        }
        for &v in &right {
            b.record(v);
            concat.record(v);
        }
        a.merge(&b);
        assert_eq!(a.samples(), concat.samples());
        for p in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(
                a.percentile(p),
                concat.percentile(p),
                "merged and concatenated histograms disagree at p{p}"
            );
        }
    }

    #[test]
    fn protocol_errors_total() {
        let mut e = ProtocolErrors::default();
        assert_eq!(e.total(), 0);
        e.tail_without_head = 2;
        e.missing_payload = 1;
        e.duplicate_head = 4;
        assert_eq!(e.total(), 7);
    }

    #[test]
    fn advance_idle_is_bit_identical_to_per_cycle_dead_stepping() {
        // The event-driven jump path must fold an arbitrary run of dead
        // cycles into exactly the samples the per-cycle loop would emit.
        for (start, dead) in [(0u64, 7u64), (3, 10), (9, 1), (4, 26), (10, 30)] {
            let mut stepped = NetStats::new(2, 1, 10);
            let mut jumped = NetStats::new(2, 1, 10);
            for c in 1..=start {
                let busy = c % 3 == 0;
                stepped.record_router_cycle(0, busy);
                stepped.record_link_cycle(0, !busy);
                stepped.end_cycle(c);
                jumped.record_router_cycle(0, busy);
                jumped.record_link_cycle(0, !busy);
                jumped.end_cycle(c);
            }
            for c in start + 1..=start + dead {
                stepped.occupancy.record_zeros(2);
                stepped.end_cycle(c);
            }
            jumped.advance_idle(start, dead, 2);
            stepped.finalize(start + dead);
            jumped.finalize(start + dead);
            for r in 0..2 {
                assert_eq!(
                    stepped.crossbar_series(r).samples(),
                    jumped.crossbar_series(r).samples(),
                    "router {r} series diverged for start={start} dead={dead}"
                );
            }
            assert_eq!(stepped.link_series(0).samples(), jumped.link_series(0).samples());
            assert_eq!(stepped.occupancy.total_cycles(), jumped.occupancy.total_cycles());
            assert_eq!(stepped.occupancy.zero_fraction(), jumped.occupancy.zero_fraction());
        }
    }

    #[test]
    fn advance_idle_splits_a_jump_spanning_three_windows() {
        // Regression (event-mode jump accounting): a single jump crossing
        // several sampling-window boundaries must emit one sample per
        // boundary — the in-progress busy counts roll into the first, the
        // later windows read zero — instead of attributing every dead
        // cycle to the window that happened to be current at jump time.
        let mut st = NetStats::new(1, 1, 100);
        // 40 cycles into the first window, 10 of them busy.
        for c in 1..=40u64 {
            st.record_router_cycle(0, c <= 10);
            st.record_link_cycle(0, c <= 10);
            st.occupancy.record(if c <= 10 { 0.5 } else { 0.0 });
            st.end_cycle(c);
        }
        // One jump over 340 dead cycles: crosses boundaries at 100, 200,
        // 300, and leaves 80 cycles of a fresh partial window.
        st.advance_idle(40, 340, 1);
        let xb = st.crossbar_series(0).samples();
        assert_eq!(xb.len(), 3, "three boundaries crossed, three samples");
        assert_eq!(xb[0].end_cycle, 100);
        assert!((xb[0].utilization - 0.10).abs() < 1e-12, "partial busy rolls into window 1");
        assert_eq!(xb[1].end_cycle, 200);
        assert_eq!(xb[1].utilization, 0.0);
        assert_eq!(xb[2].end_cycle, 300);
        assert_eq!(xb[2].utilization, 0.0);
        assert_eq!(st.occupancy.total_cycles(), 380);
        // Finalize flushes the 80-cycle tail as a partial, all idle.
        st.finalize(380);
        let xb = st.crossbar_series(0).samples();
        assert_eq!(xb.len(), 4);
        assert_eq!(xb[3].end_cycle, 380);
        assert_eq!(xb[3].utilization, 0.0);
        assert_eq!(st.link_series(0).samples().len(), 4);
    }

    #[test]
    fn percentile_extreme_ranks() {
        let v = [5.0, 1.0, 3.0];
        // p = 0 is the minimum, p = 100 the maximum — no interpolation
        // off the ends of the sorted sample.
        assert_eq!(percentile(v.iter().copied(), 0.0), 1.0);
        assert_eq!(percentile(v.iter().copied(), 100.0), 5.0);
        // p = 1.0 (one percent) interpolates just above the minimum.
        let p1 = percentile(v.iter().copied(), 1.0);
        assert!((p1 - 1.04).abs() < 1e-12, "p1 {p1}");
        // Extremes on the empty iterator fall back to 0.0, not a panic.
        assert_eq!(percentile(std::iter::empty(), 0.0), 0.0);
        assert_eq!(percentile(std::iter::empty(), 100.0), 0.0);
        // A single sample answers every rank with itself.
        for p in [0.0, 1.0, 50.0, 100.0] {
            assert_eq!(percentile([7.0].iter().copied(), p), 7.0);
        }
    }

    #[test]
    fn latency_histogram_bucket_formula_at_zero_and_max() {
        // latency 0 is clamped to 1 before the log2, landing in bucket 0
        // ([1, 2)): the percentile interpolates inside [1, 2].
        let mut zero = LatencyHistogram::new();
        zero.record(0);
        assert_eq!(zero.samples(), 1);
        assert_eq!(zero.percentile(100.0), 2, "bucket 0 upper edge");
        assert!(zero.percentile(0.0) >= 1, "bucket 0 lower edge");
        // u64::MAX has zero leading zeros; the raw bucket index 63 clamps
        // to 31, so the sample lands in the top bucket instead of
        // indexing out of bounds.
        let mut max = LatencyHistogram::new();
        max.record(u64::MAX);
        assert_eq!(max.samples(), 1);
        assert_eq!(max.percentile(100.0), (1u64 << 31) + (1u64 << 31), "top-bucket clamp");
        // Clamped extremes merge like any other samples.
        zero.merge(&max);
        assert_eq!(zero.samples(), 2);
        assert!(zero.percentile(100.0) > zero.percentile(0.0));
    }

    #[test]
    fn percentile_clamps_out_of_range_ranks() {
        // Regression: p > 100 used to compute a rank past `len - 1` and
        // index out of bounds; p < 0 underflowed towards the front.
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(v.iter().copied(), 150.0), 4.0, "p=150 answers the maximum");
        assert_eq!(percentile(v.iter().copied(), -5.0), 1.0, "p=-5 answers the minimum");
        assert_eq!(percentile([7.0].iter().copied(), 150.0), 7.0);
        assert_eq!(percentile(std::iter::empty(), 150.0), 0.0);
        assert_eq!(percentile(std::iter::empty(), -5.0), 0.0);
        // In-range queries are untouched by the clamp.
        assert!((percentile(v.iter().copied(), 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_cdf_skips_and_counts_nan() {
        // Regression: NaN.clamp stays NaN and `as usize` saturates to 0,
        // so NaN fractions were silently filed as zero-occupancy cycles.
        let mut cdf = OccupancyCdf::new();
        cdf.record(0.5);
        cdf.record(f64::NAN);
        cdf.record(0.5);
        assert_eq!(cdf.total_cycles(), 2, "NaN is not a sample");
        assert_eq!(cdf.dropped_samples(), 1);
        assert_eq!(cdf.zero_fraction(), 0.0, "no phantom bucket-0 entry");
        cdf.record(f64::NAN);
        assert_eq!(cdf.dropped_samples(), 2);
    }

    #[test]
    fn occupancy_cdf_merge_adds_bucketwise() {
        let mut a = OccupancyCdf::new();
        let mut b = OccupancyCdf::new();
        a.record(0.25);
        a.record_zeros(3);
        b.record(0.25);
        b.record(0.80);
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.total_cycles(), 6);
        assert_eq!(a.dropped_samples(), 1);
        assert!((a.zero_fraction() - 0.5).abs() < 1e-12);
        assert!((a.cumulative_at(25) - 5.0 / 6.0).abs() < 1e-12);
        assert!((a.cumulative_at(80) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_zeros_saturates_with_counter_instead_of_wrapping() {
        let mut cdf = OccupancyCdf::new();
        cdf.record_zeros(10);
        cdf.record_zeros(u64::MAX);
        assert_eq!(cdf.total_cycles(), u64::MAX, "saturated, not wrapped");
        assert_eq!(cdf.saturated_batches(), 1);
        cdf.record_zeros(u64::MAX);
        assert_eq!(cdf.saturated_batches(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overflows the occupancy sample count")]
    fn advance_idle_panics_loudly_on_overflowing_jump_in_debug() {
        // Regression: `saturating_mul` silently corrupted the CDF on a
        // u64::MAX-scale jump; the overflow must now fail visibly.
        let mut st = NetStats::new(4096, 0, 10_000);
        st.advance_idle(0, u64::MAX, 4096);
    }

    #[test]
    fn class_stats_merge_matches_concatenated_deliveries() {
        let mut a = ClassStats::default();
        let mut concat = ClassStats::default();
        let mut b = ClassStats::default();
        for lat in [3u64, 9, 120] {
            a.latency_sum += lat;
            a.delivered += 1;
            a.flits += 2;
            a.latency_max = a.latency_max.max(lat);
            a.latency_hist.record(lat);
        }
        for lat in [1u64, 400] {
            b.latency_sum += lat;
            b.delivered += 1;
            b.flits += 4;
            b.latency_max = b.latency_max.max(lat);
            b.latency_hist.record(lat);
        }
        for lat in [3u64, 9, 120, 1, 400] {
            concat.latency_sum += lat;
            concat.delivered += 1;
            concat.latency_max = concat.latency_max.max(lat);
            concat.latency_hist.record(lat);
        }
        concat.flits = 14;
        a.merge(&b);
        assert_eq!(a.delivered, concat.delivered);
        assert_eq!(a.flits, concat.flits);
        assert_eq!(a.latency_sum, concat.latency_sum);
        assert_eq!(a.latency_max, concat.latency_max);
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(a.latency_percentile(p), concat.latency_percentile(p));
        }
    }

    #[test]
    fn class_stats_mean() {
        let mut st = NetStats::new(1, 0, 10);
        st.record_delivery(TrafficClass::Communication, 4, 20);
        st.record_delivery(TrafficClass::Communication, 4, 40);
        let c = st.class(TrafficClass::Communication);
        assert_eq!(c.delivered, 2);
        assert_eq!(c.flits, 8);
        assert!((c.mean_latency() - 30.0).abs() < 1e-12);
        assert_eq!(c.latency_max, 40);
        assert_eq!(st.class(TrafficClass::SnackData).delivered, 0);
    }
}
