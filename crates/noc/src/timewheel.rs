//! A deterministic calendar queue for event-driven stepping.
//!
//! The simulator's event mode (DESIGN.md §12) advances the clock directly
//! to the next cycle at which *anything* can happen instead of iterating
//! dead cycles. Timed wake-ups — fault-plan window edges, CPM watchdog
//! sweeps, DRAM fetch completions, RCU busy horizons, run-loop deadlines —
//! are scheduled here; worklist-driven components (routers, links, NI
//! queues) wake "now" by construction and never enter the wheel.
//!
//! Determinism rules:
//!
//! * Slots are keyed by absolute cycle in a `BTreeMap`, so the earliest
//!   pending cycle is always well defined and independent of insertion
//!   order across cycles.
//! * Within one cycle, events drain in **FIFO order of scheduling** — a
//!   plain `Vec` per slot, never a hash structure — so replaying the same
//!   schedule yields the same intra-cycle order bit for bit.
//!
//! The wheel deliberately has no notion of cancellation: stale entries
//! (whose deadline the clock has already passed via a real step) are
//! dropped in bulk with [`TimeWheel::discard_due`], which is cheaper and
//! simpler than keyed removal and cannot perturb ordering.

#![deny(clippy::unwrap_used)]

use std::collections::BTreeMap;

/// A calendar queue mapping absolute cycles to FIFO event lists.
///
/// `T` is the event payload; scheduling and draining preserve per-cycle
/// insertion order exactly.
#[derive(Clone, Debug)]
pub struct TimeWheel<T> {
    slots: BTreeMap<u64, Vec<T>>,
    len: usize,
}

impl<T> Default for TimeWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimeWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimeWheel { slots: BTreeMap::new(), len: 0 }
    }

    /// Schedules `event` to fire at absolute `cycle`. Events scheduled to
    /// the same cycle fire in the order they were scheduled.
    pub fn schedule(&mut self, cycle: u64, event: T) {
        self.slots.entry(cycle).or_default().push(event);
        self.len += 1;
    }

    /// The earliest cycle with a pending event, if any.
    pub fn next_cycle(&self) -> Option<u64> {
        self.slots.keys().next().copied()
    }

    /// The earliest pending cycle strictly after `cycle`, if any.
    pub fn next_after(&self, cycle: u64) -> Option<u64> {
        self.slots
            .range((std::ops::Bound::Excluded(cycle), std::ops::Bound::Unbounded))
            .next()
            .map(|(&c, _)| c)
    }

    /// Removes every event scheduled at or before `cycle`, appending them
    /// to `out` in deterministic order: ascending cycle, FIFO within a
    /// cycle.
    pub fn drain_due(&mut self, cycle: u64, out: &mut Vec<T>) {
        while let Some((&c, _)) = self.slots.iter().next() {
            if c > cycle {
                break;
            }
            if let Some(mut events) = self.slots.remove(&c) {
                self.len -= events.len();
                out.append(&mut events);
            }
        }
    }

    /// Drops every event scheduled at or before `cycle` without observing
    /// it (bulk cancellation of deadlines the clock has already passed).
    pub fn discard_due(&mut self, cycle: u64) {
        while let Some((&c, _)) = self.slots.iter().next() {
            if c > cycle {
                break;
            }
            if let Some(events) = self.slots.remove(&c) {
                self.len -= events.len();
            }
        }
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Number of pending events across all cycles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_cycle_wins_regardless_of_insertion_order() {
        let mut w = TimeWheel::new();
        w.schedule(30, "c");
        w.schedule(10, "a");
        w.schedule(20, "b");
        assert_eq!(w.next_cycle(), Some(10));
        assert_eq!(w.next_after(10), Some(20));
        assert_eq!(w.next_after(25), Some(30));
        assert_eq!(w.next_after(30), None);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn same_cycle_events_drain_in_fifo_order() {
        let mut w = TimeWheel::new();
        w.schedule(5, 1);
        w.schedule(5, 2);
        w.schedule(3, 0);
        w.schedule(5, 3);
        let mut out = Vec::new();
        w.drain_due(5, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn drain_due_leaves_future_events_pending() {
        let mut w = TimeWheel::new();
        w.schedule(1, "past");
        w.schedule(2, "now");
        w.schedule(9, "future");
        let mut out = Vec::new();
        w.drain_due(2, &mut out);
        assert_eq!(out, vec!["past", "now"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_cycle(), Some(9));
    }

    #[test]
    fn discard_due_drops_stale_without_observation() {
        let mut w = TimeWheel::new();
        w.schedule(4, ());
        w.schedule(4, ());
        w.schedule(7, ());
        w.discard_due(6);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_cycle(), Some(7));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_cycle(), None);
    }
}
