//! Mesh topology: node identifiers, coordinates, neighbours and the static
//! Hamiltonian ring route used by SnackNoC transient data tokens.

use crate::routing::Dir;
use std::fmt;

/// Identifies a node (router + network interface pair) in the mesh.
///
/// Nodes are numbered row-major: node `y * cols + x` sits at column `x`,
/// row `y`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw row-major index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the raw row-major index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A `cols × rows` 2D mesh.
///
/// The coordinate convention is `x` = column growing **east**, `y` = row
/// growing **south** (row 0 is the north edge).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh {
    cols: u16,
    rows: u16,
}

impl Mesh {
    /// Creates a mesh with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        Mesh { cols, rows }
    }

    /// Number of columns (east-west extent).
    pub fn cols(&self) -> usize {
        self.cols as usize
    }

    /// Number of rows (north-south extent).
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.cols() * self.rows()
    }

    /// The node at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of bounds.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.cols() && y < self.rows(), "mesh coordinate out of bounds");
        NodeId::new(y * self.cols() + x)
    }

    /// The `(x, y)` coordinates of `node`.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        (i % self.cols(), i / self.cols())
    }

    /// The neighbour of `node` in direction `dir`, if one exists.
    ///
    /// `Dir::Local` has no neighbour and always returns `None`.
    pub fn neighbor(&self, node: NodeId, dir: Dir) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        match dir {
            Dir::East if x + 1 < self.cols() => Some(self.node_at(x + 1, y)),
            Dir::West if x > 0 => Some(self.node_at(x - 1, y)),
            Dir::South if y + 1 < self.rows() => Some(self.node_at(x, y + 1)),
            Dir::North if y > 0 => Some(self.node_at(x, y - 1)),
            _ => None,
        }
    }

    /// Iterates over all nodes in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::new)
    }

    /// The memory-controller corner nodes (paper Table IV: "2D 4x4 Mesh w.
    /// Corner MemCntrls"). Returns the four mesh corners, deduplicated for
    /// degenerate meshes.
    pub fn corner_nodes(&self) -> Vec<NodeId> {
        let xs = [0, self.cols() - 1];
        let ys = [0, self.rows() - 1];
        let mut out = Vec::with_capacity(4);
        for &y in &ys {
            for &x in &xs {
                let n = self.node_at(x, y);
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Builds the static ring route used for SnackNoC transient data tokens:
    /// a Hamiltonian cycle visiting every node exactly once, where each
    /// consecutive pair (including last → first) is mesh-adjacent.
    ///
    /// # Errors
    ///
    /// Returns [`RingError`] for meshes without a Hamiltonian cycle
    /// (both dimensions odd, or a 1-wide mesh longer than 2).
    pub fn ring(&self) -> Result<Vec<NodeId>, RingError> {
        let (c, r) = (self.cols(), self.rows());
        if c == 1 && r == 1 {
            return Ok(vec![self.node_at(0, 0)]);
        }
        if c == 1 || r == 1 {
            // A path graph only has a Hamiltonian cycle with exactly 2 nodes.
            if c * r == 2 {
                return Ok(self.nodes().collect());
            }
            return Err(RingError { cols: self.cols, rows: self.rows });
        }
        if r % 2 == 0 {
            Ok(self.ring_rows_even())
        } else if c % 2 == 0 {
            // Transpose the even-rows construction.
            let t = Mesh::new(self.rows, self.cols);
            Ok(t.ring_rows_even()
                .into_iter()
                .map(|n| {
                    let (tx, ty) = t.coords(n);
                    self.node_at(ty, tx)
                })
                .collect())
        } else {
            Err(RingError { cols: self.cols, rows: self.rows })
        }
    }

    /// Hamiltonian cycle construction for meshes with an even number of
    /// rows: traverse row 0 west→east, serpentine through columns `1..cols`
    /// of rows `1..rows`, then return north along column 0.
    fn ring_rows_even(&self) -> Vec<NodeId> {
        let (c, r) = (self.cols(), self.rows());
        debug_assert!(r % 2 == 0 && c >= 2);
        let mut path = Vec::with_capacity(c * r);
        for x in 0..c {
            path.push(self.node_at(x, 0));
        }
        for y in 1..r {
            if y % 2 == 1 {
                for x in (1..c).rev() {
                    path.push(self.node_at(x, y));
                }
            } else {
                for x in 1..c {
                    path.push(self.node_at(x, y));
                }
            }
        }
        for y in (1..r).rev() {
            path.push(self.node_at(0, y));
        }
        path
    }

    /// Partitions the mesh into `tiles` full-width horizontal bands for
    /// sharded stepping, rows distributed as evenly as possible (the
    /// first `rows % tiles` bands get one extra row).
    ///
    /// Row-major node numbering makes each band a **contiguous node-index
    /// range**, which is what lets the sharded stepper hand every worker
    /// a disjoint `split_at_mut` slice of all per-node state. Bands are
    /// returned north to south; concatenated they cover `0..node_count()`
    /// exactly, and every band is non-empty.
    ///
    /// Returns `None` when `tiles` is zero or exceeds the row count (a
    /// band must contain at least one full row so tile boundaries only
    /// cut north-south links).
    pub fn row_bands(&self, tiles: usize) -> Option<Vec<std::ops::Range<usize>>> {
        if tiles == 0 || tiles > self.rows() {
            return None;
        }
        let (rows, cols) = (self.rows(), self.cols());
        let base = rows / tiles;
        let extra = rows % tiles;
        let mut bands = Vec::with_capacity(tiles);
        let mut row = 0;
        for t in 0..tiles {
            let height = base + usize::from(t < extra);
            bands.push(row * cols..(row + height) * cols);
            row += height;
        }
        debug_assert_eq!(row, rows);
        Some(bands)
    }

    /// First hop of a shortest path from `from` to `to` that avoids links
    /// reported down by `is_down(node, dir)` — the detour primitive the
    /// SnackNoC ring uses to route tokens around faulted segments.
    ///
    /// Deterministic: breadth-first in [`Dir::ROUTER_DIRS`] order, so the
    /// same down-set always yields the same detour. Returns `Some(to)`
    /// when `from == to`, and `None` when every route is severed.
    pub fn detour_next_hop(
        &self,
        from: NodeId,
        to: NodeId,
        mut is_down: impl FnMut(NodeId, Dir) -> bool,
    ) -> Option<NodeId> {
        if from == to {
            return Some(to);
        }
        let n = self.node_count();
        // `first_hop[v]` = the neighbour of `from` that a shortest live
        // path to `v` leaves through; doubles as the visited set.
        let mut first_hop: Vec<Option<NodeId>> = vec![None; n];
        first_hop[from.index()] = Some(from); // sentinel: visited, no hop
        let mut queue = std::collections::VecDeque::with_capacity(n);
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for d in Dir::ROUTER_DIRS {
                let Some(nb) = self.neighbor(cur, d) else { continue };
                if first_hop[nb.index()].is_some() || is_down(cur, d) {
                    continue;
                }
                let hop = if cur == from { nb } else { first_hop[cur.index()]? };
                first_hop[nb.index()] = Some(hop);
                if nb == to {
                    return Some(hop);
                }
                queue.push_back(nb);
            }
        }
        None
    }
}

/// Error returned by [`Mesh::ring`] when no Hamiltonian cycle exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RingError {
    cols: u16,
    rows: u16,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no hamiltonian ring exists for a {}x{} mesh (needs an even side)",
            self.cols, self.rows
        )
    }
}

impl std::error::Error for RingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_indexing_round_trips() {
        let m = Mesh::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                let n = m.node_at(x, y);
                assert_eq!(m.coords(n), (x, y));
            }
        }
        assert_eq!(m.node_at(0, 0).index(), 0);
        assert_eq!(m.node_at(3, 3).index(), 15);
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = Mesh::new(4, 4);
        let nw = m.node_at(0, 0);
        assert_eq!(m.neighbor(nw, Dir::North), None);
        assert_eq!(m.neighbor(nw, Dir::West), None);
        assert_eq!(m.neighbor(nw, Dir::East), Some(m.node_at(1, 0)));
        assert_eq!(m.neighbor(nw, Dir::South), Some(m.node_at(0, 1)));
        assert_eq!(m.neighbor(nw, Dir::Local), None);

        let mid = m.node_at(2, 2);
        assert_eq!(m.neighbor(mid, Dir::North), Some(m.node_at(2, 1)));
        assert_eq!(m.neighbor(mid, Dir::South), Some(m.node_at(2, 3)));
        assert_eq!(m.neighbor(mid, Dir::East), Some(m.node_at(3, 2)));
        assert_eq!(m.neighbor(mid, Dir::West), Some(m.node_at(1, 2)));
    }

    #[test]
    fn corners_of_4x4() {
        let m = Mesh::new(4, 4);
        let corners = m.corner_nodes();
        assert_eq!(
            corners,
            vec![m.node_at(0, 0), m.node_at(3, 0), m.node_at(0, 3), m.node_at(3, 3)]
        );
    }

    fn assert_hamiltonian_cycle(m: &Mesh) {
        let ring = m.ring().expect("ring should exist");
        assert_eq!(ring.len(), m.node_count(), "ring must visit every node");
        let mut seen = vec![false; m.node_count()];
        for n in &ring {
            assert!(!seen[n.index()], "node visited twice: {n}");
            seen[n.index()] = true;
        }
        for w in ring.windows(2) {
            let adjacent = Dir::ROUTER_DIRS
                .iter()
                .any(|&d| m.neighbor(w[0], d) == Some(w[1]));
            assert!(adjacent, "{} and {} not adjacent", w[0], w[1]);
        }
        let wraps = Dir::ROUTER_DIRS
            .iter()
            .any(|&d| m.neighbor(*ring.last().unwrap(), d) == Some(ring[0]));
        assert!(wraps, "ring does not close");
    }

    #[test]
    fn ring_is_hamiltonian_for_standard_meshes() {
        for (c, r) in [(4, 4), (8, 4), (4, 8), (8, 8), (16, 8), (2, 2), (3, 4), (4, 3), (2, 5)] {
            assert_hamiltonian_cycle(&Mesh::new(c, r));
        }
    }

    #[test]
    fn ring_fails_for_odd_by_odd() {
        assert!(Mesh::new(3, 3).ring().is_err());
        assert!(Mesh::new(5, 7).ring().is_err());
        assert!(Mesh::new(1, 4).ring().is_err());
    }

    #[test]
    fn detour_next_hop_matches_direct_route_when_healthy() {
        let m = Mesh::new(4, 4);
        for src in m.nodes() {
            for dst in m.nodes() {
                let hop = m.detour_next_hop(src, dst, |_, _| false);
                if src == dst {
                    assert_eq!(hop, Some(dst));
                } else {
                    let hop = hop.expect("healthy mesh always routes");
                    let adjacent =
                        Dir::ROUTER_DIRS.iter().any(|&d| m.neighbor(src, d) == Some(hop));
                    assert!(adjacent, "first hop is a neighbour");
                }
            }
        }
        // Healthy BFS is minimal: adjacent nodes route directly.
        assert_eq!(
            m.detour_next_hop(m.node_at(0, 0), m.node_at(1, 0), |_, _| false),
            Some(m.node_at(1, 0))
        );
    }

    #[test]
    fn detour_next_hop_steers_around_a_down_link() {
        let m = Mesh::new(4, 4);
        let a = m.node_at(0, 0);
        let b = m.node_at(1, 0);
        // The direct east link is dead; BFS must leave through south.
        let hop = m
            .detour_next_hop(a, b, |node, dir| node == a && dir == Dir::East)
            .expect("a detour exists");
        assert_eq!(hop, m.node_at(0, 1));
        // Walking the detour converges: every step gets a valid next hop.
        let mut cur = a;
        let mut steps = 0;
        while cur != b {
            cur = m
                .detour_next_hop(cur, b, |node, dir| node == a && dir == Dir::East)
                .expect("path stays connected");
            steps += 1;
            assert!(steps <= m.node_count(), "detour walk must terminate");
        }
        assert_eq!(steps, 3, "shortest detour is 3 hops");
    }

    #[test]
    fn detour_next_hop_reports_severed_nodes() {
        let m = Mesh::new(2, 2);
        let a = m.node_at(0, 0);
        // Both of a's outgoing links are down: nothing is reachable.
        assert_eq!(m.detour_next_hop(a, m.node_at(1, 1), |n, _| n == a), None);
    }

    #[test]
    fn row_bands_tile_the_mesh_exactly() {
        for (c, r) in [(4u16, 4u16), (8, 8), (5, 7), (1, 1), (16, 3), (2, 9)] {
            let m = Mesh::new(c, r);
            for tiles in 1..=m.rows() {
                let bands = m.row_bands(tiles).expect("tiles <= rows always partitions");
                assert_eq!(bands.len(), tiles);
                // Contiguous, exhaustive, non-empty, whole rows only.
                let mut next = 0;
                for b in &bands {
                    assert_eq!(b.start, next, "bands must be contiguous");
                    assert!(!b.is_empty());
                    assert_eq!(b.len() % m.cols(), 0, "bands contain whole rows");
                    next = b.end;
                }
                assert_eq!(next, m.node_count(), "bands must cover every node");
                // Even distribution: band heights differ by at most one row.
                let heights: Vec<usize> = bands.iter().map(|b| b.len() / m.cols()).collect();
                let (min, max) =
                    (heights.iter().min().unwrap(), heights.iter().max().unwrap());
                assert!(max - min <= 1, "uneven bands: {heights:?}");
            }
        }
    }

    #[test]
    fn row_bands_reject_degenerate_tilings() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.row_bands(0), None, "zero tiles");
        assert_eq!(m.row_bands(5), None, "more tiles than rows");
        assert!(m.row_bands(4).is_some());
    }

    #[test]
    fn row_band_boundaries_only_cut_north_south_links() {
        // Every mesh link crossing a band boundary must be vertical: a
        // flit leaves its band only via North/South, which is what bounds
        // the sharded boundary-mailbox traffic to O(cols) per band pair.
        let m = Mesh::new(6, 6);
        let bands = m.row_bands(3).unwrap();
        let band_of = |n: NodeId| bands.iter().position(|b| b.contains(&n.index())).unwrap();
        for node in m.nodes() {
            for d in Dir::ROUTER_DIRS {
                if let Some(nb) = m.neighbor(node, d) {
                    if band_of(node) != band_of(nb) {
                        assert!(
                            matches!(d, Dir::North | Dir::South),
                            "cross-band link {node}->{nb} must be vertical"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_display_error_is_informative() {
        let err = Mesh::new(3, 3).ring().unwrap_err();
        assert!(err.to_string().contains("3x3"));
    }
}
