//! A minimal in-repo property-test harness (the offline `proptest`
//! replacement).
//!
//! [`prop_check!`](crate::prop_check) runs a closure over `N` cases, each
//! with an independent deterministic [`Rng`] derived from the base seed and
//! the case index. On failure it prints the case index and the *case seed*,
//! so a single failing case can be replayed in isolation with
//! [`replay`] — no shrinking, but exact, instant reproduction.
//!
//! ```
//! use snacknoc_prng::prop_check;
//!
//! prop_check!(cases = 32, seed = 0xC0FFEE, |rng| {
//!     let a = rng.range(0..100);
//!     let b = rng.range(0..100);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::{hashrand, Rng};

/// Derives the per-case seed from the base seed and case index.
///
/// Exposed so a failure report's case seed can be reproduced from
/// `(seed, case)` too.
#[must_use]
pub fn case_seed(seed: u64, case: u64) -> u64 {
    hashrand::splitmix(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Runs `body` for `cases` cases. Prefer the [`prop_check!`](crate::prop_check)
/// macro, which fills in the caller's location for the failure report.
///
/// # Panics
///
/// Re-raises the body's panic after printing the failing case index and
/// case seed for replay.
pub fn run<F>(location: &str, cases: u64, seed: u64, mut body: F)
where
    F: FnMut(&mut Rng),
{
    assert!(cases > 0, "prop_check: need at least one case");
    for case in 0..cases {
        let cs = case_seed(seed, case);
        let mut rng = Rng::new(cs);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "prop_check failed at {location}: case {case}/{cases} \
                 (seed {seed:#x}, case_seed {cs:#x})\n\
                 replay: snacknoc_prng::check::replay({cs:#x}, |rng| ...)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replays a single failing case by its reported `case_seed`.
pub fn replay<F>(case_seed: u64, mut body: F)
where
    F: FnMut(&mut Rng),
{
    let mut rng = Rng::new(case_seed);
    body(&mut rng);
}

/// Runs a property over `N` deterministic cases:
/// `prop_check!(cases = N, seed = S, |rng| { ... })`.
///
/// `rng` is a fresh [`Rng`](crate::Rng) per case; use plain `assert!`
/// macros in the body. On failure the failing case index and case seed are
/// printed for replay with [`check::replay`](crate::check::replay).
#[macro_export]
macro_rules! prop_check {
    (cases = $cases:expr, seed = $seed:expr, $body:expr $(,)?) => {
        $crate::check::run(
            concat!(file!(), ":", line!()),
            $cases,
            $seed,
            $body,
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_with_distinct_seeds() {
        let mut seen = Vec::new();
        prop_check!(cases = 16, seed = 9, |rng| {
            seen.push(rng.next_u64());
        });
        assert_eq!(seen.len(), 16);
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 16, "cases draw from independent streams");
    }

    #[test]
    fn failure_reports_replayable_case_seed() {
        // Find the failing case via catch_unwind, then replay it.
        let failing = std::panic::catch_unwind(|| {
            prop_check!(cases = 64, seed = 123, |rng| {
                assert!(rng.range(0..10) != 3, "hit the bad value");
            });
        });
        assert!(failing.is_err(), "some case must draw a 3");
        // The report derives case seeds via `case_seed`; scan for the
        // first failing case and confirm replay reproduces it.
        let bad = (0..64).find(|&c| {
            let mut rng = Rng::new(case_seed(123, c));
            rng.range(0..10) == 3
        });
        let bad = bad.expect("a failing case exists");
        let mut reproduced = false;
        replay(case_seed(123, bad), |rng| {
            reproduced = rng.range(0..10) == 3;
        });
        assert!(reproduced, "replay reproduces the draw");
    }

    #[test]
    fn determinism_across_runs() {
        let collect = || {
            let mut v = Vec::new();
            run("here", 8, 42, |rng| v.push(rng.unit_f64()));
            v
        };
        assert_eq!(collect(), collect());
    }
}
