//! Hash-derived randomness for traffic engines (*common random numbers*).
//!
//! Engines derive every random decision by hashing
//! `(seed, core, event index, purpose)` instead of consuming a sequential
//! RNG stream. This gives *common random numbers* across NoC
//! configurations — event `k` of core `c` makes the same choices no matter
//! how the network reorders deliveries — so experiment deltas (paper
//! Figs. 1, 12, 13) measure latency effects, not sampling noise.
//!
//! The constants here are the single source of truth for the whole
//! workspace (`snacknoc_workloads::hashrand` re-exports this module) and
//! are pinned by fingerprint tests: changing them silently changes every
//! recorded figure.

/// SplitMix64 finalizer: advances the input by the golden gamma and mixes.
///
/// Also serves as the seed expander for [`crate::Rng`].
#[must_use]
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform `[0, 1)` draw for decision `salt` of event `k` on core `c`.
#[must_use]
pub fn unit(seed: u64, c: u64, k: u64, salt: u64) -> f64 {
    let z = splitmix(
        splitmix(seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ c.wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ k.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pre-migration fingerprint of the `workloads::hashrand`
    /// implementation. Kernel inputs and every figure in `EXPERIMENTS.md`
    /// depend on these exact bits — do not "fix" this test.
    #[test]
    fn unit_fingerprint_is_bit_identical_to_seed_implementation() {
        assert_eq!(unit(7, 3, 0, 1).to_bits(), 0x3FE2_EBC6_81F0_250E);
        assert_eq!(unit(7, 3, 0, 1), 0.591_281_179_223_331_5);
        assert_eq!(unit(1, 0, 0, 9), 0.476_973_884_903_163_6);
    }

    #[test]
    fn unit_is_deterministic_and_in_range() {
        for k in 0..1000 {
            let u = unit(7, 3, k, 1);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit(7, 3, k, 1));
        }
        assert_ne!(unit(7, 3, 0, 1), unit(8, 3, 0, 1), "seed matters");
        assert_ne!(unit(7, 3, 0, 1), unit(7, 4, 0, 1), "core matters");
        assert_ne!(unit(7, 3, 0, 1), unit(7, 3, 0, 2), "salt matters");
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|k| unit(1, 0, k, 9)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
