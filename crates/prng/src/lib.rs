//! # snacknoc-prng
//!
//! Self-contained deterministic randomness for the SnackNoC reproduction.
//! The repo vendors **no third-party crates** — every random number the
//! simulator, the workloads, the tests and the benchmarks consume comes
//! from this crate, so a clean checkout builds and tests fully offline and
//! every experiment is bit-reproducible across machines and releases.
//!
//! Three pieces:
//!
//! * [`Rng`] — a seedable xoshiro256** stream generator (seeded through a
//!   SplitMix64 expander, the construction recommended by its authors)
//!   with [`Rng::next_u64`], [`Rng::range`], [`Rng::unit_f64`] and
//!   [`Rng::shuffle`]. Use it where sequential sampling is fine: kernel
//!   input generation, randomized tests, benchmarks.
//! * [`hashrand`] — counter-based *common random numbers*:
//!   [`hashrand::unit`] hashes `(seed, core, event, salt)` so event `k` of
//!   core `c` draws the same value no matter how the network reorders
//!   deliveries. Traffic engines must use this, never a stream RNG —
//!   experiment deltas (paper Figs. 1, 12, 13) depend on it.
//! * [`check`] + [`prop_check!`] — a minimal property-test harness: run a
//!   closure over `N` deterministically-derived cases and report the
//!   failing case seed for replay.
//!
//! ## Example
//!
//! ```
//! use snacknoc_prng::Rng;
//!
//! let mut rng = Rng::new(42);
//! let die = rng.range(1..7);
//! assert!((1..7).contains(&die));
//! let mut deck: Vec<u32> = (0..52).collect();
//! rng.shuffle(&mut deck);
//! assert_eq!(Rng::new(42).range(1..7), die, "same seed, same stream");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod hashrand;

use std::ops::Range;

/// A seedable deterministic stream generator (xoshiro256**).
///
/// The 256-bit state is expanded from the `u64` seed with SplitMix64, so
/// every seed — including 0 — yields a well-mixed, non-zero state. The
/// stream is stable: it is part of this repo's reproducibility contract
/// and must not change (see `DESIGN.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors
        // (`hashrand::splitmix` advances-then-finalizes, so striding the
        // input by the golden gamma reproduces the SplitMix64 stream).
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            *slot =
                hashrand::splitmix(seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[lo, hi)`. Never yields `hi`.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the draw is exactly
    /// uniform (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "Rng::range: empty range {}..{}", r.start, r.end);
        let span = r.end - r.start;
        // Lemire: accept x when the low product word clears the bias zone.
        let threshold = span.wrapping_neg() % span; // = (2^64 mod span)
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(span);
            if (wide as u64) >= threshold {
                return r.start + (wide >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`. Never yields `hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, r: Range<usize>) -> usize {
        usize::try_from(self.range(r.start as u64..r.end as u64)).expect("span fits usize")
    }

    /// A uniform `i64` in `[lo, hi)`. Never yields `hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, r: Range<i64>) -> i64 {
        assert!(r.start < r.end, "Rng::range_i64: empty range");
        let span = (r.end as u64).wrapping_sub(r.start as u64);
        r.start.wrapping_add(self.range(0..span) as i64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, r: Range<f64>) -> f64 {
        assert!(r.start.is_finite() && r.end.is_finite() && r.start < r.end);
        r.start + self.unit_f64() * (r.end - r.start)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        // Top bit: the ** scrambler's high bits are its best ones.
        self.next_u64() >> 63 == 1
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A reference to a uniformly chosen element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.range_usize(0..xs.len())])
        }
    }

    /// Derives an independent child generator; advances this stream once.
    ///
    /// Useful for giving each test case / worker its own stream without
    /// correlated outputs.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(0xDEAD_BEF0);
        assert_ne!(Rng::new(0xDEAD_BEEF).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_is_pinned() {
        // The first outputs for seed 1 are part of the reproducibility
        // contract: changing the generator invalidates every recorded
        // experiment, so this test must never be "fixed" to pass.
        let mut r = Rng::new(1);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng::new(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again);
        // Zero seed must not collapse to an all-zero state.
        let mut z = Rng::new(0);
        assert!((0..8).any(|_| z.next_u64() != 0));
    }

    #[test]
    fn range_never_yields_hi_and_covers_lo() {
        let mut r = Rng::new(7);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let x = r.range(3..9);
            assert!((3..9).contains(&x));
            seen_lo |= x == 3;
        }
        assert!(seen_lo, "lower bound reachable");
        // Degenerate one-element range.
        assert_eq!(r.range(5..6), 5);
        assert_eq!(r.range_i64(-1..0), -1);
        // Signed ranges straddle zero correctly.
        for _ in 0..1000 {
            let x = r.range_i64(-512..512);
            assert!((-512..512).contains(&x));
        }
        // Full-width span (span wraps to 0 in u64 arithmetic) still works.
        let x = r.range_i64(i64::MIN..i64::MAX);
        assert!((i64::MIN..i64::MAX).contains(&x));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(1).range(4..4);
    }

    #[test]
    fn unit_f64_is_half_open_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let n = 20_000;
        // chi-square-lite over 16 buckets: with ~1250 expected per bucket,
        // a correct generator stays well under the 0.1%-significance bound
        // (chi2 ≈ 39 for 15 dof); allow slack to keep the test robust.
        let mut buckets = [0u32; 16];
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 16.0) as usize] += 1;
            sum += u;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 =
            buckets.iter().map(|&c| (f64::from(c) - expect).powi(2) / expect).sum();
        assert!(chi2 < 60.0, "chi2 {chi2} buckets {buckets:?}");
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_is_roughly_uniform_over_16_buckets() {
        let mut r = Rng::new(13);
        let n = 20_000u32;
        let mut buckets = [0u32; 16];
        for _ in 0..n {
            buckets[r.range_usize(0..16)] += 1;
        }
        let expect = f64::from(n) / 16.0;
        let chi2: f64 =
            buckets.iter().map(|&c| (f64::from(c) - expect).powi(2) / expect).sum();
        assert!(chi2 < 60.0, "chi2 {chi2} buckets {buckets:?}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let mut r = Rng::new(3);
        let mut xs: Vec<u32> = (0..64).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "permutation");
        assert_ne!(xs, (0..64).collect::<Vec<_>>(), "actually moved");
        // Deterministic given the seed.
        let mut r2 = Rng::new(3);
        let mut ys: Vec<u32> = (0..64).collect();
        r2.shuffle(&mut ys);
        assert_eq!(xs, ys);
        // Empty and singleton slices are fine.
        r.shuffle::<u32>(&mut []);
        let mut one = [9];
        r.shuffle(&mut one);
        assert_eq!(one, [9]);
    }

    #[test]
    fn choose_flip_fork() {
        let mut r = Rng::new(21);
        assert_eq!(r.choose::<u8>(&[]), None);
        let xs = [1, 2, 3];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs).unwrap()));
        }
        let heads = (0..10_000).filter(|_| r.flip()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
        let mut child = r.fork();
        let mut sibling = r.fork();
        assert_ne!(child.next_u64(), sibling.next_u64(), "forks independent");
    }
}
