//! # snacknoc-service
//!
//! The SnackNoC platform as a *served system*: an always-on, deterministic
//! service loop that accepts kernel submissions from many simulated
//! tenants, classes them by QoS, admits or rejects them against bounded
//! per-class queues, dispatches them onto the platform's CPM slots under
//! namespace-epoch isolation, and accounts per-tenant SLO latency,
//! throughput and fairness.
//!
//! The paper pitches the communication layer as a *platform* for offloaded
//! kernels; `run_kernel`/`run_multiprogram` are one-shot batch calls. This
//! crate closes the gap (ROADMAP item 3): a long-running scheduler in the
//! spirit of MultiNoC's multiprogrammed NoC-resident compute, with the
//! paper's Fig. 12 priority-arbitration experiment recast as one policy of
//! a real service ([`presets::fig12_qos`]).
//!
//! Modules:
//!
//! * [`qos`] — QoS classes, per-class queue policies, typed admission
//!   errors.
//! * [`tenant`] — tenant specifications and open/closed-loop arrival
//!   processes.
//! * [`service`] — the service loop, its validated configuration and the
//!   per-tenant/per-class report.
//! * [`presets`] — ready-made scenarios (three-class demo, SLO sweep, the
//!   Fig. 12 QoS experiment, decentralized-CPM scaling).
//!
//! ## Determinism
//!
//! A service run is a pure function of its [`service::ServiceSpec`]: every
//! scheduling decision is keyed on the platform cycle, seeded RNG streams
//! and index-ordered iteration — never on host time, hashing order or
//! thread interleaving. The loop composes with all five stepping modes
//! (dense, active, event, sharded, event+sharded): clock jumps are capped
//! at the next service event (pending arrival, abort deadline, drain
//! deadline), so every mode observes arrivals, dispatches, completions and
//! aborts at identical cycles and the final report is bit-identical. The
//! determinism suite proves this for fixed and randomized schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod presets;
pub mod qos;
pub mod service;
pub mod tenant;

pub use presets::{decentralized_cpm, fig12_qos, slo_sweep, three_class_demo};
pub use qos::{AdmissionError, ClassPolicy, QosClass};
pub use service::{
    run_service, ClassReport, ServiceConfigError, ServiceError, ServiceReport, ServiceSpec,
    Stepping, TenantReport,
};
pub use tenant::{Arrivals, TenantSpec};
