//! Ready-made service scenarios: the quickstart demo, the SLO load sweep
//! the `snack-service` bench sweeps, and service re-expressions of the
//! paper's Fig. 12 QoS experiment and the decentralized-CPM extension.

use crate::qos::{ClassPolicy, QosClass};
use crate::service::ServiceSpec;
use crate::tenant::{Arrivals, TenantSpec};
use snacknoc_noc::NocConfig;
use snacknoc_workloads::kernels::Kernel;
use snacknoc_workloads::suite::{profile, Benchmark};

/// Three tenants, one per QoS class, on the default single-CPM DAPPER
/// mesh: the `examples/service_tenants.rs` quickstart scenario. An
/// interactive Guaranteed tenant, a periodic Burstable tenant and a
/// greedy BestEffort tenant compete for one CPM.
pub fn three_class_demo(seed: u64) -> ServiceSpec {
    let tenants = vec![
        TenantSpec::new(
            "alice-interactive",
            QosClass::Guaranteed,
            Kernel::Mac,
            32,
            Arrivals::Closed { think: 400, inflight: 1 },
        ),
        TenantSpec::new(
            "bob-periodic",
            QosClass::Burstable,
            Kernel::Reduction,
            48,
            Arrivals::Open { mean_gap: 1_500 },
        ),
        TenantSpec::new(
            "carol-scavenger",
            QosClass::BestEffort,
            Kernel::Mac,
            48,
            Arrivals::Open { mean_gap: 900 },
        ),
    ];
    ServiceSpec::new(tenants, seed)
}

/// The SLO sweep scenario at a given load level: six open-loop tenants
/// (two per class) on a two-CPM DAPPER mesh. `load_pct` scales the
/// arrival rate — 100 is the calibrated saturation knee of the two-CPM
/// pool, so higher values drive the queues into sustained admission
/// rejection while the class ranks decide who still meets their SLO.
///
/// Queue bounds are deliberately small (4 per class) so saturation shows
/// up as typed rejections rather than unbounded queueing, and the
/// BestEffort aging threshold is finite so starvation avoidance is
/// exercised rather than assumed.
pub fn slo_sweep(load_pct: u32, seed: u64) -> ServiceSpec {
    let load = u64::from(load_pct.max(1));
    // Base inter-arrival gaps at 100% load, per tenant; scaled inversely
    // with the requested load.
    let gap = |base: u64| -> u64 { (base * 100 / load).max(1) };
    let tenants = vec![
        TenantSpec::new(
            "gold-a",
            QosClass::Guaranteed,
            Kernel::Mac,
            32,
            Arrivals::Open { mean_gap: gap(850) },
        ),
        TenantSpec::new(
            "gold-b",
            QosClass::Guaranteed,
            Kernel::Reduction,
            48,
            Arrivals::Open { mean_gap: gap(950) },
        ),
        TenantSpec::new(
            "silver-a",
            QosClass::Burstable,
            Kernel::Mac,
            48,
            Arrivals::Open { mean_gap: gap(800) },
        ),
        TenantSpec::new(
            "silver-b",
            QosClass::Burstable,
            Kernel::Reduction,
            64,
            Arrivals::Open { mean_gap: gap(1_000) },
        ),
        TenantSpec::new(
            "bronze-a",
            QosClass::BestEffort,
            Kernel::Mac,
            64,
            Arrivals::Open { mean_gap: gap(750) },
        ),
        TenantSpec::new(
            "bronze-b",
            QosClass::BestEffort,
            Kernel::Spmv,
            6,
            Arrivals::Open { mean_gap: gap(900) },
        ),
    ];
    let mut spec = ServiceSpec::new(tenants, seed);
    spec.cpm_count = 2;
    spec.horizon = 60_000;
    spec.drain = 30_000;
    spec.policies = [
        ClassPolicy::new(4, 2_048),
        ClassPolicy::new(4, 4_096),
        ClassPolicy::new(4, 8_192),
    ];
    spec
}

/// The paper's Fig. 12 QoS experiment as a service scenario: kernels are
/// served *concurrently with a CMP application* on a priority-arbitrated
/// DAPPER mesh, so communication traffic keeps right-of-way over snack
/// traffic at every router while the service's class ranks arbitrate
/// among the kernels themselves. (The standalone
/// `fig12_qos_impact` binary still measures the runtime-impact table;
/// this preset is the served-system version of the same machinery.)
pub fn fig12_qos(seed: u64) -> ServiceSpec {
    let tenants = vec![
        TenantSpec::new(
            "latency-sla",
            QosClass::Guaranteed,
            Kernel::Mac,
            32,
            Arrivals::Closed { think: 600, inflight: 1 },
        ),
        TenantSpec::new(
            "batch",
            QosClass::BestEffort,
            Kernel::Reduction,
            64,
            Arrivals::Open { mean_gap: 1_200 },
        ),
    ];
    let mut spec = ServiceSpec::new(tenants, seed);
    spec.noc = NocConfig::dapper().with_priority_arbitration(true);
    spec.workload = Some((profile(Benchmark::Fft).scaled(0.004), seed));
    spec.horizon = 30_000;
    spec.drain = 30_000;
    spec
}

/// The decentralized-CPM extension as a service scenario: `cpm_count`
/// corner CPMs (1..=4) serve four tenants, one per paper kernel — the
/// service analogue of the `ext_decentralized_cpm` binary's concurrent
/// multi-CPM run. More corners mean more admission slots: throughput
/// scales and queue-full rejections fall as `cpm_count` grows.
pub fn decentralized_cpm(cpm_count: usize, seed: u64) -> ServiceSpec {
    let tenants = vec![
        TenantSpec::new(
            "sgemm",
            QosClass::Guaranteed,
            Kernel::Sgemm,
            4,
            Arrivals::Closed { think: 500, inflight: 1 },
        ),
        TenantSpec::new(
            "reduction",
            QosClass::Burstable,
            Kernel::Reduction,
            64,
            Arrivals::Closed { think: 300, inflight: 1 },
        ),
        TenantSpec::new(
            "mac",
            QosClass::Burstable,
            Kernel::Mac,
            48,
            Arrivals::Closed { think: 300, inflight: 1 },
        ),
        TenantSpec::new(
            "spmv",
            QosClass::BestEffort,
            Kernel::Spmv,
            6,
            Arrivals::Closed { think: 200, inflight: 1 },
        ),
    ];
    let mut spec = ServiceSpec::new(tenants, seed);
    spec.cpm_count = cpm_count;
    spec.horizon = 40_000;
    spec.drain = 20_000;
    spec
}
