//! QoS classes, per-class queue policies and typed admission errors.

use std::fmt;

/// Service class of a tenant, mapped onto the scheduler's dispatch
/// priority: lower [`QosClass::rank`] wins CPM slots first. The NoC-level
/// half of QoS is the paper's priority arbitration
/// (`NocConfig::with_priority_arbitration`), which keeps CMP traffic ahead
/// of snack traffic; *within* the snack layer, class rank plus
/// starvation-avoidance aging ([`ClassPolicy::aging_threshold`]) decides
/// who runs next.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QosClass {
    /// Latency-protected: dispatched ahead of everything un-aged.
    Guaranteed,
    /// Mid-tier: yields to Guaranteed, beats BestEffort.
    Burstable,
    /// Scavenger: runs on leftover slots, first to feel saturation.
    BestEffort,
}

impl QosClass {
    /// All classes, highest priority first.
    pub const ALL: [QosClass; 3] =
        [QosClass::Guaranteed, QosClass::Burstable, QosClass::BestEffort];

    /// Dispatch rank: 0 is served first.
    pub fn rank(self) -> usize {
        match self {
            QosClass::Guaranteed => 0,
            QosClass::Burstable => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// Short stable name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Guaranteed => "guaranteed",
            QosClass::Burstable => "burstable",
            QosClass::BestEffort => "besteffort",
        }
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class queue policy: how many submissions may wait, and how fast a
/// waiting submission gains priority.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassPolicy {
    /// Bounded queue depth; a submission arriving at a full queue is
    /// rejected with [`AdmissionError::QueueFull`]. Zero disables the
    /// class entirely ([`AdmissionError::ClassDisabled`]).
    pub queue_capacity: usize,
    /// Starvation-avoidance aging: every `aging_threshold` cycles a
    /// queued submission waits, its effective rank improves by one class
    /// step, so saturating high-priority traffic cannot starve
    /// BestEffort forever. Must be nonzero.
    pub aging_threshold: u64,
}

impl ClassPolicy {
    /// A policy with the given depth and aging threshold.
    pub fn new(queue_capacity: usize, aging_threshold: u64) -> Self {
        ClassPolicy { queue_capacity, aging_threshold }
    }
}

impl Default for ClassPolicy {
    fn default() -> Self {
        ClassPolicy { queue_capacity: 8, aging_threshold: 4_096 }
    }
}

/// Why the service refused a submission at admission time. Rejections are
/// typed and counted per tenant; they are *not* errors of the service
/// run itself — an overloaded service rejecting work is behaving
/// correctly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The tenant's class queue is at capacity.
    QueueFull {
        /// The rejecting class.
        class: QosClass,
        /// Its configured bound.
        capacity: usize,
    },
    /// The tenant's class has zero queue capacity configured.
    ClassDisabled {
        /// The disabled class.
        class: QosClass,
    },
    /// Every CPM node is permanently dead under the active fault plan —
    /// no slot can ever serve the submission.
    NoLiveCpm,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { class, capacity } => {
                write!(f, "{class} queue is at its capacity of {capacity}")
            }
            AdmissionError::ClassDisabled { class } => {
                write!(f, "{class} class is disabled (zero queue capacity)")
            }
            AdmissionError::NoLiveCpm => write!(f, "no live CPM can ever serve this submission"),
        }
    }
}
