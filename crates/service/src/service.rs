//! The service loop: validated configuration, deterministic scheduling,
//! and the per-tenant/per-class SLO report.

use crate::qos::{AdmissionError, ClassPolicy, QosClass};
use crate::tenant::{Arrivals, TenantSpec};
use snacknoc_compiler::{build, MapperConfig};
use snacknoc_core::{
    CompiledKernel, CpmState, PlatformConfig, PlatformConfigError, PlatformError, SnackPlatform,
};
use snacknoc_noc::{FaultPlan, FaultPlanError, LatencyHistogram, NocConfig};
use snacknoc_prng::Rng;
use snacknoc_workloads::BenchmarkProfile;
use std::collections::VecDeque;
use std::fmt;

/// Stepping-mode selector: the five modes of the determinism suite. The
/// service report is bit-identical across all of them for any valid spec.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stepping {
    /// Reference dense loop: every router stepped every cycle.
    Dense,
    /// Active-set scheduler (the platform default).
    Active,
    /// Event-driven time-wheel with clock jumps across idle gaps.
    Event,
    /// Sharded mesh stepping (two shards).
    Sharded,
    /// Event-driven stepping on a sharded mesh.
    EventSharded,
}

impl Stepping {
    /// All five modes, in the determinism suite's order.
    pub const ALL: [Stepping; 5] = [
        Stepping::Dense,
        Stepping::Active,
        Stepping::Event,
        Stepping::Sharded,
        Stepping::EventSharded,
    ];

    /// Short stable name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stepping::Dense => "dense",
            Stepping::Active => "active",
            Stepping::Event => "event",
            Stepping::Sharded => "sharded",
            Stepping::EventSharded => "event+sharded",
        }
    }

    /// Applies the mode to a freshly built platform.
    pub fn apply(self, p: &mut SnackPlatform) {
        match self {
            Stepping::Dense => p.set_dense_stepping(true),
            Stepping::Active => {}
            Stepping::Event => p.set_event_stepping(true),
            Stepping::Sharded => {
                p.set_sharding(2).expect("two shards fit every preset mesh");
            }
            Stepping::EventSharded => {
                p.set_event_stepping(true);
                p.set_sharding(2).expect("two shards fit every preset mesh");
            }
        }
    }
}

impl fmt::Display for Stepping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Complete description of one service run. A run is a pure function of
/// its spec: same spec, same report, in every stepping mode.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// NoC configuration (enable the paper's priority arbitration here to
    /// get the Fig. 12 QoS behaviour at the network level).
    pub noc: NocConfig,
    /// Corner CPMs to serve from (1..=4): the admission-controlled
    /// resource pool.
    pub cpm_count: usize,
    /// Per-class queue policies, indexed by [`QosClass::rank`].
    pub policies: [ClassPolicy; 3],
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
    /// Cycle at which arrival generation stops (must be nonzero).
    pub horizon: u64,
    /// Extra cycles after the horizon to drain queued/running work before
    /// the loop gives up and counts leftovers as residual.
    pub drain: u64,
    /// Platform knobs; [`PlatformConfig::kernel_cycle_cap`] is the
    /// service's per-kernel abort deadline.
    pub platform: PlatformConfig,
    /// Stepping mode.
    pub stepping: Stepping,
    /// Master seed: forked per tenant for arrival gaps and kernel inputs.
    pub seed: u64,
    /// Optional CMP workload run concurrently on the same platform
    /// (profile, workload seed) — the Fig. 12 interference scenario.
    pub workload: Option<(BenchmarkProfile, u64)>,
    /// Optional fault plan (dead CPMs/RCUs/links) the service must serve
    /// through.
    pub fault_plan: Option<FaultPlan>,
}

impl ServiceSpec {
    /// A minimal spec over the given tenants with library defaults
    /// everywhere else: DAPPER 4×4 mesh, one CPM, default policies, a
    /// 40k-cycle horizon with a 20k-cycle drain.
    pub fn new(tenants: Vec<TenantSpec>, seed: u64) -> Self {
        ServiceSpec {
            noc: NocConfig::dapper(),
            cpm_count: 1,
            policies: [ClassPolicy::default(); 3],
            tenants,
            horizon: 40_000,
            drain: 20_000,
            platform: PlatformConfig::default(),
            stepping: Stepping::Active,
            seed,
            workload: None,
            fault_plan: None,
        }
    }

    /// Checks the spec, returning the first violation found.
    ///
    /// # Errors
    ///
    /// See [`ServiceConfigError`].
    pub fn validate(&self) -> Result<(), ServiceConfigError> {
        if self.tenants.is_empty() {
            return Err(ServiceConfigError::NoTenants);
        }
        if self.horizon == 0 {
            return Err(ServiceConfigError::ZeroHorizon);
        }
        for class in QosClass::ALL {
            if self.policies[class.rank()].aging_threshold == 0 {
                return Err(ServiceConfigError::ZeroAging { class });
            }
        }
        for t in &self.tenants {
            let bad = t.size == 0
                || match t.arrivals {
                    Arrivals::Open { mean_gap } => mean_gap == 0,
                    // Zero think would let a rejected closed-loop tenant
                    // re-arrive within the same admission pass, forever.
                    Arrivals::Closed { think, inflight } => inflight == 0 || think == 0,
                };
            if bad {
                return Err(ServiceConfigError::BadTenant { name: t.name.clone() });
            }
        }
        self.platform.validate().map_err(ServiceConfigError::Platform)?;
        Ok(())
    }
}

/// An invalid [`ServiceSpec`], rejected before the platform is built.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ServiceConfigError {
    /// The tenant list is empty.
    NoTenants,
    /// The arrival horizon is zero — the service would do nothing.
    ZeroHorizon,
    /// A class policy has a zero aging threshold (aging divides by it).
    ZeroAging {
        /// The offending class.
        class: QosClass,
    },
    /// A tenant has a zero kernel size, zero open-loop gap or zero
    /// closed-loop window.
    BadTenant {
        /// The offending tenant.
        name: String,
    },
    /// The embedded platform config failed its own validation.
    Platform(PlatformConfigError),
}

impl fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceConfigError::NoTenants => write!(f, "service spec has no tenants"),
            ServiceConfigError::ZeroHorizon => write!(f, "arrival horizon is zero"),
            ServiceConfigError::ZeroAging { class } => {
                write!(f, "{class} policy has a zero aging threshold")
            }
            ServiceConfigError::BadTenant { name } => {
                write!(f, "tenant {name}: zero kernel size, arrival gap or inflight window")
            }
            ServiceConfigError::Platform(e) => write!(f, "platform config: {e}"),
        }
    }
}

/// A service run that could not start (configuration or platform
/// construction failed). Admission rejections are *not* errors — they are
/// counted in the report.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The spec failed validation.
    Config(ServiceConfigError),
    /// The platform rejected its configuration.
    Platform(PlatformError),
    /// The fault plan was rejected.
    FaultPlan(FaultPlanError),
    /// A tenant's kernel failed to build or compile.
    Kernel(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "invalid service spec: {e}"),
            ServiceError::Platform(e) => write!(f, "platform: {e}"),
            ServiceError::FaultPlan(e) => write!(f, "fault plan: {e}"),
            ServiceError::Kernel(e) => write!(f, "kernel: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-tenant accounting for one service run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name (from the spec).
    pub name: String,
    /// Tenant class (from the spec).
    pub class: QosClass,
    /// Arrivals presented to admission control.
    pub submitted: u64,
    /// Arrivals accepted into a class queue.
    pub admitted: u64,
    /// Rejections: class queue at capacity.
    pub rejected_full: u64,
    /// Rejections: class disabled (zero capacity).
    pub rejected_disabled: u64,
    /// Rejections: every CPM permanently dead.
    pub rejected_dead: u64,
    /// Kernels run to completion with results collected.
    pub completed: u64,
    /// Kernels aborted at the per-kernel cycle cap.
    pub aborted: u64,
    /// Jobs still queued or running when the loop ended.
    pub residual: u64,
    /// Execution cycles actually served (sum over completions) — the
    /// fairness metric's resource share.
    pub service_cycles: u64,
    /// Submission-to-writeback latency distribution (queue wait plus
    /// execution) over completions.
    pub hist: LatencyHistogram,
}

impl TenantReport {
    fn new(spec: &TenantSpec) -> Self {
        TenantReport {
            name: spec.name.clone(),
            class: spec.class,
            submitted: 0,
            admitted: 0,
            rejected_full: 0,
            rejected_disabled: 0,
            rejected_dead: 0,
            completed: 0,
            aborted: 0,
            residual: 0,
            service_cycles: 0,
            hist: LatencyHistogram::new(),
        }
    }

    /// Total rejections across all admission-error kinds.
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_disabled + self.rejected_dead
    }
}

/// Per-class aggregate of [`TenantReport`]s.
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// The class.
    pub class: QosClass,
    /// Sum of tenant `submitted`.
    pub submitted: u64,
    /// Sum of tenant `admitted`.
    pub admitted: u64,
    /// Sum of tenant rejections.
    pub rejected: u64,
    /// Sum of tenant `completed`.
    pub completed: u64,
    /// Sum of tenant `aborted`.
    pub aborted: u64,
    /// Sum of tenant `residual`.
    pub residual: u64,
    /// Sum of tenant `service_cycles`.
    pub service_cycles: u64,
    /// Merged latency distribution.
    pub hist: LatencyHistogram,
}

/// The outcome of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Final platform cycle when the loop ended.
    pub cycles: u64,
    /// Per-tenant accounting, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Conservation/consistency violations (empty on a healthy run):
    /// every submission must be admitted or rejected, every admission
    /// completed, aborted or residual, and the platform's own completion
    /// counter must agree with the service's.
    pub violations: Vec<String>,
}

impl ServiceReport {
    /// Aggregates the tenants of one class.
    pub fn class_report(&self, class: QosClass) -> ClassReport {
        let mut c = ClassReport {
            class,
            submitted: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            aborted: 0,
            residual: 0,
            service_cycles: 0,
            hist: LatencyHistogram::new(),
        };
        for t in self.tenants.iter().filter(|t| t.class == class) {
            c.submitted += t.submitted;
            c.admitted += t.admitted;
            c.rejected += t.rejected();
            c.completed += t.completed;
            c.aborted += t.aborted;
            c.residual += t.residual;
            c.service_cycles += t.service_cycles;
            c.hist.merge(&t.hist);
        }
        c
    }

    /// All three class aggregates, highest priority first.
    pub fn classes(&self) -> [ClassReport; 3] {
        QosClass::ALL.map(|c| self.class_report(c))
    }

    /// Total completions across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total rejections across tenants.
    pub fn rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.rejected()).sum()
    }

    /// Jain's fairness index over per-tenant service cycles: 1.0 when
    /// every tenant received the same execution-cycle share, approaching
    /// `1/n` when one tenant monopolized the platform. 1.0 by convention
    /// when nothing was served.
    pub fn fairness(&self) -> f64 {
        let n = self.tenants.len() as f64;
        let sum: f64 = self.tenants.iter().map(|t| t.service_cycles as f64).sum();
        if sum == 0.0 {
            return 1.0;
        }
        let sumsq: f64 = self.tenants.iter().map(|t| (t.service_cycles as f64).powi(2)).sum();
        (sum * sum) / (n * sumsq)
    }

    /// A deterministic 64-bit digest of everything observable in the
    /// report: final cycle, every per-tenant counter, the latency
    /// percentiles and the violation count. Two runs of the same spec —
    /// in any stepping mode, from any sweep-worker count — must produce
    /// equal fingerprints; the determinism suite asserts exactly that.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = eat(h, self.cycles);
        h = eat(h, self.violations.len() as u64);
        for t in &self.tenants {
            for v in [
                t.class.rank() as u64,
                t.submitted,
                t.admitted,
                t.rejected_full,
                t.rejected_disabled,
                t.rejected_dead,
                t.completed,
                t.aborted,
                t.residual,
                t.service_cycles,
                t.hist.samples(),
                t.hist.percentile(50.0),
                t.hist.percentile(90.0),
                t.hist.percentile(99.0),
            ] {
                h = eat(h, v);
            }
        }
        h
    }
}

/// A queued unit of work: one admitted submission.
#[derive(Clone, Copy, Debug)]
struct Job {
    tenant: usize,
    submit: u64,
    seq: u64,
}

/// Runs the service described by `spec` to completion and returns its
/// report.
///
/// The loop, per iteration at platform cycle `now`, in this fixed order:
/// collect completions (CPM index order) → abort kernels past the
/// per-kernel cycle cap → admit arrivals due at or before `now` (tenant
/// index order) → dispatch queued jobs onto idle live CPMs (aged class
/// priority, FIFO within class) → advance the platform one step, or in
/// event mode one clock jump capped at the next service event. Every
/// decision is keyed on mode-invariant quantities (completion cycles are
/// derived from the CPM's writeback cycle, not the observation cycle), so
/// the report is bit-identical across all five stepping modes.
///
/// # Errors
///
/// Returns [`ServiceError`] when the spec is invalid or the platform
/// cannot be built; admission rejections and aborts are reported, not
/// errored.
pub fn run_service(spec: &ServiceSpec) -> Result<ServiceReport, ServiceError> {
    spec.validate().map_err(ServiceError::Config)?;
    let mut platform = SnackPlatform::with_cpm_count(spec.noc.clone(), spec.cpm_count)
        .map_err(ServiceError::Platform)?;
    spec.stepping.apply(&mut platform);
    platform
        .set_platform_config(spec.platform)
        .map_err(|e| ServiceError::Config(ServiceConfigError::Platform(e)))?;
    if let Some(plan) = &spec.fault_plan {
        platform.set_fault_plan(plan.clone()).map_err(ServiceError::FaultPlan)?;
    }
    if let Some((profile, wseed)) = &spec.workload {
        platform.attach_workload(profile, *wseed);
    }

    // One compiled kernel per tenant, reused for every submission.
    let mapper = MapperConfig::for_mesh(platform.mesh());
    let mut kernels: Vec<CompiledKernel> = Vec::with_capacity(spec.tenants.len());
    for (i, t) in spec.tenants.iter().enumerate() {
        let built = build(t.kernel, t.size, spec.seed.wrapping_add(i as u64 * 0x9e37_79b9));
        let compiled = built
            .context
            .compile(built.root, &mapper)
            .map_err(|e| ServiceError::Kernel(format!("{}: {e}", t.name)))?;
        kernels.push(compiled);
    }

    let n = spec.tenants.len();
    let cpms = platform.cpm_count();
    let epochs_max = platform.namespace_epochs();
    let kernel_cap = spec.platform.kernel_cycle_cap;
    let drain_deadline = spec.horizon.saturating_add(spec.drain);

    // Forked per-tenant RNG streams: tenant i's arrival gaps are
    // independent of every other tenant's (common-random-numbers style).
    let mut master = Rng::new(spec.seed);
    let mut gap_rngs: Vec<Rng> = (0..n).map(|_| master.fork()).collect();

    // Pending arrival times per tenant, kept non-decreasing: open-loop
    // tenants hold exactly one future arrival; closed-loop tenants hold
    // one per free inflight slot.
    let mut arrivals: Vec<VecDeque<u64>> = spec
        .tenants
        .iter()
        .map(|t| match t.arrivals {
            Arrivals::Open { .. } => VecDeque::from([0u64]),
            Arrivals::Closed { inflight, .. } => (0..u64::from(inflight)).collect(),
        })
        .collect();

    let mut queues: [VecDeque<Job>; 3] = [VecDeque::new(), VecDeque::new(), VecDeque::new()];
    let mut running: Vec<Option<Job>> = vec![None; cpms];
    let mut dispatch_at = vec![0u64; cpms];
    let mut epoch = vec![0u32; cpms];
    let mut seq = 0u64;
    let mut reports: Vec<TenantReport> = spec.tenants.iter().map(TenantReport::new).collect();
    let mut violations: Vec<String> = Vec::new();

    // Re-arms a closed-loop tenant after a completion, abort or
    // rejection: the replacement arrival lands after its think time,
    // unless arrival generation has passed the horizon.
    let rearm = |arrivals: &mut Vec<VecDeque<u64>>, t: usize, at: u64, horizon: u64| {
        if let Arrivals::Closed { think, .. } = spec.tenants[t].arrivals {
            let next = at.saturating_add(think);
            if next < horizon {
                arrivals[t].push_back(next);
            }
        }
    };

    loop {
        let now = platform.cycle();

        // (1) Completions, CPM index order. The completion cycle is the
        // CPM's writeback cycle (dispatch + run.cycles), identical in
        // every stepping mode regardless of when the poll observes it.
        for i in 0..cpms {
            let Some(job) = running[i] else { continue };
            if let Some(run) = platform.take_kernel_results_from(i) {
                running[i] = None;
                let done_at = dispatch_at[i] + run.cycles;
                let r = &mut reports[job.tenant];
                r.completed += 1;
                r.service_cycles += run.cycles;
                r.hist.record(done_at - job.submit);
                rearm(&mut arrivals, job.tenant, done_at, spec.horizon);
            }
        }

        // (2) Per-kernel cycle cap: quarantine overdue kernels.
        for i in 0..cpms {
            let Some(job) = running[i] else { continue };
            if now.saturating_sub(dispatch_at[i]) >= kernel_cap {
                platform.abort_kernel_on(i);
                running[i] = None;
                reports[job.tenant].aborted += 1;
                rearm(&mut arrivals, job.tenant, now, spec.horizon);
            }
        }

        // (3) Admission, tenant index order.
        let all_dead = (0..cpms).all(|i| platform.cpm_node_dead(i));
        for t in 0..n {
            while arrivals[t].front().is_some_and(|&a| a <= now) {
                arrivals[t].pop_front();
                let class = spec.tenants[t].class;
                let pol = spec.policies[class.rank()];
                reports[t].submitted += 1;
                let verdict = if pol.queue_capacity == 0 {
                    Err(AdmissionError::ClassDisabled { class })
                } else if all_dead {
                    Err(AdmissionError::NoLiveCpm)
                } else if queues[class.rank()].len() >= pol.queue_capacity {
                    Err(AdmissionError::QueueFull { class, capacity: pol.queue_capacity })
                } else {
                    Ok(())
                };
                match verdict {
                    Ok(()) => {
                        reports[t].admitted += 1;
                        queues[class.rank()].push_back(Job { tenant: t, submit: now, seq });
                        seq += 1;
                    }
                    Err(AdmissionError::QueueFull { .. }) => {
                        reports[t].rejected_full += 1;
                        rearm(&mut arrivals, t, now, spec.horizon);
                    }
                    Err(AdmissionError::ClassDisabled { .. }) => {
                        reports[t].rejected_disabled += 1;
                        rearm(&mut arrivals, t, now, spec.horizon);
                    }
                    Err(_) => {
                        reports[t].rejected_dead += 1;
                        rearm(&mut arrivals, t, now, spec.horizon);
                    }
                }
                if let Arrivals::Open { mean_gap } = spec.tenants[t].arrivals {
                    let next = now + 1 + gap_rngs[t].range(0..2 * mean_gap);
                    if next < spec.horizon {
                        arrivals[t].push_back(next);
                    }
                }
            }
        }

        // (4) Dispatch: fill idle live CPM slots from the class-queue
        // heads. Effective rank = class rank minus one step per full
        // aging threshold waited; ties broken by global submission order
        // (FIFO within a class by construction).
        while let Some(slot) = (0..cpms).find(|&i| {
            running[i].is_none()
                && platform.cpm_at(i).state() == CpmState::Idle
                && !platform.cpm_node_dead(i)
        }) {
            let mut best: Option<(i64, u64, usize)> = None;
            for (c, q) in queues.iter().enumerate() {
                let Some(job) = q.front() else { continue };
                let aged = ((now - job.submit) / spec.policies[c].aging_threshold) as i64;
                let key = (c as i64 - aged, job.seq, c);
                if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                    best = Some(key);
                }
            }
            let Some((_, _, c)) = best else { break };
            let Some(job) = queues[c].pop_front() else { break };
            match platform.submit_kernel_epoch(slot, epoch[slot], &kernels[job.tenant]) {
                Ok(()) => {
                    epoch[slot] = (epoch[slot] + 1) % epochs_max;
                    dispatch_at[slot] = now;
                    running[slot] = Some(job);
                }
                Err(e) => {
                    // Admission checked the slot was idle and the epoch
                    // in range — a rejection here is a real bug.
                    violations.push(format!("dispatch to cpm {slot} failed at cycle {now}: {e}"));
                    reports[job.tenant].aborted += 1;
                    rearm(&mut arrivals, job.tenant, now, spec.horizon);
                }
            }
        }

        // (5) Termination, then advance. Jumps are capped at the next
        // service event, so no mode can skip a cycle the service must
        // act on.
        let queued: usize = queues.iter().map(VecDeque::len).sum();
        let running_count = running.iter().flatten().count();
        let next_arrival = arrivals.iter().filter_map(|a| a.front().copied()).min();
        if running_count == 0 && (queued == 0 || all_dead) && next_arrival.is_none() {
            break;
        }
        if now >= drain_deadline {
            break;
        }
        let mut cap = drain_deadline;
        if let Some(a) = next_arrival {
            cap = cap.min(a);
        }
        for i in 0..cpms {
            if running[i].is_some() {
                cap = cap.min(dispatch_at[i].saturating_add(kernel_cap));
            }
        }
        platform.step_or_jump(cap.max(now + 1));
    }

    // Leftovers: queued and still-running jobs are residual.
    for q in &queues {
        for job in q {
            reports[job.tenant].residual += 1;
        }
    }
    for job in running.iter().flatten() {
        reports[job.tenant].residual += 1;
    }

    // Conservation checks: these hold structurally; a violation means the
    // scheduler lost or double-counted a submission.
    for r in &reports {
        if r.submitted != r.admitted + r.rejected() {
            violations.push(format!(
                "{}: submitted {} != admitted {} + rejected {}",
                r.name,
                r.submitted,
                r.admitted,
                r.rejected()
            ));
        }
        if r.admitted != r.completed + r.aborted + r.residual {
            violations.push(format!(
                "{}: admitted {} != completed {} + aborted {} + residual {}",
                r.name, r.admitted, r.completed, r.aborted, r.residual
            ));
        }
    }
    let total_completed: u64 = reports.iter().map(|r| r.completed).sum();
    if platform.kernels_completed() != total_completed {
        violations.push(format!(
            "platform counted {} completions, service counted {total_completed}",
            platform.kernels_completed()
        ));
    }

    Ok(ServiceReport { cycles: platform.cycle(), tenants: reports, violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::three_class_demo;
    use snacknoc_workloads::kernels::Kernel;

    fn one_tenant(class: QosClass, arrivals: Arrivals) -> ServiceSpec {
        let tenants = vec![TenantSpec::new("t0", class, Kernel::Mac, 32, arrivals)];
        let mut spec = ServiceSpec::new(tenants, 11);
        spec.horizon = 20_000;
        spec.drain = 20_000;
        spec
    }

    #[test]
    fn spec_validation_rejects_each_bad_knob() {
        let good = one_tenant(QosClass::Guaranteed, Arrivals::Open { mean_gap: 500 });
        assert!(good.validate().is_ok());

        let mut s = good.clone();
        s.tenants.clear();
        assert_eq!(s.validate(), Err(ServiceConfigError::NoTenants));

        let mut s = good.clone();
        s.horizon = 0;
        assert_eq!(s.validate(), Err(ServiceConfigError::ZeroHorizon));

        let mut s = good.clone();
        s.policies[QosClass::Burstable.rank()].aging_threshold = 0;
        assert_eq!(
            s.validate(),
            Err(ServiceConfigError::ZeroAging { class: QosClass::Burstable })
        );

        for bad in [
            Arrivals::Open { mean_gap: 0 },
            Arrivals::Closed { think: 0, inflight: 1 },
            Arrivals::Closed { think: 100, inflight: 0 },
        ] {
            let mut s = good.clone();
            s.tenants[0].arrivals = bad;
            assert_eq!(
                s.validate(),
                Err(ServiceConfigError::BadTenant { name: "t0".into() }),
                "{bad:?} must be rejected"
            );
        }

        let mut s = good;
        s.platform.kernel_cycle_cap = 1;
        assert!(matches!(s.validate(), Err(ServiceConfigError::Platform(_))));
    }

    #[test]
    fn zero_capacity_class_rejects_everything_typed() {
        let mut spec = one_tenant(QosClass::Burstable, Arrivals::Open { mean_gap: 500 });
        spec.policies[QosClass::Burstable.rank()].queue_capacity = 0;
        let r = run_service(&spec).expect("valid spec");
        let t = &r.tenants[0];
        assert!(t.submitted > 10, "the arrival process kept running");
        assert_eq!(t.admitted, 0);
        assert_eq!(t.rejected_disabled, t.submitted, "every arrival typed ClassDisabled");
        assert_eq!(t.completed, 0);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn full_queue_rejects_the_overflow_and_stays_bounded() {
        // One CPM, a queue bound of 1, and arrivals far faster than the
        // service rate: the bounded queue must reject, not grow.
        let mut spec = one_tenant(QosClass::BestEffort, Arrivals::Open { mean_gap: 40 });
        spec.policies[QosClass::BestEffort.rank()].queue_capacity = 1;
        let r = run_service(&spec).expect("valid spec");
        let t = &r.tenants[0];
        assert!(t.rejected_full > 0, "overload must surface as QueueFull rejections");
        assert!(t.completed > 0, "admitted work is still served");
        assert_eq!(t.submitted, t.admitted + t.rejected());
        assert_eq!(t.admitted, t.completed + t.aborted + t.residual);
        assert!(t.residual <= 2, "bounded queue: at most one queued + one running leftover");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn all_cpms_dead_rejects_at_admission() {
        let mut spec = one_tenant(QosClass::Guaranteed, Arrivals::Open { mean_gap: 500 });
        let probe = SnackPlatform::new(spec.noc.clone()).expect("valid config");
        let cpm_node = probe.cpm_at(0).node();
        spec.fault_plan = Some(FaultPlan::seeded(1).with_dead_rcu(cpm_node, 0));
        let r = run_service(&spec).expect("valid spec");
        let t = &r.tenants[0];
        assert!(t.submitted > 0);
        assert_eq!(t.rejected_dead, t.submitted, "every arrival typed NoLiveCpm");
        assert_eq!(t.completed, 0);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn dead_home_cpm_fails_over_to_the_live_corner() {
        // Two corner CPMs; CPM 0's node dies mid-run while a kernel may
        // be resident. The service must stop dispatching to the dead
        // slot, abort the stranded kernel at the (shortened) cycle cap,
        // and keep serving from the surviving corner — the service-layer
        // analogue of PR-8's home-CPM failover.
        let mut spec = one_tenant(QosClass::Guaranteed, Arrivals::Open { mean_gap: 300 });
        spec.cpm_count = 2;
        spec.platform.no_progress_window = 2_048;
        spec.platform.kernel_cycle_cap = 4_096;
        let probe = SnackPlatform::with_cpm_count(spec.noc.clone(), 2).expect("valid config");
        let dead_node = probe.cpm_at(0).node();
        spec.fault_plan = Some(FaultPlan::seeded(2).with_dead_rcu(dead_node, 5_000));
        let r = run_service(&spec).expect("valid spec");
        let t = &r.tenants[0];
        assert!(t.completed > 10, "the live corner kept serving: {t:?}");
        assert_eq!(t.rejected_dead, 0, "one live CPM remains — never NoLiveCpm");
        assert_eq!(t.submitted, t.admitted + t.rejected());
        assert_eq!(t.admitted, t.completed + t.aborted + t.residual);
        assert!(r.violations.is_empty(), "{:?}", r.violations);

        // Same spec without the fault: strictly more completions, and the
        // faulted run must not have silently dropped the difference.
        let mut clean = spec.clone();
        clean.fault_plan = None;
        let rc = run_service(&clean).expect("valid spec");
        assert!(rc.tenants[0].completed > t.completed, "losing a corner costs throughput");
    }

    #[test]
    fn aging_rescues_besteffort_from_a_guaranteed_flood() {
        // A closed-loop Guaranteed tenant saturates the single CPM while
        // one early BestEffort submission waits. With a finite aging
        // threshold the scavenger's effective rank eventually beats the
        // flood; with an enormous threshold it waits until the flood's
        // horizon. Aging must strictly improve its tail latency.
        let flood = |aging: u64| {
            let tenants = vec![
                TenantSpec::new(
                    "flood",
                    QosClass::Guaranteed,
                    Kernel::Mac,
                    32,
                    Arrivals::Closed { think: 1, inflight: 2 },
                ),
                TenantSpec::new(
                    "scavenger",
                    QosClass::BestEffort,
                    Kernel::Mac,
                    32,
                    Arrivals::Open { mean_gap: 30_000 },
                ),
            ];
            let mut spec = ServiceSpec::new(tenants, 13);
            spec.horizon = 30_000;
            spec.drain = 30_000;
            spec.policies[QosClass::BestEffort.rank()].aging_threshold = aging;
            let r = run_service(&spec).expect("valid spec");
            assert!(r.violations.is_empty(), "{:?}", r.violations);
            let s = &r.tenants[1];
            assert!(s.completed >= 1, "the scavenger is served eventually (aging {aging})");
            s.hist.percentile(99.0)
        };
        let aged = flood(1_024);
        let starved = flood(1 << 40);
        assert!(
            aged < starved,
            "aging must cut the scavenger's tail: aged p99 {aged} vs starved p99 {starved}"
        );
    }

    #[test]
    fn five_stepping_modes_are_bit_identical_on_the_demo() {
        let base = three_class_demo(23);
        let mut prints = Vec::new();
        for mode in Stepping::ALL {
            let mut spec = base.clone();
            spec.stepping = mode;
            let r = run_service(&spec).expect("valid spec");
            assert!(r.violations.is_empty(), "{mode}: {:?}", r.violations);
            prints.push((mode, r.fingerprint()));
        }
        for (mode, fp) in &prints[1..] {
            assert_eq!(*fp, prints[0].1, "{mode} diverged from dense");
        }
    }
}
