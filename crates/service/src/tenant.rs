//! Tenant specifications and their arrival processes.

use crate::qos::QosClass;
use snacknoc_workloads::kernels::Kernel;

/// How a tenant generates submissions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arrivals {
    /// Open loop: submissions arrive on their own clock regardless of
    /// completions — each arrival schedules the next a uniformly random
    /// `1..=2*mean_gap` cycles later (mean ≈ `mean_gap`), from the
    /// tenant's forked RNG stream. Models external demand that does not
    /// back off under overload. `mean_gap` must be nonzero.
    Open {
        /// Mean cycles between arrivals.
        mean_gap: u64,
    },
    /// Closed loop: the tenant keeps at most `inflight` submissions in
    /// the system; each completion, abort or rejection is followed by
    /// `think` cycles of think time before the replacement submission.
    /// Models interactive users who wait for results. `think` and
    /// `inflight` must both be nonzero.
    Closed {
        /// Think time in cycles between a job ending and the next arrival.
        think: u64,
        /// Concurrent submissions the tenant sustains.
        inflight: u32,
    },
}

/// One tenant of the service: a named principal with a QoS class, a fixed
/// kernel it submits repeatedly, and an arrival process.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (stable; used in reports and JSON).
    pub name: String,
    /// The tenant's QoS class.
    pub class: QosClass,
    /// Which paper kernel the tenant submits.
    pub kernel: Kernel,
    /// The kernel's size parameter (must be nonzero).
    pub size: usize,
    /// The arrival process.
    pub arrivals: Arrivals,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        class: QosClass,
        kernel: Kernel,
        size: usize,
        arrivals: Arrivals,
    ) -> Self {
        TenantSpec { name: name.into(), class, kernel, size, arrivals }
    }
}
